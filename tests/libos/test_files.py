"""Unit tests for the copy-on-write file layer."""

import pytest

from repro.interpose import PermissivePolicy, SoundMinimalPolicy
from repro.libos.files import (
    EACCES,
    EBADF,
    ENOENT,
    FileTable,
    HostFS,
    O_CREAT,
    O_RDONLY,
    O_RDWR,
)


@pytest.fixture
def hostfs():
    return HostFS({"/etc/config": b"key=value\n", "/data/input": b"0123456789"})


@pytest.fixture
def table(hostfs):
    return FileTable(hostfs, PermissivePolicy())


class TestOpenClose:
    def test_open_backing_file(self, table):
        fd = table.open("/etc/config", O_RDONLY)
        assert fd >= 3
        assert table.read(fd, 100) == b"key=value\n"

    def test_open_missing_enoent(self, table):
        assert table.open("/nope", O_RDONLY) == -ENOENT

    def test_create_missing(self, table):
        fd = table.open("/new", O_RDWR | O_CREAT)
        assert fd >= 3
        assert table.read(fd, 10) == b""

    def test_fds_unique(self, table):
        a = table.open("/etc/config", O_RDONLY)
        b = table.open("/etc/config", O_RDONLY)
        assert a != b

    def test_close(self, table):
        fd = table.open("/etc/config", O_RDONLY)
        assert table.close(fd) == 0
        assert table.read(fd, 1) == -EBADF

    def test_close_bad_fd(self, table):
        assert table.close(99) == -EBADF


class TestReadWrite:
    def test_sequential_reads_advance(self, table):
        fd = table.open("/data/input", O_RDONLY)
        assert table.read(fd, 4) == b"0123"
        assert table.read(fd, 4) == b"4567"
        assert table.read(fd, 4) == b"89"
        assert table.read(fd, 4) == b""

    def test_write_to_readonly_fd_denied(self, table):
        fd = table.open("/data/input", O_RDONLY)
        assert table.write(fd, b"x") == -EACCES

    def test_write_and_readback(self, table):
        fd = table.open("/out", O_RDWR | O_CREAT)
        assert table.write(fd, b"hello") == 5
        table.lseek(fd, 0, 0)
        assert table.read(fd, 5) == b"hello"

    def test_write_extends_file(self, table):
        fd = table.open("/out", O_RDWR | O_CREAT)
        table.lseek(fd, 10, 0)
        table.write(fd, b"x")
        assert table.contents("/out") == bytes(10) + b"x"

    def test_write_does_not_touch_hostfs(self, table, hostfs):
        fd = table.open("/data/input", O_RDWR)
        table.write(fd, b"XXX")
        assert hostfs.get("/data/input") == b"0123456789"
        assert table.contents("/data/input")[:3] == b"XXX"

    def test_lseek_whence(self, table):
        fd = table.open("/data/input", O_RDONLY)
        assert table.lseek(fd, 2, 0) == 2
        assert table.lseek(fd, 3, 1) == 5
        assert table.lseek(fd, -1, 2) == 9
        assert table.lseek(fd, 0, 9) == -22  # EINVAL
        assert table.lseek(fd, -100, 0) == -22


class TestForkCow:
    def test_fork_sees_parent_content(self, table):
        fd = table.open("/out", O_RDWR | O_CREAT)
        table.write(fd, b"base")
        child = table.fork_cow()
        assert child.contents("/out") == b"base"

    def test_child_write_invisible_to_parent(self, table):
        fd = table.open("/out", O_RDWR | O_CREAT)
        table.write(fd, b"base")
        child = table.fork_cow()
        child.lseek(fd, 0, 0)
        child.write(fd, b"CHILD")
        assert table.contents("/out") == b"base"
        assert child.contents("/out") == b"CHILD"

    def test_parent_write_invisible_to_child(self, table):
        fd = table.open("/out", O_RDWR | O_CREAT)
        table.write(fd, b"base")
        child = table.fork_cow()
        table.lseek(fd, 0, 0)
        table.write(fd, b"PAR!")
        assert child.contents("/out") == b"base"

    def test_sibling_isolation(self, table):
        fd = table.open("/out", O_RDWR | O_CREAT)
        table.write(fd, b"....")
        a = table.fork_cow()
        b = table.fork_cow()
        a.lseek(fd, 0, 0)
        a.write(fd, b"AAAA")
        b.lseek(fd, 0, 0)
        b.write(fd, b"BBBB")
        assert a.contents("/out") == b"AAAA"
        assert b.contents("/out") == b"BBBB"
        assert table.contents("/out") == b"...."

    def test_fd_positions_are_private(self, table):
        fd = table.open("/data/input", O_RDONLY)
        child = table.fork_cow()
        table.read(fd, 5)
        assert child.read(fd, 3) == b"012"

    def test_no_copy_until_write(self, table):
        fd = table.open("/data/input", O_RDWR)
        child = table.fork_cow()
        assert child.cow_bytes == 0
        child.write(fd, b"X")
        assert child.cow_bytes == 10

    def test_second_write_free(self, table):
        fd = table.open("/out", O_RDWR | O_CREAT)
        table.write(fd, b"0123456789")
        child = table.fork_cow()
        child.write(fd, b"a")
        copied = child.cow_bytes
        child.write(fd, b"b")
        assert child.cow_bytes == copied

    def test_same_file_two_fds_stay_consistent_after_cow(self, table):
        fd1 = table.open("/out", O_RDWR | O_CREAT)
        table.write(fd1, b"hello")
        fd2 = table.open("/out", O_RDWR)
        child = table.fork_cow()
        child.write(fd2, b"WORLD")
        # Both of the child's fds see the private copy.
        child.lseek(fd1, 0, 0)
        assert child.read(fd1, 5) == b"WORLD"
        assert table.contents("/out") == b"hello"

    def test_open_after_fork_sees_path_view(self, table):
        fd = table.open("/out", O_RDWR | O_CREAT)
        table.write(fd, b"data")
        child = table.fork_cow()
        fd2 = child.open("/out", O_RDONLY)
        assert child.read(fd2, 4) == b"data"

    def test_free_releases_refs(self, table):
        fd = table.open("/out", O_RDWR | O_CREAT)
        table.write(fd, b"x")
        child = table.fork_cow()
        fdata = child._inodes[child._fds[fd].ino]
        before = fdata.refcount
        child.free()
        assert fdata.refcount < before

    def test_siblings_never_see_unflushed_blocks(self, table):
        """The page-cache isolation property: pending (unflushed) writes
        are as private as flushed ones."""
        fd = table.open("/data/input", O_RDWR)
        a = table.fork_cow()
        b = table.fork_cow()
        a.write(fd, b"AAAA")  # pending in a's overlay only
        assert b.contents("/data/input") == b"0123456789"
        assert table.contents("/data/input") == b"0123456789"
        a.fsync(fd)  # flushing stays private too (COW of the inode)
        assert b.contents("/data/input") == b"0123456789"
        assert a.contents("/data/input") == b"AAAA456789"


def small_table(files=None, block_size=4):
    return FileTable(HostFS(files or {}, block_size=block_size),
                     PermissivePolicy())


class TestBarriers:
    """fsync/sync semantics over the volatile page cache."""

    def test_write_is_volatile_until_fsync(self):
        t = small_table({"/f": b"aaaa"})
        fd = t.open("/f", O_RDWR)
        t.write(fd, b"bbbb")
        assert t.contents("/f") == b"bbbb"          # merged view
        assert t.durable_contents("/f") == b"aaaa"  # crash would lose it
        t.fsync(fd)
        assert t.durable_contents("/f") == b"bbbb"

    def test_fsync_flushes_creation_record(self):
        t = small_table()
        fd = t.open("/new", O_RDWR | O_CREAT)
        t.write(fd, b"x")
        assert t.durable_contents("/new") is None
        t.fsync(fd)
        assert t.durable_contents("/new") == b"x"

    def test_fsync_is_per_inode(self):
        t = small_table({"/a": b"1111", "/b": b"2222"})
        fa = t.open("/a", O_RDWR)
        fb = t.open("/b", O_RDWR)
        t.write(fa, b"AAAA")
        t.write(fb, b"BBBB")
        t.fsync(fa)
        assert t.durable_contents("/a") == b"AAAA"
        assert t.durable_contents("/b") == b"2222"

    def test_rename_needs_sync_not_fsync(self):
        t = small_table({"/cfg": b"old!"})
        fd = t.open("/cfg.tmp", O_RDWR | O_CREAT)
        t.write(fd, b"new!")
        t.fsync(fd)
        assert t.rename("/cfg.tmp", "/cfg") == 0
        assert t.contents("/cfg") == b"new!"           # volatile view
        assert t.durable_contents("/cfg") == b"old!"   # rename at risk
        t.sync()
        assert t.durable_contents("/cfg") == b"new!"
        assert t.durable_contents("/cfg.tmp") is None

    def test_rename_missing_src(self):
        t = small_table()
        assert t.rename("/nope", "/x") == -ENOENT

    def test_fsync_bad_fd(self):
        t = small_table()
        assert t.fsync(42) == -EBADF

    def test_fsync_return_counts_flushed_records(self):
        t = small_table({"/f": b""})
        fd = t.open("/f", O_RDWR)
        t.write(fd, b"12345678")  # block_size=4 -> 2 records
        assert t.fsync(fd) == 2
        assert t.fsync(fd) == 0   # nothing pending


class TestPageCacheEdges:
    """Regressions: lseek/read against the merged flushed+pending view."""

    def test_seek_end_counts_unflushed_appended_blocks(self):
        t = small_table({"/f": b"1234"})
        fd = t.open("/f", O_RDWR)
        t.lseek(fd, 0, 2)
        t.write(fd, b"5678ab")    # appends unflushed blocks 1..2
        assert t.lseek(fd, 0, 2) == 10
        assert t.lseek(fd, -2, 2) == 8

    def test_read_spans_flushed_unflushed_boundary(self):
        t = small_table({"/f": b"1234"})
        fd = t.open("/f", O_RDWR)
        t.fsync(fd)               # block 0 durable
        t.lseek(fd, 0, 2)
        t.write(fd, b"5678")      # block 1 pending
        t.lseek(fd, 2, 0)
        assert t.read(fd, 4) == b"3456"  # stitched across the boundary

    def test_read_of_partially_overwritten_block(self):
        t = small_table({"/f": b"abcdefgh"})
        fd = t.open("/f", O_RDWR)
        t.lseek(fd, 3, 0)
        t.write(fd, b"XY")        # spans blocks 0 and 1, both pending
        t.lseek(fd, 0, 0)
        assert t.read(fd, 8) == b"abcXYfgh"


class TestCrashEnumeration:
    """The sys_crash_* surface against hand-checkable logs."""

    def test_no_pending_means_zero_dims(self):
        t = small_table({"/f": b"1234"})
        fd = t.open("/f", O_RDWR)
        t.write(fd, b"XXXX")
        t.fsync(fd)
        assert t.crash_select(len(t.oplog)) == 0
        assert t.crash_commit() == 0
        assert t.contents("/f") == b"XXXX"

    def test_single_pending_block_two_options(self):
        t = small_table({"/f": b"1234"})
        fd = t.open("/f", O_RDWR)
        t.write(fd, b"XXXX")
        assert t.crash_select(1) == 1
        assert t.crash_opts(0) == 2
        lost = t.fork_cow()
        assert lost.crash_set(0, 0) == 0
        lost.crash_commit()
        assert lost.contents("/f") == b"1234"
        kept = t.fork_cow()
        kept.crash_set(0, 1)
        kept.crash_commit()
        assert kept.contents("/f") == b"XXXX"

    def test_block_prefix_closure(self):
        """Two writes to one block: the second can't land without the
        first (options = prefix lengths 0, 1, 2)."""
        t = small_table({"/f": b"...."})
        fd = t.open("/f", O_RDWR)
        t.lseek(fd, 0, 0)
        t.write(fd, b"A")
        t.lseek(fd, 1, 0)
        t.write(fd, b"B")
        assert t.crash_select(2) == 1
        assert t.crash_opts(0) == 3
        mid = t.fork_cow()
        mid.crash_set(0, 1)
        mid.crash_commit()
        assert mid.contents("/f") == b"A..."

    def test_torn_multiblock_write(self):
        t = small_table({"/f": b"aaaabbbb"})
        fd = t.open("/f", O_RDWR)
        t.write(fd, b"AAAABBBB")   # 2 blocks -> 2 independent dims
        assert t.crash_select(2) == 2
        torn = t.fork_cow()
        torn.crash_set(0, 0)
        torn.crash_set(1, 1)
        torn.crash_commit()
        assert torn.contents("/f") == b"aaaaBBBB"

    def test_lost_create_drops_the_file(self):
        t = small_table()
        fd = t.open("/new", O_RDWR | O_CREAT)
        t.write(fd, b"data")
        n = t.crash_select(2)
        assert n == 2              # create dim + one block dim
        gone = t.fork_cow()
        gone.crash_set(0, 0)       # create lost
        gone.crash_set(1, 1)       # data "applied" to an unlinked inode
        gone.crash_commit()
        assert gone.contents("/new") is None

    def test_commit_drops_fds_and_rebases(self):
        t = small_table({"/f": b"1234"})
        fd = t.open("/f", O_RDWR)
        t.write(fd, b"XXXX")
        t.crash_select(0)
        t.crash_commit()
        assert t.open_fds() == []
        assert t.oplog == ()
        assert t.read(fd, 4) == -EBADF
        fd2 = t.open("/f", O_RDONLY)
        assert t.read(fd2, 4) == b"1234"

    def test_invalid_arguments(self):
        t = small_table({"/f": b"1234"})
        assert t.crash_select(5) == -22
        assert t.crash_opts(0) == -22     # no select yet
        assert t.crash_set(0, 0) == -22
        assert t.crash_commit() == -22
        fd = t.open("/f", O_RDWR)
        t.write(fd, b"X")
        assert t.crash_select(1) == 1
        assert t.crash_opts(3) == -22
        assert t.crash_set(0, 2) == -22   # only options 0 and 1

    def test_forked_choices_are_private(self):
        t = small_table({"/f": b"1234"})
        fd = t.open("/f", O_RDWR)
        t.write(fd, b"XXXX")
        t.crash_select(1)
        a = t.fork_cow()
        b = t.fork_cow()
        a.crash_set(0, 1)
        b.crash_set(0, 0)
        a.crash_commit()
        b.crash_commit()
        assert a.contents("/f") == b"XXXX"
        assert b.contents("/f") == b"1234"


class TestPolicy:
    def test_sound_policy_refuses_devices(self, hostfs):
        table = FileTable(hostfs, SoundMinimalPolicy())
        assert table.open("/dev/null", O_RDONLY) == -EACCES
        assert table.open("/proc/self/maps", O_RDONLY) == -EACCES

    def test_sound_policy_refuses_sockets(self, hostfs):
        table = FileTable(hostfs, SoundMinimalPolicy())
        assert table.open("socket:127.0.0.1:80", O_RDWR) == -EACCES

    def test_sound_policy_allows_regular(self, hostfs):
        table = FileTable(hostfs, SoundMinimalPolicy())
        assert table.open("/etc/config", O_RDONLY) >= 3

    def test_denials_audited(self, hostfs):
        table = FileTable(hostfs, SoundMinimalPolicy())
        table.open("/dev/null", O_RDONLY)
        assert len(table.audit.denials) == 1
        assert table.audit.denials[0].syscall == "open"
