"""Unit tests for the copy-on-write file layer."""

import pytest

from repro.interpose import PermissivePolicy, SoundMinimalPolicy
from repro.libos.files import (
    EACCES,
    EBADF,
    ENOENT,
    FileTable,
    HostFS,
    O_CREAT,
    O_RDONLY,
    O_RDWR,
)


@pytest.fixture
def hostfs():
    return HostFS({"/etc/config": b"key=value\n", "/data/input": b"0123456789"})


@pytest.fixture
def table(hostfs):
    return FileTable(hostfs, PermissivePolicy())


class TestOpenClose:
    def test_open_backing_file(self, table):
        fd = table.open("/etc/config", O_RDONLY)
        assert fd >= 3
        assert table.read(fd, 100) == b"key=value\n"

    def test_open_missing_enoent(self, table):
        assert table.open("/nope", O_RDONLY) == -ENOENT

    def test_create_missing(self, table):
        fd = table.open("/new", O_RDWR | O_CREAT)
        assert fd >= 3
        assert table.read(fd, 10) == b""

    def test_fds_unique(self, table):
        a = table.open("/etc/config", O_RDONLY)
        b = table.open("/etc/config", O_RDONLY)
        assert a != b

    def test_close(self, table):
        fd = table.open("/etc/config", O_RDONLY)
        assert table.close(fd) == 0
        assert table.read(fd, 1) == -EBADF

    def test_close_bad_fd(self, table):
        assert table.close(99) == -EBADF


class TestReadWrite:
    def test_sequential_reads_advance(self, table):
        fd = table.open("/data/input", O_RDONLY)
        assert table.read(fd, 4) == b"0123"
        assert table.read(fd, 4) == b"4567"
        assert table.read(fd, 4) == b"89"
        assert table.read(fd, 4) == b""

    def test_write_to_readonly_fd_denied(self, table):
        fd = table.open("/data/input", O_RDONLY)
        assert table.write(fd, b"x") == -EACCES

    def test_write_and_readback(self, table):
        fd = table.open("/out", O_RDWR | O_CREAT)
        assert table.write(fd, b"hello") == 5
        table.lseek(fd, 0, 0)
        assert table.read(fd, 5) == b"hello"

    def test_write_extends_file(self, table):
        fd = table.open("/out", O_RDWR | O_CREAT)
        table.lseek(fd, 10, 0)
        table.write(fd, b"x")
        assert table.contents("/out") == bytes(10) + b"x"

    def test_write_does_not_touch_hostfs(self, table, hostfs):
        fd = table.open("/data/input", O_RDWR)
        table.write(fd, b"XXX")
        assert hostfs.get("/data/input") == b"0123456789"
        assert table.contents("/data/input")[:3] == b"XXX"

    def test_lseek_whence(self, table):
        fd = table.open("/data/input", O_RDONLY)
        assert table.lseek(fd, 2, 0) == 2
        assert table.lseek(fd, 3, 1) == 5
        assert table.lseek(fd, -1, 2) == 9
        assert table.lseek(fd, 0, 9) == -22  # EINVAL
        assert table.lseek(fd, -100, 0) == -22


class TestForkCow:
    def test_fork_sees_parent_content(self, table):
        fd = table.open("/out", O_RDWR | O_CREAT)
        table.write(fd, b"base")
        child = table.fork_cow()
        assert child.contents("/out") == b"base"

    def test_child_write_invisible_to_parent(self, table):
        fd = table.open("/out", O_RDWR | O_CREAT)
        table.write(fd, b"base")
        child = table.fork_cow()
        child.lseek(fd, 0, 0)
        child.write(fd, b"CHILD")
        assert table.contents("/out") == b"base"
        assert child.contents("/out") == b"CHILD"

    def test_parent_write_invisible_to_child(self, table):
        fd = table.open("/out", O_RDWR | O_CREAT)
        table.write(fd, b"base")
        child = table.fork_cow()
        table.lseek(fd, 0, 0)
        table.write(fd, b"PAR!")
        assert child.contents("/out") == b"base"

    def test_sibling_isolation(self, table):
        fd = table.open("/out", O_RDWR | O_CREAT)
        table.write(fd, b"....")
        a = table.fork_cow()
        b = table.fork_cow()
        a.lseek(fd, 0, 0)
        a.write(fd, b"AAAA")
        b.lseek(fd, 0, 0)
        b.write(fd, b"BBBB")
        assert a.contents("/out") == b"AAAA"
        assert b.contents("/out") == b"BBBB"
        assert table.contents("/out") == b"...."

    def test_fd_positions_are_private(self, table):
        fd = table.open("/data/input", O_RDONLY)
        child = table.fork_cow()
        table.read(fd, 5)
        assert child.read(fd, 3) == b"012"

    def test_no_copy_until_write(self, table):
        fd = table.open("/data/input", O_RDWR)
        child = table.fork_cow()
        assert child.cow_bytes == 0
        child.write(fd, b"X")
        assert child.cow_bytes == 10

    def test_second_write_free(self, table):
        fd = table.open("/out", O_RDWR | O_CREAT)
        table.write(fd, b"0123456789")
        child = table.fork_cow()
        child.write(fd, b"a")
        copied = child.cow_bytes
        child.write(fd, b"b")
        assert child.cow_bytes == copied

    def test_same_file_two_fds_stay_consistent_after_cow(self, table):
        fd1 = table.open("/out", O_RDWR | O_CREAT)
        table.write(fd1, b"hello")
        fd2 = table.open("/out", O_RDWR)
        child = table.fork_cow()
        child.write(fd2, b"WORLD")
        # Both of the child's fds see the private copy.
        child.lseek(fd1, 0, 0)
        assert child.read(fd1, 5) == b"WORLD"
        assert table.contents("/out") == b"hello"

    def test_open_after_fork_sees_path_view(self, table):
        fd = table.open("/out", O_RDWR | O_CREAT)
        table.write(fd, b"data")
        child = table.fork_cow()
        fd2 = child.open("/out", O_RDONLY)
        assert child.read(fd2, 4) == b"data"

    def test_free_releases_refs(self, table):
        fd = table.open("/out", O_RDWR | O_CREAT)
        table.write(fd, b"x")
        child = table.fork_cow()
        fdata = child._fds[fd].fdata
        before = fdata.refcount
        child.free()
        assert fdata.refcount < before


class TestPolicy:
    def test_sound_policy_refuses_devices(self, hostfs):
        table = FileTable(hostfs, SoundMinimalPolicy())
        assert table.open("/dev/null", O_RDONLY) == -EACCES
        assert table.open("/proc/self/maps", O_RDONLY) == -EACCES

    def test_sound_policy_refuses_sockets(self, hostfs):
        table = FileTable(hostfs, SoundMinimalPolicy())
        assert table.open("socket:127.0.0.1:80", O_RDWR) == -EACCES

    def test_sound_policy_allows_regular(self, hostfs):
        table = FileTable(hostfs, SoundMinimalPolicy())
        assert table.open("/etc/config", O_RDONLY) >= 3

    def test_denials_audited(self, hostfs):
        table = FileTable(hostfs, SoundMinimalPolicy())
        table.open("/dev/null", O_RDONLY)
        assert len(table.audit.denials) == 1
        assert table.audit.denials[0].syscall == "open"
