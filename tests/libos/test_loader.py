"""Unit tests for the guest program loader."""

import pytest

from repro.cpu import assemble
from repro.libos.loader import load_program
from repro.mem import FramePool, NotMappedError, PAGE_SIZE, ProtectionError
from repro.mem.layout import HEAP_BASE, MMAP_BASE, STACK_TOP


@pytest.fixture
def pool():
    return FramePool()


def load(source, pool, **kwargs):
    return load_program(assemble(source), pool, **kwargs)


class TestLoadProgram:
    def test_entry_and_stack(self, pool):
        program = assemble("_start: hlt")
        space, regs = load_program(program, pool)
        assert regs.rip == program.entry
        assert regs.rsp == STACK_TOP

    def test_text_is_read_execute(self, pool):
        space, _ = load("nop\nhlt", pool)
        program = assemble("nop\nhlt")
        assert space.fetch(program.text_base, 2) == program.text[:2]
        with pytest.raises(ProtectionError):
            space.write(program.text_base, b"\x00")

    def test_data_loaded_and_writable(self, pool):
        space, _ = load('.data\nmsg: .asciz "hi"\n.text\nhlt', pool)
        program = assemble('.data\nmsg: .asciz "hi"\n.text\nhlt')
        assert space.read_cstr(program.data_base) == b"hi"
        space.write(program.data_base, b"yo")  # must not fault

    def test_bss_pages_beyond_data(self, pool):
        space, _ = load(".data\nx: .quad 1\n.text\nhlt", pool, bss_pages=4)
        program = assemble(".data\nx: .quad 1\n.text\nhlt")
        bss_addr = program.data_base + PAGE_SIZE + 3 * PAGE_SIZE
        assert space.read_u64(bss_addr) == 0
        space.write_u64(bss_addr, 5)

    def test_stack_writable_below_top(self, pool):
        space, _ = load("hlt", pool, stack_pages=2)
        space.write_u64(STACK_TOP - 8, 1)
        space.write_u64(STACK_TOP - 2 * PAGE_SIZE, 2)
        with pytest.raises(NotMappedError):
            space.write_u64(STACK_TOP - 3 * PAGE_SIZE, 3)

    def test_heap_configured_but_unmapped(self, pool):
        space, _ = load("hlt", pool)
        assert space.brk_base == HEAP_BASE
        assert space.brk_end == HEAP_BASE
        with pytest.raises(NotMappedError):
            space.read(HEAP_BASE, 1)
        space.sbrk(PAGE_SIZE)
        space.write_u64(HEAP_BASE, 7)

    def test_mmap_base_configured(self, pool):
        space, _ = load("hlt", pool)
        assert space.mmap_next == MMAP_BASE

    def test_empty_program_loads(self, pool):
        space, regs = load_program(assemble(""), pool)
        assert space.mapped_pages() > 0

    def test_demand_zero_stack_costs_no_frames(self, pool):
        load("hlt", pool, stack_pages=64)
        # Text + data pages are materialised; the 64 stack pages are
        # demand-zero, so the pool holds far fewer frames than mappings.
        assert pool.live_frames < 20
