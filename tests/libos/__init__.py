"""Tests for the backtracking libOS."""
