"""Integration tests: guests exercising the syscall surface via the libOS."""

import pytest

from repro.cpu import assemble
from repro.interpose import PermissivePolicy, SoundMinimalPolicy
from repro.libos import HostFS, LibOS
from repro.libos.syscalls import (
    ContinueAction,
    ExitAction,
    GuessAction,
    GuessFailAction,
    KillAction,
    StrategyAction,
)
from repro.mem import FramePool
from repro.vmm import VCpu, VmExitReason


def run_guest(source, policy=None, hostfs=None, max_rounds=100):
    """Run a guest to its first non-Continue action."""
    libos = LibOS(policy=policy or PermissivePolicy(), hostfs=hostfs)
    pool = FramePool()
    state, regs = libos.load(assemble(source), pool)
    vcpu = VCpu()
    vcpu.regs.load(regs.frozen())
    vcpu.attach(state.space)
    for _ in range(max_rounds):
        exit_event = vcpu.enter(max_steps=100_000)
        action = libos.handle_exit(exit_event, vcpu, state)
        if not isinstance(action, (ContinueAction, StrategyAction)):
            return action, state, vcpu, libos
    raise AssertionError("guest never finished")


class TestWriteConsole:
    def test_stdout_capture(self):
        src = """
        .data
        msg: .asciz "hello\\n"
        .text
        mov rax, 1
        mov rdi, 1
        mov rsi, msg
        mov rdx, 6
        syscall
        mov rbx, rax     ; save write's return value
        mov rax, 60
        mov rdi, 0
        syscall
        """
        action, state, vcpu, _ = run_guest(src)
        assert isinstance(action, ExitAction)
        assert state.console.text == "hello\n"
        assert vcpu.regs["rbx"] == 6  # write returned byte count

    def test_stderr_also_captured(self):
        src = """
        .data
        msg: .ascii "E"
        .text
        mov rax, 1
        mov rdi, 2
        mov rsi, msg
        mov rdx, 1
        syscall
        hlt
        """
        action, state, _, _ = run_guest(src)
        assert state.console.text == "E"


class TestExit:
    def test_exit_status(self):
        action, _, _, _ = run_guest("mov rax, 60\nmov rdi, 42\nsyscall")
        assert isinstance(action, ExitAction)
        assert action.status == 42

    def test_hlt_exits_with_rax(self):
        action, _, _, _ = run_guest("mov rax, 7\nhlt")
        assert isinstance(action, ExitAction)
        assert action.status == 7


class TestGuessCalls:
    def test_guess_action(self):
        action, _, _, _ = run_guest("mov rax, 0x1000\nmov rdi, 4\nsyscall\nhlt")
        assert isinstance(action, GuessAction)
        assert action.n == 4
        assert action.hints is None

    def test_guess_fail_action(self):
        action, _, _, _ = run_guest("mov rax, 0x1001\nsyscall")
        assert isinstance(action, GuessFailAction)

    def test_strategy_action_sets_rax(self):
        src = """
        mov rax, 0x1002
        mov rdi, 1      ; BFS
        syscall
        mov rbx, rax    ; save return value
        mov rax, 60
        mov rdi, 0
        syscall
        """
        action, _, vcpu, _ = run_guest(src)
        assert isinstance(action, ExitAction)
        assert vcpu.regs["rbx"] == 1

    def test_bad_strategy_id_kills(self):
        action, _, _, _ = run_guest("mov rax, 0x1002\nmov rdi, 99\nsyscall\nhlt")
        assert isinstance(action, KillAction)

    def test_guess_with_hints(self):
        src = """
        .data
        hints: .quad 3, 1, 2
        .text
        mov rax, 0x1003
        mov rdi, 3
        mov rsi, hints
        syscall
        hlt
        """
        action, _, _, _ = run_guest(src)
        assert isinstance(action, GuessAction)
        assert action.hints == (3.0, 1.0, 2.0)


class TestBrk:
    def test_brk_query_and_grow(self):
        src = """
        mov rax, 12
        mov rdi, 0
        syscall          ; query -> current break
        mov rbx, rax
        mov rdi, rbx
        add rdi, 0x4000
        mov rax, 12
        syscall          ; grow by 16 KiB
        mov rcx, rax     ; new break
        mov r8, 123
        mov [rbx], r8    ; write into the new heap
        mov rax, [rbx]
        hlt
        """
        action, state, vcpu, _ = run_guest(src)
        assert isinstance(action, ExitAction)
        assert vcpu.regs.rax == 123
        assert vcpu.regs["rcx"] == vcpu.regs["rbx"] + 0x4000


class TestMmap:
    def test_mmap_returns_usable_region(self):
        src = """
        mov rax, 9       ; mmap(0, 8192)
        mov rdi, 0
        mov rsi, 8192
        syscall
        mov rbx, rax
        mov r8, 777
        mov [rbx], r8            ; write at both ends
        mov [rbx + 8184], r8
        mov rax, [rbx + 8184]
        hlt
        """
        action, state, vcpu, _ = run_guest(src)
        assert isinstance(action, ExitAction)
        assert vcpu.regs.rax == 777

    def test_mmap_regions_do_not_overlap(self):
        src = """
        mov rax, 9
        mov rdi, 0
        mov rsi, 4096
        syscall
        mov rbx, rax     ; first region
        mov rax, 9
        mov rdi, 0
        mov rsi, 4096
        syscall
        mov rcx, rax     ; second region
        sub rbx, rcx     ; distance
        mov rax, rbx
        hlt
        """
        action, _, vcpu, _ = run_guest(src)
        assert vcpu.regs.rax >= 4096

    def test_mmap_hint_rejected(self):
        src = """
        mov rax, 9
        mov rdi, 0x12345000  ; address hints unsupported -> -EINVAL
        mov rsi, 4096
        syscall
        hlt
        """
        action, _, vcpu, _ = run_guest(src)
        assert vcpu.regs.rax == (-22) & ((1 << 64) - 1)

    def test_munmap(self):
        src = """
        mov rax, 9
        mov rdi, 0
        mov rsi, 4096
        syscall
        mov rbx, rax
        mov rax, 11      ; munmap(region, 4096)
        mov rdi, rbx
        mov rsi, 4096
        syscall
        mov rcx, rax     ; 0 on success
        mov rax, [rbx]   ; faults: the mapping is gone
        hlt
        """
        action, _, _, libos = run_guest(src)
        assert isinstance(action, KillAction)
        assert libos.hard_faults == 1

    def test_mmap_survives_snapshot_fork(self):
        src = """
        mov rax, 9
        mov rdi, 0
        mov rsi, 4096
        syscall
        mov rbx, rax
        mov r8, 42
        mov [rbx], r8
        mov rax, 60
        mov rdi, 0
        syscall
        """
        action, state, vcpu, _ = run_guest(src)
        fork = state.space.fork_cow()
        base = vcpu.regs["rbx"]
        assert fork.read_u64(base) == 42
        assert fork.mmap_next == state.space.mmap_next


class TestFileSyscalls:
    HOSTFS = {"/input.txt": b"file-contents"}

    def test_open_read(self):
        src = """
        .data
        path: .asciz "/input.txt"
        buf:  .zero 64
        .text
        mov rax, 2
        mov rdi, path
        mov rsi, 0       ; O_RDONLY
        syscall
        mov rbx, rax     ; fd
        mov rax, 0       ; read
        mov rdi, rbx
        mov rsi, buf
        mov rdx, 4
        syscall          ; rax = 4
        mov rcx, buf
        mov rax, [rcx]   ; first 8 bytes (we only wrote 4)
        hlt
        """
        action, state, vcpu, _ = run_guest(src, hostfs=HostFS(self.HOSTFS))
        assert isinstance(action, ExitAction)
        assert (vcpu.regs.rax & 0xFFFFFFFF).to_bytes(4, "little") == b"file"

    def test_open_denied_by_policy(self):
        src = """
        .data
        path: .asciz "/dev/null"
        .text
        mov rax, 2
        mov rdi, path
        mov rsi, 0
        syscall
        hlt              ; rax = -EACCES
        """
        action, _, vcpu, _ = run_guest(src, policy=SoundMinimalPolicy())
        assert isinstance(action, ExitAction)
        assert vcpu.regs.rax == (-13) & ((1 << 64) - 1)

    def test_write_creates_private_file(self):
        src = """
        .data
        path: .asciz "/out.log"
        msg:  .ascii "LOG"
        .text
        mov rax, 2
        mov rdi, path
        mov rsi, 66      ; O_RDWR|O_CREAT
        syscall
        mov rbx, rax
        mov rax, 1
        mov rdi, rbx
        mov rsi, msg
        mov rdx, 3
        syscall
        mov rax, 60
        mov rdi, 0
        syscall
        """
        action, state, _, _ = run_guest(src)
        assert state.files.contents("/out.log") == b"LOG"


class TestFaultsAndPolicy:
    def test_bad_pointer_returns_efault(self):
        src = """
        mov rax, 1
        mov rdi, 1
        mov rsi, 0x900000000   ; unmapped
        mov rdx, 4
        syscall
        hlt
        """
        action, _, vcpu, _ = run_guest(src)
        assert isinstance(action, ExitAction)
        assert vcpu.regs.rax == (-14) & ((1 << 64) - 1)

    def test_unknown_syscall_enosys_permissive(self):
        action, _, vcpu, _ = run_guest("mov rax, 9999\nsyscall\nhlt")
        assert isinstance(action, ExitAction)
        assert vcpu.regs.rax == (-38) & ((1 << 64) - 1)

    def test_unknown_syscall_kills_under_sound_policy(self):
        action, _, _, _ = run_guest(
            "mov rax, 9999\nsyscall\nhlt", policy=SoundMinimalPolicy()
        )
        assert isinstance(action, KillAction)

    def test_guest_page_fault_kills(self):
        action, _, _, libos = run_guest("mov rbx, 0x900000000\nmov rax, [rbx]\nhlt")
        assert isinstance(action, KillAction)
        assert libos.hard_faults == 1

    def test_step_budget_kills(self):
        libos = LibOS(policy=PermissivePolicy())
        pool = FramePool()
        state, regs = libos.load(assemble("spin: jmp spin"), pool)
        vcpu = VCpu()
        vcpu.regs.load(regs.frozen())
        vcpu.attach(state.space)
        exit_event = vcpu.enter(max_steps=50)
        action = libos.handle_exit(exit_event, vcpu, state)
        assert isinstance(action, KillAction)


class TestSyscallCounting:
    def test_dispatcher_counts(self):
        src = "mov rax, 12\nmov rdi, 0\nsyscall\nmov rax, 60\nmov rdi, 0\nsyscall"
        action, _, _, libos = run_guest(src)
        assert libos.dispatcher.counts[12] == 1
        assert libos.dispatcher.counts[60] == 1
