"""Unit tests for per-path console capture."""

from repro.libos import Console


class TestConsole:
    def test_write_appends(self):
        c = Console()
        assert c.write(b"hello ") == 6
        c.write(b"world")
        assert c.data == b"hello world"
        assert c.text == "hello world"

    def test_empty_write_is_noop(self):
        c = Console()
        assert c.write(b"") == 0
        assert len(c) == 0

    def test_len(self):
        c = Console()
        c.write(b"abc")
        c.write(b"de")
        assert len(c) == 5

    def test_fork_shares_history(self):
        c = Console()
        c.write(b"common|")
        fork = c.fork_cow()
        assert fork.data == b"common|"

    def test_fork_diverges(self):
        c = Console()
        c.write(b"common|")
        a = c.fork_cow()
        b = c.fork_cow()
        a.write(b"A")
        b.write(b"B")
        c.write(b"parent")
        assert a.data == b"common|A"
        assert b.data == b"common|B"
        assert c.data == b"common|parent"

    def test_invalid_utf8_replaced(self):
        c = Console()
        c.write(b"\xff\xfe")
        assert "�" in c.text
