"""Test suite for the repro library."""
