"""Tests for the symbolic execution engine."""
