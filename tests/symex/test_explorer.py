"""Integration tests for the symbolic explorer and both backends."""

import pytest

from repro.symex import SnapshotBackend, SWCowBackend, SymbolicExplorer
from repro.symex.expr import SymVar
from repro.symex.programs import (
    INPUT_BASE,
    branch_tree,
    div_by_zero_bug,
    password_check,
    unreachable_bug,
)

BACKENDS = ["snapshot", "swcow"]


class TestPathEnumeration:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_branch_tree_path_count(self, backend):
        src, sym = branch_tree(4)
        result = SymbolicExplorer(src, sym, backend=backend).run()
        assert result.path_count == 16
        assert result.states_forked == 15

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_paths_have_distinct_witnesses(self, backend):
        src, sym = branch_tree(3)
        result = SymbolicExplorer(src, sym, backend=backend).run()
        witnesses = {tuple(sorted(p.example.items())) for p in result.paths}
        assert len(witnesses) == 8

    def test_exit_statuses_cover_all_values(self):
        src, sym = branch_tree(3)
        result = SymbolicExplorer(src, sym).run()
        assert sorted(p.status for p in result.paths) == list(range(8))

    def test_coverage_counts_branch_sites(self):
        src, sym = branch_tree(5)
        result = SymbolicExplorer(src, sym).run()
        assert len(result.coverage) == 5


class TestPasswordCheck:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_secret_recovered(self, backend):
        src, sym = password_check(b"ab")
        result = SymbolicExplorer(src, sym, backend=backend).run()
        accepting = [p for p in result.paths if p.status == 1]
        assert len(accepting) == 1
        assert accepting[0].example == {"pw0": ord("a"), "pw1": ord("b")}

    def test_rejecting_paths_one_per_prefix(self):
        src, sym = password_check(b"abc")
        result = SymbolicExplorer(src, sym).run()
        rejecting = [p for p in result.paths if p.status == 0]
        assert len(rejecting) == 3  # wrong at byte 0, 1 or 2


class TestBugFinding:
    def test_feasible_division_bug_found(self):
        src, sym = div_by_zero_bug()
        result = SymbolicExplorer(src, sym).run()
        assert len(result.bugs) == 1
        assert result.bugs[0].kind == "possible-divide-by-zero"
        assert result.bugs[0].example == {"x": 7}

    def test_unreachable_bug_not_reported(self):
        src, sym = unreachable_bug()
        result = SymbolicExplorer(src, sym).run()
        assert result.bugs == []
        assert result.infeasible_pruned >= 1


class TestBackendContrast:
    def test_snapshot_fork_is_constant_work(self):
        src, sym = branch_tree(5)
        small = SymbolicExplorer(src, sym, backend="snapshot").run()
        big = SymbolicExplorer(
            src, sym, backend="snapshot", ballast=64 * 4096
        ).run()
        # Fork work does not grow with state size.
        assert big.extra["fork_work"] == small.extra["fork_work"]

    def test_swcow_fork_grows_with_state(self):
        src, sym = branch_tree(5)
        small = SymbolicExplorer(src, sym, backend="swcow").run()
        big = SymbolicExplorer(src, sym, backend="swcow", ballast=64 * 4096).run()
        assert big.extra["fork_work"] > small.extra["fork_work"]

    def test_swcow_pays_per_write_instrumentation(self):
        src, sym = branch_tree(5, writes_per_level=3)
        sw = SymbolicExplorer(src, sym, backend="swcow").run()
        snap = SymbolicExplorer(src, sym, backend="snapshot").run()
        assert sw.extra["instrumented_writes"] > 0
        assert snap.extra["instrumented_writes"] == 0

    def test_both_backends_agree_on_results(self):
        src, sym = branch_tree(4, writes_per_level=2)
        a = SymbolicExplorer(src, sym, backend="snapshot").run()
        b = SymbolicExplorer(src, sym, backend="swcow").run()
        assert sorted(p.status for p in a.paths) == sorted(p.status for p in b.paths)


class TestBudgetsAndStrategies:
    def test_max_states_truncates(self):
        src, sym = branch_tree(8)
        result = SymbolicExplorer(src, sym, max_states=10).run()
        assert result.extra["states_evaluated"] <= 10
        assert result.path_count < 256

    def test_bfs_strategy(self):
        src, sym = branch_tree(3)
        result = SymbolicExplorer(src, sym, strategy="bfs").run()
        assert result.path_count == 8

    def test_coverage_strategy(self):
        src, sym = branch_tree(3)
        result = SymbolicExplorer(src, sym, strategy="coverage").run()
        assert result.path_count == 8

    def test_kill_on_symbolic_pointer_without_concretizer(self):
        src = """
        mov r8, 0x600000
        movb r9, [r8]
        mov rax, [r9]     ; symbolic address
        hlt
        """
        sym = [(INPUT_BASE, 1, SymVar("x", domain=4))]
        result = SymbolicExplorer(src, sym, concretize=False).run()
        assert result.kills == 1
        assert result.paths == []

    def test_symbolic_pointer_concretized(self):
        # [0x600000 + x] with x unconstrained: concretization binds x=0
        # and the load proceeds against the mapped data page.
        src = """
        mov r8, 0x600000
        movb r9, [r8]      ; r9 = symbolic x
        add r9, 0x600100
        movb rax, [r9]     ; symbolic address into mapped memory
        mov rdi, rax
        mov rax, 60
        syscall
        """
        sym = [(INPUT_BASE, 1, SymVar("x", domain=4))]
        explorer = SymbolicExplorer(src, sym, concretize=True)
        result = explorer.run()
        assert result.kills == 0
        assert len(result.paths) == 1
        assert explorer.machine.concretizations == 1
        # The binding constraint shows up in the path's witness.
        assert result.paths[0].example == {"x": 0}


class TestMemoryReclamation:
    def test_snapshot_backend_releases_frames(self):
        src, sym = branch_tree(5)
        backend = SnapshotBackend()
        SymbolicExplorer(src, sym, backend=backend).run()
        # All states released: only the shared zero frame may remain.
        assert backend.pool.live_frames <= 1

    def test_swcow_backend_releases_pages(self):
        src, sym = branch_tree(5)
        backend = SWCowBackend()
        SymbolicExplorer(src, sym, backend=backend).run()
        assert backend.footprint_pages() == 0
