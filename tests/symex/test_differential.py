"""Differential property: both symex backends agree on random trees."""

from hypothesis import given, settings, strategies as st

from repro.symex import SymbolicExplorer
from repro.symex.programs import branch_tree, password_check


@given(
    depth=st.integers(1, 5),
    writes=st.integers(0, 3),
    ballast_pages=st.integers(0, 16),
)
@settings(max_examples=15, deadline=None)
def test_backends_agree_on_random_trees(depth, writes, ballast_pages):
    src, sym = branch_tree(depth, writes_per_level=writes)
    snap = SymbolicExplorer(src, sym, backend="snapshot",
                            ballast=ballast_pages * 4096).run()
    sw = SymbolicExplorer(src, sym, backend="swcow",
                          ballast=ballast_pages * 4096).run()
    assert snap.path_count == sw.path_count == 2 ** depth
    assert sorted(p.status for p in snap.paths) == sorted(
        p.status for p in sw.paths
    )
    assert snap.coverage == sw.coverage


@given(secret=st.binary(min_size=1, max_size=4))
@settings(max_examples=15, deadline=None)
def test_password_always_recovered(secret):
    src, sym = password_check(secret)
    result = SymbolicExplorer(src, sym).run()
    accepting = [p for p in result.paths if p.status == 1]
    assert len(accepting) == 1
    recovered = bytes(
        accepting[0].example[f"pw{i}"] for i in range(len(secret))
    )
    assert recovered == secret
    # One rejecting path per distinguishable prefix position.
    assert result.path_count == len(secret) + 1
