"""Unit tests for symbolic expressions and the enumeration solver."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.symex.expr import (
    BinExpr,
    CmpExpr,
    Const,
    MASK64,
    NotExpr,
    SymVar,
    compare,
    negate,
    simplify,
)
from repro.symex.solver import PathConstraints, is_satisfiable, solve_assignment


class TestExpr:
    def test_const_folding(self):
        assert simplify("add", 2, 3) == 5
        assert simplify("sub", 0, 1) == MASK64

    def test_symbolic_builds_tree(self):
        x = SymVar("x")
        expr = simplify("add", x, 1)
        assert isinstance(expr, BinExpr)
        assert expr.evaluate({"x": 41}) == 42

    def test_compare_folds(self):
        assert compare("eq", 3, 3) == 1
        assert compare("ult", 5, 3) == 0

    def test_signed_comparison(self):
        x = SymVar("x")
        expr = compare("slt", simplify("sub", x, 1), 0)
        assert expr.evaluate({"x": 0}) == 1  # -1 < 0 signed
        assert expr.evaluate({"x": 2}) == 0

    def test_unsigned_comparison_wraps(self):
        expr = compare("ult", simplify("sub", SymVar("x"), 1), 10)
        assert expr.evaluate({"x": 0}) == 0  # 0-1 wraps to huge

    def test_negate_flips_comparison(self):
        x = SymVar("x")
        cond = compare("eq", x, 5)
        neg = negate(cond)
        assert isinstance(neg, CmpExpr) and neg.op == "ne"
        assert negate(neg).op == "eq"

    def test_negate_generic(self):
        inner = NotExpr(compare("eq", SymVar("x"), 0))
        assert negate(inner) is inner.inner

    def test_vars_collected(self):
        x, y = SymVar("x"), SymVar("y")
        expr = simplify("add", simplify("mul", x, 2), y)
        assert expr.vars() == {"x", "y"}

    def test_domain_validation(self):
        with pytest.raises(ValueError):
            SymVar("x", domain=1)


class TestSolver:
    def test_no_constraints_sat(self):
        assert solve_assignment([]) == {}

    def test_single_equality(self):
        x = SymVar("x", domain=256)
        model = solve_assignment([compare("eq", x, 77)])
        assert model == {"x": 77}

    def test_conjunction(self):
        x = SymVar("x", domain=16)
        constraints = [
            compare("ne", x, 0),
            compare("ult", x, 5),
            compare("ne", x, 3),
        ]
        model = solve_assignment(constraints)
        assert model["x"] in (1, 2, 4)

    def test_unsat(self):
        x = SymVar("x", domain=16)
        assert solve_assignment([compare("eq", x, 3), compare("eq", x, 4)]) is None
        assert not is_satisfiable([compare("eq", x, 3), compare("ne", x, 3)])

    def test_multi_variable(self):
        x = SymVar("x", domain=8)
        y = SymVar("y", domain=8)
        model = solve_assignment([compare("eq", simplify("add", x, y), 9)])
        assert (model["x"] + model["y"]) & MASK64 == 9

    def test_budget_enforced(self):
        wide = [compare("eq", SymVar(f"v{i}", domain=256), 255) for i in range(4)]
        with pytest.raises(RuntimeError, match="budget"):
            solve_assignment(wide, budget=10)

    def test_constraint_checked_early(self):
        # x's constraint prunes before y is even assigned: tiny budget OK.
        x = SymVar("a", domain=256)
        y = SymVar("b", domain=256)
        model = solve_assignment(
            [compare("eq", x, 200), compare("eq", y, 100)], budget=600
        )
        assert model == {"a": 200, "b": 100}


class TestPathConstraints:
    def test_extend_shares_prefix(self):
        x = SymVar("x")
        base = PathConstraints()
        a = base.extend(compare("eq", x, 1))
        b = base.extend(compare("eq", x, 2))
        assert len(base) == 0
        assert len(a) == len(b) == 1
        assert repr(base) == "true"


@given(
    vals=st.lists(st.integers(0, 255), min_size=2, max_size=2),
    op=st.sampled_from(["add", "sub", "mul", "and", "or", "xor"]),
)
@settings(max_examples=60, deadline=None)
def test_property_eval_matches_concrete(vals, op):
    a, b = vals
    x = SymVar("x")
    expr = simplify(op, x, b)
    assert expr.evaluate({"x": a}) == simplify(op, a, b)
