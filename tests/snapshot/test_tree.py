"""Unit tests for SnapshotTree bookkeeping and pruning."""

import pytest

from repro.mem import AddressSpace, PAGE_SIZE, Permission
from repro.snapshot import SnapshotManager, SnapshotTree

BASE = 0x40_0000


@pytest.fixture
def mgr():
    return SnapshotManager()


@pytest.fixture
def space(mgr):
    s = AddressSpace(mgr.pool)
    s.map_region(BASE, 4 * PAGE_SIZE, Permission.RW)
    return s


def build_chain(mgr, tree, space, depth):
    snaps = []
    parent = None
    for _ in range(depth):
        snap = mgr.take(space, parent=parent)
        tree.add(snap)
        snaps.append(snap)
        parent = snap
    return snaps


class TestStructure:
    def test_first_parentless_snapshot_is_root(self, mgr, space):
        tree = SnapshotTree(mgr)
        snap = mgr.take(space)
        tree.add(snap)
        assert tree.root is snap

    def test_duplicate_add_rejected(self, mgr, space):
        tree = SnapshotTree(mgr)
        snap = mgr.take(space)
        tree.add(snap)
        with pytest.raises(ValueError):
            tree.add(snap)

    def test_get_by_id(self, mgr, space):
        tree = SnapshotTree(mgr)
        snap = mgr.take(space)
        tree.add(snap)
        assert tree.get(snap.sid) is snap

    def test_walk_preorder(self, mgr, space):
        tree = SnapshotTree(mgr)
        root = mgr.take(space)
        a = mgr.take(space, parent=root)
        b = mgr.take(space, parent=root)
        aa = mgr.take(space, parent=a)
        for s in (root, a, b, aa):
            tree.add(s)
        assert [s.sid for s in tree.walk()] == [root.sid, a.sid, aa.sid, b.sid]

    def test_max_depth(self, mgr, space):
        tree = SnapshotTree(mgr)
        build_chain(mgr, tree, space, 5)
        assert tree.max_depth() == 4

    def test_empty_tree(self, mgr):
        tree = SnapshotTree(mgr)
        assert tree.max_depth() == -1
        assert len(tree) == 0
        assert list(tree.walk()) == []


class TestPinning:
    def test_unpin_to_zero_prunes_leaf(self, mgr, space):
        tree = SnapshotTree(mgr)
        snap = mgr.take(space)
        tree.add(snap)
        tree.pin(snap, 2)
        tree.unpin(snap)
        assert snap.alive
        tree.unpin(snap)
        assert not snap.alive
        assert len(tree) == 0

    def test_prune_cascades_to_parent(self, mgr, space):
        tree = SnapshotTree(mgr)
        parent = mgr.take(space)
        tree.add(parent)
        tree.pin(parent, 1)
        child = mgr.take(space, parent=parent)
        tree.add(child)
        tree.pin(child, 1)
        # Parent's only pending work was creating the child.
        tree.unpin(parent)
        assert parent.alive  # still has a live child
        tree.unpin(child)
        assert not child.alive
        assert not parent.alive  # cascaded

    def test_pinned_parent_survives_child_pruning(self, mgr, space):
        tree = SnapshotTree(mgr)
        parent = mgr.take(space)
        tree.add(parent)
        tree.pin(parent, 2)
        child = mgr.take(space, parent=parent)
        tree.add(child)
        tree.pin(child, 1)
        tree.unpin(child)
        assert not child.alive
        assert parent.alive
        tree.unpin(parent)
        tree.unpin(parent)
        assert not parent.alive

    def test_pruning_frees_frames(self, mgr, space):
        tree = SnapshotTree(mgr)
        space.write(BASE, b"x")
        snap = mgr.take(space)
        tree.add(snap)
        tree.pin(snap, 1)
        space.write(BASE, b"y")  # snapshot's page becomes private
        live = mgr.pool.live_frames
        tree.unpin(snap)
        assert mgr.pool.live_frames == live - 1


class TestStats:
    def test_total_private_pages(self, mgr, space):
        tree = SnapshotTree(mgr)
        space.write(BASE, b"a")
        snap = mgr.take(space)
        tree.add(snap)
        assert tree.total_private_pages() == 0
        space.write(BASE, b"b")
        assert tree.total_private_pages() == 1

    def test_apply(self, mgr, space):
        tree = SnapshotTree(mgr)
        build_chain(mgr, tree, space, 3)
        seen = []
        tree.apply(lambda s: seen.append(s.sid))
        assert len(seen) == 3


class TestDotExport:
    def test_dot_structure(self, mgr, space):
        tree = SnapshotTree(mgr)
        root = mgr.take(space)
        child = mgr.take(space, parent=root)
        tree.add(root)
        tree.add(child)
        dot = tree.to_dot()
        assert dot.startswith("digraph snapshots {")
        assert f"n{root.sid} -> n{child.sid};" in dot
        assert dot.count("[label=") == 2

    def test_pinned_nodes_highlighted(self, mgr, space):
        tree = SnapshotTree(mgr)
        snap = mgr.take(space)
        tree.add(snap)
        tree.pin(snap, 2)
        assert "fillcolor" in tree.to_dot()

    def test_custom_label(self, mgr, space):
        tree = SnapshotTree(mgr)
        tree.add(mgr.take(space))
        dot = tree.to_dot(label=lambda s: f"CUSTOM-{s.sid}")
        assert "CUSTOM-" in dot

    def test_dead_snapshots_excluded(self, mgr, space):
        tree = SnapshotTree(mgr)
        root = mgr.take(space)
        child = mgr.take(space, parent=root)
        tree.add(root)
        tree.add(child)
        mgr.discard(child)
        assert f"n{child.sid}" not in tree.to_dot()
