"""Stateful property tests for the snapshot tree.

Random interleavings of take / restore / write / discard must preserve
the core invariant: every live snapshot's image equals the byte model
captured when it was taken, no matter what happens around it.
"""

import pytest
from hypothesis import settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.mem import AddressSpace, PAGE_SIZE, Permission
from repro.snapshot import SnapshotManager

BASE = 0x40_0000
PAGES = 6
SIZE = PAGES * PAGE_SIZE


class SnapshotInvariants(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.manager = SnapshotManager()
        self.spaces = []          # mutable spaces: (space, model bytearray)
        self.snaps = []           # (snapshot, frozen model bytes)

    @initialize()
    def setup(self):
        space = AddressSpace(self.manager.pool, name="root")
        space.map_region(BASE, SIZE, Permission.RW)
        self.spaces = [(space, bytearray(SIZE))]
        self.snaps = []

    @rule(
        idx=st.integers(0, 63),
        offset=st.integers(0, SIZE - 1),
        data=st.binary(min_size=1, max_size=200),
    )
    def write(self, idx, offset, data):
        space, model = self.spaces[idx % len(self.spaces)]
        data = data[: SIZE - offset]
        space.write(BASE + offset, data)
        model[offset : offset + len(data)] = data

    @rule(idx=st.integers(0, 63))
    def take(self, idx):
        if len(self.snaps) >= 10:
            return
        space, model = self.spaces[idx % len(self.spaces)]
        snap = self.manager.take(space)
        self.snaps.append((snap, bytes(model)))

    @rule(idx=st.integers(0, 63))
    def restore(self, idx):
        if not self.snaps or len(self.spaces) >= 8:
            return
        snap, frozen = self.snaps[idx % len(self.snaps)]
        if not snap.alive:
            return
        _, space, _ = self.manager.restore(snap)
        self.spaces.append((space, bytearray(frozen)))

    @rule(idx=st.integers(0, 63))
    def discard(self, idx):
        if not self.snaps:
            return
        snap, _ = self.snaps[idx % len(self.snaps)]
        self.manager.discard(snap)

    @invariant()
    def live_snapshots_match_their_models(self):
        for snap, frozen in self.snaps:
            if not snap.alive:
                continue
            # Spot-check three pages per snapshot per step.
            for page in (0, PAGES // 2, PAGES - 1):
                off = page * PAGE_SIZE
                assert snap.space.read(BASE + off, PAGE_SIZE) == frozen[
                    off : off + PAGE_SIZE
                ]

    @invariant()
    def spaces_match_their_models(self):
        for space, model in self.spaces:
            off = (PAGES - 1) * PAGE_SIZE
            assert space.read(BASE + off, PAGE_SIZE) == bytes(
                model[off : off + PAGE_SIZE]
            )

    def teardown(self):
        for snap, _ in self.snaps:
            self.manager.discard(snap)
        for space, _ in self.spaces:
            space.free()
        assert self.manager.pool.live_frames <= 1  # zero frame only


SnapshotInvariants.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestSnapshotInvariants = SnapshotInvariants.TestCase
