"""Stateful property tests for the snapshot tree.

Random interleavings of take / restore / write / discard must preserve
the core invariants, no matter what happens around them:

* every live snapshot's image equals the byte model captured when it was
  taken (COW immutability);
* the lifecycle counters never drift: ``live`` equals the number of
  snapshots taken and not yet discarded, ``peak_live`` is its high-water
  mark, and ``taken == discarded + live`` at every step;
* the observability registry and the legacy ``SnapshotStats`` attributes
  are views of the *same* numbers (the PR-1 migration contract);
* a discarded snapshot can never be restored, and a double discard is a
  typed error — the Silhouette bug-8 shape (operating on freed snapshot
  state) must be impossible to reach silently.
"""

import pytest
from hypothesis import settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.core.errors import SnapshotDiscardedError
from repro.mem import AddressSpace, PAGE_SIZE, Permission
from repro.snapshot import SnapshotManager

BASE = 0x40_0000
PAGES = 6
SIZE = PAGES * PAGE_SIZE


class SnapshotInvariants(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.manager = SnapshotManager()
        self.spaces = []          # mutable spaces: (space, model bytearray)
        self.snaps = []           # (snapshot, frozen model bytes)

    @initialize()
    def setup(self):
        space = AddressSpace(self.manager.pool, name="root")
        space.map_region(BASE, SIZE, Permission.RW)
        self.spaces = [(space, bytearray(SIZE))]
        self.snaps = []

    @rule(
        idx=st.integers(0, 63),
        offset=st.integers(0, SIZE - 1),
        data=st.binary(min_size=1, max_size=200),
    )
    def write(self, idx, offset, data):
        space, model = self.spaces[idx % len(self.spaces)]
        data = data[: SIZE - offset]
        space.write(BASE + offset, data)
        model[offset : offset + len(data)] = data

    @rule(idx=st.integers(0, 63))
    def take(self, idx):
        if len(self.snaps) >= 10:
            return
        space, model = self.spaces[idx % len(self.spaces)]
        snap = self.manager.take(space)
        self.snaps.append((snap, bytes(model)))

    @rule(idx=st.integers(0, 63))
    def restore(self, idx):
        if not self.snaps or len(self.spaces) >= 8:
            return
        snap, frozen = self.snaps[idx % len(self.snaps)]
        if not snap.alive:
            return
        _, space, _ = self.manager.restore(snap)
        self.spaces.append((space, bytearray(frozen)))

    @rule(idx=st.integers(0, 63))
    def discard(self, idx):
        if not self.snaps:
            return
        snap, _ = self.snaps[idx % len(self.snaps)]
        if not snap.alive:
            return
        self.manager.discard(snap)

    # -- lifecycle misuse must be loud, never silent -------------------

    @rule(idx=st.integers(0, 63))
    def restore_from_discarded_is_refused(self, idx):
        """The Silhouette bug-8 shape: using freed snapshot state."""
        if not self.snaps:
            return
        snap, _ = self.snaps[idx % len(self.snaps)]
        if snap.alive:
            return
        before = self.manager.stats.restored
        with pytest.raises(SnapshotDiscardedError):
            self.manager.restore(snap)
        assert self.manager.stats.restored == before

    @rule(idx=st.integers(0, 63))
    def double_discard_is_refused(self, idx):
        if not self.snaps:
            return
        snap, _ = self.snaps[idx % len(self.snaps)]
        if snap.alive:
            return
        before = self.manager.stats.discarded
        with pytest.raises(SnapshotDiscardedError):
            self.manager.discard(snap)
        assert self.manager.stats.discarded == before

    # -- invariants ----------------------------------------------------

    @invariant()
    def live_snapshots_match_their_models(self):
        for snap, frozen in self.snaps:
            if not snap.alive:
                continue
            # Spot-check three pages per snapshot per step.
            for page in (0, PAGES // 2, PAGES - 1):
                off = page * PAGE_SIZE
                assert snap.space.read(BASE + off, PAGE_SIZE) == frozen[
                    off : off + PAGE_SIZE
                ]

    @invariant()
    def spaces_match_their_models(self):
        for space, model in self.spaces:
            off = (PAGES - 1) * PAGE_SIZE
            assert space.read(BASE + off, PAGE_SIZE) == bytes(
                model[off : off + PAGE_SIZE]
            )

    @invariant()
    def lifecycle_counters_never_drift(self):
        stats = self.manager.stats
        alive = sum(1 for snap, _ in self.snaps if snap.alive)
        assert stats.live == alive
        assert stats.taken == len(self.snaps)
        assert stats.taken == stats.discarded + stats.live
        assert stats.peak_live >= stats.live
        assert stats.restored >= 0

    @invariant()
    def registry_equals_legacy_stats(self):
        """The registry metrics ARE the legacy fields, not a copy."""
        stats = self.manager.stats
        metrics = self.manager.registry.as_dict()
        assert metrics["snapshot.taken"] == stats.taken
        assert metrics["snapshot.restored"] == stats.restored
        assert metrics["snapshot.discarded"] == stats.discarded
        assert metrics["snapshot.live"] == stats.live
        assert metrics["snapshot.peak_live"] == stats.peak_live
        # peak is maintained by the gauge itself, not by caller max().
        assert metrics["snapshot.live.peak"] == stats.peak_live

    def teardown(self):
        for snap, _ in self.snaps:
            if snap.alive:
                self.manager.discard(snap)
        for space, _ in self.spaces:
            space.free()
        assert self.manager.pool.live_frames <= 1  # zero frame only
        assert self.manager.stats.live == 0


SnapshotInvariants.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestSnapshotInvariants = SnapshotInvariants.TestCase
