"""Tests for lightweight immutable snapshots."""
