"""Unit tests for Snapshot and SnapshotManager."""

import pytest

from repro.core.errors import SnapshotDiscardedError
from repro.mem import AddressSpace, FramePool, PAGE_SIZE, Permission
from repro.snapshot import SnapshotManager

BASE = 0x40_0000


@pytest.fixture
def mgr():
    return SnapshotManager()


@pytest.fixture
def space(mgr):
    s = AddressSpace(mgr.pool, name="guest")
    s.map_region(BASE, 8 * PAGE_SIZE, Permission.RW)
    return s


class TestTake:
    def test_take_returns_live_snapshot(self, mgr, space):
        snap = mgr.take(space, regs={"rip": 1})
        assert snap.alive
        assert snap.regs == {"rip": 1}

    def test_take_is_frame_free(self, mgr, space):
        space.write(BASE, b"x" * PAGE_SIZE)
        live = mgr.pool.live_frames
        mgr.take(space)
        assert mgr.pool.live_frames == live

    def test_take_links_parent(self, mgr, space):
        parent = mgr.take(space)
        child = mgr.take(space, parent=parent)
        assert child.parent is parent
        assert child in parent.children
        assert child.depth == parent.depth + 1

    def test_foreign_pool_rejected(self, mgr):
        other = AddressSpace(FramePool())
        with pytest.raises(ValueError, match="pool"):
            mgr.take(other)

    def test_stats(self, mgr, space):
        mgr.take(space)
        mgr.take(space)
        assert mgr.stats.taken == 2
        assert mgr.stats.live == 2
        assert mgr.stats.peak_live == 2


class TestImmutability:
    def test_later_writes_invisible_to_snapshot(self, mgr, space):
        space.write(BASE, b"before")
        snap = mgr.take(space)
        space.write(BASE, b"AFTER!")
        assert snap.space.read(BASE, 6) == b"before"

    def test_restore_write_invisible_to_snapshot(self, mgr, space):
        space.write(BASE, b"before")
        snap = mgr.take(space)
        _, restored, _ = mgr.restore(snap)
        restored.write(BASE, b"child!")
        assert snap.space.read(BASE, 6) == b"before"

    def test_sibling_restores_isolated(self, mgr, space):
        snap = mgr.take(space)
        _, a, _ = mgr.restore(snap)
        _, b, _ = mgr.restore(snap)
        a.write(BASE, b"AAAA")
        b.write(BASE, b"BBBB")
        assert a.read(BASE, 4) == b"AAAA"
        assert b.read(BASE, 4) == b"BBBB"


class TestRestore:
    def test_restore_returns_regs_and_fork(self, mgr, space):
        space.write(BASE, b"state")
        snap = mgr.take(space, regs=(1, 2, 3), files="F")
        regs, restored, files = mgr.restore(snap)
        assert regs == (1, 2, 3)
        assert files == "F"
        assert restored.read(BASE, 5) == b"state"

    def test_restore_many_times(self, mgr, space):
        space.write(BASE, b"v0")
        snap = mgr.take(space)
        for _ in range(10):
            _, r, _ = mgr.restore(snap)
            assert r.read(BASE, 2) == b"v0"
        assert mgr.stats.restored == 10

    def test_restore_discarded_raises(self, mgr, space):
        snap = mgr.take(space)
        mgr.discard(snap)
        with pytest.raises(ValueError, match="discarded"):
            mgr.restore(snap)

    def test_restore_discarded_raises_typed_error(self, mgr, space):
        snap = mgr.take(space)
        mgr.discard(snap)
        with pytest.raises(SnapshotDiscardedError) as excinfo:
            mgr.restore(snap)
        assert excinfo.value.sid == snap.sid
        assert excinfo.value.operation == "restore"

    def test_restore_is_frame_free_until_write(self, mgr, space):
        space.write(BASE, b"x" * (4 * PAGE_SIZE))
        snap = mgr.take(space)
        live = mgr.pool.live_frames
        _, restored, _ = mgr.restore(snap)
        assert mgr.pool.live_frames == live
        restored.write(BASE, b"y")
        assert mgr.pool.live_frames == live + 1


class TestDiscard:
    def test_discard_frees_private_frames(self, mgr, space):
        snap = mgr.take(space)
        _, r, _ = mgr.restore(snap)
        r.write(BASE, b"dirty" * 100)
        child = mgr.take(r, parent=snap)
        live = mgr.pool.live_frames
        mgr.discard(child)
        # Child shared everything with r; nothing private to free.
        assert mgr.pool.live_frames == live
        r.free()

    def test_double_discard_raises_typed_error(self, mgr, space):
        snap = mgr.take(space)
        mgr.discard(snap)
        with pytest.raises(SnapshotDiscardedError) as excinfo:
            mgr.discard(snap)
        assert excinfo.value.sid == snap.sid
        assert excinfo.value.operation == "discard"
        # The failed discard must not corrupt the lifecycle counters.
        assert mgr.stats.discarded == 1
        assert mgr.stats.live == 0

    def test_double_discard_error_is_a_value_error(self, mgr, space):
        # Compatibility: pre-typed-error callers caught ValueError.
        snap = mgr.take(space)
        mgr.discard(snap)
        with pytest.raises(ValueError, match="discarded"):
            mgr.discard(snap)

    def test_discard_detaches_from_parent(self, mgr, space):
        parent = mgr.take(space)
        child = mgr.take(space, parent=parent)
        mgr.discard(child)
        assert child not in parent.children

    def test_children_survive_parent_discard(self, mgr, space):
        space.write(BASE, b"keep")
        parent = mgr.take(space)
        child = mgr.take(space, parent=parent)
        mgr.discard(parent)
        assert child.space.read(BASE, 4) == b"keep"

    def test_discard_subtree(self, mgr, space):
        root = mgr.take(space)
        a = mgr.take(space, parent=root)
        b = mgr.take(space, parent=root)
        aa = mgr.take(space, parent=a)
        count = mgr.discard_subtree(root)
        assert count == 4
        assert not any(s.alive for s in (root, a, b, aa))


class TestAncestry:
    def test_ancestry_path(self, mgr, space):
        root = mgr.take(space)
        mid = mgr.take(space, parent=root)
        leaf = mgr.take(space, parent=mid)
        assert leaf.ancestry() == [root, mid, leaf]

    def test_delta_pages_measures_divergence(self, mgr, space):
        parent = mgr.take(space)
        space.write(BASE, b"one page changed")
        child = mgr.take(space, parent=parent)
        assert child.delta_pages(parent) == 1
        assert parent.delta_pages(child) == 1
        # Identical snapshots have zero delta.
        twin = mgr.take(space)
        assert twin.delta_pages(child) == 0

    def test_delta_counts_unmapped_divergence(self, mgr, space):
        parent = mgr.take(space)
        space.unmap_region(BASE, PAGE_SIZE)
        child = mgr.take(space, parent=parent)
        assert child.delta_pages(parent) == 1

    def test_private_pages_counts_unshared(self, mgr, space):
        space.write(BASE, b"x")
        snap = mgr.take(space)
        # The snapshot shares its single dirty page with `space`.
        assert snap.private_pages() == 0
        space.write(BASE, b"y")  # space privatises; snapshot's copy now exclusive
        assert snap.private_pages() == 1
