"""Unit tests for the metrics registry primitives."""

import pytest

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    get_registry,
    metric_view,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_reset(self):
        c = Counter("x")
        c.inc(3)
        c.reset()
        assert c.value == 0


class TestGauge:
    def test_tracks_level_and_peak(self):
        g = Gauge("live")
        g.inc()
        g.inc()
        g.dec()
        assert g.value == 1
        assert g.peak == 2

    def test_set_moves_both_ways_peak_sticks(self):
        g = Gauge("live")
        g.set(7)
        g.set(3)
        assert g.value == 3
        assert g.peak == 7

    def test_reset_clears_peak(self):
        g = Gauge("live")
        g.set(7)
        g.reset()
        assert g.value == 0
        assert g.peak == 0


class TestTimer:
    def test_accumulates_recorded_durations(self):
        t = Timer("t")
        t.record(0.5)
        t.record(1.5)
        assert t.count == 2
        assert t.total_s == pytest.approx(2.0)
        assert t.mean_s == pytest.approx(1.0)

    def test_context_manager_uses_injected_clock(self):
        ticks = iter([10.0, 12.5])
        t = Timer("t", clock=lambda: next(ticks))
        with t.time():
            pass
        assert t.count == 1
        assert t.total_s == pytest.approx(2.5)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Timer("t").record(-1.0)

    def test_mean_of_empty_is_zero(self):
        assert Timer("t").mean_s == 0.0


class TestHistogram:
    def test_bucketing(self):
        h = Histogram("h", bounds=[1, 10, 100])
        for v in (0, 1, 5, 50, 1000):
            h.observe(v)
        assert h.counts == [2, 1, 1, 1]  # <=1, <=10, <=100, overflow
        assert h.count == 5
        assert h.mean == pytest.approx(1056 / 5)

    def test_bucket_pairs_labels(self):
        h = Histogram("h", bounds=[2, 4])
        h.observe(3)
        assert h.bucket_pairs() == [("<=2", 0), ("<=4", 1), (">4", 0)]

    def test_needs_sorted_nonempty_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=[])
        with pytest.raises(ValueError):
            Histogram("h", bounds=[3, 1])

    def test_reset(self):
        h = Histogram("h", bounds=[1])
        h.observe(0)
        h.reset()
        assert h.counts == [0, 0]
        assert h.count == 0


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.timer("t") is reg.timer("t")
        h = reg.histogram("h", bounds=[1, 2])
        assert reg.histogram("h") is h

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("a")
        with pytest.raises(TypeError, match="already registered"):
            reg.histogram("a", bounds=[1])

    def test_histogram_needs_bounds_first_time(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="bounds"):
            reg.histogram("h")
        reg.histogram("h", bounds=[1])
        with pytest.raises(ValueError, match="bounds"):
            reg.histogram("h", bounds=[1, 2])

    def test_enumeration(self):
        reg = MetricsRegistry("test")
        reg.counter("b")
        reg.counter("a")
        assert reg.names() == ["a", "b"]
        assert "a" in reg
        assert "zzz" not in reg
        assert len(reg) == 2
        assert {m.name for m in reg} == {"a", "b"}
        with pytest.raises(KeyError):
            reg.get("zzz")

    def test_as_dict_flattens_values(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(5)
        reg.timer("t").record(1.0)
        reg.histogram("h", bounds=[10]).observe(4)
        flat = reg.as_dict()
        assert flat["c"] == 3
        assert flat["g"] == 5
        assert flat["g.peak"] == 5
        assert flat["t"] == pytest.approx(1.0)
        assert flat["t.count"] == 1
        assert flat["h"] == pytest.approx(4)
        assert flat["h.count"] == 1

    def test_reset_keeps_registrations(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(2)
        reg.reset()
        assert reg.counter("c").value == 0
        assert reg.gauge("g").peak == 0
        assert len(reg) == 2

    def test_global_registry_is_a_singleton(self):
        assert get_registry() is get_registry()
        assert isinstance(get_registry(), MetricsRegistry)


class TestMetricView:
    class Stats:
        hits = metric_view("hits")
        level = metric_view("level")

        def __init__(self, registry):
            self._metrics = {
                "hits": registry.counter("hits"),
                "level": registry.gauge("level"),
            }

    def test_read_write_through_view(self):
        reg = MetricsRegistry()
        stats = self.Stats(reg)
        stats.hits += 2
        assert stats.hits == 2
        assert reg.get("hits").value == 2
        reg.get("hits").inc()
        assert stats.hits == 3

    def test_gauge_view_assignment_updates_peak(self):
        reg = MetricsRegistry()
        stats = self.Stats(reg)
        stats.level = 9
        stats.level = 1
        assert stats.level == 1
        assert reg.get("level").peak == 9

    def test_class_level_access_returns_descriptor(self):
        assert isinstance(self.Stats.hits, metric_view)
