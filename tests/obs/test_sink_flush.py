"""JsonlSink durability: GC/atexit flush, explicit flush vs SIGKILL.

A sink dropped without ``close()`` used to silently lose its buffered
tail — exactly the events a short CLI run or a crashing process wrote
last, which are the ones a post-mortem needs most.  These tests pin the
three rescue paths: garbage collection, interpreter exit, and explicit
``flush()`` (the only one that survives ``SIGKILL``).
"""

import gc
import json
import os
import signal
import subprocess
import sys
import textwrap

from repro.obs.trace import JsonlSink

EVENT = {"seq": 0, "ts": 0.0, "type": "search.guess", "n": 4}


def _lines(path):
    with open(path, encoding="utf-8") as fh:
        return [json.loads(line) for line in fh if line.strip()]


class TestInProcess:
    def test_garbage_collection_flushes(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        sink = JsonlSink(path)
        sink.write(EVENT)
        del sink
        gc.collect()
        assert _lines(path) == [EVENT]

    def test_explicit_flush_is_visible_immediately(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        sink = JsonlSink(path)
        sink.write(EVENT)
        sink.flush()
        # Readable through a second handle while the sink stays open.
        assert _lines(path) == [EVENT]
        sink.close()

    def test_autoflush_writes_through(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        sink = JsonlSink(path, autoflush=True)
        sink.write(EVENT)
        assert _lines(path) == [EVENT]
        sink.close()

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "t.jsonl"))
        sink.write(EVENT)
        sink.close()
        sink.close()  # second close (and later GC) must be a no-op

    def test_borrowed_handle_not_closed(self, tmp_path):
        with open(tmp_path / "t.jsonl", "w", encoding="utf-8") as fh:
            sink = JsonlSink(fh)
            sink.write(EVENT)
            sink.close()
            assert not fh.closed   # flushed, but ownership stays outside


def _run_child(code, path):
    """Run *code* (with PATH bound) in a fresh interpreter; return it."""
    src_dir = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(src_dir)
    return subprocess.run(
        [sys.executable, "-c",
         f"PATH = {path!r}\n" + textwrap.dedent(code)],
        env=env, timeout=60, capture_output=True,
    )


class TestSubprocess:
    def test_atexit_flushes_unclosed_sink(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        proc = _run_child(
            """
            from repro.obs.trace import JsonlSink
            sink = JsonlSink(PATH)
            sink.write({"seq": 0, "ts": 0.0, "type": "search.guess", "n": 4})
            # no close(): interpreter exit must rescue the buffer
            """,
            path,
        )
        assert proc.returncode == 0, proc.stderr.decode()
        assert _lines(path) == [EVENT]

    def test_flush_survives_sigkill(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        proc = _run_child(
            """
            import os, signal
            from repro.obs.trace import JsonlSink
            sink = JsonlSink(PATH)
            sink.write({"seq": 0, "ts": 0.0, "type": "search.guess", "n": 4})
            sink.flush()
            sink.write({"seq": 1, "ts": 0.0, "type": "search.guess", "n": 5})
            os.kill(os.getpid(), signal.SIGKILL)   # unflushed tail dies here
            """,
            path,
        )
        assert proc.returncode == -signal.SIGKILL
        # The flushed event survived the hard kill; no JSON corruption.
        lines = _lines(path)
        assert EVENT in lines
        assert all(line["type"] == "search.guess" for line in lines)
