"""Live-telemetry units: heartbeat codec, status fold, ring, exporters.

The heartbeat path crosses a process boundary (pickle today, possibly
JSON tomorrow — ``to_record`` is the wire-neutral form), so the codec
gets property-based round-trip coverage; the coordinator's fold gets the
order-independence and exactness properties the module docstrings
promise.
"""

import json
import urllib.error
import urllib.request

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.live import (
    FlightRecorder,
    HeartbeatEmitter,
    RingSink,
    StatusLogger,
    StatusServer,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.status import (
    HeartbeatRecord,
    RunStatus,
    render_prometheus,
    subtree_weight,
)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

_METRIC_NAMES = st.sampled_from([
    "parallel.guest_steps", "parallel.replay_steps",
    "mem.frames_copied", "parallel.worker_spills", "search.guesses",
])
_COUNTER_STATE = st.fixed_dictionaries(
    {"kind": st.just("counter"), "value": st.integers(0, 2**40)}
)
_STATE_DICTS = st.dictionaries(_METRIC_NAMES, _COUNTER_STATE, max_size=4)
_TASKS = st.one_of(
    st.none(), st.lists(st.integers(0, 9), max_size=6).map(tuple)
)
_EVENTS = st.lists(
    st.fixed_dictionaries({
        "seq": st.integers(0, 1000),
        "type": st.sampled_from(["search.guess", "task.begin"]),
        "n": st.integers(0, 8),
    }),
    max_size=4,
).map(tuple)

_RECORDS = st.builds(
    HeartbeatRecord,
    worker=st.integers(0, 7),
    seq=st.integers(0, 10_000),
    ts=st.floats(0, 1e9, allow_nan=False, allow_infinity=False),
    state=_STATE_DICTS,
    task=_TASKS,
    span=st.one_of(st.none(), st.integers(1, 64)),
    steps=st.integers(0, 2**40),
    cow_faults=st.integers(0, 2**20),
    spills=st.integers(0, 2**16),
    tasks_done=st.integers(0, 2**16),
    phase=st.sampled_from(["exploring", "idle", "failed"]),
    events=_EVENTS,
)


class _FakeConn:
    """Captures messages an emitter ships over the 'pipe'."""

    def __init__(self):
        self.sent = []

    def send(self, msg):
        self.sent.append(msg)


class _Clock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now


# ----------------------------------------------------------------------
# Heartbeat codec
# ----------------------------------------------------------------------


class TestHeartbeatCodec:
    @given(record=_RECORDS)
    @settings(max_examples=100, deadline=None)
    def test_round_trip_identity(self, record):
        # Encoding must survive an actual JSON hop, not just dict->dict.
        wire = json.loads(json.dumps(record.to_record()))
        assert HeartbeatRecord.from_record(wire) == record

    @given(record=_RECORDS)
    @settings(max_examples=50, deadline=None)
    def test_encoding_is_json_safe(self, record):
        encoded = record.to_record()
        json.dumps(encoded)  # must not raise
        assert encoded["task"] is None or isinstance(encoded["task"], list)
        assert isinstance(encoded["events"], list)

    def test_registry_state_round_trips_with_histograms(self):
        # Real registry state includes tuple bounds; the codec must
        # restore them as tuples so merge_state accepts the result.
        reg = MetricsRegistry("w")
        reg.counter("parallel.guest_steps").inc(7)
        reg.histogram("snapshot.page_delta", bounds=(1, 8, 64)).observe(3)
        record = HeartbeatRecord(worker=0, seq=0, ts=0.0,
                                 state=reg.state_dict())
        wire = json.loads(json.dumps(record.to_record()))
        back = HeartbeatRecord.from_record(wire)
        merged = MetricsRegistry("m")
        merged.merge_state(back.state)
        assert merged.as_dict() == reg.as_dict()


# ----------------------------------------------------------------------
# Emitter
# ----------------------------------------------------------------------


class TestHeartbeatEmitter:
    def test_seq_monotonic_and_rate_limited(self):
        clock = _Clock()
        conn = _FakeConn()
        reg = MetricsRegistry("w")
        emitter = HeartbeatEmitter(conn, 3, reg, interval=1.0, clock=clock)
        assert emitter.beat()           # first beat is immediate
        assert not emitter.beat()       # within the interval: suppressed
        clock.now += 1.5
        assert emitter.beat()
        assert emitter.beat(force=True)
        seqs = [msg[2].seq for msg in conn.sent]
        assert seqs == sorted(seqs) == list(range(len(seqs)))
        assert all(msg[0] == "hb" and msg[1] == 3 for msg in conn.sent)

    def test_lifetime_scalars_survive_registry_reset(self):
        clock = _Clock()
        conn = _FakeConn()
        reg = MetricsRegistry("w")
        emitter = HeartbeatEmitter(conn, 0, reg, interval=0.0, clock=clock)
        reg.counter("parallel.guest_steps").inc(100)
        emitter.beat()
        # Task result ships the state; the worker loop then resets.
        emitter.note_task_result(reg.state_dict())
        reg.reset()
        reg.counter("parallel.guest_steps").inc(50)
        emitter.beat()
        first, second = conn.sent[0][2], conn.sent[1][2]
        assert first.steps == 100
        assert second.steps == 150        # lifetime, not post-reset delta
        assert second.tasks_done == 1

    def test_ring_is_drained_into_the_record(self):
        ring = RingSink(capacity=2)
        ring.write({"type": "a", "seq": 0})
        ring.write({"type": "b", "seq": 1})
        ring.write({"type": "c", "seq": 2})  # evicts "a"
        conn = _FakeConn()
        emitter = HeartbeatEmitter(conn, 0, MetricsRegistry("w"),
                                   interval=0.0, ring=ring,
                                   clock=_Clock())
        emitter.beat()
        record = conn.sent[0][2]
        assert [e["type"] for e in record.events] == ["b", "c"]
        emitter.beat(force=True)
        assert conn.sent[1][2].events == ()   # drained, not re-shipped


# ----------------------------------------------------------------------
# RunStatus fold
# ----------------------------------------------------------------------


def _beat(worker, seq, steps, state=None):
    return HeartbeatRecord(worker=worker, seq=seq, ts=0.0,
                           state=state or {}, steps=steps)


class TestRunStatus:
    def test_progress_detection(self):
        status = RunStatus(workers=1, clock=_Clock())
        assert status.observe_heartbeat(_beat(0, 0, 10))
        assert not status.observe_heartbeat(_beat(0, 1, 10))  # no growth
        assert status.observe_heartbeat(_beat(0, 2, 25))
        assert not status.observe_heartbeat(_beat(0, 1, 999))  # stale seq

    @given(
        perm=st.permutations(list(range(6))),
        steps=st.lists(st.integers(0, 1000), min_size=6, max_size=6),
    )
    @settings(max_examples=50, deadline=None)
    def test_fold_is_order_independent(self, perm, steps):
        # Two workers x three heartbeats each, delivered in any order,
        # must produce the same final snapshot (stale-seq records are
        # ignored, latest-per-worker wins).
        records = []
        for i in range(6):
            worker, seq = i % 2, i // 2
            state = {"parallel.guest_steps":
                     {"kind": "counter", "value": steps[i]}}
            records.append(HeartbeatRecord(
                worker=worker, seq=seq, ts=0.0, state=state,
                steps=steps[i], tasks_done=seq))
        clock = _Clock()
        ordered, shuffled = RunStatus(2, clock=clock), RunStatus(2, clock=clock)
        for r in records:
            ordered.observe_heartbeat(r)
        for i in perm:
            shuffled.observe_heartbeat(records[i])
        snap_a, snap_b = ordered.snapshot(), shuffled.snapshot()
        # Heartbeat *count* tallies deliveries; everything else folds.
        for snap in (snap_a, snap_b):
            snap["throughput"].pop("heartbeats")
        assert snap_a == snap_b

    def test_committed_plus_inflight_then_exact_at_finalize(self):
        status = RunStatus(workers=1, clock=_Clock())
        committed = {"parallel.guest_steps":
                     {"kind": "counter", "value": 100}}
        status.refresh(dict(committed), pending=1, in_flight=1, solutions=0)
        inflight = {"parallel.guest_steps":
                    {"kind": "counter", "value": 40}}
        status.observe_heartbeat(_beat(0, 0, 140, state=inflight))
        assert status.snapshot()["throughput"]["steps_total"] == 140
        # The result commits; the uncommitted delta must not double.
        final = {"parallel.guest_steps":
                 {"kind": "counter", "value": 140}}
        status.on_task_complete(0, (4,), solutions=0, spilled=())
        status.finalize(final, pending=0, solutions=0)
        snap = status.snapshot()
        assert snap["throughput"]["steps_total"] == 140
        assert snap["metrics"]["parallel.guest_steps"] == 140
        assert snap["done"]

    def test_coverage_telescopes_to_one(self):
        status = RunStatus(workers=1, clock=_Clock())
        # Root spills two children (fanout 2), then both complete.
        status.on_task_complete(0, (), 0, spilled=[(2,), (2,)])
        status.on_task_complete(0, (2,), 0, spilled=())
        status.on_task_complete(0, (2,), 0, spilled=())
        status.finalize({}, pending=0, solutions=0)
        assert status.snapshot()["coverage"]["fraction"] == 1.0

    def test_subtree_weight(self):
        assert subtree_weight(()) == 1.0
        assert subtree_weight((4, 2)) == 0.125
        assert subtree_weight((0,)) == 1.0  # degenerate fanout ignored


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------


class TestFlightRecorder:
    def test_ring_capacity_and_dump(self, tmp_path):
        rec = FlightRecorder(str(tmp_path), capacity=3)
        rec.extend(1, [{"type": "e", "seq": i} for i in range(5)])
        path = rec.record_failure(1, "crash", detail="boom", task=[0, 2])
        lines = [json.loads(line)
                 for line in open(path, encoding="utf-8")]
        header, events = lines[0], lines[1:]
        assert header["type"] == "flight.header"
        assert header["worker"] == 1 and header["kind"] == "crash"
        assert header["events"] == 3
        assert [e["seq"] for e in events] == [2, 3, 4]  # newest 3
        assert rec.dumps == [path]

    def test_dump_with_empty_ring(self, tmp_path):
        rec = FlightRecorder(str(tmp_path))
        path = rec.record_failure(0, "timeout")
        lines = open(path, encoding="utf-8").readlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["events"] == 0


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------


class TestExporters:
    def test_prometheus_rendering(self):
        reg = MetricsRegistry("m")
        reg.counter("parallel.guest_steps").inc(42)
        reg.gauge("search.frontier").set(7)
        reg.histogram("snapshot.page_delta", bounds=(1, 8)).observe(3)
        status = RunStatus(workers=2, clock=_Clock())
        text = render_prometheus(reg, status.snapshot())
        assert "repro_parallel_guest_steps_total 42" in text
        assert "repro_search_frontier 7" in text
        assert 'repro_snapshot_page_delta_bucket{le="8"} 1' in text
        assert 'repro_snapshot_page_delta_bucket{le="+Inf"} 1' in text
        assert "repro_run_workers 2" in text

    def test_status_server_endpoints(self):
        status = RunStatus(workers=1)
        server = StatusServer(status, port=0)
        server.start()
        try:
            with urllib.request.urlopen(server.url + "/status") as resp:
                snap = json.loads(resp.read())
            assert snap["workers"] == 1
            with urllib.request.urlopen(server.url + "/metrics") as resp:
                assert resp.headers["Content-Type"].startswith("text/plain")
                body = resp.read().decode()
            assert "repro_run_workers 1" in body
            with urllib.request.urlopen(server.url + "/healthz") as resp:
                assert resp.read() == b"ok\n"
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(server.url + "/nope")
        finally:
            server.stop()

    def test_status_logger_writes_samples(self, tmp_path):
        status = RunStatus(workers=1)
        path = str(tmp_path / "status.jsonl")
        logger = StatusLogger(status, path, interval=10.0)
        logger.start()
        logger.sample()
        logger.stop()   # final sample on stop
        lines = [json.loads(line) for line in open(path, encoding="utf-8")]
        assert len(lines) >= 2
        assert all(line["type"] == "status.sample" for line in lines)
        assert all("tasks" in line and "throughput" in line
                   for line in lines)
