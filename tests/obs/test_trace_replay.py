"""Differential determinism: the same search traced twice yields the
same event stream modulo timestamps and volatile ids.

Snapshot sids and address-space asids come from process-global counters,
so two runs never match raw; :func:`normalize_events` remaps them by
first occurrence, which makes equality meaningful and still preserves
any real divergence (different guesses, different order, extra faults).
"""

from repro.core.machine import MachineEngine
from repro.core.parallel import ParallelMachineEngine
from repro.obs.trace import TRACER, normalize_events
from repro.workloads.nqueens import KNOWN_SOLUTION_COUNTS, nqueens_asm


def traced_run(make_engine, program):
    with TRACER.capture() as sink:
        result = make_engine().run(program)
    return result, sink.events


class TestMachineEngineReplay:
    def test_same_program_twice_gives_identical_streams(self):
        result_a, events_a = traced_run(MachineEngine, nqueens_asm(5))
        result_b, events_b = traced_run(MachineEngine, nqueens_asm(5))
        assert len(result_a.solutions) == KNOWN_SOLUTION_COUNTS[5]
        assert [s.value for s in result_a.solutions] == [
            s.value for s in result_b.solutions
        ]
        # Raw streams differ (global sid/asid counters advanced) ...
        assert events_a != events_b
        # ... but are identical once normalized.
        assert normalize_events(events_a) == normalize_events(events_b)

    def test_different_programs_diverge(self):
        _, events_a = traced_run(MachineEngine, nqueens_asm(4))
        _, events_b = traced_run(MachineEngine, nqueens_asm(5))
        assert normalize_events(events_a) != normalize_events(events_b)

    def test_strategy_changes_the_stream(self):
        # The n-queens guest picks its own strategy via
        # sys_guess_strategy, so pin the host's choice by disabling the
        # guest override.
        def host_controlled(name):
            engine = MachineEngine(strategy=name)
            engine.allow_guest_strategy = False
            return engine

        _, dfs = traced_run(lambda: host_controlled("dfs"), nqueens_asm(4))
        _, bfs = traced_run(lambda: host_controlled("bfs"), nqueens_asm(4))
        assert normalize_events(dfs) != normalize_events(bfs)


class TestParallelEngineReplay:
    def test_single_worker_parallel_run_is_deterministic(self):
        # With one worker the round-robin scheduler has no freedom, so
        # the full stream (schedules and preempts included) must replay.
        make = lambda: ParallelMachineEngine(workers=1, quantum=64)
        result_a, events_a = traced_run(make, nqueens_asm(4))
        _, events_b = traced_run(make, nqueens_asm(4))
        assert len(result_a.solutions) == KNOWN_SOLUTION_COUNTS[4]
        assert normalize_events(events_a) == normalize_events(events_b)

    def test_multi_worker_run_is_deterministic(self):
        # The parallel engine is simulated (lock-step rounds), so even
        # multi-worker schedules replay exactly.
        make = lambda: ParallelMachineEngine(workers=3, quantum=50)
        _, events_a = traced_run(make, nqueens_asm(4))
        _, events_b = traced_run(make, nqueens_asm(4))
        assert normalize_events(events_a) == normalize_events(events_b)
