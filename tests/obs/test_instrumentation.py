"""Every instrumented call site emits its events and keeps its counters.

These tests exercise the real subsystems (no mocks): address spaces take
real COW faults, engines run real guests, and the assertions tie the
event stream back to the registry counters the legacy stats views read.
"""

import pytest

from repro.core.machine import MachineEngine
from repro.core.parallel import ParallelMachineEngine
from repro.mem import AddressSpace, FramePool, PAGE_SIZE, Permission
from repro.obs import events as ev
from repro.obs.trace import TRACER
from repro.search import get_strategy
from repro.snapshot import SnapshotManager
from repro.snapshot.tree import SnapshotTree
from repro.workloads.nqueens import KNOWN_SOLUTION_COUNTS, nqueens_asm

BASE = 0x40_0000


def events_of(sink, etype):
    return [e for e in sink.events if e["type"] == etype]


class TestSnapshotEvents:
    def test_take_restore_discard_events(self):
        mgr = SnapshotManager()
        space = AddressSpace(mgr.pool)
        space.map_region(BASE, 4 * PAGE_SIZE, Permission.RW)
        with TRACER.capture() as sink:
            parent = mgr.take(space)
            child = mgr.take(space, parent=parent)
            _, restored, _ = mgr.restore(child)
            mgr.discard(child)
            mgr.discard(parent)

        takes = events_of(sink, ev.SNAPSHOT_TAKE)
        assert [e["sid"] for e in takes] == [parent.sid, child.sid]
        assert takes[0]["parent"] is None
        assert takes[1]["parent"] == parent.sid
        assert [e["live"] for e in takes] == [1, 2]

        (restore,) = events_of(sink, ev.SNAPSHOT_RESTORE)
        assert restore["sid"] == child.sid
        assert restore["asid"] == restored.asid

        discards = events_of(sink, ev.SNAPSHOT_DISCARD)
        assert [e["sid"] for e in discards] == [child.sid, parent.sid]
        assert [e["live"] for e in discards] == [1, 0]

    def test_event_counts_equal_registry_counters(self):
        mgr = SnapshotManager()
        space = AddressSpace(mgr.pool)
        space.map_region(BASE, PAGE_SIZE, Permission.RW)
        with TRACER.capture() as sink:
            snaps = [mgr.take(space) for _ in range(3)]
            for snap in snaps:
                mgr.restore(snap)
            mgr.discard(snaps[0])
        flat = mgr.registry.as_dict()
        assert len(events_of(sink, ev.SNAPSHOT_TAKE)) == flat["snapshot.taken"]
        assert len(events_of(sink, ev.SNAPSHOT_RESTORE)) == flat["snapshot.restored"]
        assert len(events_of(sink, ev.SNAPSHOT_DISCARD)) == flat["snapshot.discarded"]

    def test_tree_prune_emits_and_counts(self):
        mgr = SnapshotManager()
        tree = SnapshotTree(mgr)
        space = AddressSpace(mgr.pool)
        space.map_region(BASE, PAGE_SIZE, Permission.RW)
        with TRACER.capture() as sink:
            snap = mgr.take(space)
            tree.add(snap)
            tree.pin(snap, 1)
            tree.unpin(snap)  # zero pins, no children -> pruned
        (prune,) = events_of(sink, ev.SNAPSHOT_PRUNE)
        assert prune["sid"] == snap.sid
        assert prune["depth"] == 0
        assert mgr.registry.get("snapshot.pruned").value == 1
        # Pruning goes through discard, so both events appear.
        assert len(events_of(sink, ev.SNAPSHOT_DISCARD)) == 1


class TestMemEvents:
    def test_cow_and_zero_fault_kinds(self):
        pool = FramePool()
        space = AddressSpace(pool)
        with TRACER.capture() as sink:
            space.map_region(BASE, 2 * PAGE_SIZE, Permission.RW)
            space.write(BASE, b"first")          # zero-fill fault
            clone = space.fork_cow()
            space.write(BASE, b"again")          # COW fault (shared page)
        (alloc,) = events_of(sink, ev.MEM_PAGE_ALLOC)
        assert alloc["pages"] == 2
        assert alloc["kind"] == "zero"
        assert alloc["asid"] == space.asid
        faults = events_of(sink, ev.MEM_COW_FAULT)
        assert [f["kind"] for f in faults] == ["zero", "cow"]
        assert all(f["asid"] == space.asid for f in faults)
        assert space.faults.demand_zero_faults == 1
        assert space.faults.cow_faults == 1
        clone.free()
        space.free()

    def test_fault_events_match_fault_counters(self):
        pool = FramePool()
        space = AddressSpace(pool)
        space.map_region(BASE, 8 * PAGE_SIZE, Permission.RW)
        with TRACER.capture() as sink:
            for i in range(8):
                space.write(BASE + i * PAGE_SIZE, b"x")
        faults = events_of(sink, ev.MEM_COW_FAULT)
        assert len(faults) == space.faults.pages_copied == 8
        assert space.faults.registry.as_dict()["mem.pages_copied"] == 8

    def test_page_alloc_kinds(self):
        space = AddressSpace(FramePool())
        with TRACER.capture() as sink:
            space.map_region(BASE, PAGE_SIZE, Permission.RW, eager=True)
            space.map_region(BASE + PAGE_SIZE, PAGE_SIZE, data=b"hi")
        kinds = [e["kind"] for e in events_of(sink, ev.MEM_PAGE_ALLOC)]
        assert kinds == ["eager", "data"]


class TestEngineEvents:
    def test_machine_engine_emits_search_and_syscall_events(self):
        engine = MachineEngine()
        with TRACER.capture() as sink:
            result = engine.run(nqueens_asm(4))
        assert len(result.solutions) == KNOWN_SOLUTION_COUNTS[4]

        guesses = events_of(sink, ev.SEARCH_GUESS)
        fails = events_of(sink, ev.SEARCH_FAIL)
        solutions = events_of(sink, ev.SEARCH_SOLUTION)
        assert len(guesses) == result.stats.candidates
        assert len(fails) == result.stats.fails
        assert len(solutions) == result.stats.completions
        assert sum(e["n"] for e in guesses) == 4 * len(guesses)
        assert all(e["path"] and len(e["path"]) == e["depth"] for e in solutions)

        syscalls = events_of(sink, ev.LIBOS_SYSCALL)
        names = {e["name"] for e in syscalls}
        assert {"guess", "guess_fail", "write", "exit"} <= names
        by_name = sum(1 for e in syscalls if e["name"] == "guess")
        assert by_name == len(guesses)

        # Snapshot lifecycle balances: everything taken is discarded by
        # end-of-search pruning.
        takes = events_of(sink, ev.SNAPSHOT_TAKE)
        discards = events_of(sink, ev.SNAPSHOT_DISCARD)
        assert len(takes) == len(discards) == engine.manager.stats.taken

    def test_restore_events_correlate_with_cow_faults(self):
        engine = MachineEngine()
        with TRACER.capture() as sink:
            engine.run(nqueens_asm(4))
        restore_asids = {e["asid"] for e in events_of(sink, ev.SNAPSHOT_RESTORE)}
        fault_asids = {e["asid"] for e in events_of(sink, ev.MEM_COW_FAULT)}
        assert restore_asids, "expected restores in an n-queens run"
        # Every extension evaluation writes through a restored space, so
        # COW activity must be attributable to restores.
        assert fault_asids & restore_asids

    def test_engine_registry_spans_subsystems(self):
        engine = MachineEngine()
        result = engine.run(nqueens_asm(4))
        flat = engine.registry.as_dict()
        assert flat["snapshot.taken"] == engine.manager.stats.taken
        assert flat["search.fails"] == result.stats.fails
        assert flat["search.completions"] == result.stats.completions
        assert flat["snapshot.pruned"] > 0

    def test_parallel_engine_emits_schedule_and_preempt(self):
        engine = ParallelMachineEngine(workers=2, quantum=40)
        with TRACER.capture() as sink:
            result = engine.run(nqueens_asm(4))
        assert len(result.solutions) == KNOWN_SOLUTION_COUNTS[4]
        schedules = events_of(sink, ev.PARALLEL_SCHEDULE)
        preempts = events_of(sink, ev.PARALLEL_PREEMPT)
        assert {e["worker"] for e in schedules} == {0, 1}
        assert preempts, "quantum=40 must time-slice the boot extension"
        assert all(e["steps"] > 0 for e in preempts)
        # Every schedule is a restore of a candidate snapshot.
        assert len(schedules) == engine.manager.stats.restored

    def test_tracing_does_not_change_results(self):
        plain = MachineEngine().run(nqueens_asm(5))
        with TRACER.capture():
            traced = MachineEngine().run(nqueens_asm(5))
        assert [s.value for s in traced.solutions] == [
            s.value for s in plain.solutions
        ]
        assert traced.stats.evaluations == plain.stats.evaluations


class TestStatsViews:
    def test_strategy_stats_are_registry_views(self):
        strategy = get_strategy("dfs")
        stats = strategy.stats
        stats.added += 2
        stats.peak_frontier = 5
        flat = stats.registry.as_dict()
        assert flat["search.frontier.added"] == 2
        assert flat["search.frontier.peak_frontier"] == 5

    def test_search_stats_kwargs_still_work(self):
        from repro.core.result import SearchStats

        stats = SearchStats(candidates=3, evaluations=7, fails=2)
        assert stats.candidates == 3
        assert stats.registry.as_dict()["search.evaluations"] == 7
        stats.fails += 1
        assert stats.registry.get("search.fails").value == 3

    def test_fault_stats_snapshot_and_delta_still_work(self):
        from repro.mem.faults import FaultStats

        live = FaultStats()
        live.cow_faults += 3
        live.bytes_copied += 4096
        earlier = live.snapshot()
        live.cow_faults += 2
        delta = live.delta(earlier)
        assert delta.cow_faults == 2
        assert delta.bytes_copied == 0
        assert earlier.cow_faults == 3  # detached copy
