"""Tests for the search-tree profiler (repro.obs.profile).

The load-bearing property is the attribution contract: every engine
terminal event carries the run's decision prefix and retired
instructions, so the profile's total must equal the engine's
retired-instruction counter *exactly* — not approximately.
"""

import pytest

from repro.core.machine import MachineEngine
from repro.obs import events as ev
from repro.obs.profile import (
    build_profile,
    folded_stacks,
    hotspots,
    speedscope_document,
    summarize_profile,
)
from repro.obs.trace import TRACER
from repro.workloads.nqueens import nqueens_asm


def _event(seq, etype, **fields):
    fields.setdefault("ts", float(seq))
    return {"seq": seq, "type": etype, **fields}


# ----------------------------------------------------------------------
# Synthetic streams: tree shape and attribution mechanics
# ----------------------------------------------------------------------


class TestTreeReconstruction:
    def test_builds_nodes_and_ancestors_from_paths(self):
        events = [
            _event(0, ev.SEARCH_GUESS, n=2, depth=0, path=[], steps=10),
            _event(1, ev.SEARCH_FAIL, depth=2, path=[0, 1], steps=7),
        ]
        profile = build_profile(events)
        # [0,1] forces the [0] intermediate node into existence.
        assert set(profile.nodes) == {(), (0,), (0, 1)}
        assert profile.nodes[(0, 1)].parent is profile.nodes[(0,)]
        assert profile.nodes[(0,)].parent is profile.root

    def test_exclusive_and_cumulative_steps(self):
        events = [
            _event(0, ev.SEARCH_GUESS, n=2, depth=0, path=[], steps=10),
            _event(1, ev.SEARCH_FAIL, depth=1, path=[0], steps=5),
            _event(2, ev.SEARCH_SOLUTION, depth=1, path=[1], steps=8),
        ]
        profile = build_profile(events)
        assert profile.root.steps == 10
        assert profile.root.cum["steps"] == 23
        assert profile.total_steps == 23
        assert profile.nodes[(1,)].solutions == 1
        assert profile.root.cum["solutions"] == 1
        assert profile.root.fanout == 2

    def test_kill_and_spill_terminals_attribute_steps(self):
        # Kills and budget spills end runs too; losing their steps would
        # break exact attribution.
        events = [
            _event(0, ev.SEARCH_KILL, depth=1, path=[0], steps=100),
            _event(1, ev.SEARCH_SPILL, depth=1, n=3, path=[1], steps=40,
                   replay_steps=15),
        ]
        profile = build_profile(events)
        assert profile.total_steps == 140
        assert profile.total_replay_steps == 15
        assert profile.nodes[(0,)].kills == 1
        assert profile.nodes[(1,)].spills == 1

    def test_mem_costs_swept_to_next_terminal(self):
        events = [
            _event(0, ev.SNAPSHOT_RESTORE, sid=1, asid=10),
            _event(1, ev.MEM_COW_FAULT, asid=10, vpn=3, kind="cow"),
            _event(2, ev.MEM_COW_FAULT, asid=10, vpn=4, kind="zero"),
            _event(3, ev.MEM_PAGE_ALLOC, pages=6),
            _event(4, ev.SNAPSHOT_TAKE, sid=2),
            _event(5, ev.SEARCH_GUESS, n=2, depth=1, path=[0], steps=50),
            _event(6, ev.MEM_COW_FAULT, asid=11, vpn=5, kind="cow"),
            _event(7, ev.SEARCH_FAIL, depth=2, path=[0, 0], steps=20),
        ]
        profile = build_profile(events)
        first = profile.nodes[(0,)]
        assert first.cow_faults == 1
        assert first.zero_fills == 1
        assert first.pages_allocated == 6
        assert first.snapshots_taken == 1
        assert first.snapshots_restored == 1
        # The post-guess fault belongs to the *next* run, not the first.
        assert profile.nodes[(0, 0)].cow_faults == 1
        assert profile.root.cum["cow_faults"] == 2

    def test_wall_clock_starts_at_restore_not_previous_terminal(self):
        events = [
            _event(0, ev.SEARCH_FAIL, depth=1, path=[0], steps=5, ts=1.0),
            # 2 s of host-side strategy work must not be charged...
            _event(1, ev.SNAPSHOT_RESTORE, sid=1, asid=10, ts=3.0),
            _event(2, ev.SEARCH_FAIL, depth=1, path=[1], steps=5, ts=3.5),
        ]
        profile = build_profile(events)
        assert profile.nodes[(1,)].wall_s == pytest.approx(0.5)

    def test_merged_streams_swept_independently(self):
        # Two workers' segments interleaved in the merged order: worker
        # 1's faults must not leak into worker 0's terminal.
        events = [
            _event(0, ev.MEM_COW_FAULT, asid=1, vpn=1, kind="cow",
                   worker=0, wseq=0),
            _event(1, ev.MEM_COW_FAULT, asid=2, vpn=2, kind="cow",
                   worker=1, wseq=0),
            _event(2, ev.SEARCH_FAIL, depth=1, path=[0], steps=3,
                   worker=0, wseq=1),
            _event(3, ev.SEARCH_FAIL, depth=1, path=[1], steps=4,
                   worker=1, wseq=1),
        ]
        profile = build_profile(events)
        assert profile.nodes[(0,)].cow_faults == 1
        assert profile.nodes[(1,)].cow_faults == 1

    def test_task_events_build_worker_aggregates(self):
        events = [
            _event(0, ev.TASK_BEGIN, worker=0, task=[], depth=0,
                   wseq=0),
            _event(1, ev.TASK_END, worker=0, task=[], solutions=1,
                   spilled=2, explore_steps=30, replay_steps=10,
                   task_s=0.25, wseq=1),
            _event(2, ev.TASK_BEGIN, worker=0, task=[1], depth=1,
                   wseq=2),
            _event(3, ev.TASK_END, worker=0, task=[1], solutions=0,
                   spilled=0, explore_steps=20, replay_steps=20,
                   task_s=0.5, wseq=3),
        ]
        profile = build_profile(events)
        assert len(profile.tasks) == 2
        assert profile.tasks[0]["replay_share"] == pytest.approx(0.25)
        agg = profile.workers[0]
        assert agg["tasks"] == 2
        assert agg["solutions"] == 1
        assert agg["spilled"] == 2
        assert agg["explore_steps"] == 50
        assert agg["replay_steps"] == 30
        assert agg["busy_s"] == pytest.approx(0.75)

    def test_empty_stream(self):
        profile = build_profile([])
        assert profile.total_steps == 0
        assert len(profile.nodes) == 1
        assert folded_stacks(profile) == []
        summary = summarize_profile(profile)
        assert summary["critical_path"]["path"] == "root"


class TestCriticalPath:
    def test_most_expensive_solution_chain(self):
        events = [
            _event(0, ev.SEARCH_GUESS, n=2, depth=0, path=[], steps=10),
            _event(1, ev.SEARCH_GUESS, n=2, depth=1, path=[0], steps=100),
            _event(2, ev.SEARCH_SOLUTION, depth=2, path=[0, 1], steps=5),
            _event(3, ev.SEARCH_SOLUTION, depth=1, path=[1], steps=50),
        ]
        profile = build_profile(events)
        chain = profile.critical_path()
        assert [n.path for n in chain] == [(), (0,), (0, 1)]  # 115 > 60

    def test_falls_back_to_leaves_without_solutions(self):
        events = [
            _event(0, ev.SEARCH_GUESS, n=2, depth=0, path=[], steps=1),
            _event(1, ev.SEARCH_FAIL, depth=1, path=[0], steps=9),
            _event(2, ev.SEARCH_FAIL, depth=1, path=[1], steps=2),
        ]
        chain = build_profile(events).critical_path()
        assert [n.path for n in chain] == [(), (0,)]


class TestOutputs:
    @pytest.fixture()
    def small_profile(self):
        return build_profile([
            _event(0, ev.SEARCH_GUESS, n=2, depth=0, path=[], steps=10),
            _event(1, ev.SEARCH_FAIL, depth=1, path=[0], steps=5),
            _event(2, ev.SEARCH_SOLUTION, depth=1, path=[1], steps=8),
        ])

    def test_folded_stacks_sum_to_total(self, small_profile):
        lines = folded_stacks(small_profile)
        assert "root 10" in lines
        assert "root;1 8" in lines
        total = sum(int(line.rsplit(" ", 1)[1]) for line in lines)
        assert total == small_profile.total_steps == 23

    def test_folded_rejects_unknown_metric(self, small_profile):
        with pytest.raises(ValueError, match="unknown metric"):
            folded_stacks(small_profile, metric="nope")

    def test_speedscope_document_shape(self, small_profile):
        doc = speedscope_document(small_profile)
        assert doc["$schema"].startswith("https://www.speedscope.app")
        prof = doc["profiles"][0]
        assert prof["type"] == "sampled"
        assert len(prof["samples"]) == len(prof["weights"]) == 3
        assert sum(prof["weights"]) == 23.0
        # Every frame index referenced by a sample must exist.
        nframes = len(doc["shared"]["frames"])
        assert all(i < nframes for s in prof["samples"] for i in s)

    def test_hotspots_ranked_by_exclusive_metric(self, small_profile):
        rows = hotspots(small_profile, top=2)
        assert [r["path"] for r in rows] == ["root", "root;1"]
        assert rows[0]["subtree_steps"] == 23
        assert rows[1]["outcome"] == "solution"


# ----------------------------------------------------------------------
# Differential: profile totals vs engine counters on a real run
# ----------------------------------------------------------------------


class TestDifferential:
    def test_sequential_profile_matches_engine_counters_exactly(self):
        engine = MachineEngine()
        with TRACER.capture() as sink:
            result = engine.run(nqueens_asm(5))
        profile = build_profile(sink.events)

        # The contract: each retired instruction belongs to exactly one
        # run, each run ends in exactly one terminal event, so the sum
        # of attributed steps IS the retired-instruction counter.
        assert profile.total_steps == result.stats.extra["guest_instructions"]
        assert profile.total_steps > 0
        assert profile.total_replay_steps == 0  # no replay in snapshots

        assert profile.root.cum["solutions"] == len(result.solutions) == 10
        assert profile.root.cum["snapshots_taken"] == \
            result.stats.extra["snapshots_taken"]
        assert profile.root.cum["snapshots_restored"] == \
            result.stats.extra["snapshots_restored"]

        folded_total = sum(
            int(line.rsplit(" ", 1)[1]) for line in folded_stacks(profile)
        )
        assert folded_total == profile.total_steps

    def test_simulated_parallel_profile_steps_exact(self):
        from repro.core.parallel import ParallelMachineEngine

        engine = ParallelMachineEngine(workers=3, quantum=64)
        with TRACER.capture() as sink:
            result = engine.run(nqueens_asm(4))
        profile = build_profile(sink.events)
        # Steps ride on the terminal events themselves, so attribution
        # stays exact even though the simulated workers interleave in
        # one process stream.
        assert profile.total_steps == result.stats.extra["guest_instructions"]
        assert profile.root.cum["solutions"] == len(result.solutions) == 2
