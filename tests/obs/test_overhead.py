"""Disabled-path overhead regression tests.

The observability layer must be cheap enough to leave compiled into hot
paths: a registry counter is one attribute add, and a disabled tracer is
one attribute check.  These tests pin that with *generous* constant
factors (interpreter timing noise on shared CI machines is large) —
they exist to catch an accidental O(sinks) loop or dict build on the
disabled path, not to benchmark.
"""

import time

from repro.obs import events as ev
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import Tracer

N = 100_000


def best_of(repeats, fn):
    """Best-of-N wall time — the standard anti-noise timing idiom."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


class TestCounterOverhead:
    def test_counter_increments_within_constant_factor_of_plain_loop(self):
        counter = MetricsRegistry().counter("hot")

        def plain():
            x = 0
            for _ in range(N):
                x += 1
            return x

        def instrumented():
            for _ in range(N):
                counter.inc()

        baseline = best_of(3, plain)
        timed = best_of(3, instrumented)
        # A method call per iteration costs a few times a bare add;
        # 50x headroom keeps this deterministic under CI noise while
        # still failing loudly if inc() ever grows real work.
        assert timed < baseline * 50, (
            f"counter loop took {timed:.4f}s vs plain {baseline:.4f}s"
        )
        assert counter.value == 3 * N


class TestDisabledTracerOverhead:
    def test_guarded_emit_is_near_free(self):
        tracer = Tracer()
        assert not tracer.enabled

        def plain():
            x = 0
            for _ in range(N):
                x += 1
            return x

        def guarded():
            # The idiom every hot call site uses: check the flag, never
            # build the kwargs dict when tracing is off.
            for i in range(N):
                if tracer.enabled:
                    tracer.emit(ev.SEARCH_FAIL, depth=i)

        baseline = best_of(3, plain)
        timed = best_of(3, guarded)
        assert timed < baseline * 50, (
            f"guarded emit loop took {timed:.4f}s vs plain {baseline:.4f}s"
        )

    def test_unguarded_disabled_emit_is_bounded(self):
        # Even without the call-site guard, emit() must return after one
        # flag check (plus the kwargs dict Python builds for the call).
        tracer = Tracer()

        def plain():
            x = 0
            for _ in range(N):
                x += 1
            return x

        def unguarded():
            for i in range(N):
                tracer.emit(ev.SEARCH_FAIL, depth=i)

        baseline = best_of(3, plain)
        timed = best_of(3, unguarded)
        assert timed < baseline * 100, (
            f"disabled emit loop took {timed:.4f}s vs plain {baseline:.4f}s"
        )

    def test_disabled_emit_allocates_no_events(self):
        tracer = Tracer()
        tracer.emit(ev.SEARCH_FAIL, depth=0)
        with tracer.capture() as sink:
            pass
        assert sink.events == []  # nothing leaked in from before attach
