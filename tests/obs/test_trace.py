"""Unit tests for the tracer, sinks, schema validation and normalization."""

import io
import json

import pytest

from repro.obs import events as ev
from repro.obs.events import EVENT_FIELDS, EventSchemaError, validate_event
from repro.obs.trace import (
    JsonlSink,
    MemorySink,
    TRACER,
    Tracer,
    get_tracer,
    normalize_events,
)


def make_tracer():
    """A tracer with a deterministic clock (0.0, 1.0, 2.0, ...)."""
    ticks = iter(range(10_000))
    return Tracer(clock=lambda: float(next(ticks)))


class TestEmission:
    def test_disabled_tracer_emits_nothing(self):
        tracer = make_tracer()
        tracer.emit(ev.SEARCH_FAIL, depth=1)
        sink = MemorySink()
        tracer.attach(sink)
        tracer.emit(ev.SEARCH_FAIL, depth=2)
        tracer.detach(sink)
        tracer.emit(ev.SEARCH_FAIL, depth=3)
        assert [e["depth"] for e in sink.events] == [2]

    def test_event_shape(self):
        tracer = make_tracer()
        with tracer.capture() as sink:
            tracer.emit(ev.SEARCH_GUESS, n=4, depth=2)
        (event,) = sink.events
        assert event["type"] == ev.SEARCH_GUESS
        assert event["n"] == 4
        assert event["depth"] == 2
        assert isinstance(event["seq"], int)
        assert isinstance(event["ts"], float)

    def test_seq_and_ts_are_monotonic(self):
        tracer = make_tracer()
        with tracer.capture() as sink:
            for i in range(5):
                tracer.emit(ev.SEARCH_FAIL, depth=i)
        seqs = [e["seq"] for e in sink.events]
        tss = [e["ts"] for e in sink.events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 5
        assert tss == sorted(tss)

    def test_multiple_sinks_see_every_event(self):
        tracer = make_tracer()
        a, b = MemorySink(), MemorySink()
        tracer.attach(a)
        tracer.attach(b)
        tracer.emit(ev.SEARCH_FAIL, depth=0)
        tracer.detach(a)
        tracer.emit(ev.SEARCH_FAIL, depth=1)
        tracer.detach(b)
        assert len(a.events) == 1
        assert len(b.events) == 2
        assert not tracer.enabled

    def test_detach_of_unknown_sink_is_harmless(self):
        tracer = make_tracer()
        tracer.detach(MemorySink())
        assert not tracer.enabled

    def test_capture_detaches_on_error(self):
        tracer = make_tracer()
        with pytest.raises(RuntimeError):
            with tracer.capture():
                raise RuntimeError("boom")
        assert not tracer.enabled

    def test_global_tracer_exists_and_is_disabled_by_default(self):
        assert get_tracer() is TRACER
        assert not TRACER.enabled


class TestSchema:
    def test_every_known_type_has_fields(self):
        for etype, fields in EVENT_FIELDS.items():
            assert "." in etype
            assert isinstance(fields, tuple)

    def test_validate_accepts_complete_fields(self):
        validate_event(ev.SNAPSHOT_TAKE, {"sid": 1, "parent": None, "live": 1})

    def test_validate_rejects_missing_fields(self):
        with pytest.raises(EventSchemaError, match="missing required"):
            validate_event(ev.SNAPSHOT_TAKE, {"sid": 1})

    def test_unknown_types_pass_through(self):
        validate_event("custom.thing", {})

    def test_emit_validates_known_types(self):
        tracer = make_tracer()
        with tracer.capture():
            with pytest.raises(EventSchemaError):
                tracer.emit(ev.MEM_COW_FAULT, asid=1)  # vpn, kind missing

    def test_extra_fields_allowed(self):
        tracer = make_tracer()
        with tracer.capture() as sink:
            tracer.emit(ev.SEARCH_FAIL, depth=1, worker=3)
        assert sink.events[0]["worker"] == 3


class TestJsonlSink:
    def test_round_trip_via_file(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = make_tracer()
        with tracer.to_file(path):
            tracer.emit(ev.SNAPSHOT_TAKE, sid=1, parent=None, live=1)
            tracer.emit(ev.SNAPSHOT_RESTORE, sid=1, asid=7)
        lines = [
            json.loads(line)
            for line in open(path, encoding="utf-8")
            if line.strip()
        ]
        assert [e["type"] for e in lines] == [
            ev.SNAPSHOT_TAKE, ev.SNAPSHOT_RESTORE,
        ]
        assert lines[0]["parent"] is None
        assert lines[1]["asid"] == 7

    def test_write_counts_events(self, tmp_path):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        sink.write({"seq": 0, "ts": 0.0, "type": "x"})
        sink.close()
        assert sink.written == 1
        assert json.loads(buffer.getvalue()) == {"seq": 0, "ts": 0.0, "type": "x"}

    def test_unjsonable_values_are_coerced(self, tmp_path):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        sink.write({"type": "x", "blob": b"bytes", "who": {3, 1, 2}})
        decoded = json.loads(buffer.getvalue())
        assert decoded["blob"] == "bytes"
        assert decoded["who"] == [1, 2, 3]


class TestNormalize:
    def test_strips_ts_and_rebases_seq(self):
        events = [
            {"seq": 40, "ts": 1.25, "type": "search.fail", "depth": 0},
            {"seq": 41, "ts": 2.50, "type": "search.fail", "depth": 1},
        ]
        normalized = normalize_events(events)
        assert normalized == [
            {"seq": 0, "type": "search.fail", "depth": 0},
            {"seq": 1, "type": "search.fail", "depth": 1},
        ]

    def test_remaps_ids_by_first_occurrence(self):
        run_a = [
            {"seq": 0, "type": "snapshot.take", "sid": 17, "parent": None, "live": 1},
            {"seq": 1, "type": "snapshot.take", "sid": 19, "parent": 17, "live": 2},
            {"seq": 2, "type": "snapshot.restore", "sid": 19, "asid": 100},
        ]
        run_b = [
            {"seq": 7, "type": "snapshot.take", "sid": 31, "parent": None, "live": 1},
            {"seq": 8, "type": "snapshot.take", "sid": 35, "parent": 31, "live": 2},
            {"seq": 9, "type": "snapshot.restore", "sid": 35, "asid": 205},
        ]
        assert normalize_events(run_a) == normalize_events(run_b)

    def test_divergence_survives_normalization(self):
        run_a = [{"seq": 0, "type": "search.guess", "n": 4, "depth": 0}]
        run_b = [{"seq": 0, "type": "search.guess", "n": 5, "depth": 0}]
        assert normalize_events(run_a) != normalize_events(run_b)

    def test_does_not_mutate_input(self):
        event = {"seq": 3, "ts": 0.5, "type": "search.fail", "depth": 0}
        normalize_events([event])
        assert event["ts"] == 0.5
        assert event["seq"] == 3
