"""Property-based tests: COW address spaces behave like independent
byte-array copies, and frame accounting never leaks.

The model: every logical address space (original or fork) is simulated by
a plain ``bytearray``.  After any interleaving of writes and forks, every
space must read back exactly its own model's bytes — i.e. copy-on-write is
observationally equivalent to eager copying.
"""

import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.mem import AddressSpace, FramePool, PAGE_SIZE, Permission

BASE = 0x40_0000
REGION_PAGES = 8
REGION_SIZE = REGION_PAGES * PAGE_SIZE


class CowEquivalence(RuleBasedStateMachine):
    """Random writes/forks/frees over a family of spaces vs byte models."""

    def __init__(self):
        super().__init__()
        self.pool = FramePool()
        self.spaces = []
        self.models = []

    @initialize()
    def setup(self):
        space = AddressSpace(self.pool, name="root")
        space.map_region(BASE, REGION_SIZE, Permission.RW)
        self.spaces = [space]
        self.models = [bytearray(REGION_SIZE)]

    @rule(
        idx=st.integers(min_value=0, max_value=63),
        offset=st.integers(min_value=0, max_value=REGION_SIZE - 1),
        data=st.binary(min_size=1, max_size=300),
    )
    def write(self, idx, offset, data):
        i = idx % len(self.spaces)
        if self.spaces[i] is None:
            return
        data = data[: REGION_SIZE - offset]
        self.spaces[i].write(BASE + offset, data)
        self.models[i][offset : offset + len(data)] = data

    @rule(idx=st.integers(min_value=0, max_value=63))
    def fork(self, idx):
        if len(self.spaces) >= 12:
            return
        i = idx % len(self.spaces)
        if self.spaces[i] is None:
            return
        self.spaces.append(self.spaces[i].fork_cow())
        self.models.append(bytearray(self.models[i]))

    @rule(idx=st.integers(min_value=0, max_value=63))
    def free(self, idx):
        i = idx % len(self.spaces)
        live = [s for s in self.spaces if s is not None]
        if self.spaces[i] is None or len(live) <= 1:
            return
        self.spaces[i].free()
        self.spaces[i] = None
        self.models[i] = None

    @invariant()
    def reads_match_models(self):
        for space, model in zip(self.spaces, self.models):
            if space is None:
                continue
            # Check a few whole pages rather than the full region per step.
            for page in (0, REGION_PAGES // 2, REGION_PAGES - 1):
                off = page * PAGE_SIZE
                assert space.read(BASE + off, PAGE_SIZE) == bytes(
                    model[off : off + PAGE_SIZE]
                )

    @invariant()
    def frame_accounting_sane(self):
        live = self.pool.live_frames
        # Upper bound: one zero frame + one private frame per page per space.
        spaces = sum(1 for s in self.spaces if s is not None)
        assert 0 <= live <= 1 + spaces * REGION_PAGES

    def teardown(self):
        for space in self.spaces:
            if space is not None:
                space.free()
        # Only the shared demand-zero frame may remain.
        assert self.pool.live_frames <= 1


CowEquivalence.TestCase.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)
TestCowEquivalence = CowEquivalence.TestCase


@given(
    writes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=REGION_SIZE - 9),
            st.integers(min_value=0, max_value=2**64 - 1),
        ),
        max_size=40,
    )
)
@settings(max_examples=50, deadline=None)
def test_u64_roundtrip_many(writes):
    pool = FramePool()
    space = AddressSpace(pool)
    space.map_region(BASE, REGION_SIZE, Permission.RW)
    expected = {}
    for offset, value in writes:
        space.write_u64(BASE + offset, value)
        expected[offset] = value
    # Later overlapping writes win; only check non-overlapped survivors.
    for offset, value in writes:
        if all(o == offset or abs(o - offset) >= 8 for o in expected):
            assert space.read_u64(BASE + offset) == expected[offset]


@given(n_forks=st.integers(min_value=1, max_value=8), seed=st.integers(0, 2**16))
@settings(max_examples=25, deadline=None)
def test_sibling_isolation(n_forks, seed):
    """Each sibling fork writes its own tag; no sibling sees another's."""
    import random

    rng = random.Random(seed)
    pool = FramePool()
    parent = AddressSpace(pool)
    parent.map_region(BASE, REGION_SIZE, Permission.RW)
    parent.write(BASE, b"\x00" * 64)
    kids = [parent.fork_cow() for _ in range(n_forks)]
    offsets = [rng.randrange(REGION_SIZE - 1) for _ in kids]
    for i, (kid, off) in enumerate(zip(kids, offsets)):
        kid.write_u8(BASE + off, i + 1)
    for i, (kid, off) in enumerate(zip(kids, offsets)):
        assert kid.read_u8(BASE + off) == i + 1
        assert parent.read_u8(BASE + off) == 0
