"""Property-based COW invariants for the persistent page table.

Hypothesis drives random interleavings of map/unmap/clone/make_private/
set_perms/free across several page tables sharing one frame pool, and
checks the conservation laws the snapshot substrate depends on:

* **Frame conservation** — the pool's live count always equals the
  number of distinct frames reachable from the live tables; no leaks,
  no premature frees.
* **Privacy bound** — a table can never have more private pages than
  mapped pages.
* **Exclusivity after a COW fault** — ``make_private`` leaves the
  faulted page on a refcount-1 frame.
* **Clean teardown** — freeing every table returns the pool to zero
  live frames with allocated == freed.
"""

from hypothesis import given, settings, strategies as st

from repro.mem.frames import FramePool
from repro.mem.pagetable import PageTable, Permission

#: Virtual pages spread across distinct radix subtrees (same leaf node,
#: sibling leaves, and different level-1/2/3 ancestors) so structural
#: sharing and node COW both get exercised.
VPNS = [0, 1, 2, 511, 512, 513, 1 << 18, (1 << 18) + 1, 1 << 27]

MAX_TABLES = 5

op_strategy = st.lists(
    st.tuples(
        st.integers(0, 5),          # operation selector
        st.integers(0, 31),         # table selector (mod live tables)
        st.integers(0, len(VPNS) - 1),  # vpn selector
    ),
    min_size=1,
    max_size=60,
)


def reachable_frames(tables):
    return {id(pte.frame) for table in tables for _, pte in table.items()}


def check_invariants(pool, tables):
    assert pool.live_frames == len(reachable_frames(tables))
    assert pool.stats.allocated - pool.stats.freed == pool.live_frames
    for table in tables:
        assert table.private_entry_count() <= table.entry_count()


def apply_op(pool, tables, op, t_sel, v_sel):
    if not tables:
        tables.append(PageTable(pool))
    table = tables[t_sel % len(tables)]
    vpn = VPNS[v_sel]
    if op == 0:
        table.map(vpn, pool.alloc(), Permission.RW)
    elif op == 1:
        table.unmap(vpn)
    elif op == 2 and len(tables) < MAX_TABLES:
        clone = table.clone()
        assert clone.shares_root_with(table)
        assert clone.entry_count() == table.entry_count()
        tables.append(clone)
    elif op == 3 and table.is_mapped(vpn):
        pte = table.make_private(vpn)
        assert pte.frame.refcount == 1
        assert table.lookup(vpn).frame is pte.frame
    elif op == 4 and table.is_mapped(vpn):
        table.set_perms(vpn, Permission.READ)
        assert table.lookup(vpn).perms == Permission.READ
    elif op == 5:
        tables.pop(t_sel % len(tables)).free()


@given(ops=op_strategy)
@settings(max_examples=120, deadline=None)
def test_random_interleavings_conserve_frames(ops):
    pool = FramePool()
    tables = [PageTable(pool)]
    for op, t_sel, v_sel in ops:
        apply_op(pool, tables, op, t_sel, v_sel)
        check_invariants(pool, tables)
    while tables:
        tables.pop().free()
    assert pool.live_frames == 0
    assert pool.stats.allocated == pool.stats.freed


@given(ops=op_strategy, writers=st.integers(0, 2))
@settings(max_examples=60, deadline=None)
def test_clone_isolation_under_interleaving(ops, writers):
    """Whatever happened before, a clone pair diverges safely: writes
    (make_private) on one side never disturb the other side's view."""
    pool = FramePool()
    tables = [PageTable(pool)]
    for op, t_sel, v_sel in ops:
        apply_op(pool, tables, op, t_sel, v_sel)
    if not tables:
        tables.append(PageTable(pool))
    base = tables[0]
    base.map(VPNS[0], pool.alloc(), Permission.RW)
    twin = base.clone()
    before = dict(twin.items())
    for _ in range(writers):
        base.make_private(VPNS[0])
        base.map(VPNS[1], pool.alloc(), Permission.RW)
    assert dict(twin.items()) == before
    check_invariants(pool, tables + [twin])
    twin.free()
    while tables:
        tables.pop().free()
    assert pool.live_frames == 0
