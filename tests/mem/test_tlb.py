"""Unit tests for the software TLB model."""

import pytest

from repro.mem.frames import FramePool
from repro.mem.pagetable import Permission
from repro.mem.tlb import TLB, TLBEntry


def entry(pool):
    return TLBEntry(pool.alloc(), Permission.RW, writable=True)


class TestTLB:
    def test_miss_then_hit(self):
        pool = FramePool()
        tlb = TLB()
        assert tlb.lookup(5) is None
        e = entry(pool)
        tlb.insert(5, e)
        assert tlb.lookup(5) is e
        assert tlb.stats.misses == 1
        assert tlb.stats.hits == 1

    def test_invalidate_single(self):
        pool = FramePool()
        tlb = TLB()
        tlb.insert(5, entry(pool))
        tlb.invalidate(5)
        assert tlb.lookup(5) is None
        assert tlb.stats.invalidations == 1

    def test_invalidate_absent_not_counted(self):
        tlb = TLB()
        tlb.invalidate(5)
        assert tlb.stats.invalidations == 0

    def test_flush_clears_all(self):
        pool = FramePool()
        tlb = TLB()
        for vpn in range(10):
            tlb.insert(vpn, entry(pool))
        tlb.flush()
        assert len(tlb) == 0
        assert tlb.stats.flushes == 1

    def test_capacity_eviction(self):
        pool = FramePool()
        tlb = TLB(capacity=4)
        for vpn in range(6):
            tlb.insert(vpn, entry(pool))
        assert len(tlb) == 4
        assert tlb.stats.evictions == 2

    def test_reinsert_same_vpn_no_eviction(self):
        pool = FramePool()
        tlb = TLB(capacity=2)
        tlb.insert(1, entry(pool))
        tlb.insert(1, entry(pool))
        assert tlb.stats.evictions == 0

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            TLB(capacity=0)
