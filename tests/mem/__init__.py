"""Tests for the simulated virtual-memory subsystem."""
