"""Unit tests for the persistent radix page table."""

import pytest

from repro.mem.frames import FramePool
from repro.mem.pagetable import PageTable, Permission


@pytest.fixture
def pool():
    return FramePool()


@pytest.fixture
def table(pool):
    return PageTable(pool)


def map_page(table, vpn, fill=None, perms=Permission.RW):
    frame = table.pool.alloc()
    if fill is not None:
        frame.data[0] = fill
    table.map(vpn, frame, perms)
    return frame


class TestBasicMapping:
    def test_lookup_unmapped_is_none(self, table):
        assert table.lookup(0x123) is None
        assert not table.is_mapped(0x123)

    def test_map_then_lookup(self, table):
        frame = map_page(table, 0x42)
        pte = table.lookup(0x42)
        assert pte is not None
        assert pte.frame is frame
        assert pte.perms == Permission.RW

    def test_sparse_distant_vpns(self, table):
        # VPNs landing in different top-level slots.
        vpns = [0, 1, 0x1FF, 0x200, 1 << 27, (1 << 36) - 1]
        for i, vpn in enumerate(vpns):
            map_page(table, vpn, fill=i + 1)
        for i, vpn in enumerate(vpns):
            assert table.lookup(vpn).frame.data[0] == i + 1

    def test_remap_replaces_and_frees_old(self, table, pool):
        map_page(table, 7)
        assert pool.live_frames == 1
        new = map_page(table, 7, fill=9)
        assert pool.live_frames == 1
        assert table.lookup(7).frame is new

    def test_unmap(self, table, pool):
        map_page(table, 7)
        assert table.unmap(7)
        assert table.lookup(7) is None
        assert pool.live_frames == 0

    def test_unmap_absent_returns_false(self, table):
        assert not table.unmap(999)

    def test_items_sorted(self, table):
        for vpn in [500, 3, 0x10000, 77]:
            map_page(table, vpn)
        assert [vpn for vpn, _ in table.items()] == [3, 77, 500, 0x10000]

    def test_entry_count(self, table):
        for vpn in range(10):
            map_page(table, vpn)
        assert table.entry_count() == 10

    def test_set_perms(self, table):
        map_page(table, 1)
        table.set_perms(1, Permission.READ)
        assert table.lookup(1).perms == Permission.READ

    def test_set_perms_unmapped_raises(self, table):
        with pytest.raises(KeyError):
            table.set_perms(1, Permission.READ)


class TestClone:
    def test_clone_shares_root(self, table):
        map_page(table, 1)
        clone = table.clone()
        assert clone.shares_root_with(table)

    def test_clone_sees_same_mappings(self, table):
        frame = map_page(table, 1, fill=5)
        clone = table.clone()
        assert clone.lookup(1).frame is frame

    def test_clone_is_constant_cost(self, table, pool):
        for vpn in range(200):
            map_page(table, vpn)
        live_before = pool.live_frames
        nodes_before = table.nodes_copied
        table.clone()
        assert pool.live_frames == live_before  # no frames copied
        assert table.nodes_copied == nodes_before  # no nodes copied

    def test_write_after_clone_unshares_path_only(self, table):
        for vpn in range(8):
            map_page(table, vpn)
        clone = table.clone()
        clone.make_private(3)
        assert not clone.shares_root_with(table)
        # Only the touched page's frame differs.
        for vpn in range(8):
            mine = table.lookup(vpn).frame
            theirs = clone.lookup(vpn).frame
            if vpn == 3:
                assert mine is not theirs
            else:
                assert mine is theirs

    def test_mutation_in_clone_invisible_to_original(self, table):
        map_page(table, 1, fill=5)
        clone = table.clone()
        pte = clone.make_private(1)
        pte.frame.data[0] = 99
        assert table.lookup(1).frame.data[0] == 5

    def test_map_in_clone_invisible_to_original(self, table):
        map_page(table, 1)
        clone = table.clone()
        f = table.pool.alloc()
        clone.map(2, f, Permission.RW)
        assert table.lookup(2) is None
        assert clone.lookup(2) is not None

    def test_unmap_in_original_keeps_clone_mapping(self, table):
        map_page(table, 1, fill=5)
        clone = table.clone()
        table.unmap(1)
        assert table.lookup(1) is None
        assert clone.lookup(1).frame.data[0] == 5

    def test_chain_of_clones(self, table):
        map_page(table, 0, fill=1)
        clones = [table]
        for i in range(10):
            clones.append(clones[-1].clone())
        # Deepest clone privatises; everyone else still shares frame.
        deepest = clones[-1]
        deepest.make_private(0).frame.data[0] = 42
        for t in clones[:-1]:
            assert t.lookup(0).frame.data[0] == 1


class TestMakePrivate:
    def test_exclusive_frame_untouched(self, table):
        frame = map_page(table, 1)
        pte = table.make_private(1)
        assert pte.frame is frame

    def test_shared_frame_copied(self, table, pool):
        frame = map_page(table, 1, fill=7)
        clone = table.clone()
        pte = clone.make_private(1)
        assert pte.frame is not frame
        assert pte.frame.data[0] == 7
        assert pool.stats.copied == 1

    def test_unmapped_raises(self, table):
        with pytest.raises(KeyError):
            table.make_private(1)


class TestFree:
    def test_free_releases_frames(self, table, pool):
        for vpn in range(20):
            map_page(table, vpn)
        table.free()
        assert pool.live_frames == 0

    def test_free_with_live_clone_keeps_frames(self, table, pool):
        for vpn in range(20):
            map_page(table, vpn)
        clone = table.clone()
        table.free()
        assert pool.live_frames == 20
        assert clone.lookup(5) is not None
        clone.free()
        assert pool.live_frames == 0

    def test_free_after_partial_unshare(self, table, pool):
        for vpn in range(8):
            map_page(table, vpn)
        clone = table.clone()
        clone.make_private(3)
        table.free()
        clone.free()
        assert pool.live_frames == 0
