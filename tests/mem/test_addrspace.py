"""Unit tests for AddressSpace: regions, accessors, COW, brk."""

import pytest

from repro.mem import (
    AccessKind,
    AddressSpace,
    FramePool,
    NotMappedError,
    PAGE_SIZE,
    Permission,
    ProtectionError,
)

BASE = 0x40_0000


@pytest.fixture
def pool():
    return FramePool()


@pytest.fixture
def space(pool):
    s = AddressSpace(pool, name="t")
    s.map_region(BASE, 16 * PAGE_SIZE, Permission.RW)
    return s


class TestRegions:
    def test_map_requires_alignment(self, pool):
        s = AddressSpace(pool)
        with pytest.raises(ValueError, match="aligned"):
            s.map_region(BASE + 1, PAGE_SIZE)

    def test_double_map_rejected(self, space):
        with pytest.raises(ValueError, match="already mapped"):
            space.map_region(BASE, PAGE_SIZE)

    def test_size_rounds_up(self, pool):
        s = AddressSpace(pool)
        s.map_region(BASE, 100)
        assert s.mapped_pages() == 1

    def test_map_with_data(self, pool):
        s = AddressSpace(pool)
        s.map_region(BASE, PAGE_SIZE, data=b"hello")
        assert s.read(BASE, 5) == b"hello"

    def test_unmap_region(self, space):
        space.unmap_region(BASE, 4 * PAGE_SIZE)
        assert space.mapped_pages() == 12
        with pytest.raises(NotMappedError):
            space.read(BASE, 1)

    def test_demand_zero_reads_as_zero(self, space):
        assert space.read(BASE, 64) == bytes(64)

    def test_demand_zero_costs_no_private_frames(self, pool):
        s = AddressSpace(pool)
        s.map_region(BASE, 100 * PAGE_SIZE)
        # All 100 pages share the single zero frame.
        assert pool.live_frames == 1
        assert s.resident_private_pages() == 0

    def test_first_write_allocates(self, pool):
        s = AddressSpace(pool)
        s.map_region(BASE, 4 * PAGE_SIZE)
        s.write_u64(BASE, 7)
        assert s.faults.demand_zero_faults == 1
        assert s.resident_private_pages() == 1


class TestAccessors:
    def test_write_read_roundtrip(self, space):
        space.write(BASE + 10, b"abcdef")
        assert space.read(BASE + 10, 6) == b"abcdef"

    def test_cross_page_span(self, space):
        addr = BASE + PAGE_SIZE - 3
        space.write(addr, b"123456")
        assert space.read(addr, 6) == b"123456"

    def test_int_roundtrip(self, space):
        space.write_int(BASE, 0xDEADBEEF_CAFEBABE, 8)
        assert space.read_int(BASE, 8) == 0xDEADBEEF_CAFEBABE

    def test_signed_int(self, space):
        space.write_int(BASE, -5, 8)
        assert space.read_int(BASE, 8, signed=True) == -5

    def test_int_wraps_modulo(self, space):
        space.write_int(BASE, 0x1FF, 1)
        assert space.read_u8(BASE) == 0xFF

    def test_cstr(self, space):
        space.write(BASE, b"hello\x00world")
        assert space.read_cstr(BASE) == b"hello"

    def test_cstr_unterminated(self, space):
        space.write(BASE, b"x" * 32)
        with pytest.raises(ValueError, match="unterminated"):
            space.read_cstr(BASE, max_len=16)

    def test_read_unmapped_faults(self, pool):
        s = AddressSpace(pool)
        with pytest.raises(NotMappedError):
            s.read(0x1234, 1)

    def test_write_to_readonly_faults(self, pool):
        s = AddressSpace(pool)
        s.map_region(BASE, PAGE_SIZE, Permission.READ)
        with pytest.raises(ProtectionError):
            s.write(BASE, b"x")

    def test_exec_requires_x(self, pool):
        s = AddressSpace(pool)
        s.map_region(BASE, PAGE_SIZE, Permission.RW)
        with pytest.raises(ProtectionError):
            s.fetch(BASE, 4)

    def test_fetch_on_rx(self, pool):
        s = AddressSpace(pool)
        s.map_region(BASE, PAGE_SIZE, Permission.RX, data=b"\x90\x90")
        assert s.fetch(BASE, 2) == b"\x90\x90"


class TestBrk:
    def test_sbrk_grows(self, pool):
        s = AddressSpace(pool)
        s.set_brk_base(0x1000_0000)
        old = s.sbrk(10 * PAGE_SIZE)
        assert old == 0x1000_0000
        s.write_u64(0x1000_0000, 1)
        s.write_u64(0x1000_0000 + 10 * PAGE_SIZE - 8, 2)

    def test_sbrk_shrinks(self, pool):
        s = AddressSpace(pool)
        s.set_brk_base(0x1000_0000)
        s.sbrk(10 * PAGE_SIZE)
        s.sbrk(-9 * PAGE_SIZE)
        with pytest.raises(NotMappedError):
            s.read(0x1000_0000 + 2 * PAGE_SIZE, 1)

    def test_sbrk_below_base_rejected(self, pool):
        s = AddressSpace(pool)
        s.set_brk_base(0x1000_0000)
        with pytest.raises(ValueError):
            s.sbrk(-PAGE_SIZE)

    def test_unaligned_growth(self, pool):
        s = AddressSpace(pool)
        s.set_brk_base(0x1000_0000)
        s.sbrk(100)
        s.sbrk(100)
        assert s.brk_end == 0x1000_0000 + 200
        assert s.mapped_pages() == 1


class TestForkCow:
    def test_fork_sees_parent_data(self, space):
        space.write(BASE, b"parent")
        child = space.fork_cow()
        assert child.read(BASE, 6) == b"parent"

    def test_child_write_invisible_to_parent(self, space):
        space.write(BASE, b"parent")
        child = space.fork_cow()
        child.write(BASE, b"child!")
        assert space.read(BASE, 6) == b"parent"
        assert child.read(BASE, 6) == b"child!"

    def test_parent_write_invisible_to_child(self, space):
        space.write(BASE, b"parent")
        child = space.fork_cow()
        space.write(BASE, b"mutate")
        assert child.read(BASE, 6) == b"parent"

    def test_fork_is_cheap_in_frames(self, pool):
        s = AddressSpace(pool)
        s.map_region(BASE, 64 * PAGE_SIZE, eager=True)
        live = pool.live_frames
        s.fork_cow()
        assert pool.live_frames == live

    def test_cow_fault_counted_once_per_page(self, space):
        space.write(BASE, b"x")  # privatise page 0 (demand-zero fault)
        child = space.fork_cow()
        before = child.faults.cow_faults
        child.write(BASE, b"a")
        child.write(BASE + 1, b"b")  # same page: no second fault
        assert child.faults.cow_faults == before + 1

    def test_tlb_flushed_on_fork(self, space):
        space.write(BASE, b"x")
        flushes = space.tlb.stats.flushes
        space.fork_cow()
        assert space.tlb.stats.flushes == flushes + 1
        # Parent write after fork must COW, not scribble on shared frame.
        child_view = space.fork_cow()
        space.write(BASE, b"y")
        assert child_view.read(BASE, 1) == b"x"

    def test_fork_preserves_brk(self, pool):
        s = AddressSpace(pool)
        s.set_brk_base(0x1000_0000)
        s.sbrk(PAGE_SIZE)
        child = s.fork_cow()
        assert child.brk_end == s.brk_end

    def test_content_equal(self, space):
        space.write(BASE, b"data")
        child = space.fork_cow()
        assert space.content_equal(child)
        child.write(BASE, b"DIFF")
        assert not space.content_equal(child)


class TestForkEager:
    def test_eager_copies_all_frames(self, pool):
        s = AddressSpace(pool)
        s.map_region(BASE, 8 * PAGE_SIZE, eager=True)
        live = pool.live_frames
        s.fork_eager()
        assert pool.live_frames == live + 8

    def test_eager_clone_independent(self, pool):
        s = AddressSpace(pool)
        s.map_region(BASE, PAGE_SIZE, data=b"orig")
        clone = s.fork_eager()
        clone.write(BASE, b"diff")
        assert s.read(BASE, 4) == b"orig"


class TestFree:
    def test_free_releases_everything(self, pool):
        s = AddressSpace(pool)
        s.map_region(BASE, 8 * PAGE_SIZE, eager=True)
        s.free()
        assert pool.live_frames == 0

    def test_free_idempotent(self, space):
        space.free()
        space.free()

    def test_free_parent_keeps_child_working(self, pool):
        s = AddressSpace(pool)
        s.map_region(BASE, PAGE_SIZE, data=b"keep")
        child = s.fork_cow()
        s.free()
        assert child.read(BASE, 4) == b"keep"


class TestStats:
    def test_stats_shape(self, space):
        space.write(BASE, b"x")
        st = space.stats()
        assert st.mapped_pages == 16
        assert st.demand_zero_faults == 1
        assert st.pages_copied == 1
        assert st.bytes_copied == PAGE_SIZE
