"""Unit tests for the physical frame pool."""

import pytest

from repro.mem.frames import FramePool, OutOfMemoryError
from repro.mem.layout import PAGE_SIZE


class TestAlloc:
    def test_fresh_frame_is_zeroed(self):
        pool = FramePool()
        frame = pool.alloc()
        assert frame.data == bytearray(PAGE_SIZE)
        assert frame.is_zero()

    def test_fresh_frame_has_refcount_one(self):
        pool = FramePool()
        assert pool.alloc().refcount == 1

    def test_pfns_are_unique(self):
        pool = FramePool()
        pfns = {pool.alloc().pfn for _ in range(100)}
        assert len(pfns) == 100

    def test_alloc_with_data(self):
        pool = FramePool()
        data = bytearray(b"\xab" * PAGE_SIZE)
        frame = pool.alloc(data)
        assert frame.data is data
        assert not frame.is_zero()

    def test_live_counting(self):
        pool = FramePool()
        frames = [pool.alloc() for _ in range(5)]
        assert pool.live_frames == 5
        for f in frames:
            pool.put(f)
        assert pool.live_frames == 0
        assert pool.peak_live_frames == 5


class TestRefcounting:
    def test_get_bumps_refcount(self):
        pool = FramePool()
        frame = pool.alloc()
        pool.get(frame)
        assert frame.refcount == 2

    def test_put_frees_at_zero(self):
        pool = FramePool()
        frame = pool.alloc()
        pool.get(frame)
        pool.put(frame)
        assert pool.live_frames == 1
        pool.put(frame)
        assert pool.live_frames == 0

    def test_double_free_raises(self):
        pool = FramePool()
        frame = pool.alloc()
        pool.put(frame)
        with pytest.raises(ValueError, match="double free"):
            pool.put(frame)


class TestCopy:
    def test_copy_duplicates_bytes(self):
        pool = FramePool()
        frame = pool.alloc()
        frame.data[0:4] = b"abcd"
        clone = pool.copy(frame)
        assert clone.data == frame.data
        assert clone.data is not frame.data
        assert clone.pfn != frame.pfn

    def test_copy_is_independent(self):
        pool = FramePool()
        frame = pool.alloc()
        clone = pool.copy(frame)
        clone.data[0] = 0xFF
        assert frame.data[0] == 0

    def test_copy_counted(self):
        pool = FramePool()
        frame = pool.alloc()
        pool.copy(frame)
        assert pool.stats.copied == 1
        assert pool.stats.allocated == 2


class TestLimit:
    def test_limit_enforced(self):
        pool = FramePool(limit=2)
        pool.alloc()
        pool.alloc()
        with pytest.raises(OutOfMemoryError):
            pool.alloc()

    def test_freeing_makes_room(self):
        pool = FramePool(limit=1)
        frame = pool.alloc()
        pool.put(frame)
        pool.alloc()  # must not raise
