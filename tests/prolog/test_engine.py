"""Unit tests for terms, unification, and SLD resolution."""

import pytest

from repro.prolog import Database, PrologEngine, Struct, Var, make_list, walk
from repro.prolog.engine import PrologError
from repro.prolog.terms import from_list, reify, term_vars


@pytest.fixture
def family():
    db = Database()
    db.add(Struct("parent", ("tom", "bob")))
    db.add(Struct("parent", ("tom", "liz")))
    db.add(Struct("parent", ("bob", "ann")))
    x, y, z = Var("X"), Var("Y"), Var("Z")
    db.add(
        Struct("grandparent", (x, z)),
        (Struct("parent", (x, y)), Struct("parent", (y, z))),
    )
    return PrologEngine(db)


class TestUnify:
    def test_var_binds(self):
        eng = PrologEngine(Database())
        v = Var()
        assert eng.unify(v, "hello")
        assert walk(v) == "hello"

    def test_struct_unification(self):
        eng = PrologEngine(Database())
        a, b = Var(), Var()
        assert eng.unify(Struct("f", (a, "y")), Struct("f", ("x", b)))
        assert walk(a) == "x"
        assert walk(b) == "y"

    def test_functor_mismatch(self):
        eng = PrologEngine(Database())
        assert not eng.unify(Struct("f", (1,)), Struct("g", (1,)))

    def test_arity_mismatch(self):
        eng = PrologEngine(Database())
        assert not eng.unify(Struct("f", (1,)), Struct("f", (1, 2)))

    def test_var_to_var_aliasing(self):
        eng = PrologEngine(Database())
        a, b = Var(), Var()
        assert eng.unify(a, b)
        assert eng.unify(a, 42)
        assert walk(b) == 42

    def test_trail_undo(self):
        eng = PrologEngine(Database())
        v = Var()
        mark = len(eng._trail)
        eng.unify(v, 1)
        eng._undo_to(mark)
        assert walk(v) is v


class TestTerms:
    def test_list_roundtrip(self):
        items = [1, 2, "three"]
        assert from_list(make_list(items)) == items

    def test_open_list_rejected(self):
        with pytest.raises(ValueError):
            from_list(make_list([1], tail=Var()))

    def test_term_vars_order(self):
        a, b = Var("A"), Var("B")
        found = term_vars(Struct("f", (a, Struct("g", (b, a)))))
        assert found == [a, b]

    def test_reify_deep_list(self):
        deep = make_list(list(range(5000)))
        # Structural equality on deep terms would itself recurse, so
        # compare via the iterative list conversion.
        assert from_list(reify(deep)) == list(range(5000))

    def test_repr_shows_lists(self):
        assert repr(make_list([1, 2])) == "[1, 2]"


class TestResolution:
    def test_facts(self, family):
        x = Var("X")
        result = family.query(Struct("parent", ("tom", x)))
        assert [r["X"] for r in result] == ["bob", "liz"]

    def test_rule_with_join(self, family):
        who = Var("Who")
        result = family.query(Struct("grandparent", ("tom", who)))
        assert [r["Who"] for r in result] == ["ann"]

    def test_no_solutions(self, family):
        assert family.query(Struct("parent", ("ann", Var()))) == []

    def test_count(self, family):
        assert family.count(Struct("parent", (Var(), Var()))) == 3

    def test_unknown_predicate_raises(self, family):
        with pytest.raises(PrologError, match="unknown predicate"):
            family.query(Struct("sibling", (Var(), Var())))

    def test_limit(self, family):
        result = family.query(Struct("parent", (Var("A"), Var("B"))), limit=2)
        assert len(result) == 2

    def test_conjunction_query(self, family):
        x = Var("X")
        result = family.query(
            Struct("parent", ("tom", x)), Struct("parent", (x, "ann"))
        )
        assert [r["X"] for r in result] == ["bob"]


class TestBuiltins:
    def engine(self):
        return PrologEngine(Database())

    def test_is_evaluates(self):
        eng = self.engine()
        x = Var("X")
        result = eng.query(Struct("is", (x, Struct("+", (2, Struct("*", (3, 4)))))))
        assert result[0]["X"] == 14

    def test_comparisons(self):
        eng = self.engine()
        assert eng.count(Struct("<", (1, 2))) == 1
        assert eng.count(Struct(">", (1, 2))) == 0
        assert eng.count(Struct("=\\=", (3, Struct("+", (1, 1))))) == 1

    def test_between_enumerates(self):
        eng = self.engine()
        x = Var("X")
        result = eng.query(Struct("between", (1, 4, x)))
        assert [r["X"] for r in result] == [1, 2, 3, 4]

    def test_negation_as_failure(self):
        db = Database()
        db.add(Struct("p", (1,)))
        eng = PrologEngine(db)
        assert eng.count(Struct("\\+", (Struct("p", (2,)),))) == 1
        assert eng.count(Struct("\\+", (Struct("p", (1,)),))) == 0

    def test_negation_leaves_no_bindings(self):
        db = Database()
        db.add(Struct("p", (1,)))
        eng = PrologEngine(db)
        x = Var("X")
        # \+ p(X) fails (p(1) exists), and X must remain unbound after.
        assert eng.count(Struct("\\+", (Struct("p", (x,)),))) == 0
        assert walk(x) is x

    def test_unbound_arithmetic_raises(self):
        eng = self.engine()
        with pytest.raises(PrologError, match="instantiated"):
            eng.query(Struct("is", (Var(), Struct("+", (Var(), 1)))))

    def test_disequality(self):
        eng = self.engine()
        assert eng.count(Struct("\\=", (1, 2))) == 1
        assert eng.count(Struct("\\=", (1, 1))) == 0

    def test_fail_and_true(self):
        eng = self.engine()
        assert eng.count("true") == 1
        assert eng.count("fail") == 0


class TestStats:
    def test_counters_move(self, family):
        family.count(Struct("grandparent", (Var(), Var())))
        assert family.stats.inferences > 0
        assert family.stats.choice_points > 0
        assert family.stats.trail_writes > 0
