"""Tests for the Prolog engine."""
