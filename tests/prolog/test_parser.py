"""Unit tests for the Prolog reader and the library programs."""

import pytest

from repro.prolog import PrologEngine, parse_program, parse_query
from repro.prolog.library import PRELUDE, count_nqueens_solutions
from repro.prolog.parser import PrologSyntaxError
from repro.prolog.terms import Struct, from_list


def run(program, query, limit=None):
    return PrologEngine(parse_program(program)).query(
        *parse_query(query), limit=limit
    )


class TestParsing:
    def test_fact_and_query(self):
        assert run("likes(mary, wine).", "likes(mary, X)") == [{"X": "wine"}]

    def test_rule(self):
        out = run("p(1). q(X) :- p(X).", "q(X)")
        assert out == [{"X": 1}]

    def test_variables_scoped_per_clause(self):
        out = run("p(X, X).", "p(1, Y)")
        assert out == [{"Y": 1}]

    def test_anonymous_variable_is_fresh(self):
        out = run("pair(_, _).", "pair(1, 2)")
        assert len(out) == 1

    def test_lists(self):
        out = run("head([H|_], H).", "head([a, b, c], X)")
        assert out == [{"X": "a"}]

    def test_list_tail_pattern(self):
        out = run("tail([_|T], T).", "tail([1, 2, 3], X)")
        assert from_list(out[0]["X"]) == [2, 3]

    def test_empty_list(self):
        assert run("nilcheck([]).", "nilcheck([])") == [{}]

    def test_arithmetic_precedence(self):
        out = run("calc(X) :- X is 2 + 3 * 4.", "calc(X)")
        assert out == [{"X": 14}]

    def test_parenthesised_arithmetic(self):
        out = run("calc(X) :- X is (2 + 3) * 4.", "calc(X)")
        assert out == [{"X": 20}]

    def test_negative_number(self):
        out = run("neg(X) :- X is 0 - 5.", "neg(X)")
        assert out == [{"X": -5}]

    def test_comparison_operators(self):
        assert run("ok :- 3 =< 3, 4 >= 2, 1 < 2, 5 > 1, 2 =:= 2, 1 =\\= 2.", "ok")

    def test_comments_ignored(self):
        assert run("p(1). % a comment\n% full line\np(2).", "p(X)") == [
            {"X": 1}, {"X": 2},
        ]

    def test_quoted_atoms(self):
        out = run("says('Hello World').", "says(X)")
        assert out == [{"X": "Hello World"}]

    def test_negation_in_body(self):
        out = run("p(1). p(2). q(X) :- p(X), \\+ X =:= 1.", "q(X)")
        assert out == [{"X": 2}]

    def test_syntax_error_reported(self):
        with pytest.raises(PrologSyntaxError):
            parse_program("p(1")

    def test_missing_dot(self):
        with pytest.raises(PrologSyntaxError):
            parse_program("p(1) p(2).")


class TestLibrary:
    def test_append(self):
        out = run(PRELUDE, "append([1, 2], [3], X)", limit=1)
        assert from_list(out[0]["X"]) == [1, 2, 3]

    def test_append_backwards(self):
        out = run(PRELUDE, "append(X, Y, [1, 2])")
        assert len(out) == 3  # ([],[1,2]) ([1],[2]) ([1,2],[])

    def test_member(self):
        out = run(PRELUDE, "member(X, [a, b])")
        assert [r["X"] for r in out] == ["a", "b"]

    def test_select(self):
        out = run(PRELUDE, "select(X, [1, 2, 3], Rest)")
        assert [r["X"] for r in out] == [1, 2, 3]
        assert from_list(out[0]["Rest"]) == [2, 3]

    def test_range(self):
        out = run(PRELUDE, "range(1, 4, X)", limit=1)
        assert from_list(out[0]["X"]) == [1, 2, 3, 4]

    def test_length(self):
        out = run(PRELUDE, "length_([a, b, c], N)", limit=1)
        assert out[0]["N"] == 3


class TestHigherOrderBuiltins:
    def test_findall_collects_all(self):
        out = run("p(1). p(2). p(3).", "findall(X, p(X), L)", limit=1)
        assert from_list(out[0]["L"]) == [1, 2, 3]

    def test_findall_empty_on_failure(self):
        out = run("p(1).", "findall(X, fail, L)", limit=1)
        assert from_list(out[0]["L"]) == []

    def test_findall_with_template(self):
        out = run("p(1). p(2).", "findall(pair(X, X), p(X), L)", limit=1)
        pairs = from_list(out[0]["L"])
        assert [p.args for p in pairs] == [(1, 1), (2, 2)]

    def test_findall_leaves_no_bindings(self):
        out = run("p(1). p(2).", "findall(X, p(X), _), X = unbound", limit=1)
        assert out[0]["X"] == "unbound"

    def test_once_commits_to_first(self):
        out = run("p(1). p(2).", "once(p(X))")
        assert out == [{"X": 1}]

    def test_once_fails_when_goal_fails(self):
        assert run("p(1).", "once(p(9))") == []

    def test_hanoi_move_count(self):
        program = PRELUDE + """
        hanoi(0, _, _, _, []).
        hanoi(N, From, To, Via, Moves) :-
            N > 0,
            M is N - 1,
            hanoi(M, From, Via, To, Before),
            hanoi(M, Via, To, From, After),
            append(Before, [move(From, To)|After], Moves).
        """
        out = run(program, "hanoi(5, a, c, b, Moves), length_(Moves, N)",
                  limit=1)
        assert out[0]["N"] == 31  # 2^5 - 1


class TestNQueens:
    @pytest.mark.parametrize("n,expected", [(4, 2), (5, 10), (6, 4)])
    def test_solution_counts(self, n, expected):
        count, _engine = count_nqueens_solutions(n)
        assert count == expected

    def test_bookkeeping_grows_with_n(self):
        _, small = count_nqueens_solutions(4)
        _, large = count_nqueens_solutions(6)
        assert large.stats.trail_writes > small.stats.trail_writes
