"""Tests for the plain-text table renderer and timing helpers."""

import pytest

from repro.bench import Table, fmt_ratio, time_once


class TestTable:
    def test_render_contains_data(self):
        table = Table("demo", ["a", "b"])
        table.add(1, "x")
        table.add(22, "yy")
        text = table.render()
        assert "demo" in text
        assert "22" in text
        assert "yy" in text

    def test_columns_aligned(self):
        table = Table("t", ["col"])
        table.add(123456)
        lines = table.render().splitlines()
        assert lines[-1].strip() == "123,456"

    def test_wrong_arity_rejected(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add(1)

    def test_float_formatting(self):
        table = Table("t", ["v"])
        table.add(0.00123)
        assert "0.00123" in table.render()

    def test_empty_table_renders(self):
        assert "t" in Table("t", ["a"]).render()

    def test_show_prints(self, capsys):
        table = Table("printed", ["x"])
        table.add(1)
        table.show()
        assert "printed" in capsys.readouterr().out


class TestHelpers:
    def test_fmt_ratio(self):
        assert fmt_ratio(10, 2) == "5.0x"
        assert fmt_ratio(1, 0) == "inf"

    def test_time_once_returns_result(self):
        elapsed, value = time_once(lambda: 42)
        assert value == 42
        assert elapsed >= 0
