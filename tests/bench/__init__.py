"""Tests for bench-harness utilities."""
