"""Tests for the SAT solving stack."""
