"""Unit and property tests for the CDCL solver."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.sat import CNF, Solver, pigeonhole, random_ksat
from repro.sat.gen import graph_coloring, random_graph


def solver_for(cnf):
    solver = Solver()
    for clause in cnf.clauses:
        solver.add_clause(clause)
    solver._grow_to(cnf.num_vars)
    return solver


def brute_force_sat(cnf):
    for bits in itertools.product([False, True], repeat=cnf.num_vars):
        if cnf.evaluate({i + 1: b for i, b in enumerate(bits)}):
            return True
    return False


class TestBasic:
    def test_trivial_sat(self):
        s = Solver()
        s.add_clause([1])
        result = s.solve()
        assert result.sat is True
        assert result.model[1] is True

    def test_trivial_unsat(self):
        s = Solver()
        s.add_clause([1])
        s.add_clause([-1])
        assert s.solve().sat is False

    def test_unit_propagation_chain(self):
        s = Solver()
        s.add_clause([1])
        s.add_clause([-1, 2])
        s.add_clause([-2, 3])
        result = s.solve()
        assert result.sat and result.model[3] is True

    def test_tautology_skipped(self):
        s = Solver()
        s.add_clause([1, -1])
        assert s.solve().sat is True
        assert s.clauses == []

    def test_duplicate_literals_deduped(self):
        s = Solver()
        s.add_clause([1, 1, 2])
        assert len(s.clauses[0]) == 2

    def test_empty_clause_rejected(self):
        with pytest.raises(ValueError):
            Solver().add_clause([])

    def test_solver_reusable_after_solve(self):
        s = Solver()
        s.add_clause([1, 2])
        assert s.solve().sat is True
        s.add_clause([-1])
        s.add_clause([-2])
        assert s.solve().sat is False


class TestAssumptions:
    def test_assumption_forces_polarity(self):
        s = Solver()
        s.add_clause([1, 2])
        result = s.solve(assumptions=[-1])
        assert result.sat and result.model[2] is True

    def test_conflicting_assumptions_unsat(self):
        s = Solver()
        s.add_clause([1])
        assert s.solve(assumptions=[-1]).sat is False

    def test_assumptions_do_not_persist(self):
        s = Solver()
        s.add_clause([1, 2])
        assert s.solve(assumptions=[-1, -2]).sat is False
        assert s.solve().sat is True


class TestPushPop:
    def test_pop_restores_sat(self):
        s = Solver()
        s.add_clause([1, 2])
        s.push()
        s.add_clause([-1])
        s.add_clause([-2])
        assert s.solve().sat is False
        s.pop()
        assert s.solve().sat is True

    def test_nested_scopes(self):
        s = Solver()
        s.add_clause([1])
        s.push()
        s.add_clause([2])
        s.push()
        s.add_clause([-1])
        assert s.solve().sat is False
        s.pop()
        result = s.solve()
        assert result.sat and result.model[2] is True
        s.pop()
        assert s.solve().sat is True

    def test_pop_without_push(self):
        with pytest.raises(ValueError):
            Solver().pop()

    def test_learning_survives_pop_soundly(self):
        # Learned clauses derived inside a popped scope must not leak.
        s = Solver()
        cnf = random_ksat(20, 60, seed=5)
        for c in cnf.clauses:
            s.add_clause(c)
        baseline = s.solve().sat
        s.push()
        s.add_clause([1])
        s.add_clause([-1, 2])
        s.add_clause([-2, -1])  # contradiction inside the scope
        assert s.solve().sat is False
        s.pop()
        assert s.solve().sat is baseline


class TestClone:
    def test_clone_is_equisatisfiable(self):
        cnf = random_ksat(15, 50, seed=1)
        s = solver_for(cnf)
        expected = s.solve().sat
        clone = s.clone()
        assert clone.solve().sat is expected

    def test_clone_keeps_learned_clauses(self):
        cnf = random_ksat(30, 120, seed=2)
        s = solver_for(cnf)
        s.solve()
        clone = s.clone()
        assert len(clone.learned) == len(s.learned)

    def test_clone_diverges_independently(self):
        s = Solver()
        s.add_clause([1, 2])
        a = s.clone()
        b = s.clone()
        a.add_clause([-1])
        b.add_clause([-2])
        ra, rb = a.solve(), b.solve()
        assert ra.model[2] is True
        assert rb.model[1] is True
        # Original unaffected.
        assert s.solve().sat is True

    def test_clone_watch_lists_are_private(self):
        # Mutating the clone's clause order must not corrupt the parent.
        cnf = random_ksat(12, 40, seed=3)
        s = solver_for(cnf)
        clone = s.clone()
        clone.solve()
        assert s.solve().sat is clone.solve().sat


class TestHardFormulas:
    @pytest.mark.parametrize("holes", [3, 4, 5])
    def test_pigeonhole_unsat(self, holes):
        s = solver_for(pigeonhole(holes))
        assert s.solve().sat is False

    def test_pigeonhole_learns(self):
        s = solver_for(pigeonhole(5))
        s.solve()
        assert s.stats.conflicts > 10
        assert s.stats.learned > 10

    def test_coloring_triangle_needs_three(self):
        triangle = [(0, 1), (1, 2), (0, 2)]
        assert solver_for(graph_coloring(3, triangle, 2)).solve().sat is False
        assert solver_for(graph_coloring(3, triangle, 3)).solve().sat is True

    def test_conflict_budget(self):
        s = solver_for(pigeonhole(7))
        assert s.solve(max_conflicts=5).sat is None


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(25))
    def test_small_random(self, seed):
        cnf = random_ksat(8, 34, seed=seed)
        s = solver_for(cnf)
        result = s.solve()
        assert result.sat == brute_force_sat(cnf)
        if result.sat:
            assert cnf.evaluate(result.model)


@given(
    seed=st.integers(0, 10_000),
    num_vars=st.integers(4, 10),
    ratio=st.floats(2.0, 6.0),
)
@settings(max_examples=40, deadline=None)
def test_property_model_satisfies(seed, num_vars, ratio):
    cnf = random_ksat(num_vars, int(num_vars * ratio), seed=seed)
    s = solver_for(cnf)
    result = s.solve()
    if result.sat:
        assert cnf.evaluate(result.model)


@given(seed=st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_property_planted_always_sat(seed):
    cnf = random_ksat(20, 100, seed=seed, planted=True)
    s = solver_for(cnf)
    result = s.solve()
    assert result.sat is True
    assert cnf.evaluate(result.model)
