"""Tests for the multi-path incremental solver service (§3.2)."""

import pytest

from repro.sat import CNF, IncrementalSolverService
from repro.sat.gen import incremental_batches, random_ksat


def base_problem():
    cnf = CNF()
    cnf.extend([[1, 2], [-1, 3], [2, 3]])
    return cnf


class TestService:
    def test_solve_returns_ref_and_model(self):
        service = IncrementalSolverService()
        outcome = service.solve(base_problem())
        assert outcome.sat is True
        assert outcome.ref > 0
        assert base_problem().evaluate(outcome.model)

    def test_extend_conjoins(self):
        service = IncrementalSolverService()
        p = service.solve(base_problem())
        pq = service.extend(p.ref, [[-3]])
        assert pq.sat is True
        assert pq.model[3] is False

    def test_extend_to_unsat(self):
        service = IncrementalSolverService()
        p = service.solve(base_problem())
        pq = service.extend(p.ref, [[-2], [-3]])
        assert pq.sat is False

    def test_branching_siblings_are_isolated(self):
        # The multi-path property: two clients extend the same p with
        # contradictory q's; both must get correct, independent answers.
        service = IncrementalSolverService()
        p = service.solve(base_problem())
        # p = (1|2) & (-1|3) & (2|3).  -3 forces 1=F; 3 & 1 is also fine.
        left = service.extend(p.ref, [[-3]])
        right = service.extend(p.ref, [[3], [1]])
        assert left.sat is True and left.model[1] is False
        assert right.sat is True and right.model[1] is True
        # And p itself is still extendable (immutability of the parent).
        again = service.extend(p.ref, [[2]])
        assert again.sat is True

    def test_deep_chain(self):
        service = IncrementalSolverService()
        cnf = random_ksat(30, 60, seed=4, planted=True)
        outcome = service.solve(cnf)
        ref = outcome.ref
        for step in range(5):
            outcome = service.extend(ref, [[(step % 30) + 1, -((step + 5) % 30 + 1)]])
            assert outcome.sat is True
            ref = outcome.ref

    def test_unknown_ref_rejected(self):
        service = IncrementalSolverService()
        with pytest.raises(KeyError):
            service.extend(999, [[1]])

    def test_release(self):
        service = IncrementalSolverService()
        p = service.solve(base_problem())
        child = service.extend(p.ref, [[1]])
        service.release(p.ref)
        with pytest.raises(KeyError):
            service.extend(p.ref, [[2]])
        # Children survive parent release (snapshot-tree semantics).
        assert service.extend(child.ref, [[2]]).sat is True

    def test_inherited_learned_reported(self):
        service = IncrementalSolverService()
        cnf = random_ksat(40, 168, seed=9)
        p = service.solve(cnf)
        child = service.extend(p.ref, [[1, 2]])
        assert child.inherited_learned >= 0

    def test_incremental_agrees_with_scratch(self):
        base, steps = incremental_batches(40, 160, 10, 4, seed=11)
        inc = IncrementalSolverService(incremental=True)
        scr = IncrementalSolverService(incremental=False)
        ri, rs = inc.solve(base), scr.solve(base)
        assert ri.sat == rs.sat
        ref_i, ref_s = ri.ref, rs.ref
        for batch in steps:
            ri = inc.extend(ref_i, batch)
            rs = scr.extend(ref_s, batch)
            assert ri.sat == rs.sat
            ref_i, ref_s = ri.ref, rs.ref

    def test_incremental_cheaper_on_hard_base(self):
        # The §2 claim: p then p∧q incrementally beats from-scratch.
        base, steps = incremental_batches(100, 420, 15, 4, seed=7)
        inc = IncrementalSolverService(incremental=True)
        scr = IncrementalSolverService(incremental=False)
        ref_i = inc.solve(base).ref
        ref_s = scr.solve(base).ref
        for batch in steps:
            ref_i = inc.extend(ref_i, batch).ref
            ref_s = scr.extend(ref_s, batch).ref
        assert inc.total_conflicts < scr.total_conflicts
