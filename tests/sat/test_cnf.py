"""Unit tests for CNF containers and DIMACS I/O."""

import pytest

from repro.sat import CNF, parse_dimacs, to_dimacs


class TestCNF:
    def test_add_clause_grows_vars(self):
        cnf = CNF()
        cnf.add_clause([1, -5])
        assert cnf.num_vars == 5
        assert len(cnf) == 1

    def test_empty_clause_rejected(self):
        with pytest.raises(ValueError):
            CNF().add_clause([])

    def test_zero_literal_rejected(self):
        with pytest.raises(ValueError):
            CNF().add_clause([1, 0])

    def test_evaluate_satisfied(self):
        cnf = CNF()
        cnf.extend([[1, 2], [-1, 2]])
        assert cnf.evaluate({1: False, 2: True})
        assert not cnf.evaluate({1: True, 2: False})

    def test_evaluate_missing_var_counts_false(self):
        cnf = CNF()
        cnf.add_clause([1])
        assert not cnf.evaluate({})


class TestDimacs:
    DOC = """c example
p cnf 3 2
1 -2 0
2 3 0
"""

    def test_parse(self):
        cnf = parse_dimacs(self.DOC)
        assert cnf.num_vars == 3
        assert cnf.clauses == [(1, -2), (2, 3)]

    def test_parse_multiline_clause(self):
        cnf = parse_dimacs("p cnf 3 1\n1 2\n3 0\n")
        assert cnf.clauses == [(1, 2, 3)]

    def test_parse_declared_vars_respected(self):
        cnf = parse_dimacs("p cnf 10 1\n1 0\n")
        assert cnf.num_vars == 10

    def test_bad_problem_line(self):
        with pytest.raises(ValueError):
            parse_dimacs("p sat 3 2\n")

    def test_roundtrip(self):
        cnf = parse_dimacs(self.DOC)
        again = parse_dimacs(to_dimacs(cnf, comment="roundtrip"))
        assert again.clauses == cnf.clauses
        assert again.num_vars == cnf.num_vars
