"""Tests for the live dashboard CLI: rendering, sources, exit codes."""

import json

import pytest

from repro.obs.live import StatusServer
from repro.obs.status import RunStatus
from repro.tools import top


def _snapshot(**overrides):
    """A plausible status snapshot (same shape the server serves)."""
    snap = RunStatus(workers=2, span=6, strategy="dfs").snapshot()
    snap.update(overrides)
    return snap


class TestRendering:
    def test_sparkline_scales_to_max(self):
        line = top.sparkline([0, 1, 2, 4])
        assert len(line) == 4
        assert line[-1] == top.SPARK_BLOCKS[-1]   # max maps to full block
        assert line[0] == top.SPARK_BLOCKS[0]     # zero maps to gap

    def test_sparkline_window_and_empty(self):
        assert top.sparkline([]) == ""
        assert len(top.sparkline(list(range(100)), width=10)) == 10
        assert top.sparkline([0.0, 0.0]) == "  "  # all-zero: no bars

    def test_gauge(self):
        assert top.gauge(0.0, width=10) == "[..........]   0.0%"
        assert top.gauge(1.0, width=10) == "[##########] 100.0%"
        assert top.gauge(2.0, width=10).endswith("100.0%")  # clamped

    def test_eta_formatting(self):
        assert top._fmt_eta(None) == "?"
        assert top._fmt_eta(5.0) == "5.0s"
        assert top._fmt_eta(125) == "2m05s"
        assert top._fmt_eta(7200) == "2h00m"

    def test_dashboard_contains_the_essentials(self):
        snap = _snapshot(solutions=3)
        snap["workers_detail"] = [{
            "worker": 0, "slot": 0, "state": "running", "busy": True,
            "phase": "exploring", "task": [0, 2], "task_span": 6,
            "steps": 1234, "cow_faults": 5, "spills": 1,
            "tasks_done": 2, "beat_seq": 9, "beat_age_s": 0.04,
        }]
        frame = top.render_dashboard(snap, rate_history=[10.0, 20.0])
        assert "RUNNING" in frame
        assert "strategy dfs" in frame
        assert "solutions 3" in frame
        assert "0.2" in frame          # task prefix 0.2 in workers table
        assert "exploring" in frame

    def test_dashboard_done_and_degraded(self):
        frame = top.render_dashboard(
            _snapshot(done=True, degraded=True, stop_reason="exhausted"))
        assert "DONE (degraded)" in frame
        assert "stop=exhausted" in frame


class TestSources:
    def test_status_url_normalization(self):
        assert top.status_url("http://h:1") == "http://h:1/status"
        assert top.status_url("http://h:1/") == "http://h:1/status"
        assert top.status_url("http://h:1/status") == "http://h:1/status"

    def test_last_sample_skips_corrupt_tail(self, tmp_path):
        path = tmp_path / "s.jsonl"
        good = dict(_snapshot(), seq=0, ts=1.0, type="status.sample")
        newer = dict(_snapshot(done=True), seq=1, ts=2.0,
                     type="status.sample")
        path.write_text(
            json.dumps(good) + "\n" + json.dumps(newer) + "\n"
            + '{"seq": 2, "ts": 3.0, "truncated'   # SIGKILL mid-write
        )
        sample = top.last_sample(str(path))
        assert sample is not None and sample["done"] is True

    def test_last_sample_missing_file(self, tmp_path):
        assert top.last_sample(str(tmp_path / "nope.jsonl")) is None


class TestCli:
    def test_requires_exactly_one_source(self, capsys):
        assert top.main([]) == 2
        assert top.main(["http://h:1", "--status-log", "x"]) == 2

    def test_once_json_from_log(self, tmp_path, capsys):
        path = tmp_path / "s.jsonl"
        snap = dict(_snapshot(done=True, solutions=4),
                    seq=0, ts=1.0, type="status.sample")
        path.write_text(json.dumps(snap) + "\n")
        assert top.main(["--status-log", str(path), "--once",
                         "--json"]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["solutions"] == 4 and out["done"] is True

    def test_once_dashboard_from_log(self, tmp_path, capsys):
        path = tmp_path / "s.jsonl"
        snap = dict(_snapshot(done=True),
                    seq=0, ts=1.0, type="status.sample")
        path.write_text(json.dumps(snap) + "\n")
        assert top.main(["--status-log", str(path), "--once"]) == 0
        assert "repro.top — DONE" in capsys.readouterr().out

    def test_no_source_after_retries(self, tmp_path, capsys):
        rc = top.main(["--status-log", str(tmp_path / "gone.jsonl"),
                       "--once", "--connect-retries", "1"])
        assert rc == 1
        assert "no status" in capsys.readouterr().err

    def test_url_mode_against_live_server(self, capsys):
        status = RunStatus(workers=1, strategy="bfs")
        status.finalize({}, pending=0, solutions=2)
        server = StatusServer(status, port=0)
        server.start()
        try:
            assert top.main([server.url, "--once", "--json"]) == 0
        finally:
            server.stop()
        out = json.loads(capsys.readouterr().out)
        assert out["done"] is True and out["solutions"] == 2

    def test_exits_zero_when_run_completes(self, capsys):
        # Non-`--once` mode must terminate on a `done` snapshot rather
        # than poll forever (the CI job relies on this).
        status = RunStatus(workers=1)
        status.finalize({}, pending=0, solutions=0)
        server = StatusServer(status, port=0)
        server.start()
        try:
            assert top.main([server.url, "--interval", "0.05",
                             "--json"]) == 0
        finally:
            server.stop()
