"""Tests for the trace_report CLI: loading, summarizing, rendering."""

import json

import pytest

from repro.core.machine import MachineEngine
from repro.obs import events as ev
from repro.obs.trace import TRACER
from repro.tools import trace_report
from repro.workloads.nqueens import nqueens_asm


@pytest.fixture(scope="module")
def nqueens_trace(tmp_path_factory):
    """A real trace: MachineEngine solving 4-queens, written as JSONL."""
    path = str(tmp_path_factory.mktemp("trace") / "nqueens.jsonl")
    with TRACER.to_file(path):
        MachineEngine().run(nqueens_asm(4))
    return path


class TestLoadEvents:
    def test_loads_real_trace(self, nqueens_trace):
        events, skipped = trace_report.load_events(nqueens_trace)
        assert events
        assert skipped == 0
        assert all("type" in e and "seq" in e for e in events)

    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"seq": 0, "ts": 0.0, "type": "x"}\n\n\n')
        events, skipped = trace_report.load_events(str(path))
        assert len(events) == 1
        assert skipped == 0

    def test_bad_json_skipped_and_counted(self, tmp_path):
        # A truncated line (crashed run) must not lose the rest of the
        # trace — skip it, count it, keep going.
        path = tmp_path / "t.jsonl"
        path.write_text(
            '{"seq": 0, "ts": 0.0, "type": "x"}\n'
            'not json\n'
            '{"seq": 1, "ts": 0.1, "type": "y"}\n'
            '{"seq": 2, "ts": 0.2, "type": "z"'  # truncated mid-object
        )
        events, skipped = trace_report.load_events(str(path))
        assert [e["type"] for e in events] == ["x", "y"]
        assert skipped == 2

    def test_non_event_line_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('[1, 2, 3]\n{"seq": 0, "ts": 0.0, "type": "x"}\n')
        events, skipped = trace_report.load_events(str(path))
        assert len(events) == 1
        assert skipped == 1


class TestSummarize:
    def test_real_run_summary(self, nqueens_trace):
        events, _ = trace_report.load_events(nqueens_trace)
        summary = trace_report.summarize(events)

        snap = summary["snapshot"]
        assert snap["taken"] == snap["discarded"] > 0
        assert snap["end_live"] == 0
        assert snap["peak_live"] >= 1
        assert snap["pruned"] > 0

        cow = summary["cow_per_restore"]
        assert cow["restores"] == snap["restored"] > 0
        assert cow["per_restore_max"] >= cow["per_restore_mean"] >= 0
        assert len(cow["hottest"]) <= 5

        search = summary["search"]
        assert search["solutions"] == 2  # 4-queens
        assert search["guesses"] > 0
        assert search["max_depth"] == 4
        assert search["total_fanout"] == 4 * search["guesses"]

        names = {row["name"] for row in summary["syscalls"]}
        assert {"guess", "exit"} <= names
        assert summary["parallel"]["workers"] == []  # serial engine

    def test_cow_join_attributes_faults_to_restores(self):
        events = [
            {"seq": 0, "ts": 0.0, "type": ev.SNAPSHOT_RESTORE, "sid": 1, "asid": 10},
            {"seq": 1, "ts": 0.1, "type": ev.MEM_COW_FAULT,
             "asid": 10, "vpn": 5, "kind": "cow"},
            {"seq": 2, "ts": 0.2, "type": ev.MEM_COW_FAULT,
             "asid": 10, "vpn": 6, "kind": "cow"},
            {"seq": 3, "ts": 0.3, "type": ev.MEM_COW_FAULT,
             "asid": 99, "vpn": 7, "kind": "cow"},
        ]
        cow = trace_report.summarize(events)["cow_per_restore"]
        assert cow["restores"] == 1
        assert cow["cow_faults_in_restored_spaces"] == 2
        assert cow["cow_faults_elsewhere"] == 1
        assert cow["per_restore_mean"] == 2.0
        assert cow["hottest"][0]["cow_faults"] == 2

    def test_zero_fills_counted_separately(self):
        events = [
            {"seq": 0, "ts": 0.0, "type": ev.SNAPSHOT_RESTORE, "sid": 1, "asid": 10},
            {"seq": 1, "ts": 0.1, "type": ev.MEM_COW_FAULT,
             "asid": 10, "vpn": 5, "kind": "zero"},
        ]
        cow = trace_report.summarize(events)["cow_per_restore"]
        assert cow["cow_faults_in_restored_spaces"] == 0
        assert cow["zero_fills_total"] == 1

    def test_empty_stream(self):
        summary = trace_report.summarize([])
        assert summary["events"] == 0
        assert summary["snapshot"]["peak_live"] == 0
        assert summary["cow_per_restore"]["per_restore_mean"] == 0.0


class TestTablesAndCli:
    def test_cli_prints_expected_tables(self, nqueens_trace, capsys):
        assert trace_report.main([nqueens_trace]) == 0
        out = capsys.readouterr().out
        for heading in (
            "Trace events",
            "Snapshot lifecycle",
            "COW faults per restore",
            "Syscalls",
            "Search",
        ):
            assert heading in out
        assert "peak_live" in out
        assert "mean per restore" in out
        assert "guess" in out

    def test_cli_json_mode_round_trips(self, nqueens_trace, capsys):
        assert trace_report.main([nqueens_trace, "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["events"] > 0
        assert summary["snapshot"]["taken"] > 0

    def test_cli_missing_file_fails(self, tmp_path, capsys):
        assert trace_report.main([str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_cli_corrupt_lines_warn_but_report(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            'garbage\n'
            '{"seq": 0, "ts": 0.0, "type": "search.guess", "n": 2, "depth": 0}\n'
        )
        assert trace_report.main([str(path)]) == 0
        captured = capsys.readouterr()
        assert "skipped 1 corrupt line" in captured.err
        assert "Search" in captured.out

    def test_cli_all_garbage_reports_empty(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("garbage\nmore garbage\n")
        assert trace_report.main([str(path)]) == 0
        captured = capsys.readouterr()
        assert "skipped 2 corrupt line" in captured.err
        assert "empty trace" in captured.out

    def test_cli_empty_file_succeeds(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert trace_report.main([str(path)]) == 0
        assert "empty trace" in capsys.readouterr().out

    def test_cli_json_reports_skipped_count(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('nope\n{"seq": 0, "ts": 0.0, "type": "x"}\n')
        assert trace_report.main([str(path), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["skipped_lines"] == 1
        assert summary["events"] == 1

    def test_parallel_trace_gets_worker_table(self, tmp_path, capsys):
        from repro.core.parallel import ParallelMachineEngine

        path = str(tmp_path / "par.jsonl")
        with TRACER.to_file(path):
            ParallelMachineEngine(workers=2, quantum=64).run(nqueens_asm(4))
        assert trace_report.main([path]) == 0
        out = capsys.readouterr().out
        assert "Parallel workers" in out

    def test_merged_cluster_trace_gets_utilization_table(
            self, tmp_path, capsys):
        from repro.core.cluster import ProcessParallelEngine

        path = str(tmp_path / "cluster.jsonl")
        engine = ProcessParallelEngine(workers=2, task_step_budget=800)
        with TRACER.to_file(path):
            engine.run(nqueens_asm(4))
        assert trace_report.main([path]) == 0
        out = capsys.readouterr().out
        assert "Cluster utilization" in out
        assert "replay share" in out

    def test_cluster_summary_utilization_math(self):
        events = [
            {"seq": 0, "ts": 1.0, "type": ev.TASK_BEGIN,
             "worker": 0, "task": [], "depth": 0},
            {"seq": 1, "ts": 2.0, "type": ev.TASK_END, "worker": 0,
             "task": [], "solutions": 1, "spilled": 0,
             "explore_steps": 90, "replay_steps": 10, "task_s": 0.5},
            {"seq": 2, "ts": 1.5, "type": ev.TASK_BEGIN,
             "worker": 1, "task": [0], "depth": 1},
            {"seq": 3, "ts": 3.0, "type": ev.TASK_END, "worker": 1,
             "task": [0], "solutions": 0, "spilled": 2,
             "explore_steps": 30, "replay_steps": 30, "task_s": 1.5},
        ]
        cluster = trace_report.summarize(events)["cluster"]
        assert cluster["wall_s"] == 2.0  # ts 1.0 .. 3.0
        assert cluster["tasks"] == 2
        by_worker = {row["worker"]: row for row in cluster["workers"]}
        assert by_worker[0]["busy_s"] == 0.5
        assert by_worker[0]["idle_s"] == 1.5
        assert by_worker[0]["utilization"] == 0.25
        assert by_worker[0]["replay_share"] == 0.1
        assert by_worker[1]["replay_share"] == 0.5
        # Skew: max busy (1.5) over mean busy (1.0).
        assert cluster["busy_skew"] == 1.5


class TestFileLayerSummary:
    def test_file_layer_events_get_their_own_table(self, capsys, tmp_path):
        events = [
            {"seq": 0, "ts": 0.1, "type": ev.FILE_FSYNC,
             "fd": 3, "records": 4},
            {"seq": 1, "ts": 0.2, "type": ev.FILE_FSYNC,
             "fd": 3, "records": 2},
            {"seq": 2, "ts": 0.3, "type": ev.FILE_SYNC, "records": 7},
            {"seq": 3, "ts": 0.4, "type": ev.CRASH_SELECT,
             "point": 1, "dims": 3},
            {"seq": 4, "ts": 0.5, "type": ev.CRASH_SELECT,
             "point": 2, "dims": 5},
            {"seq": 5, "ts": 0.6, "type": ev.CRASH_COMMIT, "kept": 2},
        ]
        fl = trace_report.summarize(events)["filelayer"]
        assert fl == {
            "fsyncs": 2, "fsync_records": 6,
            "syncs": 1, "sync_records": 7,
            "crash_selects": 2, "crash_dims_total": 8, "crash_dims_max": 5,
            "crash_commits": 1, "crash_kept_total": 2, "crash_kept_max": 2,
        }
        path = tmp_path / "t.jsonl"
        path.write_text("".join(json.dumps(e) + "\n" for e in events))
        assert trace_report.main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "Versioned file layer" in out
        assert "crash_selects" in out

    def test_no_file_layer_events_no_table(self, nqueens_trace, capsys):
        assert trace_report.main([nqueens_trace]) == 0
        assert "Versioned file layer" not in capsys.readouterr().out


class TestLiveSummary:
    @staticmethod
    def _sample(seq, ts, pending, done, solutions, coverage, rate):
        return {
            "seq": seq, "ts": ts, "type": ev.STATUS_SAMPLE,
            "tasks": {"pending": pending, "done": done},
            "solutions": solutions,
            "coverage": {"fraction": coverage},
            "throughput": {"steps_total": 100, "steps_per_s": rate},
        }

    def test_status_samples_summarized(self, tmp_path, capsys):
        events = [
            self._sample(0, 10.0, 5, 0, 0, 0.0, 0.0),
            self._sample(1, 10.5, 2, 3, 1, 0.6, 8_000.0),
            self._sample(2, 11.0, 0, 5, 4, 1.0, 5_000.0),
        ]
        live = trace_report.summarize(events)["live"]
        assert live["samples"] == 3
        assert live["span_s"] == 1.0
        assert live["final_pending"] == 0
        assert live["final_done"] == 5
        assert live["final_solutions"] == 4
        assert live["final_coverage"] == 1.0
        assert live["final_steps_per_s"] == 5_000.0
        assert live["max_steps_per_s"] == 8_000.0
        path = tmp_path / "s.jsonl"
        path.write_text("".join(json.dumps(e) + "\n" for e in events))
        assert trace_report.main([str(path)]) == 0
        assert "Live telemetry" in capsys.readouterr().out

    def test_real_status_log_is_consumable(self, tmp_path, capsys):
        # The --status-log file a real run writes is itself a valid
        # trace input: report it end to end.
        from repro.core.cluster import ProcessParallelEngine

        log_path = str(tmp_path / "status.jsonl")
        engine = ProcessParallelEngine(
            workers=2, status_log=log_path, status_interval=0.05,
            heartbeat_interval=0.02,
        )
        engine.run(nqueens_asm(4))
        assert trace_report.main([log_path]) == 0
        out = capsys.readouterr().out
        assert "Live telemetry" in out
        summary = trace_report.summarize(
            trace_report.load_events(log_path)[0])
        assert summary["live"]["final_coverage"] == 1.0
