"""Tests for the trace_report CLI: loading, summarizing, rendering."""

import json

import pytest

from repro.core.machine import MachineEngine
from repro.obs import events as ev
from repro.obs.trace import TRACER
from repro.tools import trace_report
from repro.workloads.nqueens import nqueens_asm


@pytest.fixture(scope="module")
def nqueens_trace(tmp_path_factory):
    """A real trace: MachineEngine solving 4-queens, written as JSONL."""
    path = str(tmp_path_factory.mktemp("trace") / "nqueens.jsonl")
    with TRACER.to_file(path):
        MachineEngine().run(nqueens_asm(4))
    return path


class TestLoadEvents:
    def test_loads_real_trace(self, nqueens_trace):
        events = trace_report.load_events(nqueens_trace)
        assert events
        assert all("type" in e and "seq" in e for e in events)

    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"seq": 0, "ts": 0.0, "type": "x"}\n\n\n')
        assert len(trace_report.load_events(str(path))) == 1

    def test_bad_json_raises_with_line_number(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"seq": 0, "ts": 0.0, "type": "x"}\nnot json\n')
        with pytest.raises(ValueError, match=r":2:"):
            trace_report.load_events(str(path))

    def test_non_event_line_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ValueError, match="not a trace event"):
            trace_report.load_events(str(path))


class TestSummarize:
    def test_real_run_summary(self, nqueens_trace):
        events = trace_report.load_events(nqueens_trace)
        summary = trace_report.summarize(events)

        snap = summary["snapshot"]
        assert snap["taken"] == snap["discarded"] > 0
        assert snap["end_live"] == 0
        assert snap["peak_live"] >= 1
        assert snap["pruned"] > 0

        cow = summary["cow_per_restore"]
        assert cow["restores"] == snap["restored"] > 0
        assert cow["per_restore_max"] >= cow["per_restore_mean"] >= 0
        assert len(cow["hottest"]) <= 5

        search = summary["search"]
        assert search["solutions"] == 2  # 4-queens
        assert search["guesses"] > 0
        assert search["max_depth"] == 4
        assert search["total_fanout"] == 4 * search["guesses"]

        names = {row["name"] for row in summary["syscalls"]}
        assert {"guess", "exit"} <= names
        assert summary["parallel"]["workers"] == []  # serial engine

    def test_cow_join_attributes_faults_to_restores(self):
        events = [
            {"seq": 0, "ts": 0.0, "type": ev.SNAPSHOT_RESTORE, "sid": 1, "asid": 10},
            {"seq": 1, "ts": 0.1, "type": ev.MEM_COW_FAULT,
             "asid": 10, "vpn": 5, "kind": "cow"},
            {"seq": 2, "ts": 0.2, "type": ev.MEM_COW_FAULT,
             "asid": 10, "vpn": 6, "kind": "cow"},
            {"seq": 3, "ts": 0.3, "type": ev.MEM_COW_FAULT,
             "asid": 99, "vpn": 7, "kind": "cow"},
        ]
        cow = trace_report.summarize(events)["cow_per_restore"]
        assert cow["restores"] == 1
        assert cow["cow_faults_in_restored_spaces"] == 2
        assert cow["cow_faults_elsewhere"] == 1
        assert cow["per_restore_mean"] == 2.0
        assert cow["hottest"][0]["cow_faults"] == 2

    def test_zero_fills_counted_separately(self):
        events = [
            {"seq": 0, "ts": 0.0, "type": ev.SNAPSHOT_RESTORE, "sid": 1, "asid": 10},
            {"seq": 1, "ts": 0.1, "type": ev.MEM_COW_FAULT,
             "asid": 10, "vpn": 5, "kind": "zero"},
        ]
        cow = trace_report.summarize(events)["cow_per_restore"]
        assert cow["cow_faults_in_restored_spaces"] == 0
        assert cow["zero_fills_total"] == 1

    def test_empty_stream(self):
        summary = trace_report.summarize([])
        assert summary["events"] == 0
        assert summary["snapshot"]["peak_live"] == 0
        assert summary["cow_per_restore"]["per_restore_mean"] == 0.0


class TestTablesAndCli:
    def test_cli_prints_expected_tables(self, nqueens_trace, capsys):
        assert trace_report.main([nqueens_trace]) == 0
        out = capsys.readouterr().out
        for heading in (
            "Trace events",
            "Snapshot lifecycle",
            "COW faults per restore",
            "Syscalls",
            "Search",
        ):
            assert heading in out
        assert "peak_live" in out
        assert "mean per restore" in out
        assert "guess" in out

    def test_cli_json_mode_round_trips(self, nqueens_trace, capsys):
        assert trace_report.main([nqueens_trace, "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["events"] > 0
        assert summary["snapshot"]["taken"] > 0

    def test_cli_missing_file_fails(self, tmp_path, capsys):
        assert trace_report.main([str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_cli_corrupt_file_fails(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("garbage\n")
        assert trace_report.main([str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_cli_empty_file_succeeds(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert trace_report.main([str(path)]) == 0
        assert "empty trace" in capsys.readouterr().out

    def test_parallel_trace_gets_worker_table(self, tmp_path, capsys):
        from repro.core.parallel import ParallelMachineEngine

        path = str(tmp_path / "par.jsonl")
        with TRACER.to_file(path):
            ParallelMachineEngine(workers=2, quantum=64).run(nqueens_asm(4))
        assert trace_report.main([path]) == 0
        out = capsys.readouterr().out
        assert "Parallel workers" in out
