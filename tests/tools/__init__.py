"""Tests for the command-line tools."""
