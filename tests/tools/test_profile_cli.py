"""Tests for the profile CLI (repro.tools.profile)."""

import json

import pytest

from repro.core.machine import MachineEngine
from repro.obs.trace import TRACER
from repro.tools import profile as profile_cli
from repro.workloads.nqueens import nqueens_asm


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    """A sequential 5-queens trace plus the run's stats: (path, extra)."""
    path = str(tmp_path_factory.mktemp("prof") / "nq5.jsonl")
    engine = MachineEngine()
    with TRACER.to_file(path):
        result = engine.run(nqueens_asm(5))
    return path, result.stats.extra


class TestFolded:
    def test_folded_total_equals_instruction_counter(self, traced_run,
                                                     capsys):
        path, extra = traced_run
        assert profile_cli.main([path, "--folded"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert all(line.startswith("root") for line in lines)
        total = sum(int(line.rsplit(" ", 1)[1]) for line in lines)
        assert total == extra["guest_instructions"]

    def test_metric_selection(self, traced_run, capsys):
        path, _ = traced_run
        assert profile_cli.main([path, "--folded",
                                 "--metric", "cow_faults"]) == 0
        out = capsys.readouterr().out
        assert out.strip()  # 5-queens definitely COW-faults


class TestSpeedscope:
    def test_writes_valid_document(self, traced_run, tmp_path, capsys):
        path, extra = traced_run
        out_path = tmp_path / "prof.speedscope.json"
        assert profile_cli.main([path, "--speedscope", str(out_path)]) == 0
        doc = json.loads(out_path.read_text())
        assert doc["$schema"] == \
            "https://www.speedscope.app/file-format-schema.json"
        prof = doc["profiles"][0]
        assert prof["type"] == "sampled"
        assert sum(prof["weights"]) == extra["guest_instructions"]


class TestSummary:
    def test_tables_rendered(self, traced_run, capsys):
        path, _ = traced_run
        assert profile_cli.main([path]) == 0
        out = capsys.readouterr().out
        for heading in ("Profile totals", "Hotspots", "Critical path"):
            assert heading in out
        assert "replay overhead" in out

    def test_json_summary(self, traced_run, capsys):
        path, extra = traced_run
        assert profile_cli.main([path, "--json", "--top", "3"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["total_steps"] == extra["guest_instructions"]
        assert summary["skipped_lines"] == 0
        assert len(summary["hotspots"]) == 3
        assert summary["critical_path"]["nodes"]

    def test_missing_file_fails(self, tmp_path, capsys):
        assert profile_cli.main([str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_empty_trace_succeeds(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert profile_cli.main([str(path)]) == 0
        assert "empty trace" in capsys.readouterr().out

    def test_corrupt_lines_warn_but_profile(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            'garbage\n'
            '{"seq": 0, "ts": 0.0, "type": "search.fail", '
            '"depth": 1, "path": [0], "steps": 7}\n'
        )
        assert profile_cli.main([str(path), "--json"]) == 0
        captured = capsys.readouterr()
        assert "skipped 1 corrupt line" in captured.err
        summary = json.loads(captured.out)
        assert summary["skipped_lines"] == 1
        assert summary["total_steps"] == 7
