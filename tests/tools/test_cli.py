"""Tests for the run_guest and solve_cnf command-line tools."""

import pytest

from repro.sat import to_dimacs
from repro.sat.gen import pigeonhole, random_ksat
from repro.tools import run_guest, solve_cnf
from repro.workloads.nqueens import nqueens_asm


@pytest.fixture
def queens_file(tmp_path):
    path = tmp_path / "queens.s"
    path.write_text(nqueens_asm(4))
    return str(path)


class TestRunGuest:
    def test_basic_run(self, queens_file, capsys):
        assert run_guest.main([queens_file]) == 0
        out = capsys.readouterr().out
        assert "2 solution(s)" in out
        assert "snapshots:" in out

    def test_quiet(self, queens_file, capsys):
        run_guest.main([queens_file, "--quiet"])
        out = capsys.readouterr().out
        assert "snapshots:" not in out

    def test_engines(self, queens_file, capsys):
        for engine in ("snapshot", "replay", "parallel"):
            assert run_guest.main([queens_file, "--engine", engine]) == 0
            assert "2 solution(s)" in capsys.readouterr().out

    def test_process_engine(self, queens_file, capsys):
        assert run_guest.main(
            [queens_file, "--engine", "process", "--workers", "2",
             "--task-step-budget", "500"]
        ) == 0
        assert "2 solution(s)" in capsys.readouterr().out

    def test_snapshot_modes(self, queens_file, capsys):
        for mode in ("cow", "eager", "dirty-eager"):
            assert run_guest.main(
                [queens_file, "--snapshot-mode", mode]
            ) == 0
            capsys.readouterr()

    def test_strategy_option(self, queens_file, capsys):
        assert run_guest.main([queens_file, "--strategy", "bfs"]) == 0
        capsys.readouterr()

    def test_transcript_shows_failed_paths(self, tmp_path, capsys):
        path = tmp_path / "fig1.s"
        path.write_text(nqueens_asm(4, fig1_style=True))
        run_guest.main([str(path), "--transcript"])
        out = capsys.readouterr().out
        assert "[failed path]" in out

    def test_missing_file(self, capsys):
        assert run_guest.main(["/nonexistent.s"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_assembly_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.s"
        bad.write_text("frobnicate rax")
        assert run_guest.main([str(bad)]) == 2
        assert "assembly error" in capsys.readouterr().err

    def test_max_solutions(self, queens_file, capsys):
        run_guest.main([queens_file, "--max-solutions", "1"])
        assert "1 solution(s)" in capsys.readouterr().out


class TestSolveCnf:
    def write(self, tmp_path, cnf):
        path = tmp_path / "f.cnf"
        path.write_text(to_dimacs(cnf))
        return str(path)

    def test_sat_instance(self, tmp_path, capsys):
        path = self.write(tmp_path, random_ksat(10, 20, seed=1, planted=True))
        assert solve_cnf.main([path]) == 10
        assert "s SATISFIABLE" in capsys.readouterr().out

    def test_unsat_instance(self, tmp_path, capsys):
        path = self.write(tmp_path, pigeonhole(3))
        assert solve_cnf.main([path]) == 20
        assert "s UNSATISFIABLE" in capsys.readouterr().out

    def test_model_line_valid(self, tmp_path, capsys):
        cnf = random_ksat(8, 20, seed=2, planted=True)
        path = self.write(tmp_path, cnf)
        solve_cnf.main([path, "--model"])
        out = capsys.readouterr().out
        vline = next(l for l in out.splitlines() if l.startswith("v "))
        lits = [int(tok) for tok in vline[2:].split() if tok != "0"]
        model = {abs(l): l > 0 for l in lits}
        assert cnf.evaluate(model)

    def test_stats_flag(self, tmp_path, capsys):
        path = self.write(tmp_path, pigeonhole(3))
        solve_cnf.main([path, "--stats"])
        assert "c conflicts" in capsys.readouterr().out

    def test_conflict_budget_unknown(self, tmp_path, capsys):
        path = self.write(tmp_path, pigeonhole(7))
        assert solve_cnf.main([path, "--max-conflicts", "3"]) == 0
        assert "s UNKNOWN" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert solve_cnf.main(["/nope.cnf"]) == 2
