"""The seeded-bug corpus: every planted bug is found and blamed;
every clean variant is proven clean.

These run the full search on the in-process snapshot engine (the
differential battery re-checks a subset on the process engine) and
cross-validate survivors host-side: a surviving image must actually
violate the plan's rules, and a clean plan's every legal image must
satisfy them.
"""

import pytest

from repro.crashsim import run_crashfind, simulate
from repro.crashsim.model import (
    enumerate_crash_images,
    image_matches,
)
from repro.workloads.crashfs import BUGGY_PLANS, CLEAN_PLANS, CORPUS

# One report per plan per module run: the search is exhaustive, so
# every test interrogates the same result.
_reports = {}


def _report(plan):
    if plan.name not in _reports:
        _reports[plan.name] = run_crashfind(plan, engine="snapshot")
    return _reports[plan.name]


@pytest.mark.parametrize("plan", CLEAN_PLANS, ids=lambda p: p.name)
class TestCleanVariants:
    def test_zero_survivors(self, plan):
        report = _report(plan)
        assert report.survivors == []
        assert report.verdict_ok

    def test_every_legal_image_satisfies_the_rules(self, plan):
        """Host-side cross-check of the same claim, without the engine:
        enumerate every legal image at every crash point and evaluate
        the rules directly."""
        sim = simulate(plan)
        base = dict(plan.files)
        for point in range(sim.K + 1):
            rules = plan.final if point == sim.K else plan.consistent
            for frozen in enumerate_crash_images(sim.table, point):
                image = dict(frozen)
                assert image_matches(image, rules), (
                    f"{plan.name}: legal image at point {point} "
                    f"violates the rules: {image}"
                )


@pytest.mark.parametrize("plan", BUGGY_PLANS, ids=lambda p: p.name)
class TestSeededBugs:
    def test_at_least_one_surviving_state(self, plan):
        report = _report(plan)
        assert report.survivors, f"{plan.name}: seeded bug not detected"

    def test_expected_write_is_blamed(self, plan):
        report = _report(plan)
        assert report.blame_matches, (
            f"{plan.name}: no survivor blames {sorted(plan.expected_blame)}; "
            f"got {[sorted(s.blame) for s in report.survivors]}"
        )
        assert report.verdict_ok

    def test_survivor_images_violate_the_rules(self, plan):
        report = _report(plan)
        sim = simulate(plan)
        for survivor in report.survivors:
            rules = (plan.final if survivor.crash_point == sim.K
                     else plan.consistent)
            assert not image_matches(survivor.image, rules), (
                f"{plan.name}: survivor {survivor.path} is actually "
                f"consistent — the checker guest and the host rules "
                f"disagree"
            )

    def test_survivors_are_legal_crash_images(self, plan):
        """Soundness of the search itself: everything it reports must
        be a state a crash can really produce."""
        report = _report(plan)
        sim = simulate(plan)
        legal_by_point = {}
        for survivor in report.survivors:
            point = survivor.crash_point
            if point not in legal_by_point:
                legal_by_point[point] = enumerate_crash_images(
                    sim.table, point
                )
            assert frozenset(survivor.image.items()) in legal_by_point[point]


class TestCorpusShape:
    def test_at_least_six_seeded_bugs(self):
        assert len(BUGGY_PLANS) >= 6

    def test_every_family_has_a_clean_variant(self):
        families = {name.rsplit("_", 1)[0] for name in CORPUS
                    if name.endswith("_clean")}
        assert {"journaled_append", "torn_update", "rename_update",
                "block_alloc"} <= families
