"""The crashfind CLI: listing, verdicts, JSON output, exit codes."""

import dataclasses
import json

import pytest

from repro.tools.crashfind import main
from repro.workloads.crashfs import CORPUS, RENAME_UPDATE_NO_SYNC


class TestListing:
    def test_list_names_every_plan(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in CORPUS:
            assert name in out

    def test_list_marks_bug_and_clean(self, capsys):
        main(["--list"])
        out = capsys.readouterr().out
        assert "[bug" in out and "[clean]" in out


class TestVerdicts:
    def test_buggy_plan_meets_expectation(self, capsys):
        assert main(["rename_update_no_sync"]) == 0
        out = capsys.readouterr().out
        assert "survivors: 1" in out
        assert "rename" in out
        assert "verdict: OK" in out

    def test_clean_plan_meets_expectation(self, capsys):
        assert main(["torn_update_clean"]) == 0
        out = capsys.readouterr().out
        assert "survivors: 0" in out
        assert "verdict: OK" in out

    def test_mismatch_exits_one(self, capsys, monkeypatch):
        # A plan that declares itself clean but hides a seeded bug:
        # the search finds survivors, the verdict mismatches.
        lying = dataclasses.replace(
            RENAME_UPDATE_NO_SYNC, name="lying_clean",
            expect_bug=False, expected_blame=frozenset(),
        )
        monkeypatch.setitem(CORPUS, "lying_clean", lying)
        assert main(["lying_clean"]) == 1
        assert "MISMATCH" in capsys.readouterr().out


class TestJson:
    def test_json_report_shape(self, capsys):
        assert main(["rename_update_no_sync", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["plan"] == "rename_update_no_sync"
        assert payload["found_bug"] is True
        assert payload["verdict_ok"] is True
        survivor = payload["survivors"][0]
        assert survivor["blame"] == ["rename"]
        assert survivor["image"]["/cfg"] == ("41" * 8)
        assert any(entry[1] == "rename" for entry in survivor["lost"])


class TestUsageErrors:
    def test_unknown_workload(self):
        with pytest.raises(SystemExit) as exc:
            main(["no_such_plan"])
        assert exc.value.code == 2

    def test_missing_workload(self):
        with pytest.raises(SystemExit) as exc:
            main([])
        assert exc.value.code == 2

    def test_journal_requires_process_engine(self):
        with pytest.raises(SystemExit) as exc:
            main(["torn_update_clean", "--journal", "/tmp/x.journal"])
        assert exc.value.code == 2


class TestProcessEngine:
    def test_cli_process_run(self, capsys):
        assert main(["torn_update_multiblock", "--engine", "process",
                     "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "process x2" in out
        assert "verdict: OK" in out
