"""Analysis-guided crash-point pruning: skipping statically-redundant
crash points must be invisible in the report.

Three layers of evidence:

* **corpus equivalence** — for every corpus plan, the pruned search
  returns the same survivor multiset, the same blame, and the same
  verdict as the unpruned search, while exploring fewer images;
* **static mirrors** — for random write/fsync/sync/rename sequences,
  the analyzer's host-free pending/dimension computations agree with
  the file layer's at every crash point;
* **synthesis exactness** — at every pruned point of every corpus
  plan, mapping the representative's full image set back through
  :func:`~repro.analysis.crashprune.synthesize_choices` reproduces the
  pruned point's image set exactly, image bytes included;

plus the headline soundness property: a plan the analyzer proves
FS-clean has zero crashfind survivors against an exact-final-image
rule (everything it wrote really is durable).
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze, plan_pruning
from repro.analysis.crashprune import (
    image_count,
    static_dimensions,
    static_pending,
    synthesize_choices,
)
from repro.cpu.assembler import assemble
from repro.crashsim import (
    CrashPlan,
    crash_asm,
    decode_survivor,
    fs_context_for,
    run_crashfind,
    simulate,
)
from repro.libos.files import (
    O_CREAT,
    O_RDWR,
    FileTable,
    HostFS,
    crash_dimensions,
    replay_durable,
)
from repro.workloads.crashfs import CORPUS

_reports = {}


def _pair(plan):
    """(unpruned, pruned) reports for one plan, cached per module."""
    if plan.name not in _reports:
        _reports[plan.name] = (
            run_crashfind(plan, engine="snapshot"),
            run_crashfind(plan, engine="snapshot", prune=True),
        )
    return _reports[plan.name]


def _blame_multiset(report):
    return sorted(tuple(sorted(s.blame)) for s in report.survivors)


@pytest.mark.parametrize("plan", sorted(CORPUS.values(), key=lambda p: p.name),
                         ids=lambda p: p.name)
class TestPrunedEqualsUnpruned:
    def test_same_survivor_multiset(self, plan):
        plain, pruned = _pair(plan)
        assert pruned.survivor_multiset() == plain.survivor_multiset()

    def test_same_blame_and_verdict(self, plan):
        plain, pruned = _pair(plan)
        assert _blame_multiset(pruned) == _blame_multiset(plain)
        assert pruned.verdict_ok == plain.verdict_ok

    def test_same_images(self, plan):
        plain, pruned = _pair(plan)
        by_path = {s.path: s for s in plain.survivors}
        for s in pruned.survivors:
            assert s.image == by_path[s.path].image

    def test_pruning_engaged_and_strictly_cheaper(self, plan):
        _, pruned = _pair(plan)
        stats = pruned.stats
        assert stats["pruned"], f"{plan.name}: analysis declined to prune"
        assert 0 < stats["points_pruned"] < stats["points_total"]
        assert stats["images_explored"] < stats["images_total"]

    def test_survivors_at_pruned_points_are_marked_synthesized(self, plan):
        _, pruned = _pair(plan)
        sim = simulate(plan)
        prune = plan_pruning(sim.log)
        for s in pruned.survivors:
            assert s.synthesized == (s.crash_point in prune.pruned)


BLOCK = 4
BASE_FILES = {"/a": b"aaaa", "/b": b"bbbbbbbb"}

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("write"),
                  st.sampled_from(["/a", "/b", "/new"]),
                  st.integers(min_value=0, max_value=2 * BLOCK),
                  st.binary(min_size=1, max_size=2 * BLOCK)),
        st.tuples(st.just("fsync"), st.sampled_from(["/a", "/b", "/new"])),
        st.tuples(st.just("sync")),
        st.tuples(st.just("rename"),
                  st.sampled_from([("/a", "/a2"), ("/b", "/b2")])),
    ),
    min_size=0, max_size=7,
)


def _drive(ops):
    table = FileTable(HostFS(dict(BASE_FILES), block_size=BLOCK))
    fds = {
        "/a": table.open("/a", O_RDWR),
        "/b": table.open("/b", O_RDWR),
        "/new": table.open("/new", O_CREAT | O_RDWR),
    }
    for op in ops:
        if op[0] == "write":
            _, path, off, data = op
            table.lseek(fds[path], off, 0)
            table.write(fds[path], data)
        elif op[0] == "fsync":
            table.fsync(fds[op[1]])
        elif op[0] == "sync":
            table.sync()
        else:
            table.rename(*op[1])
    return table


@settings(max_examples=60, deadline=None)
@given(_ops)
def test_static_mirrors_match_file_layer(ops):
    """static_pending/static_dimensions must agree with the live table
    at every crash point — they are what pruning's soundness rests on."""
    table = _drive(ops)
    log = table.oplog
    for point in range(len(log) + 1):
        # Pending only depends on the log itself, not the base state.
        _ns, _data, pending = replay_durable(log, {}, {}, point, BLOCK)
        got = static_pending(log, point)
        assert got == list(pending), f"pending diverges at {point}"
        assert static_dimensions(got) == crash_dimensions(pending)
    table.free()


@settings(max_examples=60, deadline=None)
@given(_ops)
def test_pruned_points_have_exact_representatives(ops):
    """Every pruned point's image count is dominated by (for an
    up-step) or equals (for a down-step chain) what its representative
    can synthesize — the cheap cardinality shadow of exactness."""
    table = _drive(ops)
    log = table.oplog
    prune = plan_pruning(log)
    assert sorted(prune.kept + prune.pruned) == list(range(len(log) + 1))
    assert len(log) in prune.kept  # final point always answers for itself
    for point in prune.pruned:
        rep = prune.representative(point)
        assert rep in prune.kept
        assert image_count(log, point) <= image_count(log, rep)
    table.free()


def _all_choice_vectors(log, point):
    dims = static_dimensions(static_pending(log, point))
    vectors = [()]
    for _key, recs in dims:
        n = len(recs) + 1 if recs[0][0] == "write" else 2
        vectors = [v + (k,) for v in vectors for k in range(n)]
    return vectors


@pytest.mark.parametrize("plan", sorted(CORPUS.values(), key=lambda p: p.name),
                         ids=lambda p: p.name)
def test_synthesis_recovers_every_pruned_image_exactly(plan):
    """Ground truth for the embedding: decode every choice vector at
    the representative, map it back, and the decoded images at the
    pruned point must form exactly the pruned point's image set —
    byte-identical, no extras, none missing."""
    sim = simulate(plan)
    prune = plan_pruning(sim.log)
    for point in prune.pruned:
        rep = prune.representative(point)
        want = {
            frozenset(
                decode_survivor(sim, (point, *v)).image.items()
            )
            for v in _all_choice_vectors(sim.log, point)
        }
        got = set()
        for v in _all_choice_vectors(sim.log, rep):
            back = synthesize_choices(prune, point, v)
            if back is None:
                continue
            rep_image = decode_survivor(sim, (rep, *v)).image
            image = decode_survivor(sim, (point, *back)).image
            assert image == rep_image, (
                f"{plan.name}: image changed across the embedding "
                f"at point {point} (rep {rep})"
            )
            got.add(frozenset(image.items()))
        assert got == want, (
            f"{plan.name}: synthesized image set at point {point} "
            f"!= direct enumeration"
        )


# ----------------------------------------------------------------------
# FS-clean => zero survivors (the headline soundness property)
# ----------------------------------------------------------------------

_plan_ops = st.lists(
    st.one_of(
        st.tuples(st.just("pwrite"), st.sampled_from([3, 4]),
                  st.integers(min_value=0, max_value=8),
                  st.binary(min_size=1, max_size=8)),
        st.tuples(st.just("fsync"), st.sampled_from([3, 4])),
        st.tuples(st.just("sync")),
    ),
    min_size=0, max_size=5,
)


def _random_plan(body, rename_new, final_sync):
    ops = [("open", "/a", O_RDWR), ("open", "/new", O_CREAT | O_RDWR)]
    for i, op in enumerate(body):
        if op[0] == "pwrite":
            _, fd, off, data = op
            ops.append(("pwrite", fd, off, data, f"w{i}"))
        else:
            ops.append(op)
    if rename_new:
        ops.append(("rename", "/new", "/moved", "publish"))
    if final_sync:
        ops.append(("sync",))
    skeleton = CrashPlan(
        name="hypo", files=(("/a", b"x" * 8),), ops=tuple(ops),
        consistent=((),), final=((),), expect_bug=False,
    )
    sim = simulate(skeleton)
    merged = {p: sim.table.contents(p) for p in sim.table.paths()}
    final = (tuple((path, (data,)) for path, data in sorted(merged.items())),)
    return dataclasses.replace(skeleton, final=final)


@settings(max_examples=25, deadline=None)
@given(_plan_ops, st.booleans(), st.booleans())
def test_fs_clean_plans_have_zero_survivors(body, rename_new, final_sync):
    """If the static analyzer proves a generated plan FS-clean, the
    exhaustive crash search against an exact-final-image rule finds
    nothing — pruned or not."""
    plan = _random_plan(body, rename_new, final_sync)
    report = analyze(
        assemble(crash_asm(plan)), fs_context=fs_context_for(plan)
    )
    assert report.fs is not None
    if not report.fs.fs_clean:
        return
    for prune in (False, True):
        result = run_crashfind(plan, engine="snapshot", prune=prune)
        assert not result.survivors, (
            f"FS-clean plan has survivors (prune={prune}): "
            f"{[s.path for s in result.survivors]}"
        )
