"""Host-side model: plan simulation, rules, survivor decoding."""

import dataclasses

import pytest

from repro.crashsim import (
    ABSENT,
    CrashPlan,
    crash_asm,
    decode_survivor,
    run_crashfind,
    simulate,
)
from repro.crashsim.model import image_matches, replay_table
from repro.libos.files import O_CREAT, O_RDWR
from repro.workloads.crashfs import (
    BLOCK_ALLOC_DOUBLE_FREE,
    CORPUS,
    JOURNALED_APPEND_CLEAN,
    RENAME_UPDATE_NO_SYNC,
)


class TestSimulate:
    def test_log_and_tags(self):
        sim = simulate(JOURNALED_APPEND_CLEAN)
        kinds = [rec[0] for rec in sim.log]
        assert kinds == ["create", "write", "fsync", "write", "fsync",
                         "write", "fsync"]
        assert sim.K == 7
        tagged = {sim.tags[rec[1]] for rec in sim.log if rec[1] in sim.tags}
        assert tagged == {"create:/journal", "journal-entry",
                          "journal-commit", "db-data"}

    def test_table_reflects_final_state(self):
        sim = simulate(JOURNALED_APPEND_CLEAN)
        assert sim.table.contents("/db") == b"B" * 8
        assert sim.table.contents("/journal") == b"B" * 8 + b"C" + bytes(7)

    def test_wrong_fd_assumption_is_rejected(self):
        plan = dataclasses.replace(
            JOURNALED_APPEND_CLEAN,
            name="bad_fd",
            ops=(
                ("open", "/journal", O_CREAT | O_RDWR),   # fd 3, not 4
                ("pwrite", 4, 0, b"x", "oops"),
            ),
        )
        with pytest.raises(ValueError, match="lseek"):
            replay_table(plan)

    def test_failed_open_is_rejected(self):
        plan = dataclasses.replace(
            JOURNALED_APPEND_CLEAN,
            name="bad_open",
            ops=(("open", "/missing", O_RDWR),),
        )
        with pytest.raises(ValueError, match="returned fd"):
            replay_table(plan)

    def test_unknown_op_is_rejected(self):
        plan = dataclasses.replace(
            JOURNALED_APPEND_CLEAN, name="bad_op", ops=(("truncate", 3),)
        )
        with pytest.raises(ValueError, match="unknown op"):
            replay_table(plan)


class TestRules:
    def test_alternatives_and_absent(self):
        rules = ((("/a", (b"x", ABSENT)),),)
        assert image_matches({"/a": b"x"}, rules)
        assert image_matches({}, rules)
        assert not image_matches({"/a": b"y"}, rules)

    def test_conjunction_within_rule(self):
        rules = ((("/a", (b"x",)), ("/b", (b"y",))),)
        assert image_matches({"/a": b"x", "/b": b"y"}, rules)
        assert not image_matches({"/a": b"x", "/b": b"z"}, rules)
        assert not image_matches({"/a": b"x"}, rules)  # /b missing

    def test_disjunction_across_rules(self):
        rules = (
            (("/a", (b"x",)),),
            (("/a", (b"y",)),),
        )
        assert image_matches({"/a": b"y"}, rules)
        assert not image_matches({"/a": b"z"}, rules)


class TestCodegen:
    def test_empty_rules_are_rejected(self):
        for field in ("consistent", "final"):
            plan = dataclasses.replace(
                JOURNALED_APPEND_CLEAN, name="empty", **{field: ()}
            )
            with pytest.raises(ValueError, match="non-empty"):
                crash_asm(plan)

    def test_every_corpus_plan_assembles(self):
        from repro.cpu.assembler import assemble

        for plan in CORPUS.values():
            program = assemble(crash_asm(plan))
            assert len(program.text) > 0


class TestDecodeSurvivor:
    def test_lost_records_and_blame(self):
        sim = simulate(RENAME_UPDATE_NO_SYNC)
        survivor = decode_survivor(sim, (4, 0))  # crash at end, rename lost
        assert survivor.crash_point == 4
        assert survivor.blame == frozenset(("rename",))
        assert [tag for _seq, tag, _d in survivor.lost] == ["rename"]
        assert survivor.image["/cfg"] == b"A" * 8
        assert survivor.image["/cfg.tmp"] == b"B" * 8

    def test_blame_falls_to_last_write_when_nothing_lost(self):
        # The double-free image is complete *and* inconsistent: the
        # blame convention pins the last tagged record the image kept.
        report = run_crashfind(BLOCK_ALLOC_DOUBLE_FREE, engine="snapshot")
        final = [s for s in report.survivors
                 if s.crash_point == report.crash_points - 1]
        assert final, "the completed buggy state must survive"
        assert all(not s.lost for s in final)
        assert all(s.blame == frozenset(("meta-commit",)) for s in final)

    def test_bad_path_is_rejected(self):
        sim = simulate(RENAME_UPDATE_NO_SYNC)
        with pytest.raises(ValueError):
            decode_survivor(sim, ())
        with pytest.raises(ValueError):
            decode_survivor(sim, (4, 0, 0))  # too many choices

    def test_decode_leaves_sim_table_untouched(self):
        sim = simulate(RENAME_UPDATE_NO_SYNC)
        before = (sim.table.oplog, sim.table.contents("/cfg"),
                  sim.table.paths())
        decode_survivor(sim, (4, 0))
        after = (sim.table.oplog, sim.table.contents("/cfg"),
                 sim.table.paths())
        assert before == after


class TestPlanValidation:
    def test_corpus_plans_have_distinct_names(self):
        assert len(CORPUS) == 10

    def test_buggy_plans_declare_blame(self):
        for plan in CORPUS.values():
            if plan.expect_bug:
                assert plan.expected_blame, plan.name

    def test_plan_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            JOURNALED_APPEND_CLEAN.name = "other"
