"""Differential battery: the surviving-state multiset is a property of
the plan, not of the engine that searched it.

The same plan must yield identical survivor multisets (sorted guess
paths) on the in-process snapshot engine, on the process-parallel
engine at 1, 2 and 3 workers (crash tasks shard like any other
prefix), and on a journaled run whose coordinator is killed mid-search
and resumed.
"""

import pytest

from repro.chaos import FaultPlan
from repro.core.errors import CoordinatorKilled
from repro.crashsim import run_crashfind
from repro.workloads.crashfs import CORPUS

#: One buggy and one clean plan per family keeps the battery honest
#: without running every plan on every engine.
_DIFF_PLANS = [
    "journaled_append_clean",
    "journaled_append_missing_fsync",
    "torn_update_multiblock",
    "rename_update_no_sync",
    "block_alloc_double_free",
]


@pytest.fixture(scope="module")
def baselines():
    return {
        name: run_crashfind(CORPUS[name], engine="snapshot")
        .survivor_multiset()
        for name in _DIFF_PLANS
    }


@pytest.mark.parametrize("workers", [1, 2, 3])
def test_process_engine_matches_snapshot(baselines, workers):
    for name in _DIFF_PLANS:
        report = run_crashfind(CORPUS[name], engine="process",
                               workers=workers)
        assert report.survivor_multiset() == baselines[name], (
            f"{name}: process x{workers} diverged from snapshot"
        )


def test_killed_and_resumed_run_matches(baselines, tmp_path):
    """kill -9 the coordinator mid-search, resume from the journal:
    the completed run must report the same surviving states."""
    name = "journaled_append_missing_fsync"
    plan = CORPUS[name]
    journal = str(tmp_path / "crash.journal")
    with pytest.raises(CoordinatorKilled):
        run_crashfind(plan, engine="process", workers=2,
                      journal=journal,
                      chaos=FaultPlan(coordinator_kill_epoch=2),
                      task_step_budget=150, batch_size=1)
    report = run_crashfind(plan, engine="process", workers=2,
                           journal=journal, resume=True,
                           task_step_budget=150, batch_size=1)
    assert report.survivor_multiset() == baselines[name]
    assert report.verdict_ok


def test_blame_is_engine_independent(baselines):
    """Decoded blame rides on the guess path alone, so it must agree
    across engines too."""
    name = "rename_update_no_sync"
    snap = run_crashfind(CORPUS[name], engine="snapshot")
    proc = run_crashfind(CORPUS[name], engine="process", workers=2)
    assert ([sorted(s.blame) for s in snap.survivors]
            == [sorted(s.blame) for s in proc.survivors])
