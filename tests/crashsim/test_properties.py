"""Property tests: the crash-state enumeration is sound and complete.

The file layer enumerates crash images as a product of per-dimension
options (:func:`~repro.libos.files.crash_dimensions`); the model
module enumerates them by brute-force subset generation with an
explicit prefix-closure legality check
(:func:`~repro.crashsim.model.reference_legal_images`).  For random
write/fsync/sync/rename sequences the two must agree exactly, at
every crash point:

* **soundness** — every image the file layer produces is legal;
* **completeness** — every legal image is produced.

Both directions are one set equality.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crashsim.model import (
    enumerate_crash_images,
    reference_legal_images,
)
from repro.libos.files import O_CREAT, O_RDWR, FileTable, HostFS

BLOCK = 4
BASE_FILES = {"/a": b"aaaa", "/b": b"bbbbbbbb"}

# Small alphabet of operations over two pre-existing files and one
# created file; offsets reach into a third block so multi-block writes
# and zero-extension both occur.
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("write"),
                  st.sampled_from(["/a", "/b", "/new"]),
                  st.integers(min_value=0, max_value=2 * BLOCK),
                  st.binary(min_size=1, max_size=2 * BLOCK)),
        st.tuples(st.just("fsync"), st.sampled_from(["/a", "/b", "/new"])),
        st.tuples(st.just("sync")),
        st.tuples(st.just("rename"),
                  st.sampled_from([("/a", "/a2"), ("/b", "/b2"),
                                   ("/new", "/new2")])),
    ),
    min_size=0, max_size=6,
)


def _drive(ops):
    """Run a random op sequence; returns the table and its fd map."""
    table = FileTable(HostFS(dict(BASE_FILES), block_size=BLOCK))
    fds = {
        "/a": table.open("/a", O_RDWR),
        "/b": table.open("/b", O_RDWR),
        "/new": table.open("/new", O_CREAT | O_RDWR),
    }
    for op in ops:
        if op[0] == "write":
            _, path, off, data = op
            assert table.lseek(fds[path], off, 0) == off
            assert table.write(fds[path], data) == len(data)
        elif op[0] == "fsync":
            assert table.fsync(fds[op[1]]) >= 0
        elif op[0] == "sync":
            table.sync()
        else:  # rename (may fail with -ENOENT after a prior rename)
            table.rename(*op[1])
    return table


@settings(max_examples=60, deadline=None)
@given(_ops)
def test_enumeration_sound_and_complete(ops):
    table = _drive(ops)
    log = table.oplog
    for point in range(len(log) + 1):
        got = enumerate_crash_images(table, point)
        want = reference_legal_images(log, point, BASE_FILES, BLOCK)
        assert got == want, f"divergence at crash point {point}"


@settings(max_examples=60, deadline=None)
@given(_ops)
def test_durable_state_is_a_legal_image(ops):
    """The 'everything pending lost' image (all-zero choices) is the
    guaranteed-durable state, and the merged view (nothing lost) is
    another legal image — both must be in the enumerated set."""
    table = _drive(ops)
    point = len(table.oplog)
    images = enumerate_crash_images(table, point)
    durable = frozenset(
        (path, table.durable_contents(path))
        for path in table.durable_paths()
    )
    merged = frozenset(
        (path, table.contents(path)) for path in table.paths()
    )
    assert durable in images
    assert merged in images


@settings(max_examples=40, deadline=None)
@given(_ops, _ops)
def test_fork_isolation_with_page_cache(parent_ops, child_ops):
    """A fork's writes — flushed or pending — never leak back into the
    parent: the parent's merged view, log, and crash-image set are
    unchanged by anything the child does."""
    table = _drive(parent_ops)
    point = len(table.oplog)
    before_view = {p: table.contents(p) for p in table.paths()}
    before_log = table.oplog
    before_images = enumerate_crash_images(table, point)

    child = table.fork_cow()
    for op in child_ops:
        if op[0] == "write":
            _, path, off, data = op
            fd = child.open(path, O_CREAT | O_RDWR)
            if fd >= 0:
                child.lseek(fd, off, 0)
                child.write(fd, data)
        elif op[0] == "fsync":
            fd = child.open(op[1], O_CREAT | O_RDWR)
            if fd >= 0:
                child.fsync(fd)
        elif op[0] == "sync":
            child.sync()
        else:
            child.rename(*op[1])

    assert {p: table.contents(p) for p in table.paths()} == before_view
    assert table.oplog == before_log
    assert enumerate_crash_images(table, point) == before_images
    child.free()
