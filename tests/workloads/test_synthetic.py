"""Cross-implementation agreement for the synthetic E3 kernel."""

import pytest

from repro import ReplayEngine
from repro.core.machine import MachineEngine
from repro.core.replay_machine import ReplayMachineEngine
from repro.workloads.synthetic import (
    synthetic_asm,
    synthetic_handcoded,
    synthetic_python_guest,
)


class TestSynthetic:
    @pytest.mark.parametrize("depth,fanout", [(2, 2), (3, 3), (4, 2)])
    def test_all_implementations_agree(self, depth, fanout):
        expected = fanout ** depth
        assert synthetic_handcoded(depth, fanout, 10, 1) == expected
        machine = MachineEngine().run(synthetic_asm(depth, fanout, 10, 1))
        assert len(machine.solutions) == expected
        replay_m = ReplayMachineEngine().run(synthetic_asm(depth, fanout, 10, 1))
        assert len(replay_m.solutions) == expected
        replay_p = ReplayEngine().run(
            synthetic_python_guest, depth, fanout, 10, 1
        )
        assert len(replay_p.solutions) == expected

    def test_path_values_distinct(self):
        result = MachineEngine().run(synthetic_asm(3, 2, 5, 1))
        codes = sorted(v[0] for v in result.solution_values)
        assert codes == list(range(8))

    def test_replay_executes_more_instructions(self):
        source = synthetic_asm(4, 2, 500, 1)
        snap = MachineEngine().run(source)
        replay = ReplayMachineEngine().run(source)
        assert (
            replay.stats.extra["guest_instructions"]
            > 2 * snap.stats.extra["guest_instructions"]
        )

    def test_cow_copies_track_pages_touched(self):
        few = MachineEngine().run(synthetic_asm(3, 2, 10, 1))
        many = MachineEngine().run(synthetic_asm(3, 2, 10, 8))
        assert (
            many.stats.extra["frames_copied"]
            > 3 * few.stats.extra["frames_copied"]
        )

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            synthetic_asm(0, 2, 1, 1)
        with pytest.raises(ValueError):
            synthetic_asm(2, 0, 1, 1)


class TestReplayMachineEngine:
    def test_nqueens_agreement(self):
        from repro.workloads.nqueens import (
            KNOWN_SOLUTION_COUNTS,
            boards_from_result,
            nqueens_asm,
        )

        snap = MachineEngine().run(nqueens_asm(5))
        replay = ReplayMachineEngine().run(nqueens_asm(5))
        assert len(replay.solutions) == KNOWN_SOLUTION_COUNTS[5]
        assert sorted(boards_from_result(snap)) == sorted(
            boards_from_result(replay)
        )

    def test_solution_paths_match(self):
        source = synthetic_asm(3, 2, 1, 1)
        snap = MachineEngine().run(source)
        replay = ReplayMachineEngine().run(source)
        assert sorted(s.path for s in snap.solutions) == sorted(
            s.path for s in replay.solutions
        )

    def test_budgets(self):
        source = synthetic_asm(5, 2, 1, 1)
        result = ReplayMachineEngine(max_solutions=3).run(source)
        assert len(result.solutions) == 3
        assert not result.exhausted

    def test_replayed_decisions_counted(self):
        result = ReplayMachineEngine().run(synthetic_asm(3, 2, 1, 1))
        assert result.stats.replayed_decisions > 0
