"""Tests for the workload guests."""
