"""Tests for the workload guests (n-queens, sudoku, coloring, puzzles)."""

import pytest

from repro import ReplayEngine
from repro.core.machine import MachineEngine
from repro.workloads.coloring import (
    PETERSEN_EDGES,
    PETERSEN_NODES,
    WHEEL5_EDGES,
    WHEEL5_NODES,
    coloring_guest,
    is_proper_coloring,
)
from repro.workloads.knapsack import (
    knapsack_guest,
    random_instance,
    subset_sum_guest,
)
from repro.workloads.nqueens import (
    KNOWN_SOLUTION_COUNTS,
    is_valid_board,
    nqueens_python,
)
from repro.workloads.puzzle8 import (
    GOAL,
    apply_move,
    manhattan,
    puzzle_guest,
    scramble,
    successors,
)
from repro.workloads.sudoku import (
    is_valid_solution,
    make_puzzle,
    sudoku_guest,
)


class TestNQueensPython:
    @pytest.mark.parametrize("n", [4, 5, 6])
    def test_counts(self, n):
        result = ReplayEngine().run(nqueens_python, n)
        assert len(result.solutions) == KNOWN_SOLUTION_COUNTS[n]

    def test_boards_valid(self):
        result = ReplayEngine().run(nqueens_python, 5)
        assert all(is_valid_board(b) for b in result.solution_values)

    def test_python_and_machine_agree(self):
        from repro.workloads.nqueens import boards_from_result, nqueens_asm

        py = ReplayEngine().run(nqueens_python, 5)
        asm = MachineEngine().run(nqueens_asm(5))
        assert sorted(py.solution_values) == sorted(boards_from_result(asm))


class TestSudoku:
    def test_solves_generated_puzzle(self):
        puzzle = make_puzzle(blanks=8, seed=1)
        result = ReplayEngine(max_solutions=1).run(sudoku_guest, puzzle)
        assert result.first is not None
        assert is_valid_solution(result.first.value)

    def test_solution_respects_givens(self):
        puzzle = make_puzzle(blanks=6, seed=2)
        result = ReplayEngine(max_solutions=1).run(sudoku_guest, puzzle)
        solution = result.first.value
        for given, got in zip(puzzle, solution):
            if given != "0":
                assert given == got

    def test_full_grid_needs_no_guess(self):
        solved = make_puzzle(blanks=0, seed=3)
        result = ReplayEngine().run(sudoku_guest, solved)
        assert result.stats.candidates == 0
        assert result.solution_values == [solved]

    def test_bad_grid_length_raises(self):
        with pytest.raises(ValueError):
            ReplayEngine().run(sudoku_guest, "123")

    def test_validator_rejects_bad_grid(self):
        assert not is_valid_solution("1111222233334444")

    def test_puzzle_generator_deterministic(self):
        assert make_puzzle(4, seed=9) == make_puzzle(4, seed=9)


class TestColoring:
    def test_wheel5_needs_four_colors(self):
        three = ReplayEngine(max_solutions=1).run(
            coloring_guest, WHEEL5_NODES, WHEEL5_EDGES, 3
        )
        four = ReplayEngine(max_solutions=1).run(
            coloring_guest, WHEEL5_NODES, WHEEL5_EDGES, 4
        )
        assert not three
        assert four

    def test_petersen_three_colorable(self):
        result = ReplayEngine(max_solutions=1).run(
            coloring_guest, PETERSEN_NODES, PETERSEN_EDGES, 3
        )
        assert result
        assert is_proper_coloring(result.first.value, PETERSEN_EDGES)

    def test_agrees_with_sat_encoding(self):
        from repro.sat import Solver
        from repro.sat.gen import graph_coloring

        for colors in (2, 3):
            guest = ReplayEngine(max_solutions=1).run(
                coloring_guest, PETERSEN_NODES, PETERSEN_EDGES, colors
            )
            cnf = graph_coloring(PETERSEN_NODES, PETERSEN_EDGES, colors)
            solver = Solver()
            for clause in cnf.clauses:
                solver.add_clause(clause)
            assert bool(guest) == bool(solver.solve().sat)


class TestPuzzle8:
    def test_manhattan_zero_at_goal(self):
        assert manhattan(GOAL) == 0

    def test_manhattan_positive_off_goal(self):
        assert manhattan(scramble(6, seed=1)) > 0

    def test_successors_reversible(self):
        board = scramble(5, seed=2)
        for succ in successors(board):
            assert board in successors(succ)

    def test_apply_move_swaps(self):
        board = apply_move(GOAL, 5)  # slide tile 6 into the blank
        assert board[8] == 6 and board[5] == 0

    def test_astar_solves_optimally(self):
        start = scramble(10, seed=4)
        bfs = ReplayEngine("bfs", max_solutions=1).run(
            puzzle_guest, start, 12, False
        )
        astar = ReplayEngine("astar", max_solutions=1).run(
            puzzle_guest, start, 12, True
        )
        assert bfs and astar
        assert len(astar.first.value) == len(bfs.first.value)
        assert astar.stats.evaluations <= bfs.stats.evaluations

    def test_goal_start_trivial(self):
        result = ReplayEngine(max_solutions=1).run(puzzle_guest, GOAL, 4, True)
        assert result.first.value == (GOAL,)


class TestSubsetSum:
    def test_finds_witness(self):
        values, target = random_instance(10, seed=5)
        result = ReplayEngine(max_solutions=1).run(
            subset_sum_guest, values, target
        )
        assert result.first is not None
        assert sum(result.first.value) == target

    def test_enumerates_all_subsets(self):
        result = ReplayEngine().run(subset_sum_guest, [1, 2, 3, 4], 5)
        found = sorted(tuple(sorted(v)) for v in result.solution_values)
        assert found == [(1, 4), (2, 3)]

    def test_impossible_target(self):
        result = ReplayEngine().run(subset_sum_guest, [2, 4, 6], 5)
        assert not result

    def test_knapsack_respects_capacity(self):
        weights = [3, 5, 7, 2]
        profits = [4, 6, 9, 2]
        result = ReplayEngine().run(knapsack_guest, weights, profits, 10, 10)
        assert result
        for picks in result.solution_values:
            assert sum(weights[i] for i in picks) <= 10
            assert sum(profits[i] for i in picks) >= 10

    def test_knapsack_infeasible_profit(self):
        result = ReplayEngine().run(knapsack_guest, [1], [1], 10, 99)
        assert not result
