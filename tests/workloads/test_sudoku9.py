"""9x9 sudoku: the generic grid machinery at full size."""

import pytest

from repro import ReplayEngine
from repro.workloads.sudoku import is_valid_solution, make_puzzle, sudoku_guest


class TestSudoku9x9:
    def test_generator_produces_valid_base(self):
        solved = make_puzzle(blanks=0, seed=4, size=9, box_rows=3, box_cols=3)
        assert is_valid_solution(solved, size=9, box_rows=3, box_cols=3)

    def test_solves_sparse_puzzle(self):
        puzzle = make_puzzle(blanks=10, seed=7, size=9, box_rows=3, box_cols=3)
        result = ReplayEngine(max_solutions=1).run(
            sudoku_guest, puzzle, 9, 3, 3
        )
        assert result.first is not None
        solution = result.first.value
        assert is_valid_solution(solution, size=9, box_rows=3, box_cols=3)
        for given, got in zip(puzzle, solution):
            if given != "0":
                assert given == got

    def test_machine_strategy_choice_does_not_matter(self):
        puzzle = make_puzzle(blanks=8, seed=2, size=9, box_rows=3, box_cols=3)
        dfs = ReplayEngine("dfs", max_solutions=1).run(
            sudoku_guest, puzzle, 9, 3, 3
        )
        bfs = ReplayEngine("bfs", max_solutions=1).run(
            sudoku_guest, puzzle, 9, 3, 3
        )
        assert is_valid_solution(dfs.first.value, 9, 3, 3)
        assert is_valid_solution(bfs.first.value, 9, 3, 3)
