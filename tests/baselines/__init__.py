"""Tests for the comparison baselines."""
