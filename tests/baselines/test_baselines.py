"""Tests for hand-coded, eager-fork and checkpoint baselines."""

import pytest

from repro.baselines import (
    Checkpointer,
    EagerSnapshotManager,
    handcoded_nqueens_boards,
    handcoded_nqueens_count,
)
from repro.baselines.handcoded import handcoded_search
from repro.core.machine import MachineEngine
from repro.mem import AddressSpace, FramePool, PAGE_SIZE, Permission
from repro.workloads.nqueens import (
    KNOWN_SOLUTION_COUNTS,
    boards_from_result,
    nqueens_asm,
)

BASE = 0x40_0000


class TestHandcoded:
    @pytest.mark.parametrize("n", [4, 5, 6, 7, 8])
    def test_counts(self, n):
        assert handcoded_nqueens_count(n) == KNOWN_SOLUTION_COUNTS[n]

    def test_boards_match_machine_engine(self):
        result = MachineEngine().run(nqueens_asm(6))
        assert sorted(handcoded_nqueens_boards(6)) == sorted(
            boards_from_result(result)
        )

    def test_generic_search(self):
        # 3-digit strings with no repeated adjacent digit, base 3.
        count = handcoded_search(
            fanout=lambda prefix: 3,
            check=lambda p: len(p) < 2 or p[-1] != p[-2],
            depth=3,
        )
        assert count == 3 * 2 * 2

    def test_generic_search_collects_solutions(self):
        seen = []
        handcoded_search(lambda p: 2, lambda p: True, 2, on_solution=seen.append)
        assert sorted(seen) == [(0, 0), (0, 1), (1, 0), (1, 1)]


class TestEagerManager:
    def test_take_copies_all_frames(self):
        mgr = EagerSnapshotManager()
        space = AddressSpace(mgr.pool)
        space.map_region(BASE, 8 * PAGE_SIZE, Permission.RW, eager=True)
        live = mgr.pool.live_frames
        mgr.take(space)
        assert mgr.pool.live_frames == live + 8

    def test_restore_copies_again(self):
        mgr = EagerSnapshotManager()
        space = AddressSpace(mgr.pool)
        space.map_region(BASE, 4 * PAGE_SIZE, Permission.RW, eager=True)
        snap = mgr.take(space)
        live = mgr.pool.live_frames
        _, restored, _ = mgr.restore(snap)
        assert mgr.pool.live_frames == live + 4
        restored.write(BASE, b"x")
        assert snap.space.read(BASE, 1) == b"\x00"

    def test_engine_parity_with_cow(self):
        cow = MachineEngine(snapshot_mode="cow").run(nqueens_asm(4))
        eager = MachineEngine(snapshot_mode="eager").run(nqueens_asm(4))
        assert sorted(boards_from_result(cow)) == sorted(boards_from_result(eager))

    def test_eager_copies_dominate_cow(self):
        cow = MachineEngine(snapshot_mode="cow").run(nqueens_asm(5))
        eager = MachineEngine(snapshot_mode="eager").run(nqueens_asm(5))
        assert (
            eager.stats.extra["frames_copied"]
            > 10 * cow.stats.extra["frames_copied"]
        )
        assert (
            eager.stats.extra["frames_peak"] > cow.stats.extra["frames_peak"]
        )

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="snapshot_mode"):
            MachineEngine(snapshot_mode="magic")


class TestDirtyEagerManager:
    def test_engine_parity_with_cow(self):
        cow = MachineEngine(snapshot_mode="cow").run(nqueens_asm(4))
        dirty = MachineEngine(snapshot_mode="dirty-eager").run(nqueens_asm(4))
        assert sorted(boards_from_result(cow)) == sorted(
            boards_from_result(dirty)
        )

    def test_restore_precopies_recorded_dirty_set(self):
        from repro.baselines.dirty import DirtyEagerSnapshotManager

        mgr = DirtyEagerSnapshotManager()
        space = AddressSpace(mgr.pool)
        space.map_region(BASE, 8 * PAGE_SIZE, Permission.RW)
        space.write(BASE, b"dirty")
        space.write(BASE + 3 * PAGE_SIZE, b"dirty")
        snap = mgr.take(space)
        assert snap.meta["dirty"] == {BASE >> 12, (BASE >> 12) + 3}
        assert space.dirty_vpns == set()
        before = mgr.eager_copies
        _, child, _ = mgr.restore(snap)
        assert mgr.eager_copies == before + 2
        # The pre-copied pages are immediately writable without faults.
        faults_before = child.faults.cow_faults
        child.write(BASE, b"x")
        assert child.faults.cow_faults == faults_before

    def test_snapshot_still_immutable(self):
        from repro.baselines.dirty import DirtyEagerSnapshotManager

        mgr = DirtyEagerSnapshotManager()
        space = AddressSpace(mgr.pool)
        space.map_region(BASE, 2 * PAGE_SIZE, Permission.RW)
        space.write(BASE, b"orig")
        snap = mgr.take(space)
        _, child, _ = mgr.restore(snap)
        child.write(BASE, b"DIFF")
        assert snap.space.read(BASE, 4) == b"orig"

    def test_dirty_tracking_in_addrspace(self):
        pool = FramePool()
        space = AddressSpace(pool)
        space.map_region(BASE, 4 * PAGE_SIZE, Permission.RW)
        space.write(BASE + PAGE_SIZE, b"x")
        space.write(BASE + PAGE_SIZE + 1, b"y")  # same page: one entry
        assert space.dirty_vpns == {(BASE >> 12) + 1}


class TestCheckpointer:
    def make_space(self, pool):
        space = AddressSpace(pool)
        space.map_region(BASE, 2 * PAGE_SIZE, Permission.RX, data=b"CODE")
        space.map_region(0x60_0000, 2 * PAGE_SIZE, Permission.RW, data=b"DATA")
        return space

    def test_roundtrip_preserves_content_and_perms(self):
        pool = FramePool()
        ck = Checkpointer()
        space = self.make_space(pool)
        restored = ck.restore(ck.checkpoint(space), pool)
        assert restored.read(BASE, 4) == b"CODE"
        assert restored.read(0x60_0000, 4) == b"DATA"
        assert restored.table.lookup(BASE >> 12).perms == Permission.RX
        assert space.content_equal(restored)

    def test_blob_size_proportional_to_image(self):
        pool = FramePool()
        ck = Checkpointer()
        space = self.make_space(pool)
        blob = ck.checkpoint(space)
        assert len(blob) >= 4 * PAGE_SIZE

    def test_restore_is_independent_copy(self):
        pool = FramePool()
        ck = Checkpointer()
        space = self.make_space(pool)
        restored = ck.restore(ck.checkpoint(space), pool)
        restored.write(0x60_0000, b"diff")
        assert space.read(0x60_0000, 4) == b"DATA"

    def test_bad_blob_rejected(self):
        ck = Checkpointer()
        with pytest.raises(ValueError):
            ck.restore(b"nope", FramePool())

    def test_truncated_blob_rejected(self):
        pool = FramePool()
        ck = Checkpointer()
        blob = ck.checkpoint(self.make_space(pool))
        with pytest.raises(Exception):
            ck.restore(blob[:-10], FramePool())

    def test_stats(self):
        pool = FramePool()
        ck = Checkpointer()
        blob = ck.checkpoint(self.make_space(pool))
        ck.restore(blob, pool)
        assert ck.stats.checkpoints == 1
        assert ck.stats.restores == 1
        assert ck.stats.bytes_serialized == len(blob)
