"""Unit tests for the VCpu VM-entry/exit boundary."""

import pytest

from repro.cpu import assemble
from repro.libos.loader import load_program
from repro.mem import FramePool
from repro.vmm import Ring, VCpu, VmExitReason


def boot(source, pool=None):
    program = assemble(source)
    pool = pool or FramePool()
    space, regs = load_program(program, pool)
    vcpu = VCpu()
    vcpu.regs.load(regs.frozen())
    vcpu.attach(space)
    return vcpu, space


class TestEnter:
    def test_hlt_exit(self):
        vcpu, _ = boot("mov rax, 5\nhlt")
        exit_event = vcpu.enter()
        assert exit_event.reason is VmExitReason.HLT
        assert vcpu.regs.rax == 5

    def test_syscall_exit(self):
        vcpu, _ = boot("mov rax, 60\nsyscall")
        assert vcpu.enter().reason is VmExitReason.SYSCALL

    def test_page_fault_exit(self):
        vcpu, _ = boot("mov rbx, 0x900000000\nmov rax, [rbx]\nhlt")
        exit_event = vcpu.enter()
        assert exit_event.reason is VmExitReason.PAGE_FAULT
        assert exit_event.fault is not None

    def test_cpu_exception_exit(self):
        vcpu, _ = boot("mov rax, 1\nmov rbx, 0\nudiv rax, rbx\nhlt")
        assert vcpu.enter().reason is VmExitReason.CPU_EXCEPTION

    def test_step_limit_exit(self):
        vcpu, _ = boot("spin: jmp spin")
        assert vcpu.enter(max_steps=100).reason is VmExitReason.STEP_LIMIT

    def test_enter_requires_space(self):
        vcpu = VCpu()
        with pytest.raises(RuntimeError, match="no address space"):
            vcpu.enter()


class TestVmcsAccounting:
    def test_exit_counts_by_reason(self):
        vcpu, _ = boot("syscall\nsyscall\nhlt")
        vcpu.enter()
        vcpu.enter()
        vcpu.enter()
        counts = vcpu.vmcs.exit_counts
        assert counts[VmExitReason.SYSCALL] == 2
        assert counts[VmExitReason.HLT] == 1
        assert vcpu.vmcs.entries == 3
        assert vcpu.vmcs.exits == 3

    def test_guest_instruction_accounting(self):
        vcpu, _ = boot("nop\nnop\nnop\nhlt")
        vcpu.enter()
        assert vcpu.vmcs.guest_instructions == 4

    def test_ring_returns_to_libos(self):
        vcpu, _ = boot("hlt")
        vcpu.enter()
        assert vcpu.vmcs.current_ring is Ring.NON_ROOT_RING0

    def test_resume_after_syscall(self):
        vcpu, _ = boot("syscall\nmov rax, 9\nhlt")
        vcpu.enter()
        vcpu.enter()
        assert vcpu.regs.rax == 9


class TestAttachSwap:
    def test_attach_new_space_switches_state(self):
        vcpu, space = boot("mov rbx, 0x600000\nmov rax, [rbx]\nhlt")
        space.write_u64(0x600000, 42)
        fork = space.fork_cow()
        fork.write_u64(0x600000, 77)
        vcpu.attach(fork)
        vcpu.enter()
        assert vcpu.regs.rax == 77
