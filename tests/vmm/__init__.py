"""Tests for the virtualization layer."""
