"""Differential agreement across the three machine-guest engines.

The same assembly guest explored by :class:`MachineEngine` (sequential
snapshots), :class:`ParallelMachineEngine` (time-sliced simulated
concurrency) and :class:`ProcessParallelEngine` (real worker processes
with replay rehydration) must produce the identical solution *set* —
discovery order is allowed to differ, which is why comparisons sort.

Workloads cover distinct search shapes: n-queens (uniform fan-out),
sudoku (constrained fan-out seeded by givens), graph coloring (dense
symmetric solutions) and subset-sum (binary fan-out, bound pruning).
"""

import pytest

from repro.core.cluster import ProcessParallelEngine
from repro.core.machine import MachineEngine
from repro.core.parallel import ParallelMachineEngine
from repro.workloads.coloring import (
    WHEEL5_EDGES,
    WHEEL5_NODES,
    coloring_asm,
    is_proper_coloring,
)
from repro.workloads.knapsack import random_instance, subset_sum_asm
from repro.workloads.nqueens import is_valid_board, nqueens_asm
from repro.workloads.sudoku import is_valid_solution, make_puzzle, sudoku_asm

SUDOKU_GRID = make_puzzle(blanks=11, seed=0)  # 2 completions
SUBSET_VALUES, SUBSET_TARGET = random_instance(9, seed=2)

WORKLOADS = {
    "nqueens": nqueens_asm(5),
    "sudoku": sudoku_asm(SUDOKU_GRID),
    "coloring": coloring_asm(WHEEL5_NODES, WHEEL5_EDGES, 4),
    "subset_sum": subset_sum_asm(SUBSET_VALUES, SUBSET_TARGET),
}

VALIDATORS = {
    "nqueens": is_valid_board,
    "sudoku": is_valid_solution,
    "coloring": lambda text: is_proper_coloring(
        tuple(int(c) for c in text), WHEEL5_EDGES
    ),
    "subset_sum": lambda text: sum(
        v for v, bit in zip(SUBSET_VALUES, text) if bit == "1"
    ) == SUBSET_TARGET,
}


def solution_set(result):
    return sorted((s.path, s.value) for s in result.solutions)


def make_engines(order):
    return [
        MachineEngine(strategy=order),
        ParallelMachineEngine(workers=3, quantum=40, strategy=order),
        ProcessParallelEngine(workers=2, strategy=order, task_step_budget=2000),
    ]


@pytest.fixture(scope="module")
def reference():
    """Sequential DFS results, the baseline every engine must match."""
    return {
        name: MachineEngine().run(source) for name, source in WORKLOADS.items()
    }


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("order", ["dfs", "bfs"])
def test_engines_agree(workload, order, reference):
    expected = solution_set(reference[workload])
    assert expected, f"workload {workload} should have solutions"
    for engine in make_engines(order):
        result = engine.run(WORKLOADS[workload])
        label = f"{type(engine).__name__}/{order}"
        assert result.exhausted and result.stop_reason is None, label
        assert solution_set(result) == expected, label


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_solutions_are_actually_valid(workload, reference):
    validate = VALIDATORS[workload]
    boards = [value[1].strip() for value in reference[workload].solution_values]
    assert boards
    assert all(validate(board) for board in boards)


@pytest.mark.parametrize("order", ["dfs", "bfs"])
def test_max_solutions_consistent(order, reference):
    """Early stop yields exactly k solutions from the full set, with the
    same stop_reason bookkeeping, on every engine."""
    full = {s.value for s in reference["nqueens"].solutions}
    for engine_cls, kwargs in [
        (MachineEngine, {"strategy": order}),
        (ParallelMachineEngine, {"workers": 3, "quantum": 40,
                                 "strategy": order}),
        (ProcessParallelEngine, {"workers": 2, "strategy": order,
                                 "task_step_budget": 2000}),
    ]:
        engine = engine_cls(max_solutions=2, **kwargs)
        result = engine.run(WORKLOADS["nqueens"])
        label = f"{engine_cls.__name__}/{order}"
        assert len(result.solutions) == 2, label
        assert not result.exhausted, label
        assert result.stop_reason == "max_solutions", label
        assert {s.value for s in result.solutions} <= full, label


def test_sudoku_has_multiple_solutions(reference):
    """The differential grid is under-constrained on purpose: a single
    solution would make order-insensitivity trivially true."""
    assert len(reference["sudoku"].solutions) > 1
