"""Differential testing for the Python-guest engines.

Random deterministic Python guests run on the replay engine and (where
fork works) the posix engine; both must agree with a direct recursive
reference.
"""

import os
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ReplayEngine


def _fork_works() -> bool:
    try:
        pid = os.fork()
    except OSError:
        return False
    if pid == 0:
        os._exit(0)
    os.waitpid(pid, 0)
    return True


FORK_OK = _fork_works()


def make_guest(seed: int):
    """A random deterministic guest: depth, fan-outs and pruning rules
    all derived from *seed*."""
    rng = random.Random(seed)
    depth = rng.randint(1, 4)
    fanouts = [rng.randint(1, 3) for _ in range(depth)]
    prune = [(rng.randint(2, 4), rng.randint(0, 3)) for _ in range(depth)]

    def guest(sys):
        acc = 0
        for level in range(depth):
            choice = sys.guess(fanouts[level])
            mod, rem = prune[level]
            if (acc + choice) % mod == rem:
                sys.fail()
            acc = acc * 5 + choice
        return acc

    def reference():
        out = []

        def walk(level, acc, path):
            if level == depth:
                out.append((path, acc))
                return
            for choice in range(fanouts[level]):
                mod, rem = prune[level]
                if (acc + choice) % mod == rem:
                    continue
                walk(level + 1, acc * 5 + choice, path + (choice,))

        walk(0, 0, ())
        return out

    return guest, reference


@given(seed=st.integers(0, 100_000))
@settings(max_examples=30, deadline=None)
def test_replay_matches_reference(seed):
    guest, reference = make_guest(seed)
    result = ReplayEngine().run(guest)
    assert sorted((s.path, s.value) for s in result.solutions) == sorted(
        reference()
    )


@pytest.mark.skipif(not FORK_OK, reason="fork unavailable")
@pytest.mark.parametrize("seed", range(0, 40, 7))
def test_posix_matches_replay(seed):
    from repro.core.posix import PosixEngine

    guest, reference = make_guest(seed)
    replay = ReplayEngine().run(guest)
    posix = PosixEngine().run(guest)
    assert sorted((s.path, s.value) for s in posix.solutions) == sorted(
        (s.path, s.value) for s in replay.solutions
    )
