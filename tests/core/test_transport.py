"""Transport layer: frame codec properties, endpoints, TCP loopback.

The frame codec is the trust boundary of the TCP transport: everything
past it is unpickled and acted on, so the codec must refuse — never
misparse — any corrupted or truncated input.  The hypothesis suites
drive that with arbitrary payloads, arbitrary single-byte flips and
arbitrary truncation points.
"""

import pickle
import threading
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.transport import (
    HEADER_SIZE,
    MAGIC,
    MAX_FRAME_BYTES,
    FrameDecoder,
    FrameError,
    PROTOCOL_VERSION,
    TcpTransport,
    TcpWorkerConnection,
    decode_payload,
    encode_frame,
)

# A pool of picklable, equality-friendly message shapes mirroring what
# the cluster actually ships: tuples of ints, strings, bytes, lists.
message = st.recursive(
    st.one_of(
        st.integers(min_value=-2**40, max_value=2**40),
        st.text(max_size=24),
        st.binary(max_size=64),
        st.none(),
        st.booleans(),
    ),
    lambda children: st.one_of(
        st.tuples(children, children),
        st.lists(children, max_size=4),
    ),
    max_leaves=12,
)


class TestFrameCodec:
    @given(message)
    @settings(max_examples=80, deadline=None)
    def test_round_trip(self, msg):
        decoder = FrameDecoder()
        decoder.feed(encode_frame(msg))
        out = list(decoder.messages())
        assert len(out) == 1
        assert out[0] == msg
        assert len(decoder) == 0

    @given(message, st.data())
    @settings(max_examples=80, deadline=None)
    def test_any_byte_flip_is_refused_or_inert(self, msg, data):
        """Flipping any single byte can never silently change the
        decoded message: either the decoder raises FrameError, or (for
        a length-field flip that makes the frame look longer) it waits
        for bytes that never come and yields nothing."""
        frame = bytearray(encode_frame(msg))
        pos = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
        bit = data.draw(st.integers(min_value=0, max_value=7))
        frame[pos] ^= 1 << bit
        decoder = FrameDecoder()
        decoder.feed(bytes(frame))
        try:
            out = list(decoder.messages())
        except FrameError:
            return  # refused loudly: the desired outcome
        # Not refused: the only legal alternative is "incomplete, no
        # message surfaced" (a length flip upward).  A surfaced message
        # equal to the original is also fine in theory (flip in pickle
        # padding) but pickle has no padding — require emptiness.
        assert out == []

    @given(message, st.data())
    @settings(max_examples=60, deadline=None)
    def test_truncation_never_yields(self, msg, data):
        frame = encode_frame(msg)
        cut = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
        decoder = FrameDecoder()
        decoder.feed(frame[:cut])
        assert list(decoder.messages()) == []  # waits, never misparses

    @given(st.lists(message, min_size=1, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_stream_reassembly_byte_at_a_time(self, msgs):
        stream = b"".join(encode_frame(m) for m in msgs)
        decoder = FrameDecoder()
        out = []
        for i in range(len(stream)):
            decoder.feed(stream[i:i + 1])
            out.extend(decoder.messages())
        assert out == msgs

    def test_bad_magic_refused(self):
        frame = bytearray(encode_frame(("task", 1)))
        frame[:4] = b"XXXX"
        decoder = FrameDecoder()
        decoder.feed(bytes(frame))
        with pytest.raises(FrameError, match="magic"):
            list(decoder.messages())

    def test_length_cap_refused(self):
        import struct

        header = struct.pack("!4sII", MAGIC, MAX_FRAME_BYTES + 1, 0)
        decoder = FrameDecoder()
        decoder.feed(header)
        with pytest.raises(FrameError, match="cap"):
            list(decoder.messages())

    def test_unpicklable_payload_refused(self):
        import struct
        import zlib

        payload = b"\xde\xad\xbe\xef"
        crc = zlib.crc32(payload) & 0xFFFFFFFF
        frame = struct.pack("!4sII", MAGIC, len(payload), crc) + payload
        decoder = FrameDecoder()
        decoder.feed(frame)
        with pytest.raises(FrameError, match="unpicklable"):
            list(decoder.messages())

    def test_header_size_is_stable(self):
        # The wire format is a compatibility surface: magic(4) +
        # length(4) + crc32(4).
        assert HEADER_SIZE == 12
        assert decode_payload(pickle.dumps(42)) == 42


class TestTcpLoopback:
    """Coordinator transport and worker connection over real sockets."""

    def _start(self, **kw):
        transport = TcpTransport(host="127.0.0.1", port=0, **kw)
        transport.start(program="PROG", config={"k": 1})
        return transport

    def test_external_join_handshake_ships_program(self):
        transport = self._start()
        try:
            conn = TcpWorkerConnection(transport.address)
            try:
                assert conn.program == "PROG"
                assert conn.config == {"k": 1}
                assert conn.wid is not None
                events = transport.poll(2.0)
                kinds = [ev.kind for ev in events]
                assert "join" in kinds
                ep = events[kinds.index("join")].endpoint
                assert ep.external
                # Worker -> coordinator.
                conn.send(("steal", conn.wid, 4))
                deadline = time.monotonic() + 5.0
                msg = None
                while time.monotonic() < deadline and msg is None:
                    for ev in transport.poll(0.2):
                        if ev.kind == "msg":
                            msg = ev.payload
                assert msg == ("steal", conn.wid, 4)
                # Coordinator -> worker.
                ep.send(("work", [1, 2], None, []))
                assert conn.poll(5.0)
                assert conn.recv() == ("work", [1, 2], None, [])
            finally:
                conn.close()
        finally:
            transport.close()

    def test_version_mismatch_rejected(self):
        import socket

        transport = self._start()
        try:
            sock = socket.create_connection(transport.address, timeout=5.0)
            try:
                sock.sendall(encode_frame(
                    ("hello", None, PROTOCOL_VERSION + 1)
                ))
                decoder = FrameDecoder()
                reply = None
                sock.settimeout(5.0)
                while reply is None:
                    data = sock.recv(65536)
                    if not data:
                        break
                    decoder.feed(data)
                    for msg in decoder.messages():
                        reply = msg
                        break
                assert reply is not None and reply[0] == "reject"
            finally:
                sock.close()
        finally:
            transport.close()

    def test_reconnect_resumes_same_wid(self):
        transport = self._start(reconnect_grace=5.0)
        try:
            conn = TcpWorkerConnection(transport.address)
            try:
                wid = conn.wid
                transport.poll(1.0)  # drain the join
                # Sever the socket underneath the worker; its next send
                # reconnects with backoff and lands a rewelcome.
                conn._sock.close()
                conn.send(("steal", wid, 2))
                assert conn.wid == wid
                deadline = time.monotonic() + 5.0
                got = None
                while time.monotonic() < deadline and got is None:
                    for ev in transport.poll(0.2):
                        if ev.kind == "msg" and ev.payload[0] == "steal":
                            got = ev
                assert got is not None
                assert got.endpoint.wid == wid
                assert transport.stats["reconnects"] >= 1
            finally:
                conn.close()
        finally:
            transport.close()

    def test_heartbeat_timeout_declares_half_open(self):
        # Drop every worker->coordinator frame: the connection looks
        # connected but carries nothing, and the watchdog must declare
        # it down on the heartbeat deadline.
        transport = self._start(
            heartbeat_timeout=0.5,
            net_hook=lambda d, w, s: (
                [("drop", 0.0)] if d == "w2c" else [("pass", 0.0)]
            ),
        )
        try:
            conn = TcpWorkerConnection(transport.address, ping_interval=0.1)
            try:
                deadline = time.monotonic() + 5.0
                down = None
                while time.monotonic() < deadline and down is None:
                    for ev in transport.poll(0.2):
                        if ev.kind == "down":
                            down = ev
                assert down is not None
                assert down.fail_kind == "timeout"
                assert "half-open" in down.detail
            finally:
                conn.close()
        finally:
            transport.close()

    def test_killed_endpoint_resurfaces_as_join(self):
        transport = self._start()
        try:
            conn = TcpWorkerConnection(transport.address, ping_interval=0.1)
            try:
                events = transport.poll(2.0)
                ep = next(ev.endpoint for ev in events if ev.kind == "join")
                wid = ep.wid
                ep.kill()  # sever trust; the remote peer lives on
                # The worker keeps announcing steals (as _worker_main
                # does every second); the failed send triggers its
                # reconnect, and the coordinator — which no longer
                # trusts wid — must surface it as a *new* endpoint.
                deadline = time.monotonic() + 5.0
                rejoin = None
                while time.monotonic() < deadline and rejoin is None:
                    try:
                        conn.send(("steal", wid, 1))
                    except (ConnectionError, OSError):
                        pass
                    for ev in transport.poll(0.2):
                        if ev.kind == "join":
                            rejoin = ev
                assert rejoin is not None
                assert rejoin.endpoint is not ep
                assert rejoin.endpoint.wid == wid
                assert rejoin.detail == "resurfaced"
            finally:
                conn.close()
        finally:
            transport.close()

    def test_outbox_buffers_across_disconnect(self):
        transport = self._start(reconnect_grace=5.0)
        try:
            conn = TcpWorkerConnection(transport.address, ping_interval=0.1)
            try:
                events = transport.poll(2.0)
                ep = next(ev.endpoint for ev in events if ev.kind == "join")
                conn._sock.close()  # transient network blip
                # Wait until the coordinator notices the disconnect —
                # only a detached endpoint buffers to the outbox.
                deadline = time.monotonic() + 5.0
                while ep.attached and time.monotonic() < deadline:
                    time.sleep(0.05)
                assert not ep.attached
                ep.send(("work", ["t"], None, []))  # buffered in outbox
                # The worker's next IO re-establishes the link and the
                # outbox flushes on reattach.
                got = None
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline and got is None:
                    if conn.poll(0.2):
                        got = conn.recv()
                assert got == ("work", ["t"], None, [])
            finally:
                conn.close()
        finally:
            transport.close()
