"""Cross-process trace propagation in ProcessParallelEngine.

Workers buffer their trace events per task and ship the segments back
with each result; the coordinator merges them into one causally-ordered
stream.  These tests pin the merge invariants (worker stamping, local
sequence preservation, causal splicing) and the end-to-end attribution
contract on the merged trace.
"""

import warnings

import pytest

from repro.core.cluster import ProcessParallelEngine
from repro.core.machine import MachineEngine
from repro.obs import events as ev
from repro.obs.profile import TERMINAL_TYPES, build_profile
from repro.obs.trace import TRACER
from repro.workloads.nqueens import nqueens_asm


WORKER_TYPES = TERMINAL_TYPES | {
    ev.TASK_BEGIN, ev.TASK_END, ev.SNAPSHOT_TAKE, ev.SNAPSHOT_RESTORE,
    ev.SNAPSHOT_DISCARD, ev.MEM_COW_FAULT, ev.MEM_PAGE_ALLOC,
}


@pytest.fixture(scope="module")
def merged(tmp_path_factory):
    """One traced 5-queens run on a two-worker cluster: (events, result)."""
    engine = ProcessParallelEngine(workers=2, task_step_budget=800)
    with TRACER.capture() as sink:
        result = engine.run(nqueens_asm(5))
    return sink.events, result


class TestMergedTrace:
    def test_every_worker_contributes_events(self, merged):
        events, result = merged
        worker_events = [e for e in events if "wseq" in e]
        assert worker_events
        assert {e["worker"] for e in worker_events} == {0, 1}
        assert result.stats.extra["trace_dropped"] == 0
        assert result.stats.extra["trace_events_merged"] == len(worker_events)

    def test_all_worker_originated_events_stamped(self, merged):
        events, _ = merged
        for e in events:
            if "wseq" in e:
                assert "worker" in e, f"unstamped worker event: {e}"

    def test_global_seq_reassigned_worker_seq_preserved(self, merged):
        events, _ = merged
        # The merged stream has one strictly increasing global seq...
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)
        # ...while each worker's local order survives as wseq.
        for wid in (0, 1):
            wseqs = [e["wseq"] for e in events
                     if e.get("worker") == wid and "wseq" in e]
            assert wseqs == sorted(wseqs)

    def test_segments_spliced_before_result_events(self, merged):
        # Causal order: a task's worker events land in the merged stream
        # before the coordinator's parallel.result for that worker.
        events, _ = merged
        last_result_by_worker = {}
        for e in events:
            if e["type"] == ev.PARALLEL_RESULT:
                last_result_by_worker[e["worker"]] = e["seq"]
        for e in events:
            if "wseq" in e:
                assert e["seq"] < last_result_by_worker[e["worker"]]

    def test_task_begin_end_pairs(self, merged):
        events, _ = merged
        begins = [e for e in events if e["type"] == ev.TASK_BEGIN]
        ends = [e for e in events if e["type"] == ev.TASK_END]
        assert len(begins) == len(ends) > 1
        for e in ends:
            assert e["explore_steps"] >= 0
            assert e["replay_steps"] >= 0
            assert e["task_s"] >= 0.0

    def test_run_span_stamped_on_task_events(self, merged):
        events, result = merged
        spans = {e.get("span") for e in events
                 if e["type"] in (ev.TASK_BEGIN, ev.TASK_END)}
        assert spans == {result.stats.extra["trace_span"]}

    def test_profile_totals_match_registry_counters(self, merged):
        events, result = merged
        profile = build_profile(events)
        extra = result.stats.extra
        # Work conservation across processes: the merged trace accounts
        # for every explored and every replayed instruction.
        assert profile.total_steps == extra["guest_instructions"]
        assert profile.total_replay_steps == extra["replay_steps"]
        assert profile.root.cum["solutions"] == len(result.solutions) == 10
        assert set(profile.workers) == {0, 1}

    def test_merged_matches_sequential_exploration(self, merged):
        events, _ = merged
        profile = build_profile(events)
        with TRACER.capture() as sink:
            MachineEngine().run(nqueens_asm(5))
        sequential = build_profile(sink.events)
        # Same search tree, same explored instructions — replay is the
        # only extra work the cluster does.
        assert profile.total_steps == sequential.total_steps
        assert profile.root.cum["solutions"] == \
            sequential.root.cum["solutions"]


class TestCollectionControl:
    def test_collect_trace_off_warns_and_counts_drops(self):
        engine = ProcessParallelEngine(
            workers=2, task_step_budget=800, collect_trace=False,
        )
        with TRACER.capture() as sink:
            with pytest.warns(RuntimeWarning, match="collect_trace"):
                result = engine.run(nqueens_asm(4))
        assert result.stats.extra["trace_dropped"] > 0
        assert result.stats.extra["trace_events_merged"] == 0
        assert not any("wseq" in e for e in sink.events)
        # Coordinator-side events still flow.
        assert any(e["type"] == ev.PARALLEL_RESULT for e in sink.events)

    def test_untraced_run_collects_nothing(self):
        engine = ProcessParallelEngine(workers=2, task_step_budget=800)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = engine.run(nqueens_asm(4))
        assert result.stats.extra["trace_events_merged"] == 0
        assert result.stats.extra["trace_dropped"] == 0
        assert len(result.solutions) == 2
