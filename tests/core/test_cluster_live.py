"""Live telemetry through the real process-parallel engine.

Three acceptance properties from the observability work:

* a run with a status server answers ``/status`` and ``/metrics``
  *while workers are exploring*, and the final snapshot's metrics equal
  the engine's end-of-run registry exactly (committed + uncommitted
  folding never double- or under-counts);
* the Prometheus exposition carries the same final counter values;
* chaos-killing a worker produces a flight-recorder dump containing
  that worker's last trace events, shipped via heartbeats before the
  kill (no worker-side flush could survive ``os._exit``).

Fault hooks are module-level (pickled into spawned workers).
"""

import json
import os
import threading
import urllib.request

import pytest

from repro.core.cluster import ProcessParallelEngine
from repro.core.machine import MachineEngine
from repro.workloads.nqueens import nqueens_asm


def solution_set(result):
    return sorted((s.path, s.value) for s in result.solutions)


@pytest.fixture(scope="module")
def sequential_5():
    return MachineEngine().run(nqueens_asm(5))


# See test_cluster_faults: with subtree_depth=1 the prefix (0, 2) is
# deterministically a first-generation task of the 5-queens tree.
_POISON = (0, 2)


def _crash_first_attempt(task):
    if task.attempt == 0 and task.prefix == _POISON:
        os._exit(1)


class _MidRunProbe(threading.Thread):
    """Polls the status endpoints from another thread during the run."""

    def __init__(self, url):
        super().__init__(daemon=True)
        self.url = url
        self.statuses = []
        self.metrics_bodies = []
        self.stop = threading.Event()

    def run(self):
        while not self.stop.is_set():
            try:
                with urllib.request.urlopen(
                        self.url + "/status", timeout=2) as resp:
                    self.statuses.append(json.loads(resp.read()))
                with urllib.request.urlopen(
                        self.url + "/metrics", timeout=2) as resp:
                    self.metrics_bodies.append(resp.read().decode())
            except OSError:
                pass
            self.stop.wait(0.02)


class TestLiveEndpoints:
    def test_mid_run_serving_and_final_exactness(self, tmp_path,
                                                 sequential_5):
        log_path = str(tmp_path / "status.jsonl")
        engine = ProcessParallelEngine(
            workers=2,
            subtree_depth=1,
            task_step_budget=None,
            status_port=0,
            status_log=log_path,
            status_interval=0.05,
            heartbeat_interval=0.02,
        )

        probe_holder = {}

        def _probe_when_up():
            # The server starts inside run(); wait for it, then poll.
            while engine.status_server is None:
                if stop_waiting.is_set():
                    return
                threading.Event().wait(0.01)
            probe = _MidRunProbe(engine.status_server.url)
            probe_holder["probe"] = probe
            probe.run()  # reuse this thread as the poll loop

        stop_waiting = threading.Event()
        waiter = threading.Thread(target=_probe_when_up, daemon=True)
        waiter.start()
        try:
            result = engine.run(nqueens_asm(5))
        finally:
            stop_waiting.set()
            probe = probe_holder.get("probe")
            if probe is not None:
                probe.stop.set()
            waiter.join(timeout=5)

        # Correctness is never traded for telemetry.
        assert solution_set(result) == solution_set(sequential_5)
        assert result.exhausted

        # The probe observed the run in flight.
        assert probe is not None and probe.statuses
        for snap in probe.statuses:
            assert snap["schema"] == 1
            assert snap["workers"] == 2
            assert 0.0 <= snap["coverage"]["fraction"] <= 1.0
        assert any("repro_parallel_guest_steps_total" in body
                   for body in probe.metrics_bodies)

        # Final snapshot metrics == engine registry, exactly.
        final = engine.status.snapshot()
        assert final["done"]
        assert final["metrics"] == engine.registry.as_dict()
        assert final["coverage"]["fraction"] == 1.0
        assert final["tasks"]["pending"] == 0
        assert final["solutions"] == len(sequential_5.solutions)
        assert result.stats.extra["heartbeats"] > 0

        # Prometheus text carries the same final counters.
        prom = engine.status.prometheus()
        steps = engine.registry.get("parallel.guest_steps").value
        assert f"repro_parallel_guest_steps_total {steps}" in prom

        # The status log is a replayable trajectory ending in `done`.
        samples = [json.loads(line)
                   for line in open(log_path, encoding="utf-8")]
        assert samples[-1]["done"] is True
        assert (samples[-1]["throughput"]["steps_total"]
                == final["throughput"]["steps_total"])
        seqs = [s["seq"] for s in samples]
        assert seqs == sorted(seqs)


class TestFlightRecorder:
    def test_chaos_crash_dumps_worker_ring(self, tmp_path, sequential_5):
        flight_dir = str(tmp_path / "flight")
        engine = ProcessParallelEngine(
            workers=2,
            subtree_depth=1,
            task_step_budget=None,
            max_task_retries=2,
            fault_hook=_crash_first_attempt,
            heartbeat_interval=0.02,
            flight_dir=flight_dir,
        )
        result = engine.run(nqueens_asm(5))
        assert solution_set(result) == solution_set(sequential_5)

        dumps = result.stats.extra["flight_dumps"]
        assert dumps, "a crashed worker must leave a post-mortem"
        assert result.stats.extra["flight_dumps"] == engine.flight_recorder.dumps
        crash_dumps = [d for d in dumps if "-crash-" in os.path.basename(d)]
        assert crash_dumps
        for path in crash_dumps:
            lines = [json.loads(line)
                     for line in open(path, encoding="utf-8")]
            header, events = lines[0], lines[1:]
            assert header["type"] == "flight.header"
            assert header["kind"] == "crash"
            assert header["events"] == len(events)
            # The ring holds the dead worker's own trace events; the
            # forced beat at task dispatch ships task.begin before the
            # fault hook can kill the process.
            assert events, "ring must not be empty for a beating worker"
            assert all(e.get("worker") == header["worker"] for e in events)
            assert any(e["type"] == "task.begin" for e in events)
