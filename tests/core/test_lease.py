"""Lease table: fenced ownership, expiry, and the stale-result rules.

Every test injects a fake clock — the table never sleeps, so neither do
the tests.  The invariants exercised here are the ones the distributed
engine's exactness rests on: a (key, fence) pair settles ``"ok"`` at
most once, tokens are strictly monotonic, and every revocation path
(expiry, worker death, re-grant) fences off the old token.
"""

import pytest

from repro.core.lease import LeaseTable
from repro.search.shard import PrefixTask


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def task(*prefix):
    return PrefixTask(prefix=tuple(prefix), fanouts=(4,) * len(prefix))


class TestGrantSettle:
    def test_grant_stamps_fence_and_settle_consumes(self):
        table = LeaseTable(duration=None)
        lease = table.grant(task(1, 2), wid=7)
        assert lease.fence == 1
        assert lease.task.fence == 1
        assert lease.task.key() == (1, 2)
        assert table.holder((1, 2)) == 7
        assert table.settle((1, 2), 1) == "ok"
        assert len(table) == 0

    def test_duplicate_settle_is_never_ok_twice(self):
        table = LeaseTable(duration=None)
        lease = table.grant(task(3), wid=0)
        assert table.settle((3,), lease.fence) == "ok"
        # A duplicated delivery of the very same result is stale: the
        # lease was consumed by the first settle.
        assert table.settle((3,), lease.fence) == "stale"

    def test_wrong_fence_is_stale_and_leaves_live_lease(self):
        table = LeaseTable(duration=None)
        lease = table.grant(task(3), wid=0)
        assert table.settle((3,), lease.fence + 5) == "stale"
        assert table.settle((3,), 0) == "stale"
        # The live lease survived the stale attempts.
        assert table.settle((3,), lease.fence) == "ok"

    def test_unknown_key_is_stale(self):
        table = LeaseTable(duration=None)
        assert table.settle((9, 9), 1) == "stale"

    def test_regrant_fences_off_earlier_token(self):
        table = LeaseTable(duration=None)
        first = table.grant(task(5), wid=1)
        second = table.grant(task(5), wid=2)
        assert second.fence > first.fence
        assert table.holder((5,)) == 2
        # The partitioned first worker reports late: refused.
        assert table.settle((5,), first.fence) == "stale"
        assert table.settle((5,), second.fence) == "ok"

    def test_fences_strictly_monotonic_across_keys(self):
        table = LeaseTable(duration=None, start_fence=40)
        fences = [table.grant(task(i), wid=0).fence for i in range(5)]
        assert fences == [40, 41, 42, 43, 44]
        assert table.next_fence == 45

    def test_key_normalised_to_tuple(self):
        table = LeaseTable(duration=None)
        lease = table.grant(task(1, 2, 3), wid=0)
        assert table.holder([1, 2, 3]) == 0
        assert table.settle([1, 2, 3], lease.fence) == "ok"


class TestExpiry:
    def test_expired_pops_past_deadline_only(self):
        clock = FakeClock()
        table = LeaseTable(duration=10.0, clock=clock)
        early = table.grant(task(1), wid=0)
        clock.advance(6.0)
        late = table.grant(task(2), wid=1)
        clock.advance(5.0)  # t=111: early (deadline 110) is out
        out = table.expired()
        assert [l.key for l in out] == [(1,)]
        assert table.settle((1,), early.fence) == "stale"
        assert table.settle((2,), late.fence) == "ok"

    def test_extend_worker_pushes_out_only_that_workers_leases(self):
        clock = FakeClock()
        table = LeaseTable(duration=10.0, clock=clock)
        table.grant(task(1), wid=0)
        table.grant(task(2), wid=1)
        clock.advance(8.0)
        table.extend_worker(0)  # heartbeat/progress from wid 0
        clock.advance(4.0)  # wid 1's lease (deadline 110) is past
        out = table.expired()
        assert [l.wid for l in out] == [1]
        assert table.holder((1,)) == 0

    def test_duration_none_never_expires_but_still_fences(self):
        clock = FakeClock()
        table = LeaseTable(duration=None, clock=clock)
        lease = table.grant(task(1), wid=0)
        clock.advance(1e9)
        assert table.expired() == []
        table.extend_worker(0)  # no-op, must not raise
        superseded = table.grant(task(1), wid=1)
        assert table.settle((1,), lease.fence) == "stale"
        assert table.settle((1,), superseded.fence) == "ok"

    def test_expiry_exactly_at_deadline(self):
        clock = FakeClock()
        table = LeaseTable(duration=10.0, clock=clock)
        table.grant(task(1), wid=0)
        clock.advance(10.0)
        assert len(table.expired()) == 1


class TestRevocation:
    def test_revoke_worker_drops_all_and_only_its_leases(self):
        table = LeaseTable(duration=None)
        a = table.grant(task(1), wid=3)
        b = table.grant(task(2), wid=3)
        c = table.grant(task(3), wid=4)
        dropped = table.revoke_worker(3)
        assert sorted(l.key for l in dropped) == [(1,), (2,)]
        assert table.settle((1,), a.fence) == "stale"
        assert table.settle((2,), b.fence) == "stale"
        assert table.settle((3,), c.fence) == "ok"
        assert table.owned_by(3) == []

    def test_revoke_single_key(self):
        table = LeaseTable(duration=None)
        lease = table.grant(task(7), wid=0)
        assert table.revoke((7,)).fence == lease.fence
        assert table.revoke((7,)) is None
        assert table.settle((7,), lease.fence) == "stale"

    def test_drain_empties_table(self):
        table = LeaseTable(duration=None)
        table.grant(task(1), wid=0)
        table.grant(task(2), wid=1)
        drained = list(table.drain())
        assert len(drained) == 2
        assert len(table) == 0

    def test_owned_by_lists_live_leases(self):
        table = LeaseTable(duration=None)
        table.grant(task(1), wid=5)
        table.grant(task(2), wid=5)
        assert sorted(l.key for l in table.owned_by(5)) == [(1,), (2,)]


class TestValidation:
    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            LeaseTable(duration=0)
        with pytest.raises(ValueError):
            LeaseTable(duration=-1.0)

    def test_rejects_start_fence_below_one(self):
        with pytest.raises(ValueError):
            LeaseTable(start_fence=0)


class TestTaskFenceRecord:
    def test_to_record_omits_zero_fence(self):
        t = task(1, 2)
        assert "fence" not in t.to_record()
        assert PrefixTask.from_record(t.to_record()) == t

    def test_to_record_round_trips_nonzero_fence(self):
        t = task(1, 2)._replace(fence=17)
        record = t.to_record()
        assert record["fence"] == 17
        assert PrefixTask.from_record(record) == t
