"""Machine-engine informed search: the extended guess call with hints."""

from repro.core.machine import MachineEngine
from repro.core.sysno import SYS_EXIT, SYS_GUESS_HINT

# A two-level tree where the hint vector marks one golden path: A* must
# reach it first even though DFS order would visit others earlier.
GOLDEN = f"""
.data
hints1: .quad 9, 9, 0       ; level 1: extension 2 is closest to goal
hints2: .quad 9, 0, 9       ; level 2: extension 1 is the goal
.text
    mov rax, {SYS_GUESS_HINT:#x}
    mov rdi, 3
    mov rsi, hints1
    syscall
    mov rbx, rax
    imul rbx, 3
    mov rax, {SYS_GUESS_HINT:#x}
    mov rdi, 3
    mov rsi, hints2
    syscall
    add rbx, rax
    mov rdi, rbx
    mov rax, {SYS_EXIT}
    syscall
"""


class TestMachineHints:
    def test_astar_follows_hints_first(self):
        result = MachineEngine("astar", max_solutions=1).run(GOLDEN)
        assert result.solution_values[0][0] == 2 * 3 + 1  # path (2, 1)

    def test_best_first_also_guided(self):
        result = MachineEngine("best", max_solutions=1).run(GOLDEN)
        assert result.solution_values[0][0] == 7

    def test_dfs_ignores_hints(self):
        result = MachineEngine("dfs", max_solutions=1).run(GOLDEN)
        assert result.solution_values[0][0] == 0  # path (0, 0)

    def test_exhaustive_astar_finds_everything(self):
        result = MachineEngine("astar").run(GOLDEN)
        assert sorted(v[0] for v in result.solution_values) == list(range(9))

    def test_coverage_strategy_on_machine(self):
        result = MachineEngine("coverage").run(GOLDEN)
        assert len(result.solutions) == 9
        assert result.strategy == "coverage"

    def test_negative_hints_accepted(self):
        src = f"""
        .data
        hints: .quad -5, 3
        .text
        mov rax, {SYS_GUESS_HINT:#x}
        mov rdi, 2
        mov rsi, hints
        syscall
        mov rdi, rax
        mov rax, {SYS_EXIT}
        syscall
        """
        result = MachineEngine("best", max_solutions=1).run(src)
        assert result.solution_values[0][0] == 0  # hint -5 preferred
