"""Fault injection for the process-parallel engine.

The fault hook runs inside worker processes just before a task is
explored, so these tests exercise the real failure paths: a worker dying
mid-batch (``os._exit``), a task stalling past its timeout, and a task
that fails on every retry.  The invariant under test is the paper's
correctness claim restated for distribution: no solution is lost and
none is duplicated, no matter which worker dies when.

Hooks must be module-level functions (they are pickled into workers
under the spawn start method).
"""

import multiprocessing
import os
import time

import pytest

from repro.core.cluster import ProcessParallelEngine
from repro.core.machine import MachineEngine
from repro.core.supervisor import SupervisorPolicy
from repro.workloads.nqueens import nqueens_asm


def solution_set(result):
    return sorted((s.path, s.value) for s in result.solutions)


@pytest.fixture(scope="module")
def sequential_5():
    return MachineEngine().run(nqueens_asm(5))


# With subtree_depth=1 the root task explores the depth-0 guess locally
# and spills at the next guess, so every first-generation task has a
# length-2 prefix; (0, 2) is deterministically among them and its subtree
# contains exactly one 5-queens solution, (0, 2, 4, 1, 3).
_POISON = (0, 2)


def _crash_first_attempt(task):
    """Kill the worker the first time it is handed the poison subtree;
    the retry (attempt >= 1) passes through."""
    if task.attempt == 0 and task.prefix == _POISON:
        os._exit(1)


def _stall_first_attempt(task):
    if task.attempt == 0 and task.prefix == _POISON:
        time.sleep(60.0)


def _crash_always(task):
    if task.prefix == _POISON:
        os._exit(1)


def _crash_every_task(task):
    os._exit(1)


class TestWorkerCrash:
    def test_crashed_tasks_are_retried(self, sequential_5):
        engine = ProcessParallelEngine(
            workers=2,
            subtree_depth=1,  # guarantees subtree (0,) exists as a task
            task_step_budget=None,
            max_task_retries=2,
            fault_hook=_crash_first_attempt,
        )
        result = engine.run(nqueens_asm(5))
        # The full solution set survives: nothing lost, nothing doubled.
        assert solution_set(result) == solution_set(sequential_5)
        assert result.exhausted
        assert result.stats.extra["worker_crashes"] >= 1
        assert result.stats.extra["tasks_retried"] >= 1
        assert result.stats.extra["tasks_dropped"] == 0

    def test_permanently_failing_subtree_is_dropped(self, sequential_5):
        engine = ProcessParallelEngine(
            workers=2,
            batch_size=1,  # isolate the poisoned task from innocents
            subtree_depth=1,
            task_step_budget=None,
            max_task_retries=1,
            fault_hook=_crash_always,
        )
        result = engine.run(nqueens_asm(5))
        assert not result.exhausted
        assert result.stop_reason == "task_retries_exhausted"
        assert result.stats.extra["tasks_dropped"] >= 1
        # Exactly the poisoned subtree's solutions are missing; every
        # other solution is found exactly once, none invented.
        found = solution_set(result)
        full = solution_set(sequential_5)
        expected = [s for s in full if s[0][:2] != _POISON]
        assert len(expected) < len(full)  # the poison subtree had fruit
        assert found == expected


class TestTaskTimeout:
    def test_stalled_task_is_killed_and_retried(self, sequential_5):
        engine = ProcessParallelEngine(
            workers=2,
            subtree_depth=1,
            task_step_budget=None,
            task_timeout=1.0,
            max_task_retries=2,
            fault_hook=_stall_first_attempt,
        )
        result = engine.run(nqueens_asm(5))
        assert solution_set(result) == solution_set(sequential_5)
        assert result.exhausted
        assert result.stats.extra["task_timeouts"] >= 1
        assert result.stats.extra["tasks_retried"] >= 1

    def test_timeout_is_not_also_counted_as_crash(self):
        """One stalled worker is one timeout, not a timeout plus a crash.

        The timeout sweep terminates the worker itself; the dead process
        must not be re-detected by the crash sweep and double-counted
        (which would also burn a second retry for the same failure).
        """
        engine = ProcessParallelEngine(
            workers=2,
            subtree_depth=1,
            task_step_budget=None,
            task_timeout=1.0,
            max_task_retries=2,
            fault_hook=_stall_first_attempt,
        )
        result = engine.run(nqueens_asm(5))
        assert result.stats.extra["task_timeouts"] == 1
        assert result.stats.extra["worker_crashes"] == 0


class TestSupervision:
    def test_poisonous_task_is_quarantined_with_evidence(self, sequential_5):
        """The circuit breaker beats retry exhaustion when kills span
        enough distinct workers."""
        engine = ProcessParallelEngine(
            workers=2,
            batch_size=1,
            subtree_depth=1,
            task_step_budget=None,
            max_task_retries=5,  # generous: poisoning must win first
            fault_hook=_crash_always,
            supervisor=SupervisorPolicy(
                poison_threshold=2, backoff_base=0.01, max_slot_failures=10,
            ),
        )
        result = engine.run(nqueens_asm(5))
        assert not result.exhausted
        assert result.stop_reason == "tasks_poisoned"
        assert result.stats.extra["tasks_poisoned"] == 1
        assert result.stats.extra["tasks_dropped"] == 0
        [entry] = result.stats.extra["poisoned_tasks"]
        assert tuple(entry["task"]["prefix"]) == _POISON
        workers_blamed = {e["worker"] for e in entry["evidence"]}
        assert len(workers_blamed) >= 2
        # Everything outside the quarantined subtree is still found.
        found = solution_set(result)
        expected = [
            s for s in solution_set(sequential_5) if s[0][:2] != _POISON
        ]
        assert found == expected

    def test_respawned_workers_keep_the_run_going(self, sequential_5):
        # A single worker slot: after the injected crash the run can
        # only finish if the supervisor respawns into that slot.
        engine = ProcessParallelEngine(
            workers=1,
            subtree_depth=1,
            task_step_budget=None,
            max_task_retries=2,
            fault_hook=_crash_first_attempt,
            supervisor=SupervisorPolicy(backoff_base=0.01),
        )
        result = engine.run(nqueens_asm(5))
        assert solution_set(result) == solution_set(sequential_5)
        assert result.stats.extra["respawns"] >= 1

    def test_pool_collapse_degrades_to_in_process(self, sequential_5):
        """Every worker dies on every task: the pool collapses, and the
        coordinator finishes the whole frontier in-process — losing
        throughput, not solutions."""
        engine = ProcessParallelEngine(
            workers=2,
            subtree_depth=1,
            task_step_budget=None,
            max_task_retries=5,
            fault_hook=_crash_every_task,
            supervisor=SupervisorPolicy(max_slot_failures=1),
        )
        result = engine.run(nqueens_asm(5))
        assert result.stats.extra["degraded"] is True
        assert solution_set(result) == solution_set(sequential_5)
        assert result.exhausted


class TestNondetWorkloadFaults:
    """Fault injection while the guest itself is nondeterministic.

    The recorded log is the arbiter: whatever workers die, a strict
    replay seeded with a fault-free recording must survive crashes,
    retries, degraded mode — solution-for-solution, path-for-path.
    """

    @pytest.fixture(scope="class")
    def recorded(self):
        import warnings

        from repro.workloads.nqueens import nqueens_randomized_asm

        guest = nqueens_randomized_asm(5)
        engine = MachineEngine(replay_mode="record")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            result = engine.run(guest)
        return guest, engine.recorder.log, solution_set(result)

    def run_quiet(self, engine, guest):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            return engine.run(guest)

    def test_crashed_workers_cannot_perturb_replay(self, recorded):
        guest, log, baseline = recorded
        engine = ProcessParallelEngine(
            workers=2,
            subtree_depth=1,
            task_step_budget=None,
            max_task_retries=2,
            fault_hook=_crash_first_attempt,
            verify="warn",
            replay_mode="strict",
            replay_log=log,
        )
        result = self.run_quiet(engine, guest)
        assert solution_set(result) == baseline
        assert result.stats.extra["worker_crashes"] >= 1
        assert result.stats.extra["nondet_conflicts"] == 0

    def test_degraded_replay_still_matches(self, recorded):
        guest, log, baseline = recorded
        engine = ProcessParallelEngine(
            workers=2,
            subtree_depth=1,
            task_step_budget=None,
            max_task_retries=5,
            fault_hook=_crash_every_task,
            supervisor=SupervisorPolicy(max_slot_failures=1),
            verify="warn",
            replay_mode="strict",
            replay_log=log,
        )
        result = self.run_quiet(engine, guest)
        assert result.stats.extra["degraded"] is True
        assert solution_set(result) == baseline

    def test_crashed_recording_run_stays_self_consistent(self, recorded):
        """Record from scratch *while* workers crash: the merged log
        must still reproduce the faulted run exactly — a retried task's
        re-rolled entropy may only land where no durable solution
        depends on the original draw."""
        guest, _log, baseline = recorded
        engine = ProcessParallelEngine(
            workers=2,
            subtree_depth=1,
            task_step_budget=None,
            max_task_retries=2,
            fault_hook=_crash_first_attempt,
            verify="warn",
            replay_mode="record",
        )
        result = self.run_quiet(engine, guest)
        assert len(solution_set(result)) == len(baseline)
        strict = MachineEngine(replay_mode="strict",
                               replay_log=engine.replay_log)
        replayed = self.run_quiet(strict, guest)
        assert solution_set(replayed) == solution_set(result)


class TestNoZombies:
    def test_no_live_children_after_faulted_run(self):
        """Shutdown escalation reaps every worker, even after crashes."""
        engine = ProcessParallelEngine(
            workers=2,
            subtree_depth=1,
            task_step_budget=None,
            max_task_retries=2,
            fault_hook=_crash_first_attempt,
            supervisor=SupervisorPolicy(backoff_base=0.01),
        )
        engine.run(nqueens_asm(5))
        # active_children() also reaps finished processes; anything
        # still alive here survived the escalation chain.
        assert multiprocessing.active_children() == []

    def test_no_live_children_after_degraded_run(self):
        engine = ProcessParallelEngine(
            workers=2,
            subtree_depth=1,
            task_step_budget=None,
            max_task_retries=5,
            fault_hook=_crash_every_task,
            supervisor=SupervisorPolicy(max_slot_failures=1),
        )
        engine.run(nqueens_asm(5))
        assert multiprocessing.active_children() == []
