"""Tests for the externally-controlled search session (§3.1)."""

import pytest

from repro.core.interactive import InteractiveSearch
from repro.core.sysno import SYS_EXIT, SYS_GUESS, SYS_GUESS_FAIL
from repro.workloads.nqueens import KNOWN_SOLUTION_COUNTS, nqueens_asm

COIN = f"""
    mov rax, {SYS_GUESS:#x}
    mov rdi, 2
    syscall
    mov rdi, rax
    mov rax, {SYS_EXIT}
    syscall
"""


class TestInteractiveSearch:
    def test_boot_exposes_root_extensions(self):
        search = InteractiveSearch(COIN)
        pending = search.pending()
        assert [p.number for p in pending] == [0, 1]
        assert all(p.path == () for p in pending)

    def test_run_selected_extension_only(self):
        search = InteractiveSearch(COIN)
        right = search.pending()[1]
        outcome = search.run(right.seq)
        assert outcome.outcome == "exit"
        assert outcome.solution.value[0] == 1
        # The sibling is still pending: the external entity decides.
        assert [p.number for p in search.pending()] == [0]

    def test_guess_outcome_reports_created(self):
        src = f"""
        mov rax, {SYS_GUESS:#x}
        mov rdi, 2
        syscall
        mov rax, {SYS_GUESS:#x}
        mov rdi, 3
        syscall
        mov rdi, rax
        mov rax, {SYS_EXIT}
        syscall
        """
        search = InteractiveSearch(src)
        outcome = search.run(search.pending()[0].seq)
        assert outcome.outcome == "guess"
        assert len(outcome.created) == 3
        assert all(p.depth == 1 for p in outcome.created)

    def test_external_order_is_respected(self):
        search = InteractiveSearch(COIN)
        order = []
        for pending in (search.pending()[1], search.pending()[0]):
            outcome = search.run(pending.seq)
            order.append(outcome.solution.value[0])
        assert order == [1, 0]

    def test_run_all_completes_search(self):
        search = InteractiveSearch(nqueens_asm(4))
        solutions = search.run_all()
        assert len(solutions) == KNOWN_SOLUTION_COUNTS[4]

    def test_guest_strategy_call_does_not_take_over(self):
        # nqueens_asm calls sys_guess_strategy(DFS); the session must
        # remain externally controlled.
        search = InteractiveSearch(nqueens_asm(4, select_strategy=True))
        assert len(search.pending()) == 4

    def test_fail_outcome(self):
        src = f"""
        mov rax, {SYS_GUESS:#x}
        mov rdi, 1
        syscall
        mov rax, {SYS_GUESS_FAIL:#x}
        syscall
        """
        search = InteractiveSearch(src)
        outcome = search.run(search.pending()[0].seq)
        assert outcome.outcome == "fail"
        assert outcome.solution is None

    def test_close_releases_everything(self):
        search = InteractiveSearch(nqueens_asm(4))
        search.run(search.pending()[0].seq)
        search.close()
        assert search._engine.manager.live_snapshots == 0
        assert search._engine.pool.live_frames <= 1

    def test_closed_session_rejects_run(self):
        search = InteractiveSearch(COIN)
        seq = search.pending()[0].seq
        search.close()
        with pytest.raises(RuntimeError, match="closed"):
            search.run(seq)

    def test_context_manager(self):
        with InteractiveSearch(COIN) as search:
            search.run_all()
        assert search._closed

    def test_hints_visible_to_external_entity(self):
        src = f"""
        .data
        hints: .quad 9, 1
        .text
        mov rax, 0x1003
        mov rdi, 2
        mov rsi, hints
        syscall
        mov rdi, rax
        mov rax, {SYS_EXIT}
        syscall
        """
        search = InteractiveSearch(src)
        assert [p.hint for p in search.pending()] == [9.0, 1.0]

    def test_unevaluated_candidates_stay_restorable(self):
        # Leave a branch unexplored for a while, then come back to it.
        search = InteractiveSearch(nqueens_asm(4))
        first = search.pending()[0]
        # Explore everything EXCEPT extension 0's subtree.
        while True:
            others = [p for p in search.pending() if p.seq != first.seq]
            if not others:
                break
            search.run(others[-1].seq)
        count_before = len(search.solutions)
        outcome = search.run(first.seq)
        assert outcome.outcome in ("guess", "fail", "exit")
        search.run_all()
        assert len(search.solutions) == KNOWN_SOLUTION_COUNTS[4]
