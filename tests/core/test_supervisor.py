"""WorkerSupervisor: slot state machine, backoff, circuit breaker.

The supervisor is pure bookkeeping (it never touches processes), so
everything here runs with a fake clock and no workers.
"""

import pytest

from repro.core.supervisor import (
    SlotState,
    SupervisorPolicy,
    WorkerSupervisor,
)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def make(workers=2, **policy):
    clock = FakeClock()
    sup = WorkerSupervisor(workers, SupervisorPolicy(**policy), clock=clock)
    return sup, clock


class TestBackoff:
    def test_exponential_growth_with_cap(self):
        sup, _ = make(
            workers=1, backoff_base=0.1, backoff_max=0.5, backoff_jitter=0.0,
            max_slot_failures=100,
        )
        slot = sup.slots[0]
        delays = [
            sup.record_failure(slot, wid, "crash", None).backoff
            for wid in range(5)
        ]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_is_deterministic_per_seed(self):
        a, _ = make(workers=1, backoff_jitter=0.5, seed=7,
                    max_slot_failures=100)
        b, _ = make(workers=1, backoff_jitter=0.5, seed=7,
                    max_slot_failures=100)
        da = [a.record_failure(a.slots[0], i, "crash", None).backoff
              for i in range(4)]
        db = [b.record_failure(b.slots[0], i, "crash", None).backoff
              for i in range(4)]
        assert da == db
        c, _ = make(workers=1, backoff_jitter=0.5, seed=8,
                    max_slot_failures=100)
        dc = [c.record_failure(c.slots[0], i, "crash", None).backoff
              for i in range(4)]
        assert da != dc

    def test_respawn_due_respects_clock(self):
        sup, clock = make(workers=1, backoff_base=1.0, backoff_jitter=0.0)
        slot = sup.slots[0]
        decision = sup.record_failure(slot, 0, "crash", None)
        assert slot.state is SlotState.BACKOFF
        assert sup.respawn_ready(clock()) == []
        assert sup.next_respawn_due() == pytest.approx(clock() + 1.0)
        clock.now += decision.backoff + 0.01
        assert sup.respawn_ready(clock()) == [slot]
        sup.mark_running(slot)
        assert slot.state is SlotState.RUNNING
        assert slot.respawns == 1


class TestSlotDeath:
    def test_slot_dies_after_consecutive_failures(self):
        sup, _ = make(workers=2, max_slot_failures=2)
        slot = sup.slots[0]
        assert not sup.record_failure(slot, 0, "crash", None).slot_died
        decision = sup.record_failure(slot, 1, "crash", None)
        assert decision.slot_died
        assert slot.state is SlotState.DEAD
        assert decision.backoff == 0.0
        assert sup.serviceable() == 1

    def test_success_resets_the_streak(self):
        sup, _ = make(workers=1, max_slot_failures=2)
        slot = sup.slots[0]
        sup.record_failure(slot, 0, "crash", None)
        sup.mark_running(slot)
        sup.record_success(slot)
        assert slot.failures == 0
        decision = sup.record_failure(slot, 1, "crash", None)
        assert not decision.slot_died  # streak restarted at 1
        assert slot.total_failures == 2  # lifetime count still accumulates

    def test_collapsed_floor(self):
        sup, _ = make(workers=3, min_workers=2, max_slot_failures=1)
        assert not sup.collapsed()
        sup.record_failure(sup.slots[0], 0, "crash", None)
        assert not sup.collapsed()  # 2 serviceable == floor
        sup.record_failure(sup.slots[1], 1, "crash", None)
        assert sup.collapsed()

    def test_min_workers_zero_still_floors_at_one(self):
        sup, _ = make(workers=1, min_workers=0, max_slot_failures=1)
        assert not sup.collapsed()
        sup.record_failure(sup.slots[0], 0, "crash", None)
        assert sup.collapsed()


class TestCircuitBreaker:
    KEY = (0, 2)

    def test_poison_needs_distinct_workers(self):
        sup, _ = make(workers=3, poison_threshold=2, max_slot_failures=100)
        slot = sup.slots[0]
        # The same worker id dying twice is one flaky worker, not
        # evidence against the task.
        assert not sup.record_failure(slot, 7, "crash", self.KEY).poison
        assert not sup.record_failure(slot, 7, "crash", self.KEY).poison
        decision = sup.record_failure(slot, 8, "timeout", self.KEY)
        assert decision.poison
        assert sup.is_poisoned(self.KEY)
        assert len(decision.evidence) == 3
        assert {e["worker"] for e in decision.evidence} == {7, 8}
        assert {e["kind"] for e in decision.evidence} == {"crash", "timeout"}

    def test_poison_fires_once(self):
        sup, _ = make(workers=3, poison_threshold=1, max_slot_failures=100)
        assert sup.record_failure(sup.slots[0], 0, "crash", self.KEY).poison
        assert not sup.record_failure(
            sup.slots[1], 1, "crash", self.KEY
        ).poison  # already quarantined

    def test_idle_death_blames_no_task(self):
        sup, _ = make(workers=1, poison_threshold=1, max_slot_failures=100)
        decision = sup.record_failure(sup.slots[0], 0, "crash", None)
        assert not decision.poison
        assert decision.evidence == []

    def test_external_quarantine(self):
        sup, _ = make(workers=1)
        sup.quarantine(self.KEY)  # journal recovery path
        assert sup.is_poisoned(self.KEY)
        assert sup.evidence_for(self.KEY) == []


class TestValidation:
    def test_rejects_bad_policy(self):
        with pytest.raises(ValueError):
            WorkerSupervisor(2, SupervisorPolicy(min_workers=-1))
        with pytest.raises(ValueError):
            WorkerSupervisor(2, SupervisorPolicy(poison_threshold=0))


class TestElasticSlots:
    """Slots grown mid-run for joined (external) workers."""

    def test_add_slot_indexes_append(self):
        sup, _ = make(workers=2)
        slot = sup.add_slot(respawnable=False)
        assert slot.index == 2
        assert sup.slots[2] is slot
        assert not slot.respawnable
        assert sup.serviceable() == 3

    def test_external_failure_is_terminal_not_backoff(self):
        sup, _ = make(workers=1, max_slot_failures=100)
        slot = sup.add_slot(respawnable=False)
        decision = sup.record_failure(slot, 5, "crash", None)
        assert slot.state is SlotState.DEAD
        assert decision.slot_died
        assert decision.backoff == 0.0
        assert slot not in sup.respawn_ready()

    def test_external_slot_sustains_a_dead_local_pool(self):
        sup, _ = make(workers=1, min_workers=1, max_slot_failures=1)
        sup.add_slot(respawnable=False)
        sup.record_failure(sup.slots[0], 0, "crash", None)
        assert sup.slots[0].state is SlotState.DEAD
        # The joined worker alone keeps the pool above the floor.
        assert not sup.collapsed()


class TestCollapseVsRespawn:
    def test_backoff_slot_still_counts_toward_the_floor(self):
        # A transient failure (BACKOFF, recovering) must not read as
        # collapse: only DEAD slots are written off.
        sup, _ = make(workers=2, min_workers=2, max_slot_failures=4)
        sup.record_failure(sup.slots[0], 0, "crash", None)
        assert sup.slots[0].state is SlotState.BACKOFF
        assert not sup.collapsed()

    def test_collapse_races_respawn_deadline(self):
        # Slot 0 is in BACKOFF (respawn pending) when slot 1 dies for
        # good: the pool collapses even though a respawn was due — the
        # engine checks collapse before spending the respawn.
        sup, clock = make(
            workers=2, min_workers=2, backoff_base=1.0,
            backoff_jitter=0.0, max_slot_failures=2,
        )
        sup.record_failure(sup.slots[0], 0, "crash", None)
        for wid in (1, 2):
            sup.record_failure(sup.slots[1], wid, "crash", None)
        assert sup.slots[1].state is SlotState.DEAD
        assert sup.collapsed()
        clock.now += 5.0
        assert sup.respawn_ready() == [sup.slots[0]]
        # Respawning the survivor does not un-collapse the pool.
        sup.mark_running(sup.slots[0])
        assert sup.collapsed()

    def test_backoff_saturates_at_cap_forever(self):
        sup, _ = make(
            workers=1, backoff_base=0.1, backoff_max=0.5,
            backoff_jitter=0.0, max_slot_failures=1000,
        )
        slot = sup.slots[0]
        delays = [
            sup.record_failure(slot, wid, "crash", None).backoff
            for wid in range(40)
        ]
        assert all(d == 0.5 for d in delays[3:])  # no overflow, no drift


class TestHealth:
    def test_health_tracks_every_transition(self):
        sup, clock = make(
            workers=2, backoff_base=1.0, backoff_jitter=0.0,
            max_slot_failures=2,
        )
        sup.add_slot(respawnable=False)
        assert [h["state"] for h in sup.health()] == ["running"] * 3
        sup.record_failure(sup.slots[0], 0, "crash", None)
        for wid in (1, 2):
            sup.record_failure(sup.slots[1], wid, "crash", None)
        health = sup.health()
        assert len(health) == len(sup.slots) == 3
        assert [h["state"] for h in health] == ["backoff", "dead", "running"]
        assert health[0]["respawn_in_s"] == pytest.approx(1.0)
        assert "respawn_in_s" not in health[1]
        assert health[1]["total_failures"] == 2
        # The countdown follows the clock and floors at zero.
        clock.now += 0.4
        assert sup.health()[0]["respawn_in_s"] == pytest.approx(0.6)
        clock.now += 10.0
        assert sup.health()[0]["respawn_in_s"] == 0.0
        sup.mark_running(sup.slots[0])
        entry = sup.health()[0]
        assert entry["state"] == "running"
        assert entry["respawns"] == 1
