"""ProcessParallelEngine: correctness, sharding, metrics, trace events.

These tests spawn real worker processes, so they keep instances small
(5/6-queens) and budgets tight enough to force multi-task sharding.
"""

import pytest

from repro.core.cluster import ClusterConfig, ProcessParallelEngine
from repro.core.machine import MachineEngine
from repro.obs import events as ev
from repro.obs.trace import TRACER
from repro.search.shard import PrefixTask, TaskFrontier, spill_extension
from repro.workloads.nqueens import KNOWN_SOLUTION_COUNTS, nqueens_asm


def solution_set(result):
    return sorted((s.path, s.value) for s in result.solutions)


@pytest.fixture(scope="module")
def sequential_6():
    return MachineEngine().run(nqueens_asm(6))


class TestShardPrimitives:
    def test_prefix_task_retry_preserves_key(self):
        task = PrefixTask(prefix=(1, 2), fanouts=(4, 4))
        again = task.retried()
        assert again.attempt == 1
        assert again.key() == task.key()
        assert again.depth == 2

    def test_spill_extension_builds_children(self):
        children = spill_extension((3,), (5,), 4, (0.1, 0.2, 0.3, 0.4))
        assert [c.prefix for c in children] == [(3, i) for i in range(4)]
        assert all(c.fanouts == (5, 4) for c in children)
        assert [c.hint for c in children] == [0.1, 0.2, 0.3, 0.4]

    def test_frontier_orders(self):
        dfs = TaskFrontier("dfs")
        bfs = TaskFrontier("bfs")
        tasks = [PrefixTask(prefix=(i,), fanouts=(3,)) for i in range(3)]
        dfs.extend(tasks)
        bfs.extend(tasks)
        assert dfs.pop().prefix == (2,)
        assert bfs.pop().prefix == (0,)
        assert dfs.peak == bfs.peak == 3

    def test_frontier_batch_and_unknown_order(self):
        frontier = TaskFrontier("bfs")
        frontier.extend(PrefixTask(prefix=(i,), fanouts=(4,)) for i in range(4))
        batch = frontier.take_batch(3)
        assert [t.prefix for t in batch] == [(0,), (1,), (2,)]
        assert len(frontier) == 1
        with pytest.raises(ValueError):
            TaskFrontier("a-star")


class TestClusterEngine:
    def test_matches_sequential_dfs(self, sequential_6):
        engine = ProcessParallelEngine(workers=2, task_step_budget=3000)
        result = engine.run(nqueens_asm(6))
        assert result.exhausted and result.stop_reason is None
        assert solution_set(result) == solution_set(sequential_6)
        # Sharding actually happened: more than just the root task ran.
        assert result.stats.extra["tasks_completed"] > 1
        assert result.stats.extra["tasks_spilled"] > 0

    def test_matches_sequential_bfs(self, sequential_6):
        engine = ProcessParallelEngine(
            workers=2, strategy="bfs", task_step_budget=3000
        )
        result = engine.run(nqueens_asm(6))
        assert solution_set(result) == solution_set(sequential_6)

    def test_single_worker(self, sequential_6):
        engine = ProcessParallelEngine(workers=1, task_step_budget=3000)
        result = engine.run(nqueens_asm(6))
        assert solution_set(result) == solution_set(sequential_6)

    def test_unsolvable_instance_exhausts(self):
        result = ProcessParallelEngine(
            workers=2, task_step_budget=2000
        ).run(nqueens_asm(3))
        assert result.solutions == []
        assert result.exhausted
        assert KNOWN_SOLUTION_COUNTS[3] == 0

    def test_subtree_depth_forces_spill(self, sequential_6):
        engine = ProcessParallelEngine(
            workers=2, subtree_depth=1, task_step_budget=None
        )
        result = engine.run(nqueens_asm(6))
        assert solution_set(result) == solution_set(sequential_6)
        # Depth-1 subtrees spill at every interior guess: one task per
        # explored interior node, far more than the step-budget split.
        assert result.stats.extra["tasks_completed"] > 50

    def test_max_solutions_early_stop(self, sequential_6):
        engine = ProcessParallelEngine(
            workers=2, task_step_budget=2000, max_solutions=2
        )
        result = engine.run(nqueens_asm(6))
        assert len(result.solutions) == 2
        assert not result.exhausted
        assert result.stop_reason == "max_solutions"
        full = {s.value for s in sequential_6.solutions}
        assert all(s.value in full for s in result.solutions)

    def test_metrics_merged_from_workers(self, sequential_6):
        engine = ProcessParallelEngine(workers=2, task_step_budget=3000)
        result = engine.run(nqueens_asm(6))
        stats = result.stats
        # Search counters are shipped from worker registries and merged.
        assert stats.completions == len(result.solutions)
        assert stats.candidates > 0
        assert stats.evaluations > 0
        # Every explored instruction is counted exactly once across the
        # cluster, so the explore total matches the sequential engine.
        assert (
            stats.extra["guest_instructions"]
            == sequential_6.stats.extra["guest_instructions"]
        )
        # Replay is pure re-execution overhead on top of that.
        assert stats.extra["replay_steps"] > 0
        assert stats.replayed_decisions > 0
        assert stats.extra["snapshots_taken"] > 0
        timer = engine.registry.timer("parallel.task_time")
        assert timer.count == stats.extra["tasks_completed"]

    def test_trace_events(self):
        engine = ProcessParallelEngine(workers=2, task_step_budget=3000)
        with TRACER.capture() as sink:
            engine.run(nqueens_asm(5))
        types = {e["type"] for e in sink.events}
        assert ev.PARALLEL_DISPATCH in types
        assert ev.PARALLEL_RESULT in types
        dispatches = [e for e in sink.events if e["type"] == ev.PARALLEL_DISPATCH]
        assert all(e["tasks"] >= 1 for e in dispatches)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ProcessParallelEngine(workers=0)
        with pytest.raises(ValueError):
            ProcessParallelEngine(batch_size=0)
        with pytest.raises(ValueError):
            ProcessParallelEngine(strategy="best").run(nqueens_asm(4))

    def test_engine_is_reusable(self, sequential_6):
        engine = ProcessParallelEngine(workers=2, task_step_budget=3000)
        first = engine.run(nqueens_asm(6))
        second = engine.run(nqueens_asm(6))
        assert solution_set(first) == solution_set(second)
        # The registry is reset per run, not accumulated across runs.
        assert (
            second.stats.extra["guest_instructions"]
            == first.stats.extra["guest_instructions"]
        )

    def test_config_is_picklable(self):
        import pickle

        config = ClusterConfig(strategy="bfs", task_step_budget=123)
        assert pickle.loads(pickle.dumps(config)) == config
