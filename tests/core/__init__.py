"""Tests for the public engine API."""
