"""Unit tests for the replay-based backtracking engine (Python guests)."""

import pytest

from repro.core import GuessError, ReplayEngine
from repro.core.errors import GuessFail
from repro.search import get_strategy


def coin(sys):
    return sys.guess(2)


def two_bits(sys):
    hi = sys.guess(2)
    lo = sys.guess(2)
    return hi * 2 + lo


def pick_even(sys):
    x = sys.guess(6)
    if x % 2:
        sys.fail()
    return x


class TestBasics:
    def test_enumerates_all_paths(self):
        result = ReplayEngine().run(two_bits)
        assert result.solution_values == [0, 1, 2, 3]
        assert result.exhausted

    def test_fail_prunes(self):
        result = ReplayEngine().run(pick_even)
        assert result.solution_values == [0, 2, 4]
        assert result.stats.fails == 3

    def test_solution_paths_recorded(self):
        result = ReplayEngine().run(two_bits)
        assert [s.path for s in result.solutions] == [
            (0, 0), (0, 1), (1, 0), (1, 1),
        ]
        assert result.solutions[0].depth == 2

    def test_no_guess_single_path(self):
        result = ReplayEngine().run(lambda sys: "only")
        assert result.solution_values == ["only"]
        assert result.stats.candidates == 0
        assert result.stats.evaluations == 1

    def test_all_paths_fail(self):
        def hopeless(sys):
            sys.guess(3)
            sys.fail()

        result = ReplayEngine().run(hopeless)
        assert result.solution_values == []
        assert result.exhausted
        assert not result

    def test_guess_zero_is_dead_end(self):
        def guest(sys):
            if sys.guess(2) == 0:
                sys.guess(0)
            return "survivor"

        result = ReplayEngine().run(guest)
        assert result.solution_values == ["survivor"]

    def test_extra_args_forwarded(self):
        def guest(sys, lo, hi=10):
            return lo + hi + sys.guess(1)

        result = ReplayEngine().run(guest, 5, hi=20)
        assert result.solution_values == [25]

    def test_stats_shape(self):
        result = ReplayEngine().run(two_bits)
        s = result.stats
        assert s.candidates == 3  # root guess + two second-level guesses
        assert s.evaluations == 7  # 1 root + 2 + 4
        assert s.completions == 4
        assert s.replayed_decisions > 0

    def test_result_summary_readable(self):
        text = ReplayEngine().run(coin).summary()
        assert "2 solution(s)" in text
        assert "dfs" in text


class TestStrategies:
    def test_bfs_order_differs_from_dfs(self):
        def guest(sys):
            a = sys.guess(2)
            b = sys.guess(2)
            return (a, b)

        dfs = ReplayEngine("dfs").run(guest).solution_values
        bfs = ReplayEngine("bfs").run(guest).solution_values
        assert sorted(dfs) == sorted(bfs)
        assert dfs == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_guest_selects_strategy(self):
        def guest(sys):
            assert sys.strategy("bfs")
            return sys.guess(2)

        result = ReplayEngine("dfs").run(guest)
        assert result.strategy == "bfs"
        assert len(result.solutions) == 2

    def test_strategy_switch_after_guess_rejected(self):
        def guest(sys):
            sys.guess(2)
            sys.strategy("bfs")

        with pytest.raises(GuessError, match="switch strategy"):
            ReplayEngine("dfs").run(guest)

    def test_strategy_instance_accepted(self):
        engine = ReplayEngine(get_strategy("bfs"))
        assert engine.run(coin).strategy == "bfs"

    def test_astar_uses_hints(self):
        # Two-level tree; hints lead straight to (1, 1).
        def guest(sys):
            a = sys.guess(2, hints=[10.0, 0.0])
            b = sys.guess(2, hints=[10.0, 0.0])
            return (a, b)

        engine = ReplayEngine("astar", max_solutions=1)
        result = engine.run(guest)
        assert result.solution_values == [(1, 1)]


class TestBudgets:
    def test_max_solutions(self):
        result = ReplayEngine(max_solutions=2).run(two_bits)
        assert len(result.solutions) == 2
        assert not result.exhausted
        assert result.stop_reason == "max_solutions"

    def test_max_evaluations(self):
        result = ReplayEngine(max_evaluations=3).run(two_bits)
        assert not result.exhausted
        assert result.stop_reason == "max_evaluations"
        assert result.stats.evaluations <= 3

    def test_max_depth_prunes(self):
        def bottomless(sys):
            while True:
                sys.guess(2)

        result = ReplayEngine(max_depth=5).run(bottomless)
        assert result.solution_values == []
        assert not result.exhausted
        assert result.stop_reason == "max_depth"

    def test_first_solution_helper(self):
        engine = ReplayEngine()
        sol = engine.first_solution(two_bits)
        assert sol.value == 0
        # Budget restored: a full run still enumerates everything.
        assert len(engine.run(two_bits).solutions) == 4


class TestGuestContract:
    def test_nondeterministic_fanout_detected(self):
        calls = {"n": 0}

        def shifty(sys):
            calls["n"] += 1
            return sys.guess(2 if calls["n"] == 1 else 3)

        with pytest.raises(GuessError, match="nondeterministic"):
            ReplayEngine().run(shifty)

    def test_negative_fanout_rejected(self):
        with pytest.raises(GuessError, match="fan-out"):
            ReplayEngine().run(lambda sys: sys.guess(-1))

    def test_hint_length_mismatch_rejected(self):
        with pytest.raises(GuessError, match="hints"):
            ReplayEngine().run(lambda sys: sys.guess(3, hints=[1.0]))

    def test_guest_exceptions_propagate(self):
        def broken(sys):
            raise RuntimeError("guest bug")

        with pytest.raises(RuntimeError, match="guest bug"):
            ReplayEngine().run(broken)

    def test_guest_must_not_catch_fail(self):
        # A guest swallowing GuessFail breaks the illusion; the engine
        # then sees a completion, which is the documented behaviour.
        def naughty(sys):
            try:
                sys.fail()
            except GuessFail:
                return "swallowed"

        result = ReplayEngine().run(naughty)
        assert result.solution_values == ["swallowed"]


class TestDeepSearch:
    def test_binary_tree_depth_10(self):
        def guest(sys):
            return tuple(sys.guess(2) for _ in range(10))

        result = ReplayEngine().run(guest)
        assert len(result.solutions) == 1024
        assert len(set(result.solutions)) == 1024

    def test_factorial_enumeration(self):
        def perms(sys, n=5):
            remaining = list(range(n))
            out = []
            while remaining:
                out.append(remaining.pop(sys.guess(len(remaining))))
            return tuple(out)

        result = ReplayEngine().run(perms)
        assert len(result.solutions) == 120
        assert len(set(result.solution_values)) == 120
