"""Differential testing: every engine explores random guests identically.

Random deterministic guests (random fan-outs, state-dependent pruning,
memory mutation between guesses) are run on every machine-guest engine
and on every snapshot substrate; all must produce the same (path, exit
code) multiset as an engine-free Python reference.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.machine import MachineEngine
from repro.core.parallel import ParallelMachineEngine
from repro.core.replay_machine import ReplayMachineEngine
from repro.workloads.randprog import make_program, reference_solutions


def engine_solutions(result):
    return sorted((s.path, s.value[0]) for s in result.solutions)


@pytest.mark.parametrize("seed", range(12))
def test_machine_matches_reference(seed):
    program = make_program(seed)
    expected = sorted(reference_solutions(program))
    result = MachineEngine().run(program.source)
    assert engine_solutions(result) == expected


@pytest.mark.parametrize("seed", range(0, 12, 3))
def test_all_engines_agree(seed):
    program = make_program(seed)
    expected = sorted(reference_solutions(program))
    engines = [
        MachineEngine("dfs"),
        MachineEngine("bfs"),
        MachineEngine(snapshot_mode="eager"),
        MachineEngine(snapshot_mode="dirty-eager"),
        ReplayMachineEngine("dfs"),
        ParallelMachineEngine(workers=3, quantum=9),
    ]
    for engine in engines:
        result = engine.run(program.source)
        assert engine_solutions(result) == expected, type(engine).__name__


@given(seed=st.integers(0, 10_000))
@settings(max_examples=20, deadline=None)
def test_property_snapshot_vs_replay(seed):
    program = make_program(seed)
    snap = MachineEngine().run(program.source)
    replay = ReplayMachineEngine().run(program.source)
    assert engine_solutions(snap) == engine_solutions(replay)
    assert engine_solutions(snap) == sorted(reference_solutions(program))


@given(seed=st.integers(0, 10_000), workers=st.integers(1, 6),
       quantum=st.integers(1, 60))
@settings(max_examples=15, deadline=None)
def test_property_parallel_interleaving_safe(seed, workers, quantum):
    """Any worker count and any timeslice produce the same solutions."""
    program = make_program(seed)
    expected = sorted(reference_solutions(program))
    result = ParallelMachineEngine(workers=workers, quantum=quantum).run(
        program.source
    )
    assert engine_solutions(result) == expected
