"""Integration tests for the machine engine (snapshot-based backtracking)."""

import pytest

from repro.core.machine import MachineEngine
from repro.core.sysno import SYS_EXIT, SYS_GUESS, SYS_GUESS_FAIL
from repro.workloads.nqueens import (
    KNOWN_SOLUTION_COUNTS,
    boards_from_result,
    is_valid_board,
    nqueens_asm,
)

COIN = f"""
    mov rax, {SYS_GUESS:#x}
    mov rdi, 2
    syscall
    mov rdi, rax
    mov rax, {SYS_EXIT}
    syscall
"""

TWO_BITS = f"""
    mov rax, {SYS_GUESS:#x}
    mov rdi, 2
    syscall
    mov rbx, rax
    shl rbx, 1
    mov rax, {SYS_GUESS:#x}
    mov rdi, 2
    syscall
    add rbx, rax
    mov rdi, rbx
    mov rax, {SYS_EXIT}
    syscall
"""


class TestBasics:
    def test_coin_two_solutions(self):
        result = MachineEngine().run(COIN)
        assert [v[0] for v in result.solution_values] == [0, 1]
        assert result.exhausted

    def test_two_bits_enumeration(self):
        result = MachineEngine().run(TWO_BITS)
        assert [v[0] for v in result.solution_values] == [0, 1, 2, 3]
        assert [s.path for s in result.solutions] == [
            (0, 0), (0, 1), (1, 0), (1, 1),
        ]

    def test_no_guess_single_path(self):
        result = MachineEngine().run(f"mov rax, {SYS_EXIT}\nmov rdi, 5\nsyscall")
        assert len(result.solutions) == 1
        assert result.solution_values[0][0] == 5
        assert result.stats.candidates == 0

    def test_all_fail(self):
        src = f"""
        mov rax, {SYS_GUESS:#x}
        mov rdi, 3
        syscall
        mov rax, {SYS_GUESS_FAIL:#x}
        syscall
        """
        result = MachineEngine().run(src)
        assert result.solutions == []
        assert result.stats.fails == 3
        assert result.exhausted

    def test_snapshots_taken_equals_candidates(self):
        result = MachineEngine().run(TWO_BITS)
        assert result.stats.extra["snapshots_taken"] == result.stats.candidates == 3

    def test_restore_per_evaluation(self):
        result = MachineEngine().run(TWO_BITS)
        # 7 evaluations total; the root one starts fresh (no restore).
        assert result.stats.extra["snapshots_restored"] == 6


class TestNQueens:
    @pytest.mark.parametrize("n", [4, 5, 6])
    def test_counts_match_oeis(self, n):
        result = MachineEngine().run(nqueens_asm(n))
        assert len(result.solutions) == KNOWN_SOLUTION_COUNTS[n]

    def test_boards_valid_and_unique(self):
        result = MachineEngine().run(nqueens_asm(6))
        boards = boards_from_result(result)
        assert all(is_valid_board(b) for b in boards)
        assert len(set(boards)) == len(boards)

    def test_fig1_style_prints_via_fail(self):
        engine = MachineEngine()
        result = engine.run(nqueens_asm(4, fig1_style=True))
        assert result.solutions == []
        boards = [t.strip() for t in engine.failed_output()]
        assert sorted(boards) == ["1302", "2031"]

    def test_bfs_finds_same_solution_set(self):
        dfs = MachineEngine("dfs").run(nqueens_asm(5))
        bfs = MachineEngine("bfs").run(nqueens_asm(5))
        assert sorted(boards_from_result(dfs)) == sorted(boards_from_result(bfs))

    def test_guest_selected_strategy_wins(self):
        # The guest asks for DFS even if the engine default is BFS.
        result = MachineEngine("bfs").run(nqueens_asm(4, select_strategy=True))
        assert result.strategy == "dfs"

    def test_memory_is_reclaimed(self):
        engine = MachineEngine()
        engine.run(nqueens_asm(5))
        # After an exhaustive search only the zero frame may survive.
        assert engine.pool.live_frames <= 1
        assert engine.manager.live_snapshots == 0


class TestIsolation:
    def test_sibling_extensions_do_not_leak_writes(self):
        # Each path writes its guess into the same data cell, then guesses
        # again; if isolation broke, the second-level read would see a
        # sibling's value instead of its own.
        src = f"""
        mov rbx, 0x600000
        mov rax, {SYS_GUESS:#x}
        mov rdi, 3
        syscall
        mov [rbx], rax            ; remember first guess in memory
        mov rax, {SYS_GUESS:#x}
        mov rdi, 3
        syscall
        mov rcx, [rbx]            ; re-read first guess
        imul rcx, 3
        add rcx, rax
        mov rdi, rcx              ; exit code = first*3 + second
        mov rax, {SYS_EXIT}
        syscall
        """
        result = MachineEngine().run(src)
        codes = sorted(v[0] for v in result.solution_values)
        assert codes == list(range(9))

    def test_console_is_per_path(self):
        src = f"""
        .data
        ch: .zero 2
        .text
        mov rax, {SYS_GUESS:#x}
        mov rdi, 2
        syscall
        add rax, 'a'
        mov rbx, ch
        movb [rbx], rax
        mov rax, 1
        mov rdi, 1
        mov rsi, ch
        mov rdx, 1
        syscall
        mov rax, {SYS_EXIT}
        mov rdi, 0
        syscall
        """
        result = MachineEngine().run(src)
        texts = [v[1] for v in result.solution_values]
        assert texts == ["a", "b"]

    def test_file_writes_contained_per_path(self):
        src = f"""
        .data
        path: .asciz "/log"
        buf:  .zero 2
        .text
        mov rax, 2            ; open("/log", O_RDWR|O_CREAT)
        mov rdi, path
        mov rsi, 66
        syscall
        mov rbx, rax
        mov rax, {SYS_GUESS:#x}
        mov rdi, 2
        syscall
        add rax, 'x'
        mov rcx, buf
        movb [rcx], rax
        mov rax, 1            ; write(fd, buf, 1)
        mov rdi, rbx
        mov rsi, buf
        mov rdx, 1
        syscall
        mov rax, 0            ; read own file back
        mov rdi, rbx
        mov rsi, buf
        mov rdx, 1
        syscall               ; (pos is at EOF; returns 0 - fine)
        mov rax, {SYS_EXIT}
        mov rdi, 0
        syscall
        """
        engine = MachineEngine()
        result = engine.run(src)
        assert len(result.solutions) == 2


class TestBudgets:
    def test_max_solutions(self):
        result = MachineEngine(max_solutions=2).run(TWO_BITS)
        assert len(result.solutions) == 2
        assert not result.exhausted
        assert result.stop_reason == "max_solutions"

    def test_max_evaluations(self):
        result = MachineEngine(max_evaluations=3).run(TWO_BITS)
        assert not result.exhausted

    def test_runaway_extension_killed(self):
        src = f"""
        mov rax, {SYS_GUESS:#x}
        mov rdi, 2
        syscall
        cmp rax, 0
        je spin
        mov rdi, 1
        mov rax, {SYS_EXIT}
        syscall
        spin: jmp spin
        """
        result = MachineEngine(max_steps_per_extension=10_000).run(src)
        assert [v[0] for v in result.solution_values] == [1]
        assert result.stats.kills == 1

    def test_max_total_steps(self):
        result = MachineEngine(max_total_steps=10).run(nqueens_asm(6))
        assert not result.exhausted
        assert result.stop_reason == "max_total_steps"


class TestAccounting:
    def test_vm_exit_counts_present(self):
        result = MachineEngine().run(nqueens_asm(4))
        exits = result.stats.extra["vm_exit_counts"]
        assert exits["syscall"] > 0
        assert result.stats.extra["vm_exits"] > 0

    def test_guest_instruction_count_positive(self):
        result = MachineEngine().run(nqueens_asm(4))
        assert result.stats.extra["guest_instructions"] > 100

    def test_peak_live_snapshots_bounded_by_depth_dfs(self):
        # DFS + pruning keeps the live tree to one root-to-leaf path.
        result = MachineEngine("dfs").run(nqueens_asm(5))
        assert result.stats.extra["snapshots_peak_live"] <= 5 + 1
