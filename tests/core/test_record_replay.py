"""Differential record/replay battery: every engine, one execution.

The claim under test is the tentpole invariant: once a nondeterministic
guest's event log is recorded, *every* way of running the program —
sequential snapshot engine, re-executing replay engine, process-parallel
sharding, killed-and-resumed from the journal — produces the identical
solution multiset, path-for-path.  And the converse: a strict replay
against a log with any event missing or altered must raise
:class:`ReplayDivergenceError`, never silently drift.
"""

import warnings

import pytest

from repro.chaos import FaultPlan
from repro.core.cluster import ProcessParallelEngine
from repro.core.errors import CoordinatorKilled, ReplayDivergenceError
from repro.core.machine import MachineEngine
from repro.core.recorder import NondetEvent, NondetLog
from repro.core.replay_machine import ReplayMachineEngine
from repro.libos.console import InputSource
from repro.workloads.nqueens import (
    KNOWN_SOLUTION_COUNTS,
    boards_from_result,
    is_valid_board,
    nqueens_randomized_asm,
)
from repro.workloads.synthetic import stdin_sum_asm

STDIN_SCRIPT = b"differential!"


def multiset(result):
    return sorted((s.path, s.value) for s in result.solutions)


def run_quiet(engine, program):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")  # the DT lint is the point here
        return engine.run(program)


class Recorded:
    """A sequentially recorded reference run of one nondet workload."""

    def __init__(self, source, input_bytes=None):
        self.source = source
        self.input_bytes = input_bytes
        engine = MachineEngine(replay_mode="record", input=self.fresh_input())
        self.result = run_quiet(engine, source)
        self.log = engine.recorder.log
        self.baseline = multiset(self.result)

    def fresh_input(self):
        return None if self.input_bytes is None else \
            InputSource(self.input_bytes)


@pytest.fixture(scope="module")
def random_queens():
    rec = Recorded(nqueens_randomized_asm(5))
    boards = boards_from_result(rec.result)
    assert len(boards) == KNOWN_SOLUTION_COUNTS[5]
    assert all(is_valid_board(b) for b in boards)
    return rec


@pytest.fixture(scope="module")
def stdin_sum():
    rec = Recorded(stdin_sum_asm(4), input_bytes=STDIN_SCRIPT)
    assert len(rec.baseline) == 2 ** 4
    return rec


@pytest.fixture(scope="module", params=["random_queens", "stdin_sum"])
def workload(request):
    return request.getfixturevalue(request.param)


class TestDifferential:
    def test_sequential_strict_replay_is_identical(self, workload):
        engine = MachineEngine(replay_mode="strict", replay_log=workload.log)
        result = run_quiet(engine, workload.source)
        assert multiset(result) == workload.baseline
        assert engine.recorder.recorded == 0
        assert engine.recorder.replayed > 0

    def test_reexecuting_replay_engine_is_identical(self, workload):
        engine = ReplayMachineEngine(replay_mode="strict",
                                     replay_log=workload.log)
        result = run_quiet(engine, workload.source)
        assert multiset(result) == workload.baseline

    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_process_parallel_strict_is_identical(self, workload, workers):
        engine = ProcessParallelEngine(
            workers=workers, task_step_budget=3000, verify="warn",
            replay_mode="strict", replay_log=workload.log,
        )
        result = run_quiet(engine, workload.source)
        assert multiset(result) == workload.baseline
        assert result.stats.extra["nondet_conflicts"] == 0

    def test_record_mode_replays_known_territory(self, workload):
        """record mode over a complete log behaves exactly like strict."""
        engine = MachineEngine(replay_mode="record",
                               replay_log=workload.log.copy())
        result = run_quiet(engine, workload.source)
        assert multiset(result) == workload.baseline
        assert engine.recorder.recorded == 0

    def test_parallel_record_from_scratch_is_self_consistent(self, workload):
        """A parallel *recording* run's own log reproduces its own run.

        The entropy drawn differs from the reference run — that is the
        point — but strict sequential replay of the parallel run's
        merged log must land on exactly the parallel run's multiset.
        """
        par = ProcessParallelEngine(
            workers=2, task_step_budget=3000, verify="warn",
            replay_mode="record",
            input_script=workload.input_bytes,
        )
        rp = run_quiet(par, workload.source)
        seq = MachineEngine(replay_mode="strict", replay_log=par.replay_log)
        rs = run_quiet(seq, workload.source)
        assert multiset(rs) == multiset(rp)
        assert len(multiset(rp)) == len(workload.baseline)

    def test_killed_and_resumed_is_identical(self, workload, tmp_path):
        """Chaos-kill mid-run, resume from the journal: same multiset."""
        journal = str(tmp_path / "run.journal")
        kwargs = dict(
            workers=2, task_step_budget=400, fsync="off", verify="warn",
            replay_mode="strict", replay_log=workload.log, journal=journal,
        )
        with pytest.raises(CoordinatorKilled):
            run_quiet(
                ProcessParallelEngine(
                    chaos=FaultPlan(coordinator_kill_epoch=3), **kwargs
                ),
                workload.source,
            )
        result = run_quiet(
            ProcessParallelEngine(resume=True, **kwargs), workload.source
        )
        assert multiset(result) == workload.baseline
        assert result.stats.extra["resumed"] is True


class TestDivergenceIsLoud:
    def drop_one(self, log, index):
        events = log.events()
        del events[index]
        return NondetLog(events)

    def test_any_missing_event_fails_strict_replay(self, workload):
        for index in range(len(workload.log)):
            truncated = self.drop_one(workload.log, index)
            engine = MachineEngine(replay_mode="strict",
                                   replay_log=truncated)
            with pytest.raises(ReplayDivergenceError):
                run_quiet(engine, workload.source)

    def test_kind_swap_fails_strict_replay(self, workload):
        events = workload.log.events()
        victim = events[0]
        swapped = "input" if victim.kind != "input" else "random"
        events[0] = NondetEvent(kind=swapped, path=victim.path,
                                seq=victim.seq, payload=victim.payload)
        engine = MachineEngine(replay_mode="strict",
                               replay_log=NondetLog(events))
        with pytest.raises(ReplayDivergenceError, match="expected"):
            run_quiet(engine, workload.source)

    def test_missing_event_fails_parallel_strict_too(self, workload):
        truncated = self.drop_one(workload.log, 0)
        engine = ProcessParallelEngine(
            workers=2, task_step_budget=3000, verify="warn",
            replay_mode="strict", replay_log=truncated,
        )
        with pytest.raises(ReplayDivergenceError):
            run_quiet(engine, workload.source)

    def test_divergence_error_carries_diagnostics(self, workload):
        truncated = NondetLog()  # nothing recorded at all
        engine = MachineEngine(replay_mode="strict", replay_log=truncated)
        with pytest.raises(ReplayDivergenceError) as err:
            run_quiet(engine, workload.source)
        assert "strict replay" in str(err.value)

    def test_tampered_log_file_refused_at_load(self, workload, tmp_path):
        path = str(tmp_path / "run.replay")
        workload.log.save(path, program="prog")
        with open(path, "rb") as fh:
            blob = bytearray(fh.read())
        blob[len(blob) // 2] ^= 0x40
        with open(path, "wb") as fh:
            fh.write(blob)
        with pytest.raises(ReplayDivergenceError):
            NondetLog.load(path, program="prog")


class TestLogShipping:
    def test_resume_merges_journaled_events(self, workload, tmp_path):
        """nondet records land in the journal before their completes, so
        a recovered run replays — not re-rolls — finished territory."""
        from repro.core.journal import recover

        journal = str(tmp_path / "run.journal")
        par = ProcessParallelEngine(
            workers=2, task_step_budget=3000, fsync="off", verify="warn",
            replay_mode="record", journal=journal,
            input_script=workload.input_bytes,
        )
        rp = run_quiet(par, workload.source)
        recovered = recover(journal)
        rebuilt = NondetLog()
        rebuilt.merge_records(recovered.nondet_events)
        assert rebuilt == par.replay_log
        # The journaled events alone reproduce the run.
        seq = MachineEngine(replay_mode="strict", replay_log=rebuilt)
        assert multiset(run_quiet(seq, workload.source)) == multiset(rp)

    def test_run_header_pins_replay_mode(self, workload, tmp_path):
        from repro.core.errors import ResumeMismatchError

        journal = str(tmp_path / "run.journal")
        with pytest.raises(CoordinatorKilled):
            run_quiet(
                ProcessParallelEngine(
                    workers=2, task_step_budget=400, fsync="off",
                    verify="warn", replay_mode="strict",
                    replay_log=workload.log, journal=journal,
                    chaos=FaultPlan(coordinator_kill_epoch=3),
                ),
                workload.source,
            )
        # Resuming with replay off must be refused: the journaled
        # solutions depend on replayed events the resumed run would
        # not reproduce.
        with pytest.raises(ResumeMismatchError, match="replay mode"):
            run_quiet(
                ProcessParallelEngine(
                    workers=2, task_step_budget=400, fsync="off",
                    verify="warn", journal=journal, resume=True,
                ),
                workload.source,
            )
