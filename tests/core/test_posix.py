"""Tests for the fork-based engine (real kernel COW).

Skipped automatically where fork is unavailable.
"""

import os

import pytest

from repro.core.errors import GuessError
from repro.workloads.nqueens import KNOWN_SOLUTION_COUNTS, nqueens_python

posix = pytest.importorskip("repro.core.posix")


def _fork_works() -> bool:
    try:
        pid = os.fork()
    except OSError:
        return False
    if pid == 0:
        os._exit(0)
    os.waitpid(pid, 0)
    return True


pytestmark = pytest.mark.skipif(not _fork_works(), reason="fork unavailable")


def two_bits(sys):
    return sys.guess(2) * 2 + sys.guess(2)


class TestPosixEngine:
    def test_enumerates_in_dfs_order(self):
        result = posix.PosixEngine().run(two_bits)
        assert result.solution_values == [0, 1, 2, 3]
        assert [s.path for s in result.solutions] == [
            (0, 0), (0, 1), (1, 0), (1, 1),
        ]

    def test_nqueens(self):
        result = posix.PosixEngine().run(nqueens_python, 5)
        assert len(result.solutions) == KNOWN_SOLUTION_COUNTS[5]

    def test_fail_prunes(self):
        def guest(sys):
            x = sys.guess(4)
            if x % 2:
                sys.fail()
            return x

        result = posix.PosixEngine().run(guest)
        assert result.solution_values == [0, 2]

    def test_forked_state_is_isolated(self):
        # Mutations before a guess must be private per extension: the
        # kernel's COW gives each child its own copy of `state`.
        def guest(sys):
            state = [0]
            state[0] = sys.guess(3)
            sys.guess(1)  # second choice point after the mutation
            return state[0]

        result = posix.PosixEngine().run(guest)
        assert sorted(result.solution_values) == [0, 1, 2]

    def test_max_depth_prunes(self):
        def bottomless(sys):
            while True:
                sys.guess(2)

        result = posix.PosixEngine(max_depth=4).run(bottomless)
        assert result.solution_values == []

    def test_guess_zero_fails_path(self):
        def guest(sys):
            if sys.guess(2) == 0:
                sys.guess(0)
            return "ok"

        result = posix.PosixEngine().run(guest)
        assert result.solution_values == ["ok"]

    def test_max_solutions(self):
        result = posix.PosixEngine(max_solutions=2).run(two_bits)
        assert len(result.solutions) == 2

    def test_only_dfs_supported(self):
        def guest(sys):
            sys.strategy("bfs")
            return 1

        result = posix.PosixEngine().run(guest)
        # The strategy error kills the child tree; no solutions emerge.
        assert result.solution_values == []
