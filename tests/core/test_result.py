"""Unit tests for Solution / SearchStats / SearchResult."""

from repro.core.result import SearchResult, SearchStats, Solution


def make_result(n_solutions=2, exhausted=True, stop_reason=None):
    solutions = [
        Solution(value=f"v{i}", path=(0,) * (i + 1)) for i in range(n_solutions)
    ]
    return SearchResult(
        solutions=solutions,
        stats=SearchStats(candidates=3, evaluations=7, fails=2,
                          completions=n_solutions),
        strategy="dfs",
        exhausted=exhausted,
        stop_reason=stop_reason,
    )


class TestSolution:
    def test_depth_is_path_length(self):
        assert Solution(value=1, path=(0, 1, 2)).depth == 3

    def test_frozen(self):
        s = Solution(value=1, path=())
        try:
            s.value = 2
            mutated = True
        except AttributeError:
            mutated = False
        assert not mutated


class TestSearchResult:
    def test_truthiness(self):
        assert make_result(1)
        assert not make_result(0)

    def test_first(self):
        assert make_result(2).first.value == "v0"
        assert make_result(0).first is None

    def test_solution_values(self):
        assert make_result(2).solution_values == ["v0", "v1"]

    def test_summary_exhausted(self):
        text = make_result(2).summary()
        assert "2 solution(s)" in text
        assert "dfs" in text
        assert "stopped" not in text

    def test_summary_truncated(self):
        text = make_result(1, exhausted=False,
                           stop_reason="max_solutions").summary()
        assert "stopped: max_solutions" in text


class TestSearchStats:
    def test_defaults(self):
        stats = SearchStats()
        assert stats.candidates == 0
        assert stats.extra == {}

    def test_extra_is_per_instance(self):
        a, b = SearchStats(), SearchStats()
        a.extra["x"] = 1
        assert "x" not in b.extra
