"""The write-ahead run journal: encoding, durability, recovery.

These tests drive :mod:`repro.core.journal` directly — no worker
processes — so every corruption scenario (torn tail, interior bit rot,
missing header) is constructed byte-exactly and the recovery semantics
are pinned down in isolation.  The end-to-end crash/resume behaviour is
covered in ``test_resume.py``.
"""

import json

import pytest

from repro.core.errors import JournalError, ResumeMismatchError
from repro.core.journal import (
    JOURNAL_VERSION,
    JournalWriter,
    RecoveredRun,
    check_resume,
    decode_record,
    encode_record,
    program_digest,
    recover,
    scan,
)
from repro.cpu.assembler import assemble
from repro.obs.registry import MetricsRegistry
from repro.search.shard import PrefixTask
from repro.workloads.nqueens import nqueens_asm


def _write(path, *appends, fsync="off", **writer_kwargs):
    with JournalWriter(str(path), fsync=fsync, **writer_kwargs) as journal:
        for rtype, fields in appends:
            journal.append(rtype, **fields)


def _header(root=None, **extra):
    fields = {
        "version": JOURNAL_VERSION,
        "program": "d" * 64,
        "root": (root or PrefixTask()).to_record(),
    }
    fields.update(extra)
    return ("run_begin", fields)


class TestEncoding:
    def test_roundtrip(self):
        record = {"epoch": 3, "type": "dispatch", "task": {"prefix": [1, 2]}}
        line = encode_record(record)
        assert line.endswith("\n")
        decoded = decode_record(line)
        assert decoded == record

    def test_any_mutation_is_detected(self):
        line = encode_record({"epoch": 0, "type": "complete", "n": 41})
        body = line.rstrip("\n")
        for pos in range(len(body)):
            flipped = chr(ord(body[pos]) ^ 0x01)
            mutated = body[:pos] + flipped + body[pos + 1:]
            assert decode_record(mutated) is None, f"mutation at {pos} passed"

    def test_rejects_non_records(self):
        assert decode_record("not json") is None
        assert decode_record("[1,2,3]") is None
        assert decode_record('{"epoch":0,"type":"x"}') is None  # no crc
        valid = encode_record({"epoch": 0, "type": "x"})
        record = json.loads(valid)
        record["crc"] = "42"  # wrong type
        assert decode_record(json.dumps(record)) is None


class TestWriter:
    def test_epochs_are_monotonic(self, tmp_path):
        path = tmp_path / "j"
        with JournalWriter(str(path), fsync="off") as journal:
            assert journal.append("a") == 0
            assert journal.append("b") == 1
            assert journal.epoch == 2
        records, skipped, torn, _ = scan(str(path))
        assert [r["epoch"] for r in records] == [0, 1]
        assert skipped == torn == 0

    def test_start_epoch_continues_lineage(self, tmp_path):
        path = tmp_path / "j"
        _write(path, ("a", {}))
        with JournalWriter(str(path), fsync="off", start_epoch=7,
                           truncate_to=path.stat().st_size) as journal:
            assert journal.append("b") == 7
        records, _, _, _ = scan(str(path))
        assert [r["epoch"] for r in records] == [0, 7]

    def test_truncate_chops_torn_tail(self, tmp_path):
        path = tmp_path / "j"
        _write(path, ("a", {}))
        valid = path.stat().st_size
        with open(path, "a") as fh:
            fh.write('{"torn": tr')  # partial write, no newline
        with JournalWriter(str(path), fsync="off", start_epoch=1,
                           truncate_to=valid) as journal:
            journal.append("b")
        records, skipped, torn, _ = scan(str(path))
        assert [r["type"] for r in records] == ["a", "b"]
        assert skipped == torn == 0  # the torn bytes are gone

    def test_fsync_policies(self, tmp_path):
        with pytest.raises(JournalError):
            JournalWriter(str(tmp_path / "j"), fsync="sometimes")
        reg = MetricsRegistry("t")
        with JournalWriter(str(tmp_path / "a"), fsync="always",
                           registry=reg) as journal:
            journal.append("x")
            journal.append("x")
        assert reg.counter("journal.records").value == 2
        assert reg.counter("journal.fsyncs").value >= 2
        reg2 = MetricsRegistry("t2")
        with JournalWriter(str(tmp_path / "b"), fsync="batch",
                           batch_records=2, registry=reg2) as journal:
            journal.append("x")
            assert reg2.counter("journal.fsyncs").value == 0
            journal.append("x")
            assert reg2.counter("journal.fsyncs").value == 1

    def test_append_after_close_raises(self, tmp_path):
        journal = JournalWriter(str(tmp_path / "j"), fsync="off")
        journal.close()
        journal.close()  # idempotent
        with pytest.raises(JournalError):
            journal.append("x")


class TestScan:
    def test_interior_corruption_vs_torn_tail(self, tmp_path):
        path = tmp_path / "j"
        lines = [
            encode_record({"epoch": 0, "type": "a"}),
            "garbage interior line\n",
            encode_record({"epoch": 1, "type": "b"}),
            '{"epoch": 2, "type": "c", "cr',  # torn tail
        ]
        path.write_text("".join(lines))
        records, skipped, torn, valid_bytes = scan(str(path))
        assert [r["type"] for r in records] == ["a", "b"]
        assert skipped == 1
        assert torn == 1
        # valid_bytes points just past record "b": a resume writing
        # there leaves no corrupt byte ahead of new records.
        assert path.read_text()[:valid_bytes].endswith(lines[2])

    def test_multi_line_torn_tail(self, tmp_path):
        path = tmp_path / "j"
        path.write_text(
            encode_record({"epoch": 0, "type": "a"}) + "junk\nmore junk"
        )
        records, skipped, torn, _ = scan(str(path))
        assert len(records) == 1
        assert skipped == 0
        assert torn == 2


class TestRecover:
    def test_missing_or_headerless(self, tmp_path):
        with pytest.raises(JournalError):
            recover(str(tmp_path / "nope"))
        bad = tmp_path / "headerless"
        _write(bad, ("dispatch", {"task": PrefixTask().to_record()}))
        with pytest.raises(JournalError):
            recover(str(bad))

    def test_pending_is_known_minus_completed_minus_poisoned(self, tmp_path):
        path = tmp_path / "j"
        t1 = PrefixTask(prefix=(0,), fanouts=(4,))
        t2 = PrefixTask(prefix=(1,), fanouts=(4,))
        t3 = PrefixTask(prefix=(2,), fanouts=(4,))
        _write(
            path,
            _header(),
            ("dispatch", {"task": PrefixTask().to_record(), "worker": 0}),
            ("complete", {"task": PrefixTask().to_record(),
                          "solutions": [],
                          "spilled": [t1.to_record(), t2.to_record(),
                                      t3.to_record()]}),
            ("dispatch", {"task": t1.to_record(), "worker": 1}),
            ("complete", {"task": t1.to_record(),
                          "solutions": [[[0, 3], 0, "ok\n"]],
                          "spilled": []}),
            ("poisoned", {"task": t2.to_record(),
                          "evidence": [{"kind": "crash", "worker": 4}]}),
        )
        out = recover(str(path))
        assert not out.finished
        assert [t.prefix for t in out.pending] == [(2,)]
        assert out.completed_keys == {(), (0,)}
        assert out.solutions == [((0, 3), 0, "ok\n")]
        assert [(t.prefix, e) for t, e in out.poisoned] == [
            ((1,), [{"kind": "crash", "worker": 4}])
        ]

    def test_latest_dispatch_attempt_wins(self, tmp_path):
        path = tmp_path / "j"
        task = PrefixTask(prefix=(0,), fanouts=(4,))
        _write(
            path,
            _header(),
            ("dispatch", {"task": task.to_record(), "worker": 0}),
            ("dispatch", {"task": task.retried().to_record(), "worker": 1}),
        )
        out = recover(str(path))
        by_key = {t.key(): t for t in out.pending}
        assert by_key[(0,)].attempt == 1

    def test_dropped_tasks_re_pend_on_resume(self, tmp_path):
        path = tmp_path / "j"
        task = PrefixTask(prefix=(0,), fanouts=(4,), attempt=2)
        _write(
            path,
            _header(),
            ("drop", {"task": task.to_record()}),
        )
        out = recover(str(path))
        # A drop exhausted its retries against the *old* pool; resume
        # re-pends it for one fresh chance.
        assert (0,) in {t.key() for t in out.pending}
        assert [t.prefix for t in out.dropped] == [(0,)]

    def test_finished_run(self, tmp_path):
        path = tmp_path / "j"
        _write(
            path,
            _header(),
            ("complete", {"task": PrefixTask().to_record(),
                          "solutions": [], "spilled": []}),
            ("run_end", {"stop_reason": None, "exhausted": True,
                         "solutions": 0}),
        )
        out = recover(str(path))
        assert out.finished
        assert out.run_end["exhausted"] is True
        assert out.pending == []

    def test_corrupt_complete_reopens_the_task(self, tmp_path):
        """Bit rot on a complete record re-pends its task — and only it."""
        path = tmp_path / "j"
        t1 = PrefixTask(prefix=(0,), fanouts=(4,))
        _write(
            path,
            _header(),
            ("dispatch", {"task": t1.to_record(), "worker": 0}),
            ("complete", {"task": t1.to_record(),
                          "solutions": [[[0, 1], 0, ""]], "spilled": []}),
            ("dispatch", {"task": PrefixTask().to_record(), "worker": 1}),
        )
        lines = path.read_text().splitlines(keepends=True)
        corrupt = lines[2].replace('"complete"', '"cOmplete"', 1)
        path.write_text("".join(lines[:2] + [corrupt] + lines[3:]))
        out = recover(str(path))
        assert out.skipped == 1
        assert {t.key() for t in out.pending} == {(0,), ()}
        assert out.solutions == []  # corrupted record's solutions are gone


class TestResumeGate:
    def test_digest_covers_the_loaded_image(self):
        p4 = assemble(nqueens_asm(4))
        p5 = assemble(nqueens_asm(5))
        assert program_digest(p4) == program_digest(p4)
        assert program_digest(p4) != program_digest(p5)

    def _recovered(self, **header):
        base = {"program": "d" * 64, "nondet_sites": None}
        base.update(header)
        return RecoveredRun(path="j", header=base)

    def test_digest_mismatch_refused(self):
        with pytest.raises(ResumeMismatchError) as err:
            check_resume(self._recovered(), "e" * 64, None)
        assert err.value.field == "program digest"

    def test_site_mismatch_refused(self):
        recovered = self._recovered(nondet_sites=[[16, "ND001"]])
        check_resume(recovered, "d" * 64, ((16, "ND001"),))  # match: ok
        check_resume(recovered, "d" * 64, None)  # verify off now: ok
        with pytest.raises(ResumeMismatchError):
            check_resume(recovered, "d" * 64, ())


class TestInspectCli:
    def test_inspect_reports_interrupted_run(self, tmp_path, capsys):
        from repro.tools import journal as journal_cli

        path = tmp_path / "j"
        t1 = PrefixTask(prefix=(0,), fanouts=(4,))
        _write(
            path,
            _header(),
            ("dispatch", {"task": t1.to_record(), "worker": 0}),
            ("poisoned", {"task": t1.to_record(),
                          "evidence": [{"kind": "crash", "worker": 1,
                                        "slot": 0, "detail": ""}]}),
        )
        assert journal_cli.main(["inspect", str(path)]) == 0
        out = capsys.readouterr().out
        assert "run interrupted" in out
        assert "POISONED [0]" in out

    def test_inspect_flags_corruption_via_exit_code(self, tmp_path, capsys):
        from repro.tools import journal as journal_cli

        path = tmp_path / "j"
        _write(path, _header())
        with open(path, "a") as fh:
            fh.write('{"torn')
        assert journal_cli.main(["inspect", str(path)]) == 1
        assert "CORRUPTION" in capsys.readouterr().out
        report = None
        assert journal_cli.main(["inspect", str(path), "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["torn"] == 1

    def test_inspect_missing_file(self, tmp_path, capsys):
        from repro.tools import journal as journal_cli

        assert journal_cli.main(["inspect", str(tmp_path / "nope")]) == 2
        assert "error" in capsys.readouterr().err
