"""Tests for the multi-worker (Figure 2 multi-vCPU) engine."""

import pytest

from repro.core.machine import MachineEngine
from repro.core.parallel import ParallelMachineEngine
from repro.core.sysno import SYS_EXIT, SYS_GUESS
from repro.workloads.nqueens import (
    KNOWN_SOLUTION_COUNTS,
    boards_from_result,
    nqueens_asm,
)
from repro.workloads.synthetic import synthetic_asm

TWO_BITS = f"""
    mov rax, {SYS_GUESS:#x}
    mov rdi, 2
    syscall
    mov rbx, rax
    shl rbx, 1
    mov rax, {SYS_GUESS:#x}
    mov rdi, 2
    syscall
    add rbx, rax
    mov rdi, rbx
    mov rax, {SYS_EXIT}
    syscall
"""


class TestCorrectness:
    @pytest.mark.parametrize("workers,quantum", [(1, 50), (2, 25), (4, 50), (8, 7)])
    def test_same_solutions_as_sequential(self, workers, quantum):
        seq = MachineEngine().run(nqueens_asm(5))
        par = ParallelMachineEngine(workers=workers, quantum=quantum).run(
            nqueens_asm(5)
        )
        assert sorted(boards_from_result(par)) == sorted(boards_from_result(seq))

    def test_two_bits_all_codes(self):
        result = ParallelMachineEngine(workers=3, quantum=4).run(TWO_BITS)
        assert sorted(v[0] for v in result.solution_values) == [0, 1, 2, 3]

    def test_synthetic_path_count(self):
        result = ParallelMachineEngine(workers=4, quantum=100).run(
            synthetic_asm(3, 3, 20, 2)
        )
        assert len(result.solutions) == 27

    def test_memory_reclaimed(self):
        engine = ParallelMachineEngine(workers=4, quantum=50)
        engine.run(nqueens_asm(5))
        assert engine.pool.live_frames <= 1
        assert engine.manager.live_snapshots == 0

    def test_workers_validated(self):
        with pytest.raises(ValueError):
            ParallelMachineEngine(workers=0)


class TestConcurrencyProperties:
    def test_multiple_workers_in_flight(self):
        engine = ParallelMachineEngine(workers=4, quantum=20)
        result = engine.run(nqueens_asm(6))
        assert len(result.solutions) == KNOWN_SOLUTION_COUNTS[6]
        assert result.stats.extra["peak_busy_workers"] >= 3
        assert result.stats.extra["occupancy"] > 0.5

    def test_in_flight_isolation(self):
        # Many concurrent extensions all mutate the same data address;
        # each must still exit with its own private value.
        src = f"""
        mov rbx, 0x600000
        mov rax, {SYS_GUESS:#x}
        mov rdi, 4
        syscall
        mov [rbx], rax
        mov rax, {SYS_GUESS:#x}
        mov rdi, 4
        syscall
        mov rcx, [rbx]
        imul rcx, 4
        add rcx, rax
        mov rdi, rcx
        mov rax, {SYS_EXIT}
        syscall
        """
        result = ParallelMachineEngine(workers=6, quantum=3).run(src)
        assert sorted(v[0] for v in result.solution_values) == list(range(16))

    def test_parallel_keeps_more_snapshots_live(self):
        seq = MachineEngine().run(nqueens_asm(6))
        par = ParallelMachineEngine(workers=4, quantum=25).run(nqueens_asm(6))
        assert (
            par.stats.extra["snapshots_peak_live"]
            >= seq.stats.extra["snapshots_peak_live"]
        )

    def test_max_solutions_budget(self):
        result = ParallelMachineEngine(workers=4, quantum=25,
                                       max_solutions=2).run(nqueens_asm(5))
        assert len(result.solutions) >= 2
        assert not result.exhausted

    def test_runaway_extension_killed(self):
        src = f"""
        mov rax, {SYS_GUESS:#x}
        mov rdi, 2
        syscall
        cmp rax, 0
        je spin
        mov rdi, 1
        mov rax, {SYS_EXIT}
        syscall
        spin: jmp spin
        """
        result = ParallelMachineEngine(
            workers=2, quantum=100, max_steps_per_extension=2_000
        ).run(src)
        assert [v[0] for v in result.solution_values] == [1]
        assert result.stats.kills == 1
