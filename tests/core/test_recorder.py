"""Unit tests for the nondet recorder layer.

Covers the event/log data model (keying, first-write-wins merge, task
shipping selection), the sealed replay-log file format (every corruption
mode must raise :class:`ReplayDivergenceError`, never load silently),
the :class:`Recorder` state machine, the syscall-level interposition of
``sys_time`` / ``sys_getrandom`` / ``read(0)``, the analyzer's
recordable gate, and the typed :class:`InputExhaustedError` satellite.
"""

import warnings

import pytest

from repro.analysis import analyze
from repro.analysis.verifier import (
    RECORDABLE_LINTS,
    recordable,
    strict_failure,
)
from repro.core.errors import InputExhaustedError, ReplayDivergenceError
from repro.core.machine import MachineEngine
from repro.core.recorder import (
    NondetEvent,
    NondetLog,
    Recorder,
    live_random,
    live_time_ns,
)
from repro.core.sysno import (
    SYS_EXIT,
    SYS_GETRANDOM,
    SYS_GUESS,
    SYS_TIME,
    SYS_WRITE,
)
from repro.cpu.assembler import assemble
from repro.libos.console import InputSource


def ev(kind="time", path=(), seq=0, payload=b"\x01" * 8, pc=None):
    return NondetEvent(kind=kind, path=tuple(path), seq=seq,
                       payload=payload, pc=pc)


class TestNondetEvent:
    def test_record_roundtrip_is_exact(self):
        event = ev(kind="random", path=(1, 0, 2), seq=3,
                   payload=bytes(range(16)), pc=0x400010)
        assert NondetEvent.from_record(event.to_record()) == event

    def test_pc_is_not_identity(self):
        a = ev(pc=0x400000)
        b = ev(pc=0x400999)
        assert a.key() == b.key()

    @pytest.mark.parametrize("mutate", [
        lambda r: r.pop("kind"),
        lambda r: r.pop("path"),
        lambda r: r.pop("seq"),
        lambda r: r.pop("data"),
        lambda r: r.update(kind="clock"),
        lambda r: r.update(data="zz-not-hex"),
        lambda r: r.update(path="nope"),
    ])
    def test_malformed_record_raises_divergence(self, mutate):
        record = ev().to_record()
        mutate(record)
        with pytest.raises(ReplayDivergenceError):
            NondetEvent.from_record(record)


class TestNondetLog:
    def test_lookup_and_len(self):
        log = NondetLog([ev(seq=0), ev(seq=1, payload=b"\x02" * 8)])
        assert len(log) == 2
        assert log.lookup((), 1).payload == b"\x02" * 8
        assert log.lookup((9,), 0) is None

    def test_first_write_wins_counts_conflicts(self):
        log = NondetLog()
        assert log.record(ev(payload=b"a")) is True
        assert log.record(ev(payload=b"b")) is False
        assert log.conflicts == 1
        assert log.lookup((), 0).payload == b"a"
        # Re-recording identical content is not a conflict.
        assert log.record(ev(payload=b"a")) is False
        assert log.conflicts == 1

    def test_merge_returns_newly_added(self):
        log = NondetLog([ev(seq=0)])
        added = log.merge([ev(seq=0), ev(seq=1), ev(path=(2,), seq=0)])
        assert added == 2 and len(log) == 3

    def test_events_canonical_order(self):
        log = NondetLog([ev(path=(1,), seq=1), ev(path=(0, 3), seq=0),
                         ev(path=(1,), seq=0)])
        assert [(e.path, e.seq) for e in log.events()] == [
            ((0, 3), 0), ((1,), 0), ((1,), 1)
        ]

    def test_events_for_task_selects_lineage_not_siblings(self):
        root = ev(path=(), seq=0)
        ancestor = ev(path=(1,), seq=0, kind="random")
        inside = ev(path=(1, 2, 0), seq=1, kind="input", payload=b"x")
        sibling = ev(path=(0,), seq=0)
        cousin = ev(path=(1, 3), seq=0)
        log = NondetLog([root, ancestor, inside, sibling, cousin])
        shipped = log.events_for_task((1, 2))
        assert sorted(e.path for e in shipped) == [(), (1,), (1, 2, 0)]

    def test_events_for_task_root_prefix_gets_everything(self):
        log = NondetLog([ev(path=(0,)), ev(path=(1, 1)), ev(path=())])
        assert len(log.events_for_task(())) == 3

    def test_copy_is_independent(self):
        log = NondetLog([ev()])
        clone = log.copy()
        clone.record(ev(path=(5,)))
        assert len(log) == 1 and len(clone) == 2
        assert log == NondetLog([ev()])


class TestReplayLogFile:
    def payload_log(self):
        return NondetLog([
            ev(kind="time", path=(), seq=0, payload=live_time_ns()),
            ev(kind="random", path=(2,), seq=0, payload=live_random(8),
               pc=0x400020),
            ev(kind="input", path=(2, 1), seq=1, payload=b"hi"),
        ])

    def test_save_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "run.replay")
        log = self.payload_log()
        assert log.save(path, program="digest123") == 3
        assert NondetLog.load(path, program="digest123") == log

    def test_program_digest_mismatch_refused(self, tmp_path):
        path = str(tmp_path / "run.replay")
        self.payload_log().save(path, program="digest123")
        with pytest.raises(ReplayDivergenceError, match="program"):
            NondetLog.load(path, program="otherdigest")
        # No digest recorded, or none demanded: both load fine.
        self.payload_log().save(path)
        NondetLog.load(path, program="anything")

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ReplayDivergenceError, match="not found"):
            NondetLog.load(str(tmp_path / "absent.replay"))

    def test_every_single_byte_flip_is_caught(self, tmp_path):
        """Exhaustive tamper sweep: flip one byte anywhere, load fails."""
        path = str(tmp_path / "run.replay")
        self.payload_log().save(path, program="d")
        with open(path, "rb") as fh:
            blob = bytearray(fh.read())
        flips = 0
        for offset in range(len(blob)):
            if blob[offset] == 0x0A:  # keep the line structure intact
                continue
            tampered = bytearray(blob)
            tampered[offset] ^= 0x01
            with open(path, "wb") as fh:
                fh.write(tampered)
            with pytest.raises(ReplayDivergenceError):
                NondetLog.load(path, program="d")
            flips += 1
        assert flips > 100

    def test_truncated_tail_raises(self, tmp_path):
        path = str(tmp_path / "run.replay")
        self.payload_log().save(path)
        with open(path) as fh:
            lines = fh.readlines()
        # Torn final line (partial write).
        with open(path, "w") as fh:
            fh.writelines(lines[:-1])
            fh.write(lines[-1][: len(lines[-1]) // 2])
        with pytest.raises(ReplayDivergenceError):
            NondetLog.load(path)
        # Cleanly dropped final line: caught by the header count.
        with open(path, "w") as fh:
            fh.writelines(lines[:-1])
        with pytest.raises(ReplayDivergenceError, match="removed"):
            NondetLog.load(path)

    def test_missing_header_raises(self, tmp_path):
        path = str(tmp_path / "run.replay")
        self.payload_log().save(path)
        with open(path) as fh:
            lines = fh.readlines()
        with open(path, "w") as fh:
            fh.writelines(lines[1:])  # drop the header record
        with pytest.raises(ReplayDivergenceError, match="header"):
            NondetLog.load(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.replay"
        path.write_text("")
        with pytest.raises(ReplayDivergenceError, match="header"):
            NondetLog.load(str(path))


class TestRecorder:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            Recorder("off")
        with pytest.raises(ValueError):
            Recorder("replay")

    def test_record_then_replay_same_key(self):
        rec = Recorder("record")
        rec.begin_segment((1,))
        first = rec.intercept("time", None, lambda: b"\x07" * 8)
        rec.begin_segment((1,))  # re-enter the same segment
        again = rec.intercept("time", None, lambda: b"\xff" * 8)
        assert first == again == b"\x07" * 8
        assert rec.recorded == 1 and rec.replayed == 1

    def test_seq_advances_within_segment_and_resets_across(self):
        rec = Recorder("record")
        rec.begin_segment(())
        rec.intercept("time", None, lambda: b"a")
        rec.intercept("time", None, lambda: b"b")
        assert rec.position == ((), 2)
        rec.begin_segment((0,))
        assert rec.position == ((0,), 0)
        events = rec.log.events()
        assert [(e.path, e.seq) for e in events] == [((), 0), ((), 1)]

    def test_strict_miss_raises(self):
        rec = Recorder("strict", log=NondetLog())
        rec.begin_segment(())
        with pytest.raises(ReplayDivergenceError, match="strict replay"):
            rec.intercept("random", 0x400000, lambda: b"x")

    def test_kind_mismatch_raises_in_both_modes(self):
        for mode in ("record", "strict"):
            rec = Recorder(mode, log=NondetLog([ev(kind="time")]))
            rec.begin_segment(())
            with pytest.raises(ReplayDivergenceError, match="expected"):
                rec.intercept("random", None, lambda: b"x")

    def test_drain_fresh_ships_only_new_events(self):
        seeded = NondetLog([ev(path=(), seq=0)])
        rec = Recorder("record", log=seeded)
        rec.begin_segment(())
        rec.intercept("time", None, lambda: b"ignored")  # replayed
        rec.begin_segment((4,))
        rec.intercept("random", None, lambda: b"fresh")
        fresh = rec.drain_fresh()
        assert [e.path for e in fresh] == [(4,)]
        assert rec.drain_fresh() == []


TIME_GUEST = f"""
    mov rax, {SYS_TIME}
    syscall
    mov rdi, rax
    mov rax, {SYS_EXIT}
    syscall
"""

RANDOM_GUEST = f"""
    .data
    buf: .zero 8
    .text
    _start:
        mov rax, {SYS_GETRANDOM}
        mov rdi, buf
        mov rsi, 8
        syscall
        mov r12, rax            ; bytes delivered
        mov rax, {SYS_GETRANDOM}
        mov rdi, buf
        mov rsi, 0              ; invalid: zero length
        syscall
        mov r13, rax
        mov rax, {SYS_WRITE}    ; print first entropy byte
        mov rdi, 1
        mov rsi, buf
        mov rdx, 1
        syscall
        mov rdi, r12
        mov rax, {SYS_EXIT}
        syscall
"""

STDIN_GUEST = f"""
    .data
    buf: .zero 4
    .text
    _start:
        mov rax, 0
        mov rdi, 0
        mov rsi, buf
        mov rdx, 4
        syscall
        mov rdi, rax            ; exit with bytes read
        mov rax, {SYS_EXIT}
        syscall
"""


def run_quiet(engine, program):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        return engine.run(assemble(program))


class TestSyscallInterposition:
    def test_time_recorded_then_replayed_exactly(self):
        eng = MachineEngine(replay_mode="record")
        res = run_quiet(eng, TIME_GUEST)
        stamp = res.solutions[0].value[0]
        assert stamp > 0 and eng.recorder.recorded == 1
        replayed = MachineEngine(replay_mode="strict",
                                 replay_log=eng.recorder.log)
        res2 = run_quiet(replayed, TIME_GUEST)
        assert res2.solutions[0].value[0] == stamp
        assert replayed.recorder.replayed == 1

    def test_getrandom_fills_buffer_and_rejects_bad_length(self):
        eng = MachineEngine(replay_mode="record")
        res = run_quiet(eng, RANDOM_GUEST)
        assert res.solutions[0].value[0] == 8  # delivered count
        event = eng.recorder.log.lookup((), 0)
        assert event.kind == "random" and len(event.payload) == 8
        # The zero-length call failed with -EINVAL and was NOT recorded.
        assert len(eng.recorder.log) == 1
        # Strict replay reproduces the printed entropy byte exactly.
        strict = MachineEngine(replay_mode="strict",
                               replay_log=eng.recorder.log)
        res2 = run_quiet(strict, RANDOM_GUEST)
        assert res2.solutions[0].value == res.solutions[0].value

    def test_stdin_read_goes_through_recorder(self):
        eng = MachineEngine(replay_mode="record",
                            input=InputSource(b"hi"))
        res = run_quiet(eng, STDIN_GUEST)
        assert res.solutions[0].value[0] == 2
        event = eng.recorder.log.lookup((), 0)
        assert event.kind == "input" and event.payload == b"hi"
        # Replays without any live input source.
        strict = MachineEngine(replay_mode="strict",
                               replay_log=eng.recorder.log)
        assert run_quiet(strict, STDIN_GUEST).solutions[0].value[0] == 2

    def test_stdin_without_recorder_reads_source_directly(self):
        eng = MachineEngine(input=InputSource(b"abcd"))
        res = eng.run(assemble(STDIN_GUEST))
        assert res.solutions[0].value[0] == 4

    def test_machine_stats_expose_counters(self):
        eng = MachineEngine(replay_mode="record")
        res = run_quiet(eng, TIME_GUEST)
        assert res.stats.extra["nondet_recorded"] == 1
        assert res.stats.extra["nondet_replayed"] == 0


class TestRecordableGate:
    def test_recordable_lints_are_exactly_value_nondeterminism(self):
        assert RECORDABLE_LINTS == {"DT001", "DT005", "DT006"}

    def test_time_random_stdin_guests_are_recordable(self):
        for src in (TIME_GUEST, RANDOM_GUEST, STDIN_GUEST):
            report = analyze(assemble(src))
            assert not report.certificate.certified
            assert recordable(report)

    def test_hostfs_guest_is_not_recordable(self):
        src = f"""
            .data
            name: .ascii "f"
            .text
            _start:
                mov rax, 2          ; sys_open: host-fs dependent
                mov rdi, name
                syscall
                mov rax, {SYS_EXIT}
                mov rdi, 0
                syscall
        """
        report = analyze(assemble(src))
        assert not recordable(report)
        # ... and replay mode must not unlock strict verification for it.
        assert strict_failure(report, allow_recordable=True) is not None

    def test_strict_failure_forgiven_under_replay(self):
        report = analyze(assemble(TIME_GUEST))
        plain = strict_failure(report)
        assert plain is not None and "--replay-mode=record" in plain
        assert strict_failure(report, allow_recordable=True) is None

    def test_certified_guest_unchanged(self):
        from repro.workloads.nqueens import nqueens_asm

        report = analyze(assemble(nqueens_asm(4)))
        assert report.certificate.certified
        assert recordable(report)  # certified is trivially recordable
        assert strict_failure(report) is None


class TestInputSource:
    def test_chunked_reads_and_remaining(self):
        src = InputSource(b"abcdef")
        assert src.read(4) == b"abcd"
        assert src.remaining == 2
        assert src.read(4) == b"ef"
        assert src.read(4) == b""  # eof mode: silent empty reads

    def test_error_mode_raises_typed_exhaustion(self):
        src = InputSource(b"ab", on_exhausted="error")
        src.read(2)
        with pytest.raises(InputExhaustedError) as err:
            src.read(1)
        assert err.value.consumed == 2
        assert "2 item(s) consumed" in str(err.value)

    def test_on_exhausted_validated(self):
        with pytest.raises(ValueError):
            InputSource(b"", on_exhausted="panic")


class TestInputExhaustedSatellite:
    def test_interactive_bad_seq_raises_typed_error(self):
        from repro.core.interactive import InteractiveSearch
        from repro.core.sysno import SYS_GUESS as G

        src = f"""
            mov rax, {G:#x}
            mov rdi, 2
            syscall
            mov rdi, rax
            mov rax, {SYS_EXIT}
            syscall
        """
        with InteractiveSearch(src) as search:
            with pytest.raises(InputExhaustedError) as err:
                search.run(999)
            assert "999" in str(err.value)
            # The session survives the refused selection.
            outcome = search.run(search.pending()[0].seq)
            assert outcome.outcome == "exit"

    def test_exhaustion_is_a_search_error(self):
        from repro.core.errors import SearchError

        assert issubclass(InputExhaustedError, SearchError)
