"""Crash/resume differential tests: the journal keeps every solution.

The invariant throughout: a run interrupted at *any* point — chaos kill
at a journal epoch, a torn final write, silent bit rot, or a real
``SIGKILL`` of the coordinator process — and then resumed from its
journal produces **exactly** the solution multiset of an uninterrupted
run.  Nothing lost, nothing doubled.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.chaos import FaultPlan
from repro.core.cluster import ProcessParallelEngine
from repro.core.errors import CoordinatorKilled, ResumeMismatchError
from repro.core.journal import recover
from repro.core.machine import MachineEngine
from repro.workloads.nqueens import nqueens_asm


def solution_multiset(result):
    return sorted((s.path, s.value) for s in result.solutions)


@pytest.fixture(scope="module")
def baseline_6():
    return solution_multiset(MachineEngine().run(nqueens_asm(6)))


def engine(journal, resume=False, chaos=None, **kwargs):
    params = dict(workers=2, task_step_budget=3000, fsync="off")
    params.update(kwargs)
    return ProcessParallelEngine(
        journal=journal, resume=resume, chaos=chaos, **params
    )


class TestKillAndResume:
    @pytest.mark.parametrize("epoch", [3, 10, 25])
    def test_resumed_multiset_matches_uninterrupted(
        self, tmp_path, baseline_6, epoch
    ):
        journal = str(tmp_path / "run.journal")
        plan = FaultPlan(coordinator_kill_epoch=epoch)
        with pytest.raises(CoordinatorKilled):
            engine(journal, chaos=plan).run(nqueens_asm(6))
        result = engine(journal, resume=True).run(nqueens_asm(6))
        assert solution_multiset(result) == baseline_6
        assert result.exhausted
        assert result.stats.extra["resumed"] is True

    def test_double_kill_double_resume(self, tmp_path, baseline_6):
        """Epochs continue across resume, so a second kill lands later."""
        journal = str(tmp_path / "run.journal")
        with pytest.raises(CoordinatorKilled):
            engine(
                journal, chaos=FaultPlan(coordinator_kill_epoch=5)
            ).run(nqueens_asm(6))
        with pytest.raises(CoordinatorKilled):
            engine(
                journal, resume=True,
                chaos=FaultPlan(coordinator_kill_epoch=15),
            ).run(nqueens_asm(6))
        result = engine(journal, resume=True).run(nqueens_asm(6))
        assert solution_multiset(result) == baseline_6

    def test_torn_write_is_dropped_and_survived(self, tmp_path, baseline_6):
        journal = str(tmp_path / "run.journal")
        plan = FaultPlan(journal_tear_epoch=12)
        with pytest.raises(CoordinatorKilled):
            engine(journal, chaos=plan).run(nqueens_asm(6))
        recovered = recover(journal)
        assert recovered.torn == 1
        result = engine(journal, resume=True).run(nqueens_asm(6))
        assert solution_multiset(result) == baseline_6
        # The resumed writer truncated the torn bytes away.
        assert recover(journal).torn == 0

    def test_worker_chaos_during_resumed_run(self, tmp_path, baseline_6):
        """Resume itself must survive worker faults (sterile keeps them)."""
        journal = str(tmp_path / "run.journal")
        plan = FaultPlan(seed=4, crash_rate=0.4, coordinator_kill_epoch=10)
        with pytest.raises(CoordinatorKilled):
            engine(
                journal, chaos=plan, max_task_retries=4, task_timeout=10.0
            ).run(nqueens_asm(6))
        result = engine(
            journal, resume=True, chaos=plan.sterile(),
            max_task_retries=4, task_timeout=10.0,
        ).run(nqueens_asm(6))
        assert solution_multiset(result) == baseline_6

    def test_resume_refuses_a_different_program(self, tmp_path):
        journal = str(tmp_path / "run.journal")
        with pytest.raises(CoordinatorKilled):
            engine(
                journal, chaos=FaultPlan(coordinator_kill_epoch=5)
            ).run(nqueens_asm(6))
        with pytest.raises(ResumeMismatchError):
            engine(journal, resume=True).run(nqueens_asm(5))

    def test_resume_requires_journal(self):
        with pytest.raises(ValueError):
            ProcessParallelEngine(resume=True)


class TestCorruptionNeverDoubles:
    def test_corrupted_complete_record_is_re_explored_not_doubled(
        self, tmp_path, baseline_6
    ):
        """Bit rot on a ``complete`` loses the record, not correctness.

        The re-explored task re-spills children whose own completions
        are durable; the resume filter must drop those re-spills or
        their solutions would be counted twice.
        """
        journal = str(tmp_path / "run.journal")
        first = engine(journal).run(nqueens_asm(6))
        assert solution_multiset(first) == baseline_6

        with open(journal) as fh:
            lines = fh.readlines()
        target = None
        for i, line in enumerate(lines):
            if '"type":"complete"' in line and '"spilled":[{' in line:
                target = i
                if '"solutions":[[' in line:
                    break  # prefer one that also carried solutions
        assert target is not None
        lines[target] = lines[target].replace(
            '"type":"complete"', '"type":"cOmplete"', 1
        )
        with open(journal, "w") as fh:
            fh.writelines(lines)

        recovered = recover(journal)
        assert recovered.skipped == 1
        assert len(recovered.pending) == 1  # exactly the corrupted task

        result = engine(journal, resume=True).run(nqueens_asm(6))
        assert solution_multiset(result) == baseline_6
        assert result.stats.extra["journal_skipped"] == 1
        if '"spilled":[{' in "".join(lines):
            assert result.stats.extra["resume_spills_filtered"] >= 1


_CHILD = """
import sys
from repro.core.cluster import ProcessParallelEngine
from repro.workloads.nqueens import nqueens_asm

engine = ProcessParallelEngine(
    workers=2, task_step_budget=1500, journal=sys.argv[1], fsync="off"
)
engine.run(nqueens_asm(6))
"""


class TestRealSigkill:
    def test_sigkill_mid_run_then_resume(self, tmp_path, baseline_6):
        """An actual ``kill -9`` of a live coordinator process."""
        journal = str(tmp_path / "run.journal")
        script = tmp_path / "child.py"
        script.write_text(_CHILD)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.dirname(os.path.dirname(repro.__file__))
        child = subprocess.Popen(
            [sys.executable, str(script), journal], env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if child.poll() is not None:
                    break  # finished before we could kill it: still fine
                try:
                    with open(journal) as fh:
                        if sum(1 for _ in fh) >= 10:
                            child.send_signal(signal.SIGKILL)
                            break
                except FileNotFoundError:
                    pass
                time.sleep(0.01)
            else:
                pytest.fail("coordinator never journaled 10 records")
            child.wait(timeout=30.0)
        finally:
            if child.poll() is None:  # pragma: no cover - cleanup
                child.kill()
                child.wait()

        result = engine(
            journal, resume=True, task_step_budget=1500
        ).run(nqueens_asm(6))
        assert solution_multiset(result) == baseline_6
        assert result.exhausted


class TestRecordModeResume:
    """Crash tolerance for *nondeterministic* guests (record mode).

    The journal orders every ``nondet`` record before its task's
    ``complete``, so a kill can lose completions but never the events
    their solutions depended on: the resumed run re-explores with the
    recorded outcomes replayed — it reproduces, never re-rolls.
    """

    def run_quiet(self, engine, guest):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            return engine.run(guest)

    @pytest.mark.parametrize("epoch", [3, 8, 18])
    def test_killed_recording_run_resumes_self_consistent(
        self, tmp_path, epoch
    ):
        from repro.core.recorder import NondetLog
        from repro.workloads.nqueens import (
            KNOWN_SOLUTION_COUNTS,
            nqueens_randomized_asm,
        )

        guest = nqueens_randomized_asm(5)
        journal = str(tmp_path / "run.journal")
        kwargs = dict(verify="warn", replay_mode="record",
                      task_step_budget=1500)
        with pytest.raises(CoordinatorKilled):
            self.run_quiet(
                engine(journal,
                       chaos=FaultPlan(coordinator_kill_epoch=epoch),
                       **kwargs),
                guest,
            )
        resumed = engine(journal, resume=True, **kwargs)
        result = self.run_quiet(resumed, guest)
        assert len(result.solutions) == KNOWN_SOLUTION_COUNTS[5]
        assert result.exhausted

        # The combined run is reproducible from its own merged log: a
        # strict sequential replay lands on the identical multiset.
        strict = MachineEngine(replay_mode="strict",
                               replay_log=resumed.replay_log)
        replayed = self.run_quiet(strict, guest)
        assert solution_multiset(replayed) == solution_multiset(result)

        # And the journal's nondet tail IS the final in-memory log —
        # nothing the run depended on lives only in process memory.
        recovered = recover(journal)
        rebuilt = NondetLog()
        rebuilt.merge_records(recovered.nondet_events)
        assert rebuilt == resumed.replay_log

    def test_resume_replays_instead_of_rerolling_lost_subtrees(
        self, tmp_path
    ):
        """Force re-exploration by corrupting a ``complete`` record whose
        events survived; the re-explored subtree must reuse them."""
        from repro.core.recorder import NondetLog
        from repro.workloads.nqueens import nqueens_randomized_asm

        guest = nqueens_randomized_asm(4)
        journal = str(tmp_path / "run.journal")
        kwargs = dict(verify="warn", replay_mode="record",
                      task_step_budget=1000)
        first = self.run_quiet(engine(journal, **kwargs), guest)
        baseline = solution_multiset(first)

        with open(journal) as fh:
            lines = fh.readlines()
        target = next(
            i for i, line in enumerate(lines)
            if '"type":"complete"' in line and '"solutions":[[' in line
        )
        lines[target] = lines[target].replace(
            '"type":"complete"', '"type":"cOmplete"', 1
        )
        with open(journal, "w") as fh:
            fh.writelines(lines)

        result = self.run_quiet(engine(journal, resume=True, **kwargs),
                                guest)
        # Identical multiset: the lost subtree's entropy was replayed
        # from the journaled events, not drawn again.
        assert solution_multiset(result) == baseline
        assert result.stats.extra["journal_skipped"] == 1


class TestRunGuestFlags:
    def test_kill_then_resume_via_cli(self, tmp_path, capsys):
        from repro.tools import run_guest

        source = tmp_path / "queens.s"
        source.write_text(nqueens_asm(4))
        journal = str(tmp_path / "run.journal")
        common = [
            str(source), "--engine", "process", "--workers", "2",
            "--task-step-budget", "500", "--verify", "off",
            "--journal", journal,
        ]
        assert run_guest.main(common + ["--chaos-kill-epoch", "6"]) == 3
        err = capsys.readouterr().err
        assert "coordinator killed" in err
        assert "--resume" in err
        assert run_guest.main(common + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "2 solution(s)" in out
        assert "resumed with" in out

    def test_flag_validation(self, tmp_path, capsys):
        from repro.tools import run_guest

        source = tmp_path / "queens.s"
        source.write_text(nqueens_asm(4))
        base = [str(source), "--engine", "process"]
        assert run_guest.main(base + ["--resume"]) == 2
        capsys.readouterr()
        assert run_guest.main(base + ["--chaos-kill-epoch", "3"]) == 2
        capsys.readouterr()

    def test_record_kill_resume_then_strict_replay_via_cli(
        self, tmp_path, capsys
    ):
        """The full nondet crash story, CLI end to end: record a run,
        kill it mid-flight, resume it, save its replay log, then verify
        the log under --replay-mode=strict on the sequential engine."""
        from repro.workloads.nqueens import nqueens_randomized_asm
        from repro.tools import run_guest

        source = tmp_path / "rqueens.s"
        source.write_text(nqueens_randomized_asm(4))
        journal = str(tmp_path / "run.journal")
        replay_log = str(tmp_path / "run.replay")
        common = [
            str(source), "--engine", "process", "--workers", "2",
            "--task-step-budget", "400", "--verify", "off",
            "--journal", journal, "--replay-mode", "record",
            "--replay-log", replay_log,
        ]
        assert run_guest.main(common + ["--chaos-kill-epoch", "3"]) == 3
        assert "coordinator killed" in capsys.readouterr().err
        assert run_guest.main(common + ["--resume"]) == 0
        captured = capsys.readouterr()
        assert "2 solution(s)" in captured.out
        assert "replay log:" in captured.err

        assert run_guest.main([
            str(source), "--engine", "snapshot", "--verify", "off",
            "--replay-mode", "strict", "--replay-log", replay_log,
        ]) == 0
        assert "2 solution(s)" in capsys.readouterr().out

    def test_replay_flag_validation(self, tmp_path, capsys):
        from repro.tools import run_guest

        source = tmp_path / "queens.s"
        source.write_text(nqueens_asm(4))
        # strict without a log file to replay from is meaningless.
        assert run_guest.main(
            [str(source), "--replay-mode", "strict"]
        ) == 2
        capsys.readouterr()
        # A log path without a replay mode is a likely operator error.
        assert run_guest.main(
            [str(source), "--replay-log", str(tmp_path / "x.replay")]
        ) == 2
        capsys.readouterr()
        # strict pointing at a missing file refuses with the typed error.
        assert run_guest.main(
            [str(source), "--replay-mode", "strict",
             "--replay-log", str(tmp_path / "absent.replay")]
        ) == 4
        assert "replay log refused" in capsys.readouterr().err

    def test_tampered_log_file_refused_via_cli(self, tmp_path, capsys):
        from repro.tools import run_guest
        from repro.workloads.nqueens import nqueens_randomized_asm

        source = tmp_path / "rqueens.s"
        source.write_text(nqueens_randomized_asm(4))
        replay_log = str(tmp_path / "run.replay")
        assert run_guest.main([
            str(source), "--verify", "off", "--quiet",
            "--replay-mode", "record", "--replay-log", replay_log,
        ]) == 0
        capsys.readouterr()
        with open(replay_log, "rb") as fh:
            blob = bytearray(fh.read())
        blob[len(blob) // 2] ^= 0x20
        with open(replay_log, "wb") as fh:
            fh.write(blob)
        assert run_guest.main([
            str(source), "--verify", "off", "--quiet",
            "--replay-mode", "strict", "--replay-log", replay_log,
        ]) == 4
        assert "replay log refused" in capsys.readouterr().err
