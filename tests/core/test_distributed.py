"""Distributed engine differential battery: pipe vs TCP vs chaos-TCP.

The invariant throughout: whatever the transport does — real sockets,
dropped/duplicated/reordered frames, partitions, a killed coordinator —
the solution multiset and the accepted guest-instruction count match the
sequential run *exactly*.  Stale results from presumed-dead workers are
fenced off wholesale, so nothing is ever double-counted.
"""

import multiprocessing as mp
import socket
import time

import pytest

from repro.chaos import FaultPlan
from repro.core.cluster import ProcessParallelEngine
from repro.core.errors import CoordinatorKilled
from repro.core.journal import recover
from repro.core.machine import MachineEngine
from repro.workloads.nqueens import KNOWN_SOLUTION_COUNTS, nqueens_asm


def solution_multiset(result):
    return sorted((s.path, s.value) for s in result.solutions)


@pytest.fixture(scope="module")
def sequential_5():
    return MachineEngine().run(nqueens_asm(5))


def engine(**kwargs):
    params = dict(workers=2, task_step_budget=1500, fsync="off")
    params.update(kwargs)
    return ProcessParallelEngine(**params)


def chaos_net_plan(seed):
    """The standard network-chaos mix used across tests and CI."""
    return FaultPlan(
        seed=seed,
        net_drop_rate=0.08,
        net_delay_rate=0.10,
        net_delay_s=0.05,
        net_dup_rate=0.08,
        net_reorder_rate=0.08,
        partition_rate=0.04,
        partition_frames=6,
        half_open_rate=0.03,
    )


class TestPipeVsTcpDifferential:
    """Same program, same config, different wire — identical answers."""

    def test_pipe_baseline(self, sequential_5):
        result = engine(transport="pipe").run(nqueens_asm(5))
        assert solution_multiset(result) == solution_multiset(sequential_5)
        assert (
            result.stats.extra["guest_instructions"]
            == sequential_5.stats.extra["guest_instructions"]
        )
        assert result.stats.extra["transport"] == "pipe"
        assert result.stats.extra["steals"] > 0  # pull model in use

    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_tcp_matches_sequential(self, sequential_5, workers):
        result = engine(transport="tcp", workers=workers).run(nqueens_asm(5))
        assert solution_multiset(result) == solution_multiset(sequential_5)
        # Exact work conservation: every subtree's steps are accounted
        # exactly once, regardless of worker count.
        assert (
            result.stats.extra["guest_instructions"]
            == sequential_5.stats.extra["guest_instructions"]
        )
        assert result.stats.extra["transport"] == "tcp"
        wire = result.stats.extra["transport_stats"]
        assert wire["frames_in"] > 0 and wire["frames_out"] > 0

    def test_tcp_matches_pipe_multiset(self, sequential_5):
        pipe = engine(transport="pipe").run(nqueens_asm(5))
        tcp = engine(transport="tcp").run(nqueens_asm(5))
        assert solution_multiset(pipe) == solution_multiset(tcp)
        assert (
            pipe.stats.extra["guest_instructions"]
            == tcp.stats.extra["guest_instructions"]
        )


class TestChaosTcp:
    """Network chaos on the TCP seam: exactness must survive."""

    def test_seed_sweep_exact_and_fenced(self, sequential_5):
        """Three seeds of the standard chaos mix (CI runs twenty).

        Every run must produce the exact multiset; across the sweep at
        least one stale result must actually have been fenced — the
        discard path is exercised, not just dormant.
        """
        baseline = solution_multiset(sequential_5)
        base_steps = sequential_5.stats.extra["guest_instructions"]
        fenced_total = 0
        for seed in (1, 2, 3):
            result = engine(
                transport="tcp",
                chaos=chaos_net_plan(seed),
                heartbeat_timeout=1.5,
                max_task_retries=10,
            ).run(nqueens_asm(5))
            assert result.exhausted, f"seed {seed} did not exhaust"
            assert solution_multiset(result) == baseline, f"seed {seed}"
            # Never double-counted: fenced results contribute neither
            # solutions (asserted above) nor steps.
            assert (
                result.stats.extra["guest_instructions"] == base_steps
            ), f"seed {seed}"
            fenced_total += result.stats.extra["fenced_stale"]
        assert fenced_total >= 1, (
            "chaos sweep never produced a fenced stale result — the "
            "discard path went unexercised"
        )

    def test_net_faults_surface_in_stats(self):
        result = engine(
            transport="tcp",
            chaos=chaos_net_plan(1),
            heartbeat_timeout=1.5,
            max_task_retries=10,
        ).run(nqueens_asm(5))
        wire = result.stats.extra["transport_stats"]
        assert wire["net_faults"] > 0


class TestKillAndResumeTcp:
    def test_coordinator_kill_then_resume_over_tcp(self, tmp_path,
                                                   sequential_5):
        journal = str(tmp_path / "run.journal")
        plan = FaultPlan(coordinator_kill_epoch=6, net_drop_rate=0.05)
        with pytest.raises(CoordinatorKilled):
            engine(
                transport="tcp", journal=journal, chaos=plan,
                heartbeat_timeout=1.5, max_task_retries=10,
            ).run(nqueens_asm(5))
        recovered = recover(journal)
        assert recovered.header.get("transport") == "tcp"
        # Dispatches were journaled with their fencing tokens, so the
        # resumed coordinator can seed its counter past them.
        assert recovered.last_fence >= 1
        result = engine(
            transport="tcp", journal=journal, resume=True,
        ).run(nqueens_asm(5))
        assert solution_multiset(result) == solution_multiset(sequential_5)
        assert result.exhausted
        assert result.stats.extra["resumed"] is True


def _external_worker(host, port, ready):
    # `tcp_worker` (the --connect entry) gives up when the coordinator
    # is not accepting yet; this joiner instead signals readiness and
    # dials until the acceptor appears, then serves one run.
    from repro.core.cluster import _worker_main
    from repro.core.transport import TcpWorkerConnection

    ready.set()
    deadline = time.monotonic() + 60.0
    while True:
        try:
            conn = TcpWorkerConnection((host, port), wid=None)
            break
        except (ConnectionError, OSError):
            if time.monotonic() >= deadline:
                return
            time.sleep(0.05)
    _worker_main(conn.wid, conn, conn.program, conn.config)


class TestElasticJoin:
    def test_external_worker_joins_and_contributes(self):
        # Reserve a port up front so the external joiner can start
        # dialing *before* the run begins — otherwise the spawned
        # interpreter's startup cost races the (short) search and the
        # single local worker may exhaust it before the join lands.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        ctx = mp.get_context("spawn")
        ready = ctx.Event()
        proc = ctx.Process(
            target=_external_worker, args=("127.0.0.1", port, ready),
            daemon=True,
        )
        proc.start()
        try:
            assert ready.wait(60.0), "external worker never came up"
            eng = engine(
                workers=1, transport="tcp", listen=("127.0.0.1", port),
                task_step_budget=1500,
            )
            result = eng.run(nqueens_asm(6))
        finally:
            proc.terminate()
            proc.join(10.0)
        assert result.exhausted
        assert len(result.solutions) == KNOWN_SOLUTION_COUNTS[6]
        assert result.stats.extra["worker_joins"] >= 1
        assert result.stats.extra["guest_instructions"] == (
            MachineEngine().run(nqueens_asm(6))
            .stats.extra["guest_instructions"]
        )
