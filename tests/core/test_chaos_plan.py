"""FaultPlan: deterministic fault decisions and the journal fault hook.

The plan's decision functions are pure, so they are tested without any
processes; the hooks' end-to-end effects (workers actually dying,
coordinators actually killed) are covered by ``test_resume.py`` and the
chaos-sweep CLI.
"""

import pytest

from repro.chaos import GARBAGE, WORKER_FAULTS, FaultPlan
from repro.core.errors import CoordinatorKilled
from repro.core.journal import TornWrite, decode_record, encode_record
from repro.search.shard import PrefixTask


def task(prefix=(0, 1), attempt=0):
    return PrefixTask(prefix=tuple(prefix), fanouts=(4,) * len(prefix),
                      attempt=attempt)


class TestDecisions:
    def test_deterministic_across_instances(self):
        a = FaultPlan(seed=3, crash_rate=0.3, stall_rate=0.2,
                      garbage_rate=0.2)
        b = FaultPlan(seed=3, crash_rate=0.3, stall_rate=0.2,
                      garbage_rate=0.2)
        tasks = [task((i, j)) for i in range(6) for j in range(6)]
        assert [a.worker_fault(t) for t in tasks] == \
               [b.worker_fault(t) for t in tasks]

    def test_seed_changes_the_schedule(self):
        tasks = [task((i,)) for i in range(64)]
        plans = [
            FaultPlan(seed=s, crash_rate=0.5).worker_fault
            for s in (0, 1)
        ]
        assert [plans[0](t) for t in tasks] != [plans[1](t) for t in tasks]

    def test_all_kinds_reachable(self):
        plan = FaultPlan(seed=0, crash_rate=0.33, stall_rate=0.33,
                         garbage_rate=0.33)
        kinds = {
            plan.worker_fault(task((i, j)))
            for i in range(8) for j in range(8)
        }
        assert set(WORKER_FAULTS) <= kinds

    def test_retries_run_fault_free(self):
        plan = FaultPlan(seed=0, crash_rate=1.0)
        assert plan.worker_fault(task(attempt=0)) == "exit"
        assert plan.worker_fault(task(attempt=1)) is None
        deeper = FaultPlan(seed=0, crash_rate=1.0, max_faulted_attempt=1)
        assert deeper.worker_fault(task(attempt=1)) == "exit"
        assert deeper.worker_fault(task(attempt=2)) is None

    def test_poison_prefixes_crash_every_attempt(self):
        plan = FaultPlan(seed=0, poison_prefixes=((0, 2),))
        assert plan.worker_fault(task((0, 2), attempt=5)) == "exit"
        assert plan.worker_fault(task((0, 3), attempt=0)) is None
        assert plan.has_worker_faults

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(crash_rate=0.6, stall_rate=0.5)

    def test_sterile_strips_coordinator_faults_only(self):
        plan = FaultPlan(seed=9, crash_rate=0.2, coordinator_kill_epoch=5,
                         journal_tear_epoch=6, journal_bitflip_epoch=7)
        sterile = plan.sterile()
        assert sterile.coordinator_kill_epoch is None
        assert sterile.journal_tear_epoch is None
        assert sterile.journal_bitflip_epoch is None
        assert sterile.seed == 9
        assert sterile.crash_rate == 0.2  # worker faults survive resume


class TestJournalHook:
    LINE = encode_record({"epoch": 5, "type": "dispatch", "n": 1})

    def test_kill_at_epoch(self):
        plan = FaultPlan(coordinator_kill_epoch=5)
        assert plan.journal_hook(4, self.LINE) is None
        with pytest.raises(CoordinatorKilled) as err:
            plan.journal_hook(5, self.LINE)
        assert err.value.epoch == 5

    def test_tear_keeps_a_genuine_prefix(self):
        plan = FaultPlan(journal_tear_epoch=5)
        with pytest.raises(TornWrite) as err:
            plan.journal_hook(5, self.LINE)
        partial = err.value.partial
        assert self.LINE.startswith(partial)
        assert 0 < len(partial) < len(self.LINE)
        assert not partial.endswith("\n")  # the newline never lands

    def test_bitflip_defeats_the_crc(self):
        plan = FaultPlan(seed=2, journal_bitflip_epoch=5)
        mutated = plan.journal_hook(5, self.LINE)
        assert mutated is not None and mutated != self.LINE
        assert mutated.endswith("\n")
        assert decode_record(mutated) is None

    def test_garbage_is_not_picklable_framing(self):
        # The constant must never accidentally decode: the coordinator's
        # protocol-error path is what the injection exists to exercise.
        import pickle

        with pytest.raises(Exception):
            pickle.loads(GARBAGE)
