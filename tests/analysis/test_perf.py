"""Analyzer performance floor from ISSUE 4: a 9x9 sudoku guest — the
largest shipped workload, ~1100 basic blocks — must analyze in under
two seconds."""

import time

from repro.analysis import analyze
from repro.cpu.assembler import assemble
from repro.workloads.sudoku import make_puzzle, sudoku_asm


def test_sudoku9_analyzes_under_two_seconds():
    grid = make_puzzle(40, seed=7, size=9, box_rows=3, box_cols=3)
    program = assemble(sudoku_asm(grid, size=9, box_rows=3, box_cols=3))
    started = time.perf_counter()
    report = analyze(program, use_cache=False)
    elapsed = time.perf_counter() - started
    assert elapsed < 2.0, f"analysis took {elapsed:.2f}s"
    assert report.certificate.certified
    noisy = [f for f in report.findings if f.severity.label != "info"]
    assert not noisy, noisy
