"""The verify= gate on engines and the replay-divergence diagnostics."""

import warnings

import pytest

from repro.analysis import VerificationError, verify_program
from repro.analysis.verifier import GuestVerificationWarning, nondet_sites
from repro.core.cluster import ProcessParallelEngine
from repro.core.errors import GuessError, ReplayDivergenceError
from repro.core.machine import MachineEngine
from repro.cpu.assembler import assemble
from repro.workloads.nqueens import nqueens_asm

NONDET_GUEST = """
    .data
    buf: .zero 8
    .text
    _start:
        mov rax, 0
        mov rdi, 0
        mov rsi, buf
        mov rdx, 8
        syscall
        mov rax, 60
        mov rdi, 0
        syscall
"""


def test_verify_program_modes():
    program = assemble(nqueens_asm(4))
    assert verify_program(program, "off") is None
    report = verify_program(program, "strict")
    assert report is not None and report.certificate.certified
    with pytest.raises(ValueError):
        verify_program(program, "loud")


def test_strict_refuses_uncertified_with_actionable_message():
    program = assemble(NONDET_GUEST)
    with pytest.raises(VerificationError) as err:
        verify_program(program, "strict")
    message = str(err.value)
    assert "repro.tools.analyze" in message
    assert "DT001" in message
    assert err.value.report is not None


def test_warn_mode_warns_and_returns_report():
    program = assemble(NONDET_GUEST)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        report = verify_program(program, "warn")
    assert report is not None
    assert any(
        issubclass(w.category, GuestVerificationWarning) for w in caught
    )


def test_machine_engine_strict_pass_and_refusal():
    engine = MachineEngine(verify="strict")
    result = engine.run(nqueens_asm(4))
    assert len(result.solutions) == 2
    assert engine.last_report.certificate.certified

    with pytest.raises(VerificationError):
        MachineEngine(verify="strict").run(NONDET_GUEST)


def test_process_engine_strict_refuses_before_sharding():
    engine = ProcessParallelEngine(workers=2, verify="strict")
    with pytest.raises(VerificationError):
        engine.run(NONDET_GUEST)
    # Refusal happens before any worker spawns: registry never ran.
    assert engine.registry.counter("parallel.tasks_dispatched").value == 0


def test_process_engine_strict_runs_certified_guest():
    engine = ProcessParallelEngine(workers=2, verify="strict")
    result = engine.run(nqueens_asm(4))
    assert len(result.solutions) == 2
    assert nondet_sites(engine.last_report) == ()


def test_engines_reject_unknown_verify_mode():
    with pytest.raises(ValueError):
        MachineEngine(verify="paranoid")
    with pytest.raises(ValueError):
        ProcessParallelEngine(verify="paranoid")


def test_replay_divergence_error_payload():
    err = ReplayDivergenceError(
        "nondeterministic guest: fan-out changed",
        prefix=(0, 1, 2),
        position=1,
        pc=0x400010,
        expected=4,
        actual=3,
        verdict="DT001 flagged this syscall site",
    )
    assert isinstance(err, GuessError)
    assert err.prefix == (0, 1, 2)
    assert err.expected == 4 and err.actual == 3
    text = str(err)
    assert "decision prefix [0,1,2]" in text
    assert "diverged at depth 1" in text
    assert "guest pc 0x400010" in text
    assert "analyzer verdict: DT001" in text


def test_worker_divergence_verdict_lookup():
    from repro.core.cluster import ClusterConfig, _SubtreeWorker

    program = assemble(nqueens_asm(4))

    def worker(sites):
        return _SubtreeWorker(program, ClusterConfig(nondet_sites=sites))

    # verify="off": no analysis, no verdict to cite.
    assert worker(None)._divergence_verdict(0x400010) is None
    # Certified program: divergence implicates the engine, not the guest.
    assert "certified" in worker(())._divergence_verdict(0x400010)
    # Flagged site: the verdict names the lint.
    flagged = worker(((0x400010, "DT001"),))
    assert "DT001" in flagged._divergence_verdict(0x400010)
    # Uncertified program, different site: cite the known sites.
    assert "0x400010" in flagged._divergence_verdict(0x400099)


def test_python_replay_divergence_cites_prefix():
    from repro.core.replay import ReplayEngine

    flip = {"first": True}

    def unstable(sys):
        n = 3 if flip.pop("first", False) else 2
        choice = sys.guess(n)
        if choice != 0:
            sys.fail()
        return choice

    with pytest.raises(ReplayDivergenceError) as err:
        ReplayEngine().run(unstable)
    assert err.value.position == 0
    assert err.value.expected == 3
    assert err.value.actual == 2
