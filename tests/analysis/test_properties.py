"""Property tests tying the static verdicts to runtime behaviour.

* Programs the analyzer flags with an error-severity fault lint really
  do trap when executed (soundness of the error tier on this family).
* Certified random programs really do replay identically under the
  process-parallel engine (the certificate's operational meaning).
* The analyzer is total: arbitrary byte soup never crashes it.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis import analyze
from repro.core.machine import MachineEngine
from repro.cpu.assembler import Program, assemble
from repro.mem.layout import CODE_BASE, DATA_BASE
from repro.workloads.randprog import generate_source, make_program

#: Addresses provably outside every static segment and below the
#: heap/stack dynamic window — loads there must fault at runtime.
_WILD_ADDRESSES = st.integers(min_value=0x1000, max_value=0x3FF000)


@settings(max_examples=15, deadline=None)
@given(addr=_WILD_ADDRESSES)
def test_flagged_oob_loads_trap_at_runtime(addr):
    source = f"""
    .text
    _start:
        mov rbx, {addr:#x}
        mov rax, [rbx + 0]
        mov rax, 60
        mov rdi, 0
        syscall
    """
    program = assemble(source)
    report = analyze(program)
    assert any(f.lint_id == "MB001" for f in report.findings)

    result = MachineEngine(verify="off").run(program)
    assert not result.solutions
    reasons = result.stats.extra.get("kill_reasons", [])
    assert any("page fault" in r for r in reasons), reasons


@settings(max_examples=8, deadline=None)
@given(divisor_zero=st.booleans(), dividend=st.integers(0, 1000))
def test_flagged_divides_trap_exactly_when_divisor_is_zero(
    divisor_zero, dividend
):
    divisor = 0 if divisor_zero else 3
    source = f"""
    .text
    _start:
        mov rax, {dividend}
        mov rbx, {divisor}
        udiv rax, rbx
        mov rax, 60
        mov rdi, 0
        syscall
    """
    program = assemble(source)
    report = analyze(program)
    flagged = any(
        f.lint_id == "DV001" and f.severity.label == "error"
        for f in report.findings
    )
    assert flagged == divisor_zero

    result = MachineEngine(verify="off").run(program)
    if divisor_zero:
        assert not result.solutions
    else:
        assert result.solutions


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_certified_randprog_replays_identically_in_process_engine(seed):
    from repro.analysis.differential import cross_engine_differential

    program = assemble(generate_source(make_program(seed)))
    assert analyze(program).certificate.certified
    outcome = cross_engine_differential(program, workers=2)
    assert outcome, outcome.detail


@settings(max_examples=40, deadline=None)
@given(blob=st.binary(min_size=0, max_size=64))
def test_analyzer_is_total_on_byte_soup(blob):
    program = Program(
        text=blob, data=b"", text_base=CODE_BASE, data_base=DATA_BASE
    )
    report = analyze(program, use_cache=False)
    # Every finding must be a catalogued lint anchored inside .text
    # (or at the entry for empty/truncated images).
    from repro.analysis.report import CATALOG

    for finding in report.findings:
        assert finding.lint_id in CATALOG
        assert CODE_BASE <= finding.pc <= CODE_BASE + max(len(blob), 1)
