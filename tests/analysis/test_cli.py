"""The repro.tools.analyze CLI and run_guest --verify integration."""

import json

import pytest

from repro.tools import analyze as analyze_cli
from repro.tools import run_guest as run_guest_cli
from repro.workloads.nqueens import nqueens_asm

BAD_GUEST = """
    .text
    _start:
        mov rax, 0
        mov rdi, 0
        mov rsi, 0x600000
        mov rdx, 1
        syscall
        mov rax, 60
        mov rdi, 0
        syscall
"""

WARN_GUEST = """
    .text
    _start:
        add rax, rbx
        mov rax, 60
        mov rdi, 0
        syscall
"""


@pytest.fixture
def clean_source(tmp_path):
    path = tmp_path / "clean.s"
    path.write_text(nqueens_asm(4))
    return str(path)


@pytest.fixture
def bad_source(tmp_path):
    path = tmp_path / "bad.s"
    path.write_text(BAD_GUEST)
    return str(path)


def test_cli_exit_codes(clean_source, bad_source, tmp_path, capsys):
    assert analyze_cli.main([clean_source]) == 0
    out = capsys.readouterr().out
    assert "CERTIFIED" in out and "guest-program verifier" in out

    warn = tmp_path / "warn.s"
    warn.write_text(WARN_GUEST)
    assert analyze_cli.main([str(warn)]) == 1

    assert analyze_cli.main([bad_source]) == 1  # DT001 is a warning
    out = capsys.readouterr().out
    assert "NOT CERTIFIED" in out


def test_cli_missing_file_is_exit_2(tmp_path, capsys):
    assert analyze_cli.main([str(tmp_path / "absent.s")]) == 2


def test_cli_json_output(clean_source, capsys):
    assert analyze_cli.main([clean_source, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["certificate"]["certified"] is True
    assert payload["blocks"] > 0
    assert all("id" in f and "pc" in f for f in payload["findings"])


def test_cli_sarif_output(clean_source, tmp_path):
    out = tmp_path / "report.sarif"
    assert analyze_cli.main(
        [clean_source, "--sarif", "--output", str(out)]
    ) == 0
    doc = json.loads(out.read_text())
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    assert run["tool"]["driver"]["rules"]
    locations = run["results"][0]["locations"][0]
    assert locations["physicalLocation"]["artifactLocation"]["uri"] \
        == clean_source


def test_cli_differential(clean_source, capsys):
    assert analyze_cli.main([clean_source, "--differential"]) == 0
    err = capsys.readouterr().err
    assert "differential[sequential]: ok" in err
    assert "differential[cross-engine]: ok" in err


def test_run_guest_verify_warn_prints_table(clean_source, capsys):
    assert run_guest_cli.main([clean_source]) == 0
    out = capsys.readouterr().out
    assert "guest-program verifier" in out
    assert "solution(s) via" in out


def test_run_guest_verify_strict_refuses(bad_source, capsys):
    assert run_guest_cli.main([bad_source, "--verify=strict"]) == 2
    captured = capsys.readouterr()
    assert "failed strict verification" in captured.err


def test_run_guest_verify_off_skips_analysis(clean_source, capsys):
    assert run_guest_cli.main([clean_source, "--verify=off"]) == 0
    out = capsys.readouterr().out
    assert "guest-program verifier" not in out
