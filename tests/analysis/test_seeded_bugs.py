"""Seeded-bug corpus: each program plants one defect; the analyzer must
report the expected lint at the expected site.

Sites are asserted through the finding's nearest label (stable under
encoding changes) and, where the defect is a single instruction, through
the source line mapped from ``Program.lines``.
"""

import pytest

from repro.analysis import analyze
from repro.cpu.assembler import assemble

EXIT_EPILOGUE = """
        mov   rax, 60
        mov   rdi, 0
        syscall
"""

#: name -> (source, expected lint id, expected nearest label)
CORPUS = {
    "invalid-opcode": (
        """
        .text
        _start:
            mov rax, 1
        bad:
            .byte 0xfe
        """,
        "CF001", "bad",
    ),
    "unreachable-block": (
        f"""
        .text
        _start:
            jmp finish
        orphan:
            mov rbx, 2
        finish:
        {EXIT_EPILOGUE}
        """,
        "CF002", "orphan",
    ),
    "fallthrough-escape": (
        """
        .text
        _start:
        leak:
            mov rax, 7
        """,
        "CF003", "leak",
    ),
    "ret-without-call": (
        """
        .text
        _start:
        naked:
            ret
        """,
        "CF004", "naked",
    ),
    "uninit-read": (
        f"""
        .text
        _start:
        cold:
            add rax, rbx
        {EXIT_EPILOGUE}
        """,
        "DF001", "cold",
    ),
    "div-by-zero": (
        f"""
        .text
        _start:
            mov rax, 10
            mov rbx, 0
        crash:
            udiv rax, rbx
        {EXIT_EPILOGUE}
        """,
        "DV001", "crash",
    ),
    "oob-load": (
        f"""
        .text
        _start:
            mov rbx, 0x100
        wild:
            mov rax, [rbx + 0]
        {EXIT_EPILOGUE}
        """,
        "MB001", "wild",
    ),
    "write-to-text": (
        f"""
        .text
        _start:
            mov rbx, 0x400000
            mov rcx, 1
        smash:
            mov [rbx + 0], rcx
        {EXIT_EPILOGUE}
        """,
        "MB003", "smash",
    ),
    "fail-before-guess": (
        """
        .text
        _start:
        doomed:
            mov rax, 0x1001
            syscall
        """,
        "BT002", "doomed",
    ),
    "zero-fanout-guess": (
        f"""
        .text
        _start:
        stuck:
            mov rax, 0x1000
            mov rdi, 0
            syscall
        {EXIT_EPILOGUE}
        """,
        "BT003", "stuck",
    ),
    "reads-stdin": (
        f"""
        .data
        buf: .zero 8
        .text
        _start:
        input:
            mov rax, 0
            mov rdi, 0
            mov rsi, buf
            mov rdx, 8
            syscall
        {EXIT_EPILOGUE}
        """,
        "DT001", "input",
    ),
    "reads-clock": (
        f"""
        .text
        _start:
        clock:
            mov rax, 201
            syscall
        {EXIT_EPILOGUE}
        """,
        "DT005", "clock",
    ),
    "draws-entropy": (
        f"""
        .data
        buf: .zero 16
        .text
        _start:
        entropy:
            mov rax, 318
            mov rdi, buf
            mov rsi, 16
            syscall
        {EXIT_EPILOGUE}
        """,
        "DT006", "entropy",
    ),
    "uninterposed-syscall": (
        f"""
        .text
        _start:
        alien:
            mov rax, 77
            syscall
        {EXIT_EPILOGUE}
        """,
        "DT003", "alien",
    ),
    "unresolved-syscall": (
        f"""
        .data
        num: .quad 60
        .text
        _start:
            mov rbx, num
        mystery:
            mov rax, [rbx + 0]
            syscall
        {EXIT_EPILOGUE}
        """,
        "DT004", "mystery",
    ),
}


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_seeded_bug_is_reported_at_site(name):
    source, lint_id, label = CORPUS[name]
    program = assemble(source)
    report = analyze(program)
    hits = [f for f in report.findings if f.lint_id == lint_id]
    assert hits, (
        f"{name}: expected {lint_id}, got "
        f"{[(f.lint_id, f.message) for f in report.findings]}"
    )
    assert any(f.label == label for f in hits), (
        f"{name}: {lint_id} reported at labels "
        f"{[f.label for f in hits]}, expected {label!r}"
    )
    assert report.exit_code >= 1


def test_finding_pcs_map_to_source_lines():
    source, _, _ = CORPUS["div-by-zero"]
    program = assemble(source)
    report = analyze(program)
    dv = next(f for f in report.findings if f.lint_id == "DV001")
    assert dv.line is not None
    assert "udiv" in source.splitlines()[dv.line - 1]


def test_error_findings_void_strict_but_not_certificate():
    # DV001 is an error but not a nondeterminism source: strict mode
    # refuses the program, yet the certificate itself stays valid.
    source, _, _ = CORPUS["div-by-zero"]
    report = analyze(assemble(source))
    assert report.exit_code == 2
    assert report.certificate.certified


def test_nondet_findings_void_certificate():
    source, _, _ = CORPUS["reads-stdin"]
    report = analyze(assemble(source))
    assert not report.certificate.certified
    assert any(lid == "DT001" for _, lid in report.certificate.nondet_sites)


@pytest.mark.parametrize("name,lint", [
    ("reads-stdin", "DT001"), ("reads-clock", "DT005"),
    ("draws-entropy", "DT006"),
])
def test_recordable_nondet_sites_void_certificate_but_allow_replay(
    name, lint
):
    """The recordable trio voids the certificate yet stays shardable
    under record/replay; host-fs and uninterposed findings do not."""
    from repro.analysis.verifier import recordable, strict_failure

    source, _, _ = CORPUS[name]
    report = analyze(assemble(source))
    assert not report.certificate.certified
    assert any(lid == lint for _, lid in report.certificate.nondet_sites)
    assert recordable(report)
    assert strict_failure(report, allow_recordable=True) is None


@pytest.mark.parametrize("name", ["uninterposed-syscall",
                                  "unresolved-syscall"])
def test_unrecordable_nondet_sites_refuse_even_under_replay(name):
    from repro.analysis.verifier import recordable, strict_failure

    source, _, _ = CORPUS[name]
    report = analyze(assemble(source))
    assert not recordable(report)
    assert strict_failure(report, allow_recordable=True) is not None
