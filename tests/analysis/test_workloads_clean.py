"""Every shipped workload generator must analyze clean and certified.

This is the analyzer's "no false positives on real guests" contract:
generators are the programs users actually run, so any warning here is
either a generator bug (fix the generator — see the sudoku dead-epilogue
fix) or an analyzer precision bug (fix the analyzer).  Info-severity
findings are allowed; they are advisories, not defects.
"""

import pytest

from repro.analysis import analyze
from repro.cpu.assembler import assemble
from repro.workloads.coloring import WHEEL5_EDGES, WHEEL5_NODES, coloring_asm
from repro.workloads.crashfs import CLEAN_PLANS as CRASHFS_CLEAN_PLANS
from repro.workloads.crashfs import CORPUS as CRASHFS_CORPUS
from repro.workloads.knapsack import random_instance, subset_sum_asm
from repro.workloads.nqueens import nqueens_asm
from repro.workloads.puzzle8 import puzzle8_asm, scramble
from repro.workloads.randprog import generate_source, make_program
from repro.workloads.sudoku import make_puzzle, sudoku_asm
from repro.workloads.synthetic import synthetic_asm

WORKLOADS = {
    "nqueens": lambda: nqueens_asm(6),
    "nqueens-fig1": lambda: nqueens_asm(5, fig1_style=True),
    "sudoku": lambda: sudoku_asm(make_puzzle(6, seed=3)),
    "sudoku-solved": lambda: sudoku_asm(make_puzzle(0, seed=3)),
    "coloring": lambda: coloring_asm(WHEEL5_NODES, WHEEL5_EDGES, 4),
    "subset-sum": lambda: subset_sum_asm(*random_instance(6, seed=1)),
    "synthetic": lambda: synthetic_asm(2, 3, 10, 1),
    "randprog": lambda: generate_source(make_program(7)),
    "puzzle8": lambda: puzzle8_asm(scramble(4, seed=2), 6),
}


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_workload_is_clean_and_certified(name):
    report = analyze(assemble(WORKLOADS[name]()))
    noisy = [f for f in report.findings if f.severity.label != "info"]
    assert not noisy, f"{name}: unexpected findings {noisy}"
    assert report.exit_code == 0
    assert report.certificate.certified, report.certificate.reasons


@pytest.mark.parametrize(
    "name", sorted(p.name for p in CRASHFS_CLEAN_PLANS)
)
def test_clean_crashfs_twin_has_no_fs_findings(name):
    """The crash-guest generators for the clean corpus twins prove
    FS-clean: zero FS findings, and the FS pass leaves the (expected,
    filesystem-dependent) determinism verdict untouched."""
    from repro.crashsim import crash_asm, fs_context_for

    plan = CRASHFS_CORPUS[name]
    program = assemble(crash_asm(plan))
    report = analyze(program, fs_context=fs_context_for(plan))
    fs_findings = [f for f in report.findings
                   if f.lint_id.startswith("FS")]
    assert not fs_findings, f"{name}: unexpected FS findings {fs_findings}"
    assert report.fs is not None and report.fs.fs_clean
    # Certificate unaffected by the FS pass: same verdict as the
    # context-free analysis of the same program.
    baseline = analyze(program)
    assert report.certificate.certified == baseline.certificate.certified
    assert report.certificate.reasons == baseline.certificate.reasons


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 11, 42])
def test_randprog_certified_across_seeds(seed):
    report = analyze(assemble(generate_source(make_program(seed))))
    assert report.exit_code == 0
    assert report.certificate.certified


def test_workloads_have_step_bound_scopes():
    report = analyze(assemble(nqueens_asm(4)))
    # One scope per guess site plus the entry scope.
    assert len(report.certificate.step_bounds) >= 2


def test_puzzle8_asm_finds_goal():
    from repro.core.machine import MachineEngine

    start = scramble(3, seed=1)
    result = MachineEngine(verify="strict").run(puzzle8_asm(start, 5))
    assert result.solutions
    assert all(text == "123456780\n" for _, text in result.solution_values)


def test_puzzle8_asm_rejects_bad_board():
    with pytest.raises(ValueError):
        puzzle8_asm((1, 1, 2, 3, 4, 5, 6, 7, 8), 4)
