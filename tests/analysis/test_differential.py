"""Dynamic validation of the determinism certificate (ISSUE 4 acceptance).

Certified programs must (a) trace identically across two sequential runs
and (b) agree with the process-parallel engine on terminal search
outcomes.  The suite also checks the harness itself reports divergence
instead of masking it.
"""

import pytest

from repro.analysis import analyze
from repro.analysis.differential import (
    cross_engine_differential,
    sequential_differential,
)
from repro.cpu.assembler import assemble
from repro.workloads.coloring import WHEEL5_EDGES, WHEEL5_NODES, coloring_asm
from repro.workloads.nqueens import nqueens_asm
from repro.workloads.randprog import generate_source, make_program

GUESTS = {
    "nqueens": lambda: nqueens_asm(4),
    "coloring": lambda: coloring_asm(WHEEL5_NODES, WHEEL5_EDGES, 4),
    "randprog": lambda: generate_source(make_program(3)),
}


@pytest.mark.parametrize("name", sorted(GUESTS))
def test_sequential_runs_trace_identically(name):
    source = GUESTS[name]()
    program = assemble(source)
    assert analyze(program).certificate.certified
    outcome = sequential_differential(program)
    assert outcome, outcome.detail
    assert outcome.events > 0


@pytest.mark.parametrize("name", sorted(GUESTS))
def test_sequential_and_process_agree_on_outcomes(name):
    program = assemble(GUESTS[name]())
    outcome = cross_engine_differential(program, workers=2)
    assert outcome, outcome.detail


def test_differential_detects_divergent_solutions():
    # A harness self-test: feed runs that disagree and expect a failure.
    class FakeEngine:
        calls = [0]

        def run(self, guest):
            from repro.core.result import SearchResult, SearchStats, Solution

            self.calls[0] += 1
            sols = [Solution(value=(0, "a"), path=(self.calls[0],))]
            return SearchResult(
                solutions=sols, stats=SearchStats(), strategy="dfs",
                exhausted=True, stop_reason=None,
            )

    outcome = sequential_differential("ignored", engine_factory=FakeEngine)
    assert not outcome.ok
    assert "different solutions" in outcome.detail or "diverged" in outcome.detail
