"""Run ruff/mypy over the analysis package when they are installed.

The CI lint job installs both; locally they may be absent (the dev
container has no network), so these tests skip rather than fail.  They
exist so a contributor *with* the tools catches lint regressions before
pushing, with the exact flags CI uses.
"""

import pathlib
import shutil
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parents[2]


def _run(cmd):
    return subprocess.run(
        cmd, cwd=REPO, capture_output=True, text=True, timeout=300
    )


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_repo_baseline():
    proc = _run(["ruff", "check", "."])
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_analysis_full_rules():
    proc = _run([
        "ruff", "check", "--select", "E,F,W,I", "--line-length", "100",
        "src/repro/analysis",
    ])
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_strict_on_analysis():
    proc = _run([
        sys.executable, "-m", "mypy", "--strict", "--python-version", "3.11",
        "-p", "repro.analysis",
    ])
    assert proc.returncode == 0, proc.stdout + proc.stderr
