"""The FS lint family: every seeded crash-consistency bug in the
crashfs corpus is caught *statically*, at the right source line, and
every clean twin is proven FS-clean.

This is the static mirror of tests/crashsim/test_corpus.py: the same
corpus, but the verdict comes from the file-effect abstract domain
(:mod:`repro.analysis.fsdomain`) instead of the crash search.  The
line-matching assertions tie each plan's expected blame tags (the
ground truth the dynamic search reports) to the static findings.
"""

import pytest

from repro.analysis import analyze, catalog_fingerprint
from repro.analysis.fsdomain import DEFAULT_BLOCK_SIZE, O_CREAT
from repro.cpu.assembler import assemble
from repro.crashsim import crash_source, fs_context_for, simulate
from repro.workloads.crashfs import BUGGY_PLANS, CLEAN_PLANS, CORPUS

# One report per plan per module run (the analyzer memoises anyway,
# but the source/tag maps are worth sharing too).
_cache = {}


def _analyzed(plan):
    if plan.name not in _cache:
        source, tag_lines = crash_source(plan)
        report = analyze(assemble(source), fs_context=fs_context_for(plan))
        _cache[plan.name] = (report, tag_lines)
    return _cache[plan.name]


def _fs_findings(report):
    return [f for f in report.findings if f.lint_id.startswith("FS")]


class TestConstantsPinned:
    """The static domain mirrors libos constants; drift would silently
    wreck block arithmetic and open-flag decoding."""

    def test_block_size_matches_libos(self):
        from repro.libos import files

        assert DEFAULT_BLOCK_SIZE == files.DEFAULT_BLOCK_SIZE

    def test_o_creat_matches_libos(self):
        from repro.libos import files

        assert O_CREAT == files.O_CREAT


@pytest.mark.parametrize("plan", BUGGY_PLANS, ids=lambda p: p.name)
class TestSeededBugsCaughtStatically:
    def test_expected_lint_ids_exactly(self, plan):
        report, _ = _analyzed(plan)
        got = {f.lint_id for f in _fs_findings(report)}
        assert got == set(plan.expected_fs), (
            f"{plan.name}: expected {sorted(plan.expected_fs)}, got "
            f"{sorted(got)}"
        )

    def test_a_finding_lands_on_a_blamed_line(self, plan):
        """At least one FS finding is anchored at the source line of an
        operation the dynamic search blames for the bug."""
        report, tag_lines = _analyzed(plan)
        blamed_lines = {
            line for tag, line in tag_lines.items()
            if tag in plan.expected_blame
        }
        assert blamed_lines, f"{plan.name}: no line for expected blame"
        found_lines = {f.line for f in _fs_findings(report)}
        assert found_lines & blamed_lines, (
            f"{plan.name}: findings at lines {sorted(found_lines)} miss "
            f"blamed lines {sorted(blamed_lines)}"
        )

    def test_not_fs_clean(self, plan):
        report, _ = _analyzed(plan)
        assert report.fs is not None
        assert not report.fs.fs_clean

    def test_predicted_log_matches_simulation(self, plan):
        """The analysis' concrete oplog prediction agrees record-for-
        record with the real file layer — the soundness anchor for
        crash-point pruning."""
        report, _ = _analyzed(plan)
        assert report.fs.predicted_log == simulate(plan).log


@pytest.mark.parametrize("plan", CLEAN_PLANS, ids=lambda p: p.name)
class TestCleanTwinsProvenClean:
    def test_zero_fs_findings(self, plan):
        report, _ = _analyzed(plan)
        assert _fs_findings(report) == []

    def test_fs_clean(self, plan):
        report, _ = _analyzed(plan)
        assert report.fs is not None and report.fs.fs_clean

    def test_predicted_log_matches_simulation(self, plan):
        report, _ = _analyzed(plan)
        assert report.fs.predicted_log == simulate(plan).log


class TestFsFindingsDoNotVoidCertificate:
    """FS lints speak about durability, not replay determinism: a
    buggy-corpus guest keeps whatever certificate status its syscall
    mix earns, independent of FS findings."""

    def test_same_certificate_with_and_without_context(self):
        plan = CORPUS["journaled_append_missing_fsync"]
        source, _ = crash_source(plan)
        program = assemble(source)
        with_ctx = analyze(program, fs_context=fs_context_for(plan))
        without = analyze(program)
        assert (with_ctx.certificate.certified
                == without.certificate.certified)
        assert (with_ctx.certificate.reasons == without.certificate.reasons)


_SYNC_ONLY = """
.text
_start:
    mov rax, 162
    syscall
    mov rax, 60
    mov rdi, 0
    syscall
"""

_DOUBLE_FSYNC = """
.data
path: .asciz "/f"
buf: .byte 1, 2, 3, 4
.text
_start:
    mov rax, 2
    mov rdi, path
    mov rsi, 66
    syscall
    mov rax, 1
    mov rdi, 3
    mov rsi, buf
    mov rdx, 4
    syscall
    mov rax, 74
    mov rdi, 3
    syscall
    mov rax, 74
    mov rdi, 3
    syscall
    mov rax, 60
    mov rdi, 0
    syscall
"""


class TestDeadBarriers:
    def test_sync_with_nothing_pending_is_fs006(self):
        report = analyze(assemble(_SYNC_ONLY))
        ids = [f.lint_id for f in _fs_findings(report)]
        assert ids == ["FS006"]
        assert report.fs.fs_clean  # info-severity: still clean

    def test_second_fsync_is_fs006(self):
        report = analyze(assemble(_DOUBLE_FSYNC))
        fs = _fs_findings(report)
        assert [f.lint_id for f in fs] == ["FS006"]
        # The *second* fsync is the dead one; the first retires data.
        assert report.fs.dead_barriers[0][1] == "fsync"

    def test_fs006_is_info_severity(self):
        report = analyze(assemble(_SYNC_ONLY))
        (finding,) = _fs_findings(report)
        assert finding.severity.label == "info"
        assert report.exit_code == 0


class TestMemoisationKey:
    """Satellite: the cache key includes the catalog fingerprint and
    the FS context, so neither a grown catalog nor a different plan
    context can serve a stale report."""

    def test_cache_hit_same_inputs(self):
        program = assemble(_SYNC_ONLY)
        assert analyze(program) is analyze(program)

    def test_fs_context_is_part_of_the_key(self):
        plan = CORPUS["journaled_append_missing_fsync"]
        source, _ = crash_source(plan)
        program = assemble(source)
        default = analyze(program)
        with_ctx = analyze(program, fs_context=fs_context_for(plan))
        assert default is not with_ctx
        # Different block size => different torn-window geometry.
        assert ({f.lint_id for f in _fs_findings(default)}
                != {f.lint_id for f in _fs_findings(with_ctx)}
                or default.fs.to_dict() != with_ctx.fs.to_dict())

    def test_catalog_fingerprint_invalidates(self, monkeypatch):
        from repro.analysis import report as report_mod

        program = assemble(_SYNC_ONLY)
        first = analyze(program)
        fp_before = catalog_fingerprint()
        spec = report_mod.CATALOG["FS006"]
        patched = type(spec)(
            lint_id=spec.lint_id, name=spec.name,
            default_severity=spec.default_severity,
            description=spec.description + " (v2)",
            example=spec.example,
        )
        monkeypatch.setitem(report_mod.CATALOG, "FS006", patched)
        assert catalog_fingerprint() != fp_before
        assert analyze(program) is not first

    def test_fingerprint_is_stable(self):
        assert catalog_fingerprint() == catalog_fingerprint()


class TestExplainCli:
    def test_known_id(self, capsys):
        from repro.tools.analyze import main

        assert main(["--explain", "FS001"]) == 0
        out = capsys.readouterr().out
        assert "FS001" in out and "severity: warning" in out
        assert "example:" in out

    def test_every_catalog_entry_explains(self, capsys):
        from repro.analysis import CATALOG
        from repro.tools.analyze import main

        for lint_id in CATALOG:
            assert main(["--explain", lint_id]) == 0
        capsys.readouterr()

    def test_unknown_id_exits_2(self, capsys):
        from repro.tools.analyze import main

        assert main(["--explain", "FS999"]) == 2
        assert "unknown lint id" in capsys.readouterr().err

    def test_plan_mode_reports_fs_findings(self, capsys):
        from repro.tools.analyze import main

        assert main(["--plan", "journaled_append_missing_fsync"]) == 1
        out = capsys.readouterr().out
        assert "FS001" in out and "crash consistency: NOT PROVEN" in out

    def test_plan_mode_clean_twin(self, capsys):
        from repro.tools.analyze import main

        rc = main(["--plan", "journaled_append_clean"])
        out = capsys.readouterr().out
        assert "FS-CLEAN" in out
        assert rc in (0, 1)  # DT advisories may warn; no FS findings
        assert "FS0" not in out.replace("FS-CLEAN", "")
