"""Unit tests for interposition policies and the audit log."""

from repro.interpose import (
    AuditLog,
    Containment,
    PermissivePolicy,
    SoundMinimalPolicy,
    Verdict,
)
from repro.interpose.policy import EACCES


class TestSoundMinimalPolicy:
    def test_regular_files_allowed(self):
        policy = SoundMinimalPolicy()
        assert policy.check_open("/home/user/data.txt", 0) is None
        assert policy.check_open("relative/path", 2) is None

    def test_devices_refused(self):
        policy = SoundMinimalPolicy()
        assert policy.check_open("/dev/null", 0) == EACCES
        assert policy.check_open("/proc/self/mem", 0) == EACCES
        assert policy.check_open("/sys/kernel/x", 0) == EACCES

    def test_sockets_refused(self):
        policy = SoundMinimalPolicy()
        assert policy.check_open("socket:1.2.3.4:80", 2) == EACCES
        assert policy.check_open("tcp:host:99", 2) == EACCES

    def test_unknown_syscalls_kill(self):
        assert SoundMinimalPolicy().check_unknown_syscall(41) == "kill"


class TestPermissivePolicy:
    def test_everything_allowed(self):
        policy = PermissivePolicy()
        assert policy.check_open("/dev/null", 0) is None
        assert policy.check_unknown_syscall(41) == "errno"


class TestAuditLog:
    def test_note_and_filter(self):
        log = AuditLog()
        log.note("open", "/a", Verdict.ALLOW, Containment.COW)
        log.note("open", "/dev/x", Verdict.DENY)
        log.note("brk", "grow", Verdict.ALLOW, Containment.LOGGED)
        assert len(log.records) == 3
        assert len(log.denials) == 1
        assert len(log.allowed) == 2
        assert log.count("open") == 2

    def test_records_are_immutable(self):
        log = AuditLog()
        log.note("open", "/a", Verdict.ALLOW)
        record = log.records[0]
        try:
            record.verdict = Verdict.DENY
            raised = False
        except AttributeError:
            raised = True
        assert raised
