"""Tests for interposition policies."""
