"""Tests for the simulated CPU."""
