"""Property tests: the decoder inverts the assembler.

Random well-formed instructions are assembled and then decoded by the
interpreter's decoder; operands and lengths must round-trip exactly.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu import Interpreter, assemble
from repro.cpu import isa
from repro.cpu.registers import REG_NAMES
from repro.mem import AddressSpace, FramePool, Permission

regs = st.sampled_from(REG_NAMES)
imm32 = st.integers(-(2**31), 2**31 - 1)
imm64 = st.integers(-(2**63), 2**64 - 1)
disp = st.integers(-(2**16), 2**16)
scale = st.sampled_from([1, 2, 4, 8])


def decode_all(source):
    program = assemble(source)
    pool = FramePool()
    space = AddressSpace(pool)
    space.map_region(program.text_base, max(len(program.text), 1),
                     Permission.RX, data=program.text)
    cpu = Interpreter(space)
    decoded = []
    rip = program.text_base
    end = program.text_base + len(program.text)
    while rip < end:
        fields = cpu._decode(rip)
        decoded.append(fields)
        rip = fields[-1]
    return decoded


@given(reg=regs, value=imm64)
@settings(max_examples=60, deadline=None)
def test_movi_roundtrip(reg, value):
    decoded = decode_all(f"mov {reg}, {value}")
    assert decoded[0][0] == isa.MOVI
    assert decoded[0][1] == REG_NAMES.index(reg)
    assert decoded[0][2] == value % (1 << 64)


@given(dst=regs, base=regs, offset=disp)
@settings(max_examples=60, deadline=None)
def test_load_roundtrip(dst, base, offset):
    sign = "+" if offset >= 0 else "-"
    decoded = decode_all(f"mov {dst}, [{base} {sign} {abs(offset)}]")
    op, d, b, disp_val, _next = decoded[0]
    assert op == isa.LOAD
    assert (d, b, disp_val) == (
        REG_NAMES.index(dst), REG_NAMES.index(base), offset,
    )


@given(dst=regs, base=regs, index=regs, s=scale, offset=disp)
@settings(max_examples=60, deadline=None)
def test_indexed_roundtrip(dst, base, index, s, offset):
    sign = "+" if offset >= 0 else "-"
    decoded = decode_all(
        f"mov {dst}, [{base} + {index}*{s} {sign} {abs(offset)}]"
    )
    op, d, b, i, sc, disp_val, _next = decoded[0]
    assert op == isa.LOADX
    assert (d, b, i, sc, disp_val) == (
        REG_NAMES.index(dst), REG_NAMES.index(base),
        REG_NAMES.index(index), s, offset,
    )


@given(reg=regs, value=imm32,
       mnemonic=st.sampled_from(["add", "sub", "imul", "and", "or", "xor", "cmp"]))
@settings(max_examples=60, deadline=None)
def test_alu_imm_roundtrip(reg, value, mnemonic):
    decoded = decode_all(f"{mnemonic} {reg}, {value}")
    assert decoded[0][1] == REG_NAMES.index(reg)
    assert decoded[0][2] == value


@given(n_nops=st.integers(0, 40))
@settings(max_examples=30, deadline=None)
def test_branch_target_resolution(n_nops):
    nops = "\n".join("nop" for _ in range(n_nops))
    decoded = decode_all(f"jmp target\n{nops}\ntarget: hlt")
    target = decoded[0][1]
    # The target must be the hlt's address.
    assert decoded[-1][0] == isa.HLT
    hlt_addr = decoded[-1][-1] - 1
    assert target == hlt_addr


@given(
    seq=st.lists(
        st.sampled_from(
            ["nop", "ret", "syscall", "push rax", "pop rbx", "inc rcx",
             "mov rax, 7", "add rdx, 3", "mov rsi, [rbp - 8]", "hlt"]
        ),
        min_size=1, max_size=30,
    )
)
@settings(max_examples=40, deadline=None)
def test_instruction_stream_lengths(seq):
    """Decoded lengths tile the text segment exactly."""
    decoded = decode_all("\n".join(seq))
    assert len(decoded) == len(seq)
