"""Shared fixtures: assemble-and-run helpers for CPU tests."""

import pytest

from repro.cpu import Interpreter, assemble
from repro.mem import AddressSpace, FramePool, PAGE_SIZE, Permission
from repro.mem.layout import STACK_TOP

STACK_PAGES = 16


def load(program, pool=None):
    """Map an assembled program into a fresh address space."""
    pool = pool or FramePool()
    space = AddressSpace(pool, name="cputest")
    space.map_region(
        program.text_base,
        max(len(program.text), 1),
        Permission.RX,
        data=program.text,
    )
    space.map_region(
        program.data_base,
        max(len(program.data), PAGE_SIZE),
        Permission.RW,
        data=program.data or None,
    )
    stack_base = STACK_TOP - STACK_PAGES * PAGE_SIZE
    space.map_region(stack_base, STACK_PAGES * PAGE_SIZE, Permission.RW)
    return space


def run_asm(source, max_steps=100_000, setup=None):
    """Assemble, load and run *source*; returns (exit, interpreter, space)."""
    program = assemble(source)
    space = load(program)
    cpu = Interpreter(space)
    cpu.regs.rip = program.entry
    cpu.regs.rsp = STACK_TOP
    if setup is not None:
        setup(cpu, space, program)
    exit_event = cpu.run(max_steps=max_steps)
    return exit_event, cpu, space


@pytest.fixture
def asm():
    return run_asm
