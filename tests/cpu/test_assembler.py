"""Unit tests for the assembler (encoding, labels, directives, errors)."""

import pytest

from repro.cpu import AssemblyError, assemble
from repro.cpu import isa
from repro.mem.layout import CODE_BASE, DATA_BASE


class TestEncoding:
    def test_mov_imm(self):
        prog = assemble("mov rax, 0x1122334455667788")
        assert prog.text[0] == isa.MOVI
        assert prog.text[1] == 0  # rax
        assert int.from_bytes(prog.text[2:10], "little") == 0x1122334455667788

    def test_mov_negative_imm(self):
        prog = assemble("mov rax, -1")
        assert int.from_bytes(prog.text[2:10], "little") == (1 << 64) - 1

    def test_char_literal(self):
        prog = assemble("mov rax, 'A'")
        assert int.from_bytes(prog.text[2:10], "little") == 65

    def test_mov_reg_reg(self):
        prog = assemble("mov rbx, rcx")
        assert list(prog.text) == [isa.MOVR, 3, 1]

    def test_load_with_disp(self):
        prog = assemble("mov rax, [rbx+16]")
        assert prog.text[0] == isa.LOAD
        assert prog.text[1] == 0
        assert prog.text[2] == 3
        assert int.from_bytes(prog.text[3:7], "little", signed=True) == 16

    def test_store_negative_disp(self):
        prog = assemble("mov [rbp-8], rax")
        assert prog.text[0] == isa.STORE
        assert int.from_bytes(prog.text[2:6], "little", signed=True) == -8

    def test_indexed_load(self):
        prog = assemble("mov rax, [rbx + rcx*8 + 4]")
        assert prog.text[0] == isa.LOADX
        assert prog.text[1:4] == bytes([0, 3, 1])
        assert prog.text[4] == 8
        assert int.from_bytes(prog.text[5:9], "little", signed=True) == 4

    def test_index_without_scale(self):
        prog = assemble("mov rax, [rbx + rcx]")
        assert prog.text[0] == isa.LOADX
        assert prog.text[4] == 1

    def test_byte_forms(self):
        prog = assemble("movb rax, [rbx]\nmovb [rbx], rax")
        assert prog.text[0] == isa.LOADB
        assert prog.text[isa.insn_length(isa.LOADB)] == isa.STOREB

    def test_alu_reg_vs_imm(self):
        prog = assemble("add rax, rbx\nadd rax, 5")
        assert prog.text[0] == isa.ADDRR
        assert prog.text[3] == isa.ADDRI

    def test_simple_ops(self):
        prog = assemble("syscall\nret\nnop\nhlt")
        assert list(prog.text) == [isa.SYSCALL, isa.RET, isa.NOP, isa.HLT]

    def test_aliases(self):
        prog = assemble("cmp rax, rbx\njz out\njnz out\nout: ret")
        assert isa.JE in prog.text
        assert isa.JNE in prog.text


class TestLabels:
    def test_forward_branch(self):
        prog = assemble("jmp target\nnop\ntarget: hlt")
        # rel32 from end of jmp (offset 5) to target (offset 6).
        rel = int.from_bytes(prog.text[1:5], "little", signed=True)
        assert rel == 1

    def test_backward_branch(self):
        prog = assemble("loop: nop\njmp loop")
        rel = int.from_bytes(prog.text[2:6], "little", signed=True)
        assert rel == -6

    def test_label_as_immediate(self):
        prog = assemble(".data\nvar: .quad 7\n.text\nmov rax, var")
        assert int.from_bytes(prog.text[2:10], "little") == DATA_BASE

    def test_entry_defaults_to_text_base(self):
        assert assemble("nop").entry == CODE_BASE

    def test_start_symbol_used_as_entry(self):
        prog = assemble("helper: ret\n_start: hlt")
        assert prog.entry == prog.symbols["_start"]
        assert prog.entry == CODE_BASE + 1

    def test_label_on_same_line_as_insn(self):
        prog = assemble("a: nop\nb: jmp a")
        assert prog.symbols["b"] == CODE_BASE + 1

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblyError, match="duplicate"):
            assemble("x: nop\nx: nop")

    def test_unknown_label_rejected(self):
        with pytest.raises(AssemblyError, match="unknown symbol"):
            assemble("jmp nowhere")

    def test_label_at_section_end(self):
        prog = assemble("nop\nend:")
        assert prog.symbols["end"] == CODE_BASE + 1


class TestDirectives:
    def test_quad(self):
        prog = assemble(".data\n.quad 1, 2, -1")
        assert len(prog.data) == 24
        assert int.from_bytes(prog.data[16:24], "little") == (1 << 64) - 1

    def test_quad_with_label_value(self):
        prog = assemble(".data\ntable: .quad table")
        assert int.from_bytes(prog.data[0:8], "little") == DATA_BASE

    def test_byte(self):
        prog = assemble(".data\n.byte 1, 2, 255")
        assert prog.data == b"\x01\x02\xff"

    def test_byte_out_of_range(self):
        with pytest.raises(AssemblyError, match="bad byte"):
            assemble(".data\n.byte 256")

    def test_zero(self):
        prog = assemble(".data\n.zero 100")
        assert prog.data == bytes(100)

    def test_ascii_and_asciz(self):
        prog = assemble('.data\n.ascii "ab"\n.asciz "cd"')
        assert prog.data == b"abcd\x00"

    def test_escape_sequences(self):
        prog = assemble('.data\n.asciz "hi\\n"')
        assert prog.data == b"hi\n\x00"

    def test_sections_interleave(self):
        prog = assemble(".data\na: .quad 1\n.text\nnop\n.data\nb: .quad 2")
        assert prog.symbols["b"] == DATA_BASE + 8

    def test_unknown_directive(self):
        with pytest.raises(AssemblyError, match="unknown directive"):
            assemble(".wat 5")


class TestComments:
    def test_semicolon_and_hash(self):
        prog = assemble("nop ; trailing\n# whole line\nnop # other\n")
        assert len(prog.text) == 2

    def test_blank_lines_skipped(self):
        assert assemble("\n\n  \n").text == b""


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError, match="unknown mnemonic"):
            assemble("frob rax")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError):
            assemble("push rax, rbx")

    def test_mem_to_mem_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("mov [rax], [rbx]")

    def test_imm32_range_checked(self):
        with pytest.raises(AssemblyError, match="out of range"):
            assemble("add rax, 0x100000000")

    def test_line_number_in_error(self):
        with pytest.raises(AssemblyError, match="line 3"):
            assemble("nop\nnop\nbogus rax")

    def test_mem_needs_base(self):
        with pytest.raises(AssemblyError):
            assemble("mov rax, [8]")
