"""Unit tests for the interpreter: semantics of every instruction class."""

import pytest

from repro.cpu.interpreter import DivideError, ExitReason, InvalidOpcodeError
from repro.cpu.registers import MASK64
from repro.mem.faults import PageFaultError
from repro.mem.layout import DATA_BASE

from tests.cpu.conftest import run_asm


def final(source, reg="rax", **kw):
    exit_event, cpu, _ = run_asm(source + "\nhlt", **kw)
    assert exit_event.reason is ExitReason.HLT, exit_event
    return cpu.regs[reg]


class TestDataMovement:
    def test_mov_imm(self):
        assert final("mov rax, 123") == 123

    def test_mov_reg(self):
        assert final("mov rbx, 9\nmov rax, rbx") == 9

    def test_store_load_roundtrip(self):
        src = """
        mov rbx, 0x600000
        mov rcx, 0xdead
        mov [rbx+8], rcx
        mov rax, [rbx+8]
        """
        assert final(src) == 0xDEAD

    def test_byte_store_truncates(self):
        src = """
        mov rbx, 0x600000
        mov rcx, 0x1ff
        movb [rbx], rcx
        movb rax, [rbx]
        """
        assert final(src) == 0xFF

    def test_indexed_addressing(self):
        src = """
        .data
        table: .quad 10, 20, 30
        .text
        mov rbx, table
        mov rcx, 2
        mov rax, [rbx + rcx*8]
        """
        assert final(src) == 30

    def test_indexed_store(self):
        src = """
        mov rbx, 0x600000
        mov rcx, 3
        mov rdx, 77
        mov [rbx + rcx*8 + 8], rdx
        mov rax, [rbx + 32]
        """
        assert final(src) == 77

    def test_lea(self):
        assert final("mov rbx, 100\nlea rax, [rbx+28]") == 128

    def test_lea_indexed(self):
        assert final("mov rbx, 100\nmov rcx, 4\nlea rax, [rbx+rcx*8+4]") == 136


class TestArithmetic:
    def test_add(self):
        assert final("mov rax, 2\nadd rax, 3") == 5

    def test_add_wraps(self):
        assert final("mov rax, -1\nadd rax, 2") == 1

    def test_sub(self):
        assert final("mov rax, 10\nsub rax, 4") == 6

    def test_sub_underflow_wraps(self):
        assert final("mov rax, 0\nsub rax, 1") == MASK64

    def test_imul(self):
        assert final("mov rax, 7\nmov rbx, -3\nimul rax, rbx") == (-21) & MASK64

    def test_imul_imm(self):
        assert final("mov rax, 6\nimul rax, 7") == 42

    def test_logic(self):
        assert final("mov rax, 0b1100\nand rax, 0b1010") == 0b1000
        assert final("mov rax, 0b1100\nor rax, 0b1010") == 0b1110
        assert final("mov rax, 0b1100\nxor rax, 0b1010") == 0b0110

    def test_shifts(self):
        assert final("mov rax, 3\nshl rax, 4") == 48
        assert final("mov rax, 48\nshr rax, 4") == 3

    def test_neg_not(self):
        assert final("mov rax, 5\nneg rax") == (-5) & MASK64
        assert final("mov rax, 0\nnot rax") == MASK64

    def test_inc_dec(self):
        assert final("mov rax, 5\ninc rax\ninc rax\ndec rax") == 6

    def test_udiv_umod(self):
        assert final("mov rax, 17\nmov rbx, 5\nudiv rax, rbx") == 3
        assert final("mov rax, 17\nmov rbx, 5\numod rax, rbx") == 2

    def test_divide_by_zero_faults(self):
        exit_event, _, _ = run_asm("mov rax, 1\nmov rbx, 0\nudiv rax, rbx\nhlt")
        assert exit_event.reason is ExitReason.FAULT
        assert isinstance(exit_event.fault, DivideError)


class TestBranches:
    @pytest.mark.parametrize(
        "a,b,jcc,taken",
        [
            (1, 1, "je", True), (1, 2, "je", False),
            (1, 2, "jne", True), (1, 1, "jne", False),
            (1, 2, "jl", True), (2, 1, "jl", False), (-1, 1, "jl", True),
            (1, 1, "jle", True), (2, 1, "jle", False),
            (2, 1, "jg", True), (1, 1, "jg", False), (1, -1, "jg", True),
            (1, 1, "jge", True), (-2, -1, "jge", False),
            (1, 2, "jb", True), (-1, 1, "jb", False),  # unsigned: -1 is huge
            (2, 1, "jae", True), (1, 2, "jae", False),
        ],
    )
    def test_conditional_branches(self, a, b, jcc, taken):
        src = f"""
        mov rcx, {a}
        mov rdx, {b}
        mov rax, 0
        cmp rcx, rdx
        {jcc} yes
        jmp done
        yes: mov rax, 1
        done:
        """
        assert final(src) == (1 if taken else 0)

    def test_test_sets_zf(self):
        src = """
        mov rcx, 4
        mov rdx, 3
        mov rax, 0
        test rcx, rdx
        jne done
        mov rax, 1
        done:
        """
        assert final(src) == 1

    def test_loop(self):
        src = """
        mov rax, 0
        mov rcx, 10
        loop:
        add rax, rcx
        dec rcx
        cmp rcx, 0
        jne loop
        """
        assert final(src) == 55


class TestStackAndCalls:
    def test_push_pop(self):
        assert final("mov rbx, 42\npush rbx\npop rax") == 42

    def test_push_moves_rsp_down(self):
        src = "mov rbx, rsp\npush rbx\nmov rax, rbx\nsub rax, rsp"
        assert final(src) == 8

    def test_call_ret(self):
        src = """
        _start:
        call fn
        add rax, 1
        hlt
        fn:
        mov rax, 10
        ret
        """
        exit_event, cpu, _ = run_asm(src)
        assert exit_event.reason is ExitReason.HLT
        assert cpu.regs.rax == 11

    def test_nested_calls(self):
        src = """
        _start:
        call a
        hlt
        a:
        call b
        add rax, 1
        ret
        b:
        mov rax, 100
        ret
        """
        exit_event, cpu, _ = run_asm(src)
        assert cpu.regs.rax == 101

    def test_recursion_factorial(self):
        src = """
        _start:
        mov rdi, 10
        call fact
        hlt
        fact:
        cmp rdi, 1
        jg rec
        mov rax, 1
        ret
        rec:
        push rdi
        sub rdi, 1
        call fact
        pop rdi
        imul rax, rdi
        ret
        """
        exit_event, cpu, _ = run_asm(src)
        assert cpu.regs.rax == 3628800


class TestExits:
    def test_syscall_exit(self):
        exit_event, cpu, _ = run_asm("mov rax, 60\nsyscall\nhlt")
        assert exit_event.reason is ExitReason.SYSCALL
        assert cpu.regs.rax == 60

    def test_rip_points_after_syscall(self):
        exit_event, cpu, space = run_asm("syscall\nmov rax, 7\nhlt")
        assert exit_event.reason is ExitReason.SYSCALL
        # Resuming runs the rest of the program.
        resumed = __import__("repro.cpu", fromlist=["Interpreter"])
        cont = cpu.run()
        assert cont.reason is ExitReason.HLT
        assert cpu.regs.rax == 7

    def test_step_limit(self):
        exit_event, cpu, _ = run_asm("loop: jmp loop", max_steps=50)
        assert exit_event.reason is ExitReason.STEP_LIMIT
        assert exit_event.steps == 50

    def test_unmapped_access_faults(self):
        exit_event, _, _ = run_asm("mov rbx, 0x123450000\nmov rax, [rbx]\nhlt")
        assert exit_event.reason is ExitReason.FAULT
        assert isinstance(exit_event.fault, PageFaultError)

    def test_write_to_code_faults(self):
        exit_event, _, _ = run_asm(
            "mov rbx, 0x400000\nmov rcx, 1\nmov [rbx], rcx\nhlt"
        )
        assert exit_event.reason is ExitReason.FAULT

    def test_execute_data_faults(self):
        exit_event, _, _ = run_asm("mov rbx, 0x600000\njmp next\nnext: hlt",
                                   setup=_jump_to_data)
        assert exit_event.reason is ExitReason.FAULT

    def test_invalid_opcode(self):
        def poke(cpu, space, program):
            pass

        exit_event, cpu, space = run_asm("nop\nhlt")
        # Directly decode garbage: write an undefined opcode into data and
        # point rip at an RX page containing 0xFF is not constructible via
        # the assembler, so decode from a handwritten program instead.
        from repro.cpu import Interpreter
        from repro.mem import AddressSpace, FramePool, Permission

        pool = FramePool()
        s = AddressSpace(pool)
        s.map_region(0x400000, 4096, Permission.RX, data=b"\xff")
        cpu2 = Interpreter(s)
        cpu2.regs.rip = 0x400000
        ev = cpu2.run()
        assert ev.reason is ExitReason.FAULT
        assert isinstance(ev.fault, InvalidOpcodeError)

    def test_instruction_count_accumulates(self):
        exit_event, cpu, _ = run_asm("nop\nnop\nnop\nhlt")
        assert cpu.instructions_executed == 4


def _jump_to_data(cpu, space, program):
    cpu.regs.rip = DATA_BASE


class TestCowIntegration:
    def test_guest_writes_cow_after_fork(self):
        src = """
        mov rbx, 0x600000
        mov rcx, 111
        mov [rbx], rcx
        syscall          ; pause so the host can fork
        mov rcx, 222
        mov [rbx], rcx
        hlt
        """
        exit_event, cpu, space = run_asm(src)
        assert exit_event.reason is ExitReason.SYSCALL
        frozen = cpu.regs.frozen()
        snap_space = space.fork_cow()

        # Continue original: writes 222.
        cont = cpu.run()
        assert cont.reason is ExitReason.HLT
        assert space.read_u64(0x600000) == 222
        # Snapshot still sees 111.
        assert snap_space.read_u64(0x600000) == 111

        # Resume from the snapshot in a second interpreter: also writes 222
        # into its own fork, never touching snap_space.
        from repro.cpu import Interpreter

        replay_space = snap_space.fork_cow()
        cpu2 = Interpreter(replay_space)
        cpu2.regs.load(frozen)
        again = cpu2.run()
        assert again.reason is ExitReason.HLT
        assert replay_space.read_u64(0x600000) == 222
        assert snap_space.read_u64(0x600000) == 111
