"""Unit tests for the register file."""

from repro.cpu import RegisterFile
from repro.cpu.registers import MASK64, REG_NAMES


class TestAccess:
    def test_starts_zeroed(self):
        regs = RegisterFile()
        assert all(regs[name] == 0 for name in REG_NAMES)
        assert regs.rip == 0

    def test_name_and_index_access_agree(self):
        regs = RegisterFile()
        regs["rbx"] = 42
        assert regs[3] == 42

    def test_wraps_to_64_bits(self):
        regs = RegisterFile()
        regs["rax"] = 1 << 70
        assert regs["rax"] == (1 << 70) & MASK64

    def test_properties(self):
        regs = RegisterFile()
        regs.rax = 7
        regs.rsp = 0x1000
        assert regs["rax"] == 7
        assert regs["rsp"] == 0x1000
        regs["rdi"], regs["rsi"], regs["rdx"] = 1, 2, 3
        assert (regs.rdi, regs.rsi, regs.rdx) == (1, 2, 3)


class TestFrozen:
    def test_roundtrip(self):
        regs = RegisterFile()
        for i, name in enumerate(REG_NAMES):
            regs[name] = i * 1000
        regs.rip = 0xABCD
        regs.zf = regs.cf = True
        frozen = regs.frozen()

        other = RegisterFile()
        other.load(frozen)
        assert other.frozen() == frozen
        assert other["r15"] == 15000

    def test_frozen_is_immutable_value(self):
        regs = RegisterFile()
        regs.rax = 1
        frozen = regs.frozen()
        regs.rax = 2
        assert frozen.gprs[0] == 1

    def test_load_detaches_from_source(self):
        regs = RegisterFile()
        frozen = regs.frozen()
        other = RegisterFile()
        other.load(frozen)
        other.rax = 99
        assert regs.rax == 0
