"""Tests for search strategies."""
