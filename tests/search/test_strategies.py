"""Unit tests for the search-strategy implementations."""

import pytest

from repro.search import (
    AStarStrategy,
    BestFirstStrategy,
    BFSStrategy,
    CoverageStrategy,
    DFSStrategy,
    Extension,
    ExternalStrategy,
    RandomStrategy,
    SMAStarStrategy,
    get_strategy,
)


def batch(candidate, n, depth=0, hints=None):
    return [
        Extension(
            candidate,
            number=i,
            hint=hints[i] if hints else None,
            depth=depth,
        )
        for i in range(n)
    ]


def drain(strategy):
    out = []
    while True:
        ext = strategy.next()
        if ext is None:
            return out
        out.append(ext)


class TestDFS:
    def test_sibling_order_is_ascending(self):
        s = DFSStrategy()
        s.add(batch("c", 3))
        assert [e.number for e in drain(s)] == [0, 1, 2]

    def test_lifo_across_batches(self):
        s = DFSStrategy()
        s.add(batch("a", 2))
        first = s.next()
        assert first.number == 0
        s.add(batch("b", 2, depth=1))  # children of the node just expanded
        order = [(e.candidate, e.number) for e in drain(s)]
        assert order == [("b", 0), ("b", 1), ("a", 1)]

    def test_empty_returns_none(self):
        assert DFSStrategy().next() is None


class TestBFS:
    def test_fifo_across_batches(self):
        s = BFSStrategy()
        s.add(batch("a", 2))
        s.add(batch("b", 1, depth=1))
        order = [(e.candidate, e.number) for e in drain(s)]
        assert order == [("a", 0), ("a", 1), ("b", 0)]


class TestAStar:
    def test_orders_by_f_cost(self):
        s = AStarStrategy()
        s.add(batch("shallow", 2, depth=1, hints=[5.0, 1.0]))
        s.add(batch("deep", 1, depth=4, hints=[0.0]))
        order = [(e.candidate, e.number) for e in drain(s)]
        # f: shallow/1 = 2.0, shallow/0 = 6.0, deep/0 = 4.0
        assert order == [("shallow", 1), ("deep", 0), ("shallow", 0)]

    def test_missing_hint_means_zero(self):
        s = AStarStrategy()
        s.add(batch("x", 1, depth=3))
        s.add(batch("y", 1, depth=1))
        assert drain(s)[0].candidate == "y"

    def test_tie_break_is_fifo(self):
        s = AStarStrategy()
        s.add(batch("a", 1, depth=1, hints=[1.0]))
        s.add(batch("b", 1, depth=1, hints=[1.0]))
        assert [e.candidate for e in drain(s)] == ["a", "b"]


class TestBestFirst:
    def test_ignores_depth(self):
        s = BestFirstStrategy()
        s.add(batch("deep", 1, depth=100, hints=[1.0]))
        s.add(batch("shallow", 1, depth=0, hints=[2.0]))
        assert drain(s)[0].candidate == "deep"


class TestSMAStar:
    def test_respects_capacity(self):
        s = SMAStarStrategy(capacity=3)
        s.add(batch("c", 10, hints=list(range(10))))
        assert len(s) == 3
        assert s.stats.dropped == 7

    def test_keeps_best(self):
        s = SMAStarStrategy(capacity=2)
        s.add(batch("c", 5, hints=[5.0, 1.0, 4.0, 0.5, 3.0]))
        kept = [e.number for e in drain(s)]
        assert kept == [3, 1]  # hints 0.5 and 1.0

    def test_forgotten_backup(self):
        s = SMAStarStrategy(capacity=2)
        s.add(batch("c", 3, hints=[1.0, 2.0, 3.0]))
        assert s.forgotten == {"c": 3.0}

    def test_forgotten_keeps_minimum(self):
        s = SMAStarStrategy(capacity=2)
        s.add(batch("c", 4, hints=[1.0, 2.0, 4.0, 3.0]))
        assert s.forgotten == {"c": 3.0}

    def test_tiny_capacity_rejected(self):
        with pytest.raises(ValueError):
            SMAStarStrategy(capacity=1)


class TestRandom:
    def test_deterministic_under_seed(self):
        a = RandomStrategy(seed=7)
        b = RandomStrategy(seed=7)
        a.add(batch("c", 10))
        b.add(batch("c", 10))
        assert [e.number for e in drain(a)] == [e.number for e in drain(b)]

    def test_returns_everything(self):
        s = RandomStrategy(seed=1)
        s.add(batch("c", 10))
        assert sorted(e.number for e in drain(s)) == list(range(10))


class TestCoverage:
    def test_novel_locations_first(self):
        s = CoverageStrategy(coverage_key=lambda e: e.candidate)
        s.add(batch("seen", 1))
        first = s.next()  # marks "seen" as covered
        assert first.candidate == "seen"
        s.add(batch("seen", 1))
        s.add(batch("fresh", 1))
        assert s.next().candidate == "fresh"


class TestExternal:
    def test_nothing_runs_until_selected(self):
        s = ExternalStrategy()
        s.add(batch("c", 3))
        assert s.next() is None
        assert len(s) == 3

    def test_select_specific(self):
        s = ExternalStrategy()
        exts = batch("c", 3)
        s.add(exts)
        s.select(exts[2].seq)
        assert s.next().number == 2

    def test_select_all_fifo(self):
        s = ExternalStrategy()
        s.add(batch("c", 3))
        s.select_all()
        assert [e.number for e in drain(s)] == [0, 1, 2]


class TestRegistry:
    @pytest.mark.parametrize(
        "name", ["dfs", "bfs", "astar", "sma", "best", "random", "coverage", "external"]
    )
    def test_all_names_resolve(self, name):
        assert get_strategy(name).name == name

    def test_case_insensitive(self):
        assert get_strategy("DFS").name == "dfs"

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            get_strategy("quantum")

    def test_kwargs_forwarded(self):
        assert get_strategy("sma", capacity=5).capacity == 5


class TestStats:
    def test_counters(self):
        s = DFSStrategy()
        s.add(batch("c", 4))
        s.next()
        assert s.stats.added == 4
        assert s.stats.popped == 1
        assert s.stats.peak_frontier == 4

    def test_drain_counts_dropped(self):
        s = DFSStrategy()
        s.add(batch("c", 4))
        s.drain()
        assert s.stats.dropped == 4
        assert len(s) == 0
