"""Tests for the beam-search strategy."""

import pytest

from repro import ReplayEngine
from repro.search import BeamStrategy, Extension, get_strategy


def batch(candidate, n, depth=0, hints=None):
    return [
        Extension(candidate, number=i,
                  hint=hints[i] if hints else None, depth=depth)
        for i in range(n)
    ]


def drain(strategy):
    out = []
    while True:
        ext = strategy.next()
        if ext is None:
            return out
        out.append(ext)


class TestBeamStrategy:
    def test_width_enforced_per_depth(self):
        beam = BeamStrategy(width=2)
        beam.add(batch("a", 5, depth=0, hints=[5.0, 1.0, 4.0, 0.5, 3.0]))
        assert len(beam) == 2
        assert beam.stats.dropped == 3
        kept = sorted(e.number for e in drain(beam))
        assert kept == [1, 3]  # the two best hints

    def test_deeper_levels_first(self):
        beam = BeamStrategy(width=4)
        beam.add(batch("shallow", 1, depth=0, hints=[0.0]))
        beam.add(batch("deep", 1, depth=3, hints=[9.0]))
        assert drain(beam)[0].candidate == "deep"

    def test_best_hint_first_within_level(self):
        beam = BeamStrategy(width=4)
        beam.add(batch("c", 3, depth=1, hints=[3.0, 1.0, 2.0]))
        assert [e.number for e in drain(beam)] == [1, 2, 0]

    def test_separate_levels_have_separate_budgets(self):
        beam = BeamStrategy(width=1)
        beam.add(batch("a", 2, depth=0, hints=[1.0, 2.0]))
        beam.add(batch("b", 2, depth=1, hints=[1.0, 2.0]))
        assert len(beam) == 2

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            BeamStrategy(width=0)

    def test_registry(self):
        assert get_strategy("beam", width=5).width == 5

    def test_beam_solves_puzzle_with_good_hints(self):
        from repro.workloads.puzzle8 import puzzle_guest, scramble

        start = scramble(10, seed=4)
        strategy = BeamStrategy(width=16)
        engine = ReplayEngine(strategy, max_solutions=1,
                              max_evaluations=50_000)
        result = engine.run(puzzle_guest, start, 14, True)
        assert result.first is not None
        assert strategy.stats.peak_frontier <= 16 * 14 + 16

    def test_beam_is_incomplete_by_design(self):
        # Width 1 with adversarial hints prunes the only solution.
        def guest(sys):
            x = sys.guess(2, hints=[0.0, 1.0])  # hint prefers the dead end
            if x == 0:
                sys.fail()
            return "found"

        strategy = BeamStrategy(width=1)
        result = ReplayEngine(strategy).run(guest)
        assert result.solution_values == []
        assert strategy.stats.dropped == 1
