"""Property tests: PrefixTask journal serialization round-trips exactly.

Resume correctness rests on ``from_record(to_record(t)) == t`` holding
for *every* task the engine can construct — a task that drifts through
the journal would replay the wrong subtree.  Hypothesis searches the
space; a JSON encode/decode leg is included because journal records
pass through ``json.dumps``/``loads``, not just Python dicts.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.journal import decode_record, encode_record
from repro.search.shard import PrefixTask, TaskFrontier

# Depths and fan-outs beyond anything the engine produces in practice,
# but bounded so shrinking stays readable.
_paths = st.integers(min_value=0, max_value=32).flatmap(
    lambda depth: st.tuples(
        st.tuples(*[st.integers(0, 63)] * depth),
        st.tuples(*[st.integers(1, 64)] * depth),
    )
)

tasks = st.builds(
    lambda path_fanouts, hint, attempt, span: PrefixTask(
        prefix=path_fanouts[0], fanouts=path_fanouts[1],
        hint=hint, attempt=attempt, span=span,
    ),
    _paths,
    st.one_of(st.none(), st.floats(allow_nan=False, allow_infinity=False)),
    st.integers(min_value=0, max_value=10),
    st.one_of(st.none(), st.integers(min_value=0, max_value=2**31)),
)


class TestTaskRoundTrip:
    @given(task=tasks)
    def test_record_roundtrip_is_exact(self, task):
        assert PrefixTask.from_record(task.to_record()) == task

    @given(task=tasks)
    def test_roundtrip_through_json(self, task):
        wire = json.loads(json.dumps(task.to_record()))
        rebuilt = PrefixTask.from_record(wire)
        assert rebuilt == task
        assert rebuilt.key() == task.key()
        assert rebuilt.depth == task.depth

    @given(task=tasks)
    def test_roundtrip_through_journal_record(self, task):
        line = encode_record(
            {"epoch": 0, "type": "dispatch", "task": task.to_record()}
        )
        record = decode_record(line)
        assert record is not None
        assert PrefixTask.from_record(record["task"]) == task

    @given(task=tasks, bumps=st.integers(min_value=1, max_value=5))
    def test_retry_bumps_survive_serialization(self, task, bumps):
        for _ in range(bumps):
            task = task.retried()
        rebuilt = PrefixTask.from_record(task.to_record())
        assert rebuilt.attempt == task.attempt
        assert rebuilt.key() == task.key()

    @given(task=tasks)
    def test_minimal_records_get_defaults(self, task):
        # A journal written by a minimal producer (or an older version)
        # may omit optional fields; recovery must still build a task.
        slim = {"prefix": list(task.prefix), "fanouts": list(task.fanouts)}
        rebuilt = PrefixTask.from_record(slim)
        assert rebuilt.key() == task.key()
        assert rebuilt.attempt == 0
        assert rebuilt.hint is None and rebuilt.span is None


class TestFrontierRebuild:
    @settings(max_examples=50)
    @given(batch=st.lists(tasks, max_size=20), order=st.sampled_from(
        ["dfs", "bfs"]
    ))
    def test_rebuilt_frontier_drains_identically(self, batch, order):
        """A frontier rebuilt from journal records replays the original's
        exact drain order — resume does not reshuffle the search."""
        original = TaskFrontier(order=order)
        original.extend(batch)
        rebuilt = TaskFrontier(order=order)
        rebuilt.extend(
            PrefixTask.from_record(t.to_record()) for t in batch
        )
        while original:
            assert rebuilt.pop() == original.pop()
        assert not rebuilt
