"""Property tests: PrefixTask journal serialization round-trips exactly.

Resume correctness rests on ``from_record(to_record(t)) == t`` holding
for *every* task the engine can construct — a task that drifts through
the journal would replay the wrong subtree.  Hypothesis searches the
space; a JSON encode/decode leg is included because journal records
pass through ``json.dumps``/``loads``, not just Python dicts.

The same discipline applies to the recorder's ``NondetEvent``: a
recorded outcome that drifts through the journal or the replay-log file
would feed the guest different bytes on replay — a silent divergence.
So events must round-trip exactly, and any tampering or truncation of a
replay-log *file* must raise, for every log Hypothesis can construct.
"""

import json
import os
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ReplayDivergenceError
from repro.core.journal import decode_record, encode_record
from repro.core.recorder import NONDET_KINDS, NondetEvent, NondetLog
from repro.search.shard import PrefixTask, TaskFrontier

# Depths and fan-outs beyond anything the engine produces in practice,
# but bounded so shrinking stays readable.
_paths = st.integers(min_value=0, max_value=32).flatmap(
    lambda depth: st.tuples(
        st.tuples(*[st.integers(0, 63)] * depth),
        st.tuples(*[st.integers(1, 64)] * depth),
    )
)

tasks = st.builds(
    lambda path_fanouts, hint, attempt, span: PrefixTask(
        prefix=path_fanouts[0], fanouts=path_fanouts[1],
        hint=hint, attempt=attempt, span=span,
    ),
    _paths,
    st.one_of(st.none(), st.floats(allow_nan=False, allow_infinity=False)),
    st.integers(min_value=0, max_value=10),
    st.one_of(st.none(), st.integers(min_value=0, max_value=2**31)),
)


class TestTaskRoundTrip:
    @given(task=tasks)
    def test_record_roundtrip_is_exact(self, task):
        assert PrefixTask.from_record(task.to_record()) == task

    @given(task=tasks)
    def test_roundtrip_through_json(self, task):
        wire = json.loads(json.dumps(task.to_record()))
        rebuilt = PrefixTask.from_record(wire)
        assert rebuilt == task
        assert rebuilt.key() == task.key()
        assert rebuilt.depth == task.depth

    @given(task=tasks)
    def test_roundtrip_through_journal_record(self, task):
        line = encode_record(
            {"epoch": 0, "type": "dispatch", "task": task.to_record()}
        )
        record = decode_record(line)
        assert record is not None
        assert PrefixTask.from_record(record["task"]) == task

    @given(task=tasks, bumps=st.integers(min_value=1, max_value=5))
    def test_retry_bumps_survive_serialization(self, task, bumps):
        for _ in range(bumps):
            task = task.retried()
        rebuilt = PrefixTask.from_record(task.to_record())
        assert rebuilt.attempt == task.attempt
        assert rebuilt.key() == task.key()

    @given(task=tasks)
    def test_minimal_records_get_defaults(self, task):
        # A journal written by a minimal producer (or an older version)
        # may omit optional fields; recovery must still build a task.
        slim = {"prefix": list(task.prefix), "fanouts": list(task.fanouts)}
        rebuilt = PrefixTask.from_record(slim)
        assert rebuilt.key() == task.key()
        assert rebuilt.attempt == 0
        assert rebuilt.hint is None and rebuilt.span is None


events = st.builds(
    NondetEvent,
    kind=st.sampled_from(NONDET_KINDS),
    path=st.lists(st.integers(0, 63), max_size=8).map(tuple),
    seq=st.integers(min_value=0, max_value=255),
    payload=st.binary(max_size=64),
    pc=st.one_of(st.none(), st.integers(min_value=0, max_value=2**48)),
)

# Unique keys so a log holds every drawn event (first-write-wins).
event_lists = st.lists(events, max_size=12, unique_by=lambda e: e.key())


class TestNondetEventRoundTrip:
    @given(event=events)
    def test_record_roundtrip_is_exact(self, event):
        assert NondetEvent.from_record(event.to_record()) == event

    @given(event=events)
    def test_roundtrip_through_json(self, event):
        wire = json.loads(json.dumps(event.to_record()))
        rebuilt = NondetEvent.from_record(wire)
        assert rebuilt == event and rebuilt.key() == event.key()

    @given(batch=event_lists)
    def test_roundtrip_through_journal_record(self, batch):
        """Events ride the journal as ``nondet`` records."""
        line = encode_record({
            "epoch": 0, "type": "nondet",
            "events": [e.to_record() for e in batch],
        })
        record = decode_record(line)
        assert record is not None
        rebuilt = NondetLog()
        rebuilt.merge_records(record["events"])
        assert rebuilt == NondetLog(batch)

    @given(batch=event_lists)
    def test_roundtrip_through_replay_log_file(self, batch):
        log = NondetLog(batch)
        fd, path = tempfile.mkstemp(suffix=".replay")
        os.close(fd)
        try:
            assert log.save(path, program="prop") == len(batch)
            assert NondetLog.load(path, program="prop") == log
        finally:
            os.unlink(path)


class TestReplayLogTamperProperty:
    """*Any* byte flip or truncation of a saved log must refuse to load."""

    def saved(self, batch):
        fd, path = tempfile.mkstemp(suffix=".replay")
        os.close(fd)
        NondetLog(batch).save(path, program="prop")
        with open(path, "rb") as fh:
            return path, bytearray(fh.read())

    @given(batch=event_lists, offset=st.integers(min_value=0),
           flip=st.integers(min_value=1, max_value=255))
    def test_any_byte_flip_is_refused(self, batch, offset, flip):
        path, blob = self.saved(batch)
        try:
            offset %= len(blob)
            if blob[offset] == 0x0A or blob[offset] ^ flip == 0x0A:
                return  # newline edits change line structure, not bytes
            blob[offset] ^= flip
            with open(path, "wb") as fh:
                fh.write(blob)
            with pytest.raises(ReplayDivergenceError):
                NondetLog.load(path)
        finally:
            os.unlink(path)

    @given(batch=event_lists, cut=st.integers(min_value=0))
    def test_any_truncation_is_refused(self, batch, cut):
        path, blob = self.saved(batch)
        try:
            # Cut at least 2 bytes so record content is lost (stripping
            # only the final newline leaves a byte-equivalent log).
            cut = 2 + cut % (len(blob) - 2)
            with open(path, "wb") as fh:
                fh.write(blob[: len(blob) - cut])
            with pytest.raises(ReplayDivergenceError):
                NondetLog.load(path)
        finally:
            os.unlink(path)

    @given(batch=st.lists(events, min_size=1, max_size=12,
                          unique_by=lambda e: e.key()),
           drop=st.integers(min_value=0))
    def test_any_dropped_line_is_refused(self, batch, drop):
        path, blob = self.saved(batch)
        try:
            lines = bytes(blob).splitlines(keepends=True)
            del lines[drop % len(lines)]
            with open(path, "wb") as fh:
                fh.write(b"".join(lines))
            with pytest.raises(ReplayDivergenceError):
                NondetLog.load(path)
        finally:
            os.unlink(path)


class TestFrontierRebuild:
    @settings(max_examples=50)
    @given(batch=st.lists(tasks, max_size=20), order=st.sampled_from(
        ["dfs", "bfs"]
    ))
    def test_rebuilt_frontier_drains_identically(self, batch, order):
        """A frontier rebuilt from journal records replays the original's
        exact drain order — resume does not reshuffle the search."""
        original = TaskFrontier(order=order)
        original.extend(batch)
        rebuilt = TaskFrontier(order=order)
        rebuilt.extend(
            PrefixTask.from_record(t.to_record()) for t in batch
        )
        while original:
            assert rebuilt.pop() == original.pop()
        assert not rebuilt
