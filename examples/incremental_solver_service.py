#!/usr/bin/env python3
"""The multi-path incremental SAT solver service of §3.2.

A client solves a base problem p once, receives an opaque reference, and
then branches it: several "what if" extensions of the same solved state,
each inheriting p's learned clauses — the snapshot pattern applied to
solver state.  A from-scratch service runs the same request stream for
comparison.

Run:  python examples/incremental_solver_service.py
"""

import time

from repro.sat.gen import incremental_batches
from repro.sat.service import IncrementalSolverService


def drive(service: IncrementalSolverService, base, batches) -> float:
    start = time.perf_counter()
    outcome = service.solve(base)
    print(f"   solve(p):        sat={outcome.sat}  ref={outcome.ref}  "
          f"conflicts={outcome.conflicts}")
    parent = outcome.ref
    for i, batch in enumerate(batches):
        outcome = service.extend(parent, batch)
        print(f"   extend(#{parent}, q{i + 1}): sat={outcome.sat}  "
              f"ref={outcome.ref}  conflicts={outcome.conflicts}  "
              f"inherited learned clauses={outcome.inherited_learned}")
        # Branch: every extension builds on the SAME parent, the way a
        # what-if analysis would.  Siblings never interfere.
    return time.perf_counter() - start


def main() -> None:
    base, batches = incremental_batches(
        num_vars=120, base_clauses=504, batch_clauses=12, batches=4, seed=42
    )
    print(f"base problem p: {base.num_vars} vars, {len(base.clauses)} clauses"
          f" (3-SAT at the phase transition); {len(batches)} what-if batches")

    print("\nIncremental service (solver-state snapshots):")
    inc = IncrementalSolverService(incremental=True)
    t_inc = drive(inc, base, batches)

    print("\nFrom-scratch service (no state reuse):")
    scr = IncrementalSolverService(incremental=False)
    t_scr = drive(scr, base, batches)

    print(f"\nconflicts: incremental={inc.total_conflicts:,} "
          f"scratch={scr.total_conflicts:,}")
    print(f"wall time: incremental={t_inc:.2f}s scratch={t_scr:.2f}s "
          f"({t_scr / max(t_inc, 1e-9):.1f}x speedup)")


if __name__ == "__main__":
    main()
