#!/usr/bin/env python3
"""Externally controlled search (§3.1's last strategy class).

"We can support externally controlled search strategies where an
external entity can generate new extension steps for any given partial
candidates, and schedule their execution."

Here the external entity is this script: it watches the pending
extension steps of a 5-queens search and schedules them with a custom
policy (deepest-first, ties broken right-to-left) that no built-in
strategy implements — while every unexplored candidate stays alive as a
lightweight snapshot, restorable whenever the controller comes back.

Run:  python examples/external_search.py
"""

from repro.core.interactive import InteractiveSearch
from repro.workloads.nqueens import nqueens_asm


def main() -> None:
    with InteractiveSearch(nqueens_asm(5)) as search:
        print("booted: root candidate fanned out "
              f"{len(search.pending())} extensions\n")

        steps = 0
        while search.pending():
            # A deliberately exotic external policy.
            choice = max(search.pending(), key=lambda p: (p.depth, p.number))
            outcome = search.run(choice.seq)
            steps += 1
            if outcome.solution is not None:
                _, board = outcome.solution.value
                print(f"step {steps:>3}: path {choice.path + (choice.number,)}"
                      f" completed -> board {board.strip()}")
            elif outcome.outcome == "guess" and steps <= 5:
                print(f"step {steps:>3}: path {choice.path + (choice.number,)}"
                      f" hit a new choice point ({len(outcome.created)} "
                      f"extensions created)")

        print(f"\nexplored {steps} extension steps under external control")
        print(f"solutions found: {len(search.solutions)} (expected 10)")
        live = search._engine.manager.live_snapshots
        print(f"live snapshots at the end: {live}")


if __name__ == "__main__":
    main()
