#!/usr/bin/env python3
"""One guest, many schedulers (§3.1's flexible search strategies).

The 8-puzzle guest never changes; swapping the strategy object changes
how the snapshot tree is explored.  A* consumes the goal-distance hints
of the extended guess call and crushes BFS on evaluations while staying
optimal.

Run:  python examples/strategy_zoo.py
"""

from repro import ReplayEngine
from repro.workloads.puzzle8 import manhattan, puzzle_guest, scramble


def main() -> None:
    start = scramble(steps=14, seed=3)
    print("start board (0 = blank):")
    for row in range(3):
        print("   ", start[3 * row : 3 * row + 3])
    print(f"manhattan distance to goal: {manhattan(start)}\n")

    header = f"{'strategy':>10} {'hints':>10} {'moves':>6} {'evaluations':>12}"
    print(header)
    print("-" * len(header))
    for strategy, hints in (("astar", True), ("best", True), ("bfs", False),
                            ("dfs", False)):
        engine = ReplayEngine(
            strategy, max_solutions=1, max_evaluations=300_000
        )
        result = engine.run(puzzle_guest, start, 16, hints)
        if result.first is None:
            print(f"{strategy:>10} {'yes' if hints else 'no':>10} "
                  f"{'--':>6} {result.stats.evaluations:>12,}  (no solution "
                  f"within budget)")
            continue
        moves = len(result.first.value) - 1
        print(f"{strategy:>10} {'yes' if hints else 'no':>10} {moves:>6} "
              f"{result.stats.evaluations:>12,}")
    print("\nA* and BFS find minimum-length solutions; A* needs a fraction "
          "of the evaluations.\nDFS returns fast but its solution may be "
          "longer — policy, not mechanism.")


if __name__ == "__main__":
    main()
