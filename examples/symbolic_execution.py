#!/usr/bin/env python3
"""Symbolic execution with snapshot-based state forking (the §2 use).

Explores a password-check binary and a buggy division routine, then
contrasts the two state-forking substrates (lightweight snapshots vs
S2E-style software COW) on a branchy guest with a fat address space.

Run:  python examples/symbolic_execution.py
"""

import time

from repro.symex import SymbolicExplorer
from repro.symex.programs import branch_tree, div_by_zero_bug, password_check


def main() -> None:
    print("=" * 64)
    print("1. Cracking a password check (the classic KLEE demo)")
    print("=" * 64)
    src, symbolic = password_check(b"hot13")
    result = SymbolicExplorer(src, symbolic).run()
    accepting = [p for p in result.paths if p.status == 1]
    recovered = bytes(
        accepting[0].example[f"pw{i}"] for i in range(5)
    )
    print(f"   paths explored: {result.path_count} "
          f"(1 accepting, {result.path_count - 1} rejecting)")
    print(f"   recovered secret: {recovered!r}")

    print()
    print("=" * 64)
    print("2. Finding a divide-by-zero with a concrete witness")
    print("=" * 64)
    src, symbolic = div_by_zero_bug()
    result = SymbolicExplorer(src, symbolic).run()
    for bug in result.bugs:
        print(f"   {bug.kind} at pc={bug.pc:#x}, witness input: {bug.example}")

    print()
    print("=" * 64)
    print("3. Fork-substrate shoot-out (2 MiB state, 64 paths)")
    print("=" * 64)
    src, symbolic = branch_tree(6, writes_per_level=2)
    for backend in ("snapshot", "swcow"):
        start = time.perf_counter()
        result = SymbolicExplorer(
            src, symbolic, backend=backend, ballast=512 * 4096
        ).run()
        elapsed = time.perf_counter() - start
        extra = result.extra
        print(
            f"   {backend:>8}: {result.path_count} paths in {elapsed:.2f}s | "
            f"fork work {extra['fork_work']:,} | instrumented writes "
            f"{extra['instrumented_writes']:,}"
        )
    print("   (snapshot forks are O(1); software COW forks are O(state) "
          "and tax every write)")


if __name__ == "__main__":
    main()
