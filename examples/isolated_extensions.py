#!/usr/bin/env python3
"""Extension isolation and syscall interposition (§3.1, §5).

A machine guest opens a file, then forks into three extensions that each
write a different record.  The COW file layer keeps every path's view
private; the sound-minimal policy refuses a /dev open; the audit log
shows how each allowed call's side effects were contained.

Run:  python examples/isolated_extensions.py
"""

from repro.core.machine import MachineEngine
from repro.core.sysno import SYS_EXIT, SYS_GUESS
from repro.interpose import SoundMinimalPolicy
from repro.libos import HostFS

GUEST = f"""
.data
path:  .asciz "/var/journal"
dev:   .asciz "/dev/urandom"
buf:   .asciz "entry-?"
.text
    mov rax, 2              ; open("/var/journal", O_RDWR|O_CREAT)
    mov rdi, path
    mov rsi, 66
    syscall
    mov rbx, rax

    mov rax, 2              ; open("/dev/urandom") -- policy refuses
    mov rdi, dev
    mov rsi, 0
    syscall                 ; rax = -EACCES; guest shrugs and moves on

    mov rax, {SYS_GUESS:#x} ; fork into three extensions
    mov rdi, 3
    syscall
    mov r12, rax

    add rax, '0'            ; patch the record with the extension number
    mov rcx, buf
    movb [rcx + 6], rax
    mov rax, 1              ; write(fd, "entry-<k>", 7)
    mov rdi, rbx
    mov rsi, buf
    mov rdx, 7
    syscall

    mov rdi, r12
    mov rax, {SYS_EXIT}
    syscall
"""


def main() -> None:
    engine = MachineEngine(policy=SoundMinimalPolicy(), hostfs=HostFS())
    result = engine.run(GUEST)

    print(f"{len(result.solutions)} extension paths completed\n")
    print("each path wrote its own record, fully contained by the COW "
          "file layer;\nno path ever saw a sibling's write:\n")
    for solution in result.solutions:
        print(f"   path {solution.path}: exit code {solution.value[0]}")

    print("\naudit log (what the libOS interposed on):")
    for record in engine.libos.audit.records[:12]:
        print(f"   {record.verdict.value:>5}  {record.syscall:<8} "
              f"{record.detail:<24} containment={record.containment.value}")
    denials = engine.libos.audit.denials
    print(f"\n{len(denials)} refusal(s) under the sound-minimal policy "
          f"(§5: 'failing all others'):")
    for record in denials:
        print(f"   {record.syscall} {record.detail}")


if __name__ == "__main__":
    main()
