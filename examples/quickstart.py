#!/usr/bin/env python3
"""Quickstart: system-level backtracking in five minutes.

Walks through the paper's programming model with the two main engines:

1. a Python guest on the replay engine (the everyday API);
2. the same program as machine code behind the full Figure 2 stack —
   real lightweight snapshots, a libOS, VM exits;
3. the fork-based engine (real kernel COW, the §3 design point).

Run:  python examples/quickstart.py
"""

from repro import ReplayEngine
from repro.core.machine import MachineEngine
from repro.workloads.nqueens import boards_from_result, nqueens_asm


def pythagorean_triples(sys, limit: int):
    """Find a^2 + b^2 = c^2 by letting the OS guess a, b, c.

    Note what is absent: no loops over candidates, no undo, no explicit
    search — "a simple single-path-to-solution program" (§1).
    """
    a = sys.guess(limit) + 1
    b = sys.guess(limit) + 1
    if b < a:
        sys.fail()  # canonical order, avoids mirrored duplicates
    c = sys.guess(limit) + 1
    if a * a + b * b != c * c:
        sys.fail()
    return (a, b, c)


def main() -> None:
    print("=" * 64)
    print("1. Python guest, replay engine")
    print("=" * 64)
    engine = ReplayEngine(strategy="dfs")
    result = engine.run(pythagorean_triples, 20)
    print(f"   {result.summary()}")
    for triple in result.solution_values:
        print(f"   {triple[0]}^2 + {triple[1]}^2 = {triple[2]}^2")

    print()
    print("=" * 64)
    print("2. Machine guest: Figure 1's n-queens, real snapshots")
    print("=" * 64)
    machine = MachineEngine(strategy="dfs")
    result = machine.run(nqueens_asm(6))
    boards = boards_from_result(result)
    print(f"   {result.summary()}")
    print(f"   boards: {', '.join(boards)}")
    extra = result.stats.extra
    print(
        f"   snapshots taken/restored: {extra['snapshots_taken']}/"
        f"{extra['snapshots_restored']},  COW pages copied: "
        f"{extra['frames_copied']},  guest instructions: "
        f"{extra['guest_instructions']:,}"
    )

    print()
    print("=" * 64)
    print("3. The same Python guest over real os.fork (kernel COW)")
    print("=" * 64)
    try:
        from repro.core.posix import PosixEngine

        result = PosixEngine().run(pythagorean_triples, 20)
        print(f"   {len(result.solutions)} solutions via process-tree DFS")
    except OSError as err:
        print(f"   (fork unavailable in this environment: {err})")


if __name__ == "__main__":
    main()
