"""Setup shim for environments without PEP 660 editable-install support.

All real metadata lives in pyproject.toml; this file only enables
``pip install -e .`` with the legacy setuptools develop path (the offline
toolchain here lacks the ``wheel`` package that PEP 660 builds need).
"""

from setuptools import setup

setup()
