"""System-call interposition policies.

"The framework intercepts system calls to ensure the isolated execution
of the extension. [...] This interposition logic can easily be made sound
by supporting only the minimal required set of conditions (e.g., only
open regular files but not devices) and failing all others." (§5)

* :class:`SoundMinimalPolicy` -- the paper's design point: a small
  allowlist, everything else refused.
* :class:`PermissivePolicy` -- allows every implemented call (useful for
  tests and for measuring the policy's own overhead).
* :class:`AuditLog` -- records every interposed call, its verdict, and
  how its side effect is contained (COW fork vs explicit reversal).
"""

from repro.interpose.policy import (
    AuditLog,
    AuditRecord,
    Containment,
    InterpositionPolicy,
    PermissivePolicy,
    SoundMinimalPolicy,
    Verdict,
)

__all__ = [
    "AuditLog",
    "AuditRecord",
    "Containment",
    "InterpositionPolicy",
    "PermissivePolicy",
    "SoundMinimalPolicy",
    "Verdict",
]
