"""Interposition policy: which guest system calls are permitted, and how
each permitted call's side effects are contained.

Side-effect containment comes in two flavours:

* ``COW`` -- the state the call mutates is part of the per-extension
  copy-on-write image (memory via the page table, files via the COW file
  table), so backtracking reverses it for free;
* ``LOGGED`` -- the libOS records enough to reverse the call explicitly
  (the paper's example: ``brk`` must be "logged and reversed upon
  backtracking"; our brk is COW-contained too, but the audit log still
  tracks it so E9 can show the mechanism).

Refused calls follow §5's soundness rule: fail rather than emulate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class Verdict(enum.Enum):
    ALLOW = "allow"
    DENY = "deny"


class Containment(enum.Enum):
    """How an allowed call's side effects are contained."""

    NONE = "none"        # no side effects (read, lseek on private fd)
    COW = "cow"          # contained by the copy-on-write image
    LOGGED = "logged"    # explicitly logged for reversal
    OUTPUT = "output"    # per-path console output (part of the solution)


@dataclass(frozen=True)
class AuditRecord:
    """One interposed system call."""

    syscall: str
    detail: str
    verdict: Verdict
    containment: Containment


@dataclass
class AuditLog:
    """Chronological record of interposition decisions."""

    records: list[AuditRecord] = field(default_factory=list)

    def note(
        self,
        syscall: str,
        detail: str,
        verdict: Verdict,
        containment: Containment = Containment.NONE,
    ) -> None:
        self.records.append(AuditRecord(syscall, detail, verdict, containment))

    @property
    def denials(self) -> list[AuditRecord]:
        return [r for r in self.records if r.verdict is Verdict.DENY]

    @property
    def allowed(self) -> list[AuditRecord]:
        return [r for r in self.records if r.verdict is Verdict.ALLOW]

    def count(self, syscall: str) -> int:
        return sum(1 for r in self.records if r.syscall == syscall)


class InterpositionPolicy:
    """Base policy: everything implemented is allowed.

    Subclasses override the ``check_*`` hooks to narrow what guests may
    do.  A check returns ``None`` to allow, or an errno (positive int) to
    refuse with ``-errno``.
    """

    #: Paths with these prefixes are never regular files.
    name = "permissive"

    def check_open(self, path: str, flags: int) -> Optional[int]:
        return None

    def check_write(self, fd: int, is_console: bool) -> Optional[int]:
        return None

    def check_unknown_syscall(self, number: int) -> str:
        """Policy for unimplemented syscall numbers.

        Returns ``"kill"`` to terminate the extension (sound refusal) or
        ``"errno"`` to return -ENOSYS and let the guest cope.
        """
        return "errno"


class PermissivePolicy(InterpositionPolicy):
    """Allows every implemented call; unknown calls get -ENOSYS."""


EACCES = 13
ENOSYS = 38

_DEVICE_PREFIXES = ("/dev/", "/proc/", "/sys/")
_SOCKET_MARKERS = ("socket:", "tcp:", "udp:", "unix:")


class SoundMinimalPolicy(InterpositionPolicy):
    """The §5 design point: regular files only, refuse everything else.

    * ``open`` of device/proc/socket paths is refused with -EACCES;
    * unknown system calls kill the extension (sound: no call with
      unconfined side effects can slip through);
    * everything allowed is contained by COW or the audit log.
    """

    name = "sound-minimal"

    def check_open(self, path: str, flags: int) -> Optional[int]:
        if path.startswith(_DEVICE_PREFIXES):
            return EACCES
        if any(path.startswith(m) for m in _SOCKET_MARKERS):
            return EACCES
        return None

    def check_unknown_syscall(self, number: int) -> str:
        return "kill"
