"""Frontier serialization and sharding for distributed exploration.

A snapshot-backed frontier cannot leave its process: address spaces and
page tables are not meaningfully picklable, and shipping them would be
exactly the page-table-copy cost lightweight snapshots exist to avoid.
What *does* travel is the decision prefix — the sequence of guess
outcomes that reaches a candidate — because a deterministic guest can be
rehydrated anywhere by replaying that prefix from the program start.

:class:`PrefixTask` is that wire format: one unexplored subtree root,
small enough that thousands of them cost less than a single page table.
:class:`TaskFrontier` is the coordinator-side scheduling structure that
shards them into worker-sized batches under a DFS (LIFO) or BFS (FIFO)
discipline.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, NamedTuple, Optional


class PrefixTask(NamedTuple):
    """One serializable unit of exploration work: a subtree root.

    Attributes
    ----------
    prefix:
        The guess outcomes that reach the subtree root from the program
        start (the paper's "reference to the parent partial candidate
        and the extension number", flattened into a replayable path).
    fanouts:
        ``fanouts[i]`` is the fan-out of the guess answered by
        ``prefix[i]``; replays verify these to detect nondeterministic
        guests.
    hint:
        Optional goal-distance hint attached when the task was spilled
        (carried for informed frontier orderings; DFS/BFS ignore it).
    attempt:
        How many times this task has been dispatched before (bumped by
        the coordinator when a worker crash or timeout loses it).
    span:
        The trace context: the root span id of the cluster run this
        task belongs to.  Together with the decision prefix it lets a
        worker's trace events be causally linked back to the run and the
        subtree that produced them, across the process boundary.  Spilled
        children inherit their parent task's span.
    fence:
        The monotonic fencing token of the dispatch this copy of the
        task travelled under (see :mod:`repro.core.lease`): 0 before
        first dispatch, stamped by the coordinator's lease table at
        grant time.  A result whose fence does not match the live lease
        is stale and discarded — the mechanism that keeps solution
        multisets exact when a presumed-dead worker resurfaces.
    """

    prefix: tuple[int, ...] = ()
    fanouts: tuple[int, ...] = ()
    hint: Optional[float] = None
    attempt: int = 0
    span: Optional[int] = None
    fence: int = 0

    @property
    def depth(self) -> int:
        return len(self.prefix)

    def retried(self) -> "PrefixTask":
        """The same task, one dispatch attempt later."""
        return self._replace(attempt=self.attempt + 1)

    def key(self) -> tuple[int, ...]:
        """Identity of the subtree (stable across retries)."""
        return self.prefix

    def to_record(self) -> dict:
        """JSON-safe journal representation (see :mod:`repro.core.journal`).

        Tuples become lists (JSON has no tuples); :meth:`from_record`
        restores them, so ``from_record(to_record(t)) == t`` exactly —
        the round-trip the journal's recovery path depends on.
        """
        record = {
            "prefix": list(self.prefix),
            "fanouts": list(self.fanouts),
            "hint": self.hint,
            "attempt": self.attempt,
            "span": self.span,
        }
        if self.fence:
            record["fence"] = self.fence
        return record

    @classmethod
    def from_record(cls, record: dict) -> "PrefixTask":
        """Rebuild a task from its :meth:`to_record` journal form."""
        return cls(
            prefix=tuple(record["prefix"]),
            fanouts=tuple(record["fanouts"]),
            hint=record.get("hint"),
            attempt=record.get("attempt", 0),
            span=record.get("span"),
            fence=record.get("fence", 0),
        )


#: Frontier disciplines a :class:`TaskFrontier` understands, and the
#: worker-local strategy each one maps to.
SHARD_ORDERS = ("dfs", "bfs")


class TaskFrontier:
    """The coordinator's frontier of unexplored subtree roots.

    Scheduling discipline mirrors the single-process strategies: ``dfs``
    pops the most recently spilled task first (depth-first over
    subtrees), ``bfs`` the oldest (frontier-parallel level order).
    Either way the *set* of explored subtrees is identical — order only
    shapes memory footprint and time-to-first-solution.
    """

    def __init__(self, order: str = "dfs"):
        if order not in SHARD_ORDERS:
            raise ValueError(
                f"unknown shard order {order!r}; choose from {SHARD_ORDERS}"
            )
        self.order = order
        self._tasks: deque[PrefixTask] = deque()
        #: High-water mark of queued tasks (the coordinator's analogue of
        #: a strategy's peak_frontier).
        self.peak = 0

    def push(self, task: PrefixTask) -> None:
        self._tasks.append(task)
        if len(self._tasks) > self.peak:
            self.peak = len(self._tasks)

    def extend(self, tasks: Iterable[PrefixTask]) -> None:
        for task in tasks:
            self.push(task)

    def pop(self) -> Optional[PrefixTask]:
        if not self._tasks:
            return None
        return self._tasks.pop() if self.order == "dfs" else self._tasks.popleft()

    def take_batch(self, limit: int) -> list[PrefixTask]:
        """Shard off up to *limit* tasks for one worker dispatch."""
        batch: list[PrefixTask] = []
        while len(batch) < limit:
            task = self.pop()
            if task is None:
                break
            batch.append(task)
        return batch

    def __len__(self) -> int:
        return len(self._tasks)

    def __bool__(self) -> bool:
        return bool(self._tasks)


def spill_extension(prefix: tuple[int, ...], fanouts: tuple[int, ...],
                    n: int, hints: Optional[tuple[float, ...]],
                    span: Optional[int] = None) -> list[PrefixTask]:
    """Turn one choice point into its child tasks.

    A guess with fan-out *n* reached via *prefix* becomes *n* sibling
    subtree roots — the unit the coordinator shards across workers.
    The children inherit *span* so their trace events stay linked to the
    run that spawned them.
    """
    child_fanouts = fanouts + (n,)
    return [
        PrefixTask(
            prefix=prefix + (i,),
            fanouts=child_fanouts,
            hint=hints[i] if hints is not None else None,
            span=span,
        )
        for i in range(n)
    ]
