"""Search strategies that schedule candidate extension steps.

Snapshots are "not scheduled by a traditional OS scheduler, but instead by
one of the various well-understood search strategies, such as DFS, BFS or
A*" (§1).  This package provides the strategy abstraction and the classic
strategies the paper names, plus the externally-controlled strategy of
§3.1 and the coverage-optimized strategy S2E uses (§3.2).

A strategy is a priority queue over :class:`Extension` edges; it never
touches snapshots itself, keeping policy (which extension next) separate
from mechanism (snapshot take/restore), exactly as §3.1 prescribes.
"""

from repro.search.extension import Extension
from repro.search.shard import PrefixTask, TaskFrontier, spill_extension
from repro.search.strategy import (
    AStarStrategy,
    BeamStrategy,
    BestFirstStrategy,
    BFSStrategy,
    CoverageStrategy,
    DFSStrategy,
    ExternalStrategy,
    RandomStrategy,
    SMAStarStrategy,
    Strategy,
    get_strategy,
)

__all__ = [
    "AStarStrategy",
    "BeamStrategy",
    "BFSStrategy",
    "BestFirstStrategy",
    "CoverageStrategy",
    "DFSStrategy",
    "Extension",
    "ExternalStrategy",
    "PrefixTask",
    "RandomStrategy",
    "SMAStarStrategy",
    "Strategy",
    "TaskFrontier",
    "get_strategy",
    "spill_extension",
]
