"""Candidate extension steps: the edges of the search graph.

An unevaluated extension is "simply a reference to their parent partial
candidate and the extension number" (§4).  We add the optional heuristic
hint that "search strategies that rely on goal-distance heuristics such as
A* and SM-A* require" (§3.1), plus a sequence number so strategies can
break ties deterministically.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

_seq = itertools.count()


@dataclass(frozen=True)
class Extension:
    """A deferred computation: evaluate extension *number* of *candidate*.

    Attributes
    ----------
    candidate:
        The parent partial candidate.  Opaque to strategies — the engines
        pass snapshots (machine engine) or decision-path nodes (replay
        engine).
    number:
        The value ``sys_guess`` will return when this extension runs.
    hint:
        Optional goal-distance estimate for informed strategies (the
        extended-guess API of §3.1).  Lower means closer to a goal.
    depth:
        Depth of the parent candidate in the search tree (the ``g`` cost
        for A*).
    seq:
        Global creation order; used as a deterministic tie-breaker.
    """

    candidate: Any
    number: int
    hint: Optional[float] = None
    depth: int = 0
    seq: int = field(default_factory=lambda: next(_seq))

    def f_cost(self) -> float:
        """A* evaluation: path cost so far plus heuristic estimate."""
        h = self.hint if self.hint is not None else 0.0
        return self.depth + h
