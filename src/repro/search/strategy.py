"""The search strategies the paper names: DFS, BFS, A*, SM-A*, plus the
externally-controlled and coverage-optimized strategies of §3.1/§3.2.

Strategies are pure scheduling policy.  The engine hands them batches of
unevaluated extensions (one batch per ``sys_guess``) and asks for the next
extension to evaluate; strategies never see register files or address
spaces.
"""

from __future__ import annotations

import heapq
import random
from abc import ABC, abstractmethod
from collections import deque
from typing import Any, Callable, Iterable, Optional

from repro.obs.registry import MetricsRegistry, metric_view
from repro.search.extension import Extension


class StrategyStats:
    """Frontier accounting for one search run.

    Registry-backed (``search.frontier.*``): the attributes below are
    views over counters/gauges so strategy internals and external
    observers read the same numbers.
    """

    added = metric_view("added")
    popped = metric_view("popped")
    dropped = metric_view("dropped")
    peak_frontier = metric_view("peak_frontier")

    def __init__(
        self,
        added: int = 0,
        popped: int = 0,
        dropped: int = 0,
        peak_frontier: int = 0,
        registry: Optional[MetricsRegistry] = None,
        prefix: str = "search.frontier",
    ):
        self.registry = registry if registry is not None else MetricsRegistry(prefix)
        self._metrics = {
            "added": self.registry.counter(f"{prefix}.added"),
            "popped": self.registry.counter(f"{prefix}.popped"),
            "dropped": self.registry.counter(f"{prefix}.dropped"),
            "peak_frontier": self.registry.gauge(f"{prefix}.peak_frontier"),
        }
        for metric in self._metrics.values():
            metric.reset()
        self.added = added
        self.popped = popped
        self.dropped = dropped
        self.peak_frontier = peak_frontier

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StrategyStats(added={self.added}, popped={self.popped}, "
            f"dropped={self.dropped}, peak_frontier={self.peak_frontier})"
        )


class Strategy(ABC):
    """Scheduling policy over unevaluated candidate extension steps."""

    #: Short registry name (e.g. ``"dfs"``); set by subclasses.
    name: str = "abstract"

    def __init__(self) -> None:
        self.stats = StrategyStats()

    @abstractmethod
    def _push(self, ext: Extension) -> None:
        """Insert one extension into the frontier."""

    @abstractmethod
    def _pop(self) -> Optional[Extension]:
        """Remove and return the next extension, or None if empty."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of unevaluated extensions in the frontier."""

    def add(self, extensions: Iterable[Extension]) -> None:
        """Enqueue a batch of sibling extensions (one ``sys_guess``)."""
        for ext in extensions:
            self._push(ext)
            self.stats.added += 1
        self.stats.peak_frontier = max(self.stats.peak_frontier, len(self))

    def next(self) -> Optional[Extension]:
        """Dequeue the extension to evaluate next (None = search done)."""
        ext = self._pop()
        if ext is not None:
            self.stats.popped += 1
        return ext

    def drain(self) -> None:
        """Drop all pending extensions (used when a search is cut short)."""
        while self._pop() is not None:
            self.stats.dropped += 1


class DFSStrategy(Strategy):
    """Depth-first search: LIFO, lowest extension number first.

    This is the strategy Figure 1 selects; it makes system-level
    backtracking behave like Prolog's chronological backtracking.
    """

    name = "dfs"

    def __init__(self) -> None:
        super().__init__()
        self._stack: list[Extension] = []

    def add(self, extensions: Iterable[Extension]) -> None:
        # Push siblings in reverse so extension 0 pops first.
        batch = list(extensions)
        super().add(reversed(batch))

    def _push(self, ext: Extension) -> None:
        self._stack.append(ext)

    def _pop(self) -> Optional[Extension]:
        return self._stack.pop() if self._stack else None

    def __len__(self) -> int:
        return len(self._stack)


class BFSStrategy(Strategy):
    """Breadth-first search: FIFO over extensions."""

    name = "bfs"

    def __init__(self) -> None:
        super().__init__()
        self._queue: deque[Extension] = deque()

    def _push(self, ext: Extension) -> None:
        self._queue.append(ext)

    def _pop(self) -> Optional[Extension]:
        return self._queue.popleft() if self._queue else None

    def __len__(self) -> int:
        return len(self._queue)


class BestFirstStrategy(Strategy):
    """Greedy best-first: lowest heuristic hint first (ignores depth)."""

    name = "best"

    def __init__(self, key: Optional[Callable[[Extension], float]] = None):
        super().__init__()
        self._key = key if key is not None else _hint_or_zero
        self._heap: list[tuple[float, int, Extension]] = []

    def _push(self, ext: Extension) -> None:
        heapq.heappush(self._heap, (self._key(ext), ext.seq, ext))

    def _pop(self) -> Optional[Extension]:
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)


class AStarStrategy(BestFirstStrategy):
    """A*: order by f = g + h, where g is candidate depth and h the
    goal-distance hint passed through the extended guess call (§3.1).

    With an admissible h and unit edge costs this finds minimum-depth
    solutions while expanding no more candidates than BFS.
    """

    name = "astar"

    def __init__(self) -> None:
        super().__init__(key=Extension.f_cost)


class SMAStarStrategy(Strategy):
    """Simplified memory-bounded A* (SM-A*).

    Keeps at most *capacity* extensions in the frontier, ordered by f.
    When full, the worst extension is dropped and its f-value backed up
    into ``forgotten`` keyed by its parent candidate, so a caller can
    regenerate dropped work by re-expanding the parent (the classic SMA*
    recovery path).  This simplification drops the full SMA* ancestor
    back-up chain but preserves the property the paper needs from it:
    best-first search under a hard frontier-memory bound.
    """

    name = "sma"

    def __init__(self, capacity: int = 1024):
        super().__init__()
        if capacity < 2:
            raise ValueError("SM-A* needs capacity >= 2")
        self.capacity = capacity
        self._heap: list[tuple[float, int, Extension]] = []
        #: Parent candidate -> best forgotten f-value among dropped kids.
        self.forgotten: dict[Any, float] = {}

    def _push(self, ext: Extension) -> None:
        heapq.heappush(self._heap, (ext.f_cost(), ext.seq, ext))
        if len(self._heap) > self.capacity:
            worst_idx = max(range(len(self._heap)), key=lambda i: self._heap[i][0])
            f, _seq, dropped = self._heap.pop(worst_idx)
            heapq.heapify(self._heap)
            prev = self.forgotten.get(dropped.candidate)
            self.forgotten[dropped.candidate] = f if prev is None else min(prev, f)
            self.stats.dropped += 1

    def _pop(self) -> Optional[Extension]:
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)


class BeamStrategy(Strategy):
    """Beam search: best-first limited to the *width* best extensions at
    each depth; deeper extensions always outrank shallower ones so the
    beam advances level by level.

    Incomplete by design (pruned extensions are dropped for good), which
    is the point: a cheap, bounded-frontier policy for workloads where
    hints are informative and exhaustiveness is not required.
    """

    name = "beam"

    def __init__(self, width: int = 8):
        super().__init__()
        if width < 1:
            raise ValueError("beam width must be >= 1")
        self.width = width
        self._by_depth: dict[int, list[tuple[float, int, Extension]]] = {}

    def _push(self, ext: Extension) -> None:
        bucket = self._by_depth.setdefault(ext.depth, [])
        heapq.heappush(bucket, (-_hint_or_zero(ext), ext.seq, ext))
        if len(bucket) > self.width:
            heapq.heappop(bucket)  # drop the worst (largest hint)
            self.stats.dropped += 1

    def _pop(self) -> Optional[Extension]:
        if not self._by_depth:
            return None
        deepest = max(self._by_depth)
        bucket = self._by_depth[deepest]
        best_index = min(range(len(bucket)), key=lambda i: (-bucket[i][0],
                                                            bucket[i][1]))
        _neg_hint, _seq, ext = bucket.pop(best_index)
        heapq.heapify(bucket)
        if not bucket:
            del self._by_depth[deepest]
        return ext

    def __len__(self) -> int:
        return sum(len(b) for b in self._by_depth.values())


class RandomStrategy(Strategy):
    """Uniform random exploration (a cheap baseline; also useful for
    randomized restarts in solver workloads).  Deterministic under *seed*.
    """

    name = "random"

    def __init__(self, seed: int = 0):
        super().__init__()
        self._rng = random.Random(seed)
        self._items: list[Extension] = []

    def _push(self, ext: Extension) -> None:
        self._items.append(ext)

    def _pop(self) -> Optional[Extension]:
        if not self._items:
            return None
        idx = self._rng.randrange(len(self._items))
        self._items[idx], self._items[-1] = self._items[-1], self._items[idx]
        return self._items.pop()

    def __len__(self) -> int:
        return len(self._items)


class CoverageStrategy(Strategy):
    """Coverage-optimized exploration (the S2E-style strategy of §3.2).

    Prefers extensions whose parent candidate reports program locations
    not seen before.  The engine supplies a ``coverage_key`` callable
    mapping an extension to a hashable location (e.g. the guest PC at the
    fork point); unseen locations sort first, then FIFO within class.
    """

    name = "coverage"

    def __init__(self, coverage_key: Optional[Callable[[Extension], Any]] = None):
        super().__init__()
        self._key = coverage_key if coverage_key is not None else _candidate_key
        self._seen: set = set()
        self._heap: list[tuple[int, int, Extension]] = []

    def _push(self, ext: Extension) -> None:
        loc = self._key(ext)
        novel = 0 if loc not in self._seen else 1
        heapq.heappush(self._heap, (novel, ext.seq, ext))

    def _pop(self) -> Optional[Extension]:
        if not self._heap:
            return None
        ext = heapq.heappop(self._heap)[2]
        self._seen.add(self._key(ext))
        return ext

    def __len__(self) -> int:
        return len(self._heap)


class ExternalStrategy(Strategy):
    """Externally controlled strategy (§3.1): an outside entity decides
    which extension runs next by calling :meth:`select`.

    Extensions added by the engine park in ``pending`` until the external
    controller moves them to the run queue.  This models the multi-path
    solver *service* of §3.2, where clients name the partial candidate to
    extend.
    """

    name = "external"

    def __init__(self) -> None:
        super().__init__()
        self.pending: dict[int, Extension] = {}
        self._run_queue: deque[Extension] = deque()

    def _push(self, ext: Extension) -> None:
        self.pending[ext.seq] = ext

    def select(self, seq: int) -> None:
        """Schedule the pending extension with sequence number *seq*.

        Raises :class:`~repro.core.errors.InputExhaustedError` when no
        extension with that sequence number is pending — it was already
        scheduled, or never existed.  (The controller fed a selection
        the search cannot consume; the session stays usable.)
        """
        try:
            ext = self.pending.pop(seq)
        except KeyError:
            from repro.core.errors import InputExhaustedError

            raise InputExhaustedError(
                f"no pending extension with sequence number {seq}: it "
                "was already scheduled or never existed; pending "
                f"sequence numbers are {sorted(self.pending)}"
            ) from None
        self._run_queue.append(ext)

    def select_all(self) -> None:
        """Schedule everything currently pending, FIFO."""
        for seq in sorted(self.pending):
            self.select(seq)

    def _pop(self) -> Optional[Extension]:
        return self._run_queue.popleft() if self._run_queue else None

    def __len__(self) -> int:
        return len(self._run_queue) + len(self.pending)


def _hint_or_zero(ext: Extension) -> float:
    return ext.hint if ext.hint is not None else 0.0


def _candidate_key(ext: Extension) -> Any:
    return id(ext.candidate)


_REGISTRY: dict[str, Callable[..., Strategy]] = {
    "dfs": DFSStrategy,
    "bfs": BFSStrategy,
    "best": BestFirstStrategy,
    "astar": AStarStrategy,
    "sma": SMAStarStrategy,
    "beam": BeamStrategy,
    "random": RandomStrategy,
    "coverage": CoverageStrategy,
    "external": ExternalStrategy,
}


def get_strategy(name: str, **kwargs: Any) -> Strategy:
    """Instantiate a strategy by registry name.

    >>> get_strategy("dfs").name
    'dfs'
    """
    try:
        factory = _REGISTRY[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; choose from {sorted(_REGISTRY)}"
        ) from None
    return factory(**kwargs)
