"""Page-fault exception types and fault accounting.

In the paper's architecture the libOS handles page faults taken by guest
code at ring 3 (Figure 2); the dominant fault type is the copy-on-write
fault that preserves the immutability of the parent snapshot.  We model
faults as exceptions raised by the translation path and resolved (for COW
and demand-zero) inside :class:`repro.mem.addrspace.AddressSpace`, with
unresolvable faults propagating to the VMM as VM exits.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.obs.registry import MetricsRegistry, metric_view


class AccessKind(enum.Enum):
    """The kind of memory access that triggered a fault."""

    READ = "read"
    WRITE = "write"
    EXECUTE = "execute"


class PageFaultError(Exception):
    """Base class for page faults that the memory subsystem cannot resolve.

    Faults of this type escape the address space and are reflected to the
    caller (the CPU interpreter turns them into VM exits; the libOS decides
    whether to kill the offending extension).
    """

    def __init__(self, addr: int, access: AccessKind, detail: str = ""):
        self.addr = addr
        self.access = access
        self.detail = detail
        super().__init__(
            f"page fault at {addr:#x} on {access.value}"
            + (f": {detail}" if detail else "")
        )


class NotMappedError(PageFaultError):
    """Access to a virtual page with no mapping at all."""


class ProtectionError(PageFaultError):
    """Access violating the page's permission bits (e.g. write to RO)."""


_FAULT_FIELDS = (
    "cow_faults",
    "demand_zero_faults",
    "hard_faults",
    "pages_copied",
    "nodes_copied",
    "bytes_copied",
)


class FaultStats:
    """Counters for fault activity in one address space.

    ``cow_faults`` and ``demand_zero_faults`` are *resolved* internally;
    ``hard_faults`` escaped to the caller.  ``pages_copied`` /
    ``nodes_copied`` / ``bytes_copied`` measure the physical work done by
    copy-on-write, which is the paper's key cost metric for snapshot
    maintenance.

    The counts are ``mem.*`` counters in an observability registry; the
    attributes here are views over them (``faults.cow_faults += 1`` and
    ``registry.get("mem.cow_faults").inc()`` are the same write).
    """

    cow_faults = metric_view("cow_faults")
    demand_zero_faults = metric_view("demand_zero_faults")
    hard_faults = metric_view("hard_faults")
    pages_copied = metric_view("pages_copied")
    nodes_copied = metric_view("nodes_copied")
    bytes_copied = metric_view("bytes_copied")

    def __init__(
        self,
        cow_faults: int = 0,
        demand_zero_faults: int = 0,
        hard_faults: int = 0,
        pages_copied: int = 0,
        nodes_copied: int = 0,
        bytes_copied: int = 0,
        extra: Optional[dict] = None,
        registry: Optional[MetricsRegistry] = None,
        prefix: str = "mem",
    ):
        self.registry = registry if registry is not None else MetricsRegistry(prefix)
        self._metrics = {
            name: self.registry.counter(f"{prefix}.{name}")
            for name in _FAULT_FIELDS
        }
        for metric in self._metrics.values():
            metric.reset()
        self.cow_faults = cow_faults
        self.demand_zero_faults = demand_zero_faults
        self.hard_faults = hard_faults
        self.pages_copied = pages_copied
        self.nodes_copied = nodes_copied
        self.bytes_copied = bytes_copied
        self.extra: dict = extra if extra is not None else {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{name}={getattr(self, name)}" for name in _FAULT_FIELDS)
        return f"FaultStats({body})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultStats):
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name) for name in _FAULT_FIELDS
        ) and self.extra == other.extra

    def snapshot(self) -> "FaultStats":
        """Return an independent copy of the current counters."""
        return FaultStats(
            cow_faults=self.cow_faults,
            demand_zero_faults=self.demand_zero_faults,
            hard_faults=self.hard_faults,
            pages_copied=self.pages_copied,
            nodes_copied=self.nodes_copied,
            bytes_copied=self.bytes_copied,
            extra=dict(self.extra),
        )

    def delta(self, earlier: "FaultStats") -> "FaultStats":
        """Return counters accumulated since *earlier* was captured."""
        return FaultStats(
            cow_faults=self.cow_faults - earlier.cow_faults,
            demand_zero_faults=self.demand_zero_faults - earlier.demand_zero_faults,
            hard_faults=self.hard_faults - earlier.hard_faults,
            pages_copied=self.pages_copied - earlier.pages_copied,
            nodes_copied=self.nodes_copied - earlier.nodes_copied,
            bytes_copied=self.bytes_copied - earlier.bytes_copied,
        )
