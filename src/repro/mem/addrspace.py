"""The mutable, process-facing virtual address space.

An :class:`AddressSpace` combines a persistent page table, a TLB, and the
copy-on-write fault logic.  Guests (and host-side code such as the libOS)
read and write through it with byte-span and integer accessors; every
access goes through translation, so COW faults, demand-zero faults and
locality effects are real consequences of guest behaviour rather than
modelled numbers.

Snapshots are built on :meth:`AddressSpace.fork_cow`, which produces a
logical copy in O(1) by sharing the page-table root.  Demand-zero pages
are implemented as COW mappings of a single pool-wide zero frame, which
unifies the fault path: first write to a fresh page and first write to a
snapshot-shared page take the same copy-on-write route.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.mem.faults import (
    AccessKind,
    FaultStats,
    NotMappedError,
    ProtectionError,
)
from repro.mem.frames import Frame, FramePool
from repro.mem.layout import (
    PAGE_MASK,
    PAGE_SHIFT,
    PAGE_SIZE,
    is_canonical,
    page_align_up,
)
from repro.mem.pagetable import PTE, PageTable, Permission
from repro.mem.tlb import TLB, TLBEntry
from repro.obs import events as _events
from repro.obs.trace import TRACER as _TRACER

_as_ids = itertools.count()


@dataclass
class MemStats:
    """A read-only aggregate of an address space's cost counters."""

    cow_faults: int
    demand_zero_faults: int
    pages_copied: int
    bytes_copied: int
    nodes_copied: int
    tlb_hits: int
    tlb_misses: int
    tlb_flushes: int
    mapped_pages: int
    live_frames: int


class AddressSpace:
    """A mutable virtual address space with COW fault handling.

    Parameters
    ----------
    pool:
        The physical frame pool backing this address space.  Address
        spaces that should share physical memory (e.g. a parent and its
        snapshots) must share a pool.
    name:
        Optional label used in reprs and diagnostics.
    """

    def __init__(
        self,
        pool: FramePool,
        name: Optional[str] = None,
        _table: Optional[PageTable] = None,
    ):
        self.pool = pool
        self.asid = next(_as_ids)
        self.name = name or f"as{self.asid}"
        self.table = _table if _table is not None else PageTable(pool)
        self.tlb = TLB()
        self.faults = FaultStats()
        #: Pages written since the last snapshot point (cleared by the
        #: dirty-eager snapshot manager; maintained on the write-fault
        #: slow path, which every first-write-per-page takes).
        self.dirty_vpns: set[int] = set()
        self._zero_frame: Optional[Frame] = None
        #: Current program break (heap end); managed via :meth:`sbrk`.
        self.brk_base = 0
        self.brk_end = 0
        #: Bump pointer for anonymous mmap regions (grows downward from
        #: the mmap base the libOS configures).
        self.mmap_next = 0
        self._freed = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AddressSpace({self.name!r}, pages={self.table.entry_count()})"

    # ------------------------------------------------------------------
    # Region management
    # ------------------------------------------------------------------

    def _zero(self) -> Frame:
        """The shared demand-zero frame (lazily created, never writable)."""
        if self._zero_frame is None:
            self._zero_frame = self.pool.alloc()
        return self._zero_frame

    def map_region(
        self,
        base: int,
        size: int,
        perms: Permission = Permission.RW,
        data: Optional[bytes] = None,
        eager: bool = False,
    ) -> None:
        """Map ``[base, base+size)`` with *perms*.

        Pages are demand-zero (shared zero frame, copied on first write)
        unless *eager* is True or initial *data* is supplied.  *base* must
        be page-aligned; *size* is rounded up to whole pages.
        """
        if base & PAGE_MASK:
            raise ValueError(f"base {base:#x} is not page-aligned")
        if size <= 0:
            raise ValueError("size must be positive")
        if not is_canonical(base) or not is_canonical(base + size - 1):
            raise ValueError("region outside canonical address range")
        if data is not None and len(data) > size:
            raise ValueError("data larger than region")
        npages = page_align_up(size) >> PAGE_SHIFT
        if _TRACER.enabled:
            _TRACER.emit(
                _events.MEM_PAGE_ALLOC,
                asid=self.asid,
                pages=npages,
                kind="data" if data is not None else ("eager" if eager else "zero"),
            )
        for i in range(npages):
            vpn = (base >> PAGE_SHIFT) + i
            if self.table.is_mapped(vpn):
                raise ValueError(f"page {vpn << PAGE_SHIFT:#x} already mapped")
            if data is not None:
                # Initial contents are loaded directly into fresh frames,
                # bypassing permission checks (a loader writing code into
                # an RX region must not trip the write-protect logic).
                frame = self.pool.alloc()
                chunk = data[i * PAGE_SIZE : (i + 1) * PAGE_SIZE]
                frame.data[: len(chunk)] = chunk
            elif eager:
                frame = self.pool.alloc()
            else:
                frame = self._zero()
                frame.refcount += 1
            self.table.map(vpn, frame, perms)
            self.tlb.invalidate(vpn)

    def unmap_region(self, base: int, size: int) -> None:
        """Unmap every page intersecting ``[base, base+size)``."""
        if base & PAGE_MASK:
            raise ValueError(f"base {base:#x} is not page-aligned")
        npages = page_align_up(size) >> PAGE_SHIFT
        for i in range(npages):
            vpn = (base >> PAGE_SHIFT) + i
            if self.table.unmap(vpn):
                self.tlb.invalidate(vpn)

    def protect_region(self, base: int, size: int, perms: Permission) -> None:
        """Change permissions for every mapped page in the region."""
        npages = page_align_up(size) >> PAGE_SHIFT
        for i in range(npages):
            vpn = (base >> PAGE_SHIFT) + i
            if self.table.is_mapped(vpn):
                self.table.set_perms(vpn, perms)
                self.tlb.invalidate(vpn)

    def set_brk_base(self, base: int) -> None:
        """Initialise the program break (heap start)."""
        if base & PAGE_MASK:
            raise ValueError("brk base must be page-aligned")
        self.brk_base = base
        self.brk_end = base

    def sbrk(self, delta: int) -> int:
        """Grow (or shrink) the heap by *delta* bytes; returns old break.

        Growth maps demand-zero pages; shrinking unmaps whole pages that
        fall entirely above the new break.
        """
        old_end = self.brk_end
        new_end = old_end + delta
        if new_end < self.brk_base:
            raise ValueError("brk would fall below heap base")
        old_top = page_align_up(old_end)
        new_top = page_align_up(new_end)
        if new_top > old_top:
            self.map_region(old_top, new_top - old_top, Permission.RW)
        elif new_top < old_top:
            self.unmap_region(new_top, old_top - new_top)
        self.brk_end = new_end
        return old_end

    # ------------------------------------------------------------------
    # Translation and fault handling
    # ------------------------------------------------------------------

    def _frame_for(self, vpn: int, access: AccessKind) -> Frame:
        """Translate *vpn* for *access*, resolving COW faults.

        Raises :class:`NotMappedError` / :class:`ProtectionError` for
        faults the memory subsystem cannot resolve.
        """
        write = access is AccessKind.WRITE
        entry = self.tlb.lookup(vpn)
        if (
            entry is not None
            and entry.perms & _NEEDED_PERM[access]
            and (not write or entry.writable)
        ):
            return entry.frame
        pte = self.table.lookup(vpn)
        if pte is None:
            self.faults.hard_faults += 1
            raise NotMappedError(vpn << PAGE_SHIFT, access)
        needed = _NEEDED_PERM[access]
        if not (pte.perms & needed):
            self.faults.hard_faults += 1
            raise ProtectionError(
                vpn << PAGE_SHIFT,
                access,
                f"page perms {pte.perms!r} lack {needed!r}",
            )
        if write:
            # Sharing is tracked at *node* granularity (a snapshot shares
            # whole page-table subtrees), so every first write walks the
            # exclusive path; make_private copies shared nodes — which
            # bumps the refcounts of the frames they reference — and then
            # copies the frame itself if it ended up shared.
            self.dirty_vpns.add(vpn)
            old_frame = pte.frame
            pte = self.table.make_private(vpn)
            if pte.frame is not old_frame:
                if old_frame is self._zero_frame:
                    self.faults.demand_zero_faults += 1
                    kind = "zero"
                else:
                    self.faults.cow_faults += 1
                    kind = "cow"
                self.faults.pages_copied += 1
                self.faults.bytes_copied += PAGE_SIZE
                if _TRACER.enabled:
                    _TRACER.emit(
                        _events.MEM_COW_FAULT, asid=self.asid, vpn=vpn, kind=kind
                    )
            # Only a write that ran make_private may cache writability:
            # the read path cannot tell a node-shared frame from an
            # exclusive one.
            self.tlb.insert(vpn, TLBEntry(pte.frame, pte.perms, True))
        else:
            self.tlb.insert(vpn, TLBEntry(pte.frame, pte.perms, False))
        return pte.frame

    def translate(self, addr: int, access: AccessKind = AccessKind.READ) -> Frame:
        """Translate a byte address, returning its (fault-resolved) frame."""
        return self._frame_for(addr >> PAGE_SHIFT, access)

    # ------------------------------------------------------------------
    # Byte accessors
    # ------------------------------------------------------------------

    def read(self, addr: int, n: int, access: AccessKind = AccessKind.READ) -> bytes:
        """Read *n* bytes starting at *addr* (may span pages)."""
        if n < 0:
            raise ValueError("negative read size")
        out = bytearray()
        while n > 0:
            off = addr & PAGE_MASK
            chunk = min(n, PAGE_SIZE - off)
            frame = self._frame_for(addr >> PAGE_SHIFT, access)
            out += frame.data[off : off + chunk]
            addr += chunk
            n -= chunk
        return bytes(out)

    def write(self, addr: int, data: bytes) -> None:
        """Write *data* starting at *addr* (may span pages)."""
        self._copy_in(addr, data)

    def _copy_in(self, addr: int, data: bytes) -> None:
        pos = 0
        n = len(data)
        while pos < n:
            off = addr & PAGE_MASK
            chunk = min(n - pos, PAGE_SIZE - off)
            frame = self._frame_for(addr >> PAGE_SHIFT, AccessKind.WRITE)
            frame.data[off : off + chunk] = data[pos : pos + chunk]
            addr += chunk
            pos += chunk

    def read_int(self, addr: int, size: int, signed: bool = False) -> int:
        """Read a little-endian integer of *size* bytes."""
        return int.from_bytes(self.read(addr, size), "little", signed=signed)

    def write_int(self, addr: int, value: int, size: int) -> None:
        """Write a little-endian integer of *size* bytes (wraps modulo)."""
        value &= (1 << (8 * size)) - 1
        self.write(addr, value.to_bytes(size, "little"))

    # -- single-page fast paths used by the CPU interpreter -------------
    #
    # These keep the simulator usable at millions of guest memory
    # accesses: a TLB hit costs one dict lookup and one slice, skipping
    # the generic span loop and enum permission arithmetic.

    def read_word(self, addr: int) -> int:
        """Fast 64-bit little-endian load (falls back across pages)."""
        off = addr & PAGE_MASK
        if off <= PAGE_SIZE - 8:
            vpn = addr >> PAGE_SHIFT
            entry = self.tlb._entries.get(vpn)
            if entry is not None and entry.perms.value & 1:
                self.tlb.stats.hits += 1
                data = entry.frame.data
                return int.from_bytes(data[off : off + 8], "little")
            frame = self._frame_for(vpn, AccessKind.READ)
            return int.from_bytes(frame.data[off : off + 8], "little")
        return self.read_int(addr, 8)

    def write_word(self, addr: int, value: int) -> None:
        """Fast 64-bit little-endian store (falls back across pages)."""
        off = addr & PAGE_MASK
        if off <= PAGE_SIZE - 8:
            vpn = addr >> PAGE_SHIFT
            entry = self.tlb._entries.get(vpn)
            if entry is not None and entry.writable:
                self.tlb.stats.hits += 1
                frame_data = entry.frame.data
            else:
                frame_data = self._frame_for(vpn, AccessKind.WRITE).data
            frame_data[off : off + 8] = (value & MASK64_).to_bytes(8, "little")
            return
        self.write_int(addr, value, 8)

    def read_byte(self, addr: int) -> int:
        """Fast byte load."""
        vpn = addr >> PAGE_SHIFT
        entry = self.tlb._entries.get(vpn)
        if entry is not None and entry.perms.value & 1:
            self.tlb.stats.hits += 1
            return entry.frame.data[addr & PAGE_MASK]
        return self._frame_for(vpn, AccessKind.READ).data[addr & PAGE_MASK]

    def write_byte(self, addr: int, value: int) -> None:
        """Fast byte store."""
        vpn = addr >> PAGE_SHIFT
        entry = self.tlb._entries.get(vpn)
        if entry is not None and entry.writable:
            self.tlb.stats.hits += 1
            entry.frame.data[addr & PAGE_MASK] = value & 0xFF
            return
        frame = self._frame_for(vpn, AccessKind.WRITE)
        frame.data[addr & PAGE_MASK] = value & 0xFF

    def read_u8(self, addr: int) -> int:
        return self.read_int(addr, 1)

    def read_u64(self, addr: int) -> int:
        return self.read_int(addr, 8)

    def write_u8(self, addr: int, value: int) -> None:
        self.write_int(addr, value, 1)

    def write_u64(self, addr: int, value: int) -> None:
        self.write_int(addr, value, 8)

    def read_cstr(self, addr: int, max_len: int = 4096) -> bytes:
        """Read a NUL-terminated byte string (NUL not included)."""
        out = bytearray()
        while len(out) < max_len:
            byte = self.read_u8(addr)
            if byte == 0:
                return bytes(out)
            out.append(byte)
            addr += 1
        raise ValueError("unterminated string")

    def fetch(self, addr: int, n: int) -> bytes:
        """Read *n* bytes for instruction fetch (EXEC permission)."""
        return self.read(addr, n, AccessKind.EXECUTE)

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------

    def fork_cow(self, name: Optional[str] = None) -> "AddressSpace":
        """Create a logical copy of this address space in O(1).

        Both this space and the copy become copy-on-write: the first write
        either side makes to a shared page copies it.  This space's TLB is
        flushed (the software equivalent of the TLB shootdown that
        write-protecting the PTEs would require on hardware).
        """
        clone = AddressSpace(self.pool, name=name, _table=self.table.clone())
        clone.brk_base = self.brk_base
        clone.brk_end = self.brk_end
        clone.mmap_next = self.mmap_next
        clone._zero_frame = self._zero_frame
        self.tlb.flush()
        return clone

    def fork_eager(self, name: Optional[str] = None) -> "AddressSpace":
        """Create a physical copy of this address space in O(pages).

        This is the naive-``fork`` baseline from §3 of the paper: every
        mapped page is duplicated up front.
        """
        clone = AddressSpace(self.pool, name=name)
        clone.brk_base = self.brk_base
        clone.brk_end = self.brk_end
        for vpn, pte in self.table.items():
            frame = self.pool.copy(pte.frame)
            clone.table.map(vpn, frame, pte.perms)
        return clone

    def free(self) -> None:
        """Release all frames and page-table nodes held by this space."""
        if self._freed:
            return
        self._freed = True
        self.table.free()
        self.tlb.flush()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def mapped_pages(self) -> int:
        """Number of pages currently mapped."""
        return self.table.entry_count()

    def mapped_bytes(self) -> int:
        """Total bytes currently mapped."""
        return self.mapped_pages() * PAGE_SIZE

    def resident_private_pages(self) -> int:
        """Pages whose frame this space does not share with anyone
        (accounting for page-table node sharing, not just frame refs)."""
        return self.table.private_entry_count()

    def iter_pages(self) -> Iterator[tuple[int, bytes]]:
        """Yield ``(base_address, page_bytes)`` for every mapped page."""
        for vpn, pte in self.table.items():
            yield vpn << PAGE_SHIFT, bytes(pte.frame.data)

    def content_equal(self, other: "AddressSpace") -> bool:
        """True if both spaces map the same pages with identical bytes."""
        mine = list(self.table.items())
        theirs = list(other.table.items())
        if len(mine) != len(theirs):
            return False
        for (vpn_a, pte_a), (vpn_b, pte_b) in zip(mine, theirs):
            if vpn_a != vpn_b:
                return False
            if pte_a.frame is not pte_b.frame and pte_a.frame.data != pte_b.frame.data:
                return False
        return True

    def stats(self) -> MemStats:
        """Aggregate cost counters for this address space."""
        return MemStats(
            cow_faults=self.faults.cow_faults,
            demand_zero_faults=self.faults.demand_zero_faults,
            pages_copied=self.faults.pages_copied,
            bytes_copied=self.faults.bytes_copied,
            nodes_copied=self.table.nodes_copied,
            tlb_hits=self.tlb.stats.hits,
            tlb_misses=self.tlb.stats.misses,
            tlb_flushes=self.tlb.stats.flushes,
            mapped_pages=self.mapped_pages(),
            live_frames=self.pool.live_frames,
        )


_NEEDED_PERM = {
    AccessKind.READ: Permission.READ,
    AccessKind.WRITE: Permission.WRITE,
    AccessKind.EXECUTE: Permission.EXEC,
}

MASK64_ = (1 << 64) - 1
