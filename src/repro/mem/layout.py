"""Address-space layout constants for the simulated machine.

The simulated machine uses 4 KiB pages and a 48-bit virtual address space,
matching the x86-64 configuration the paper's Dune-based prototype targets.
The layout mirrors a conventional ELF process image: code low, static data
above it, a heap growing up, and a stack growing down from the top of the
canonical lower half.
"""

#: Bytes per page (matches x86-64 small pages).
PAGE_SIZE = 4096

#: log2(PAGE_SIZE).
PAGE_SHIFT = 12

#: Mask for the offset-within-page bits.
PAGE_MASK = PAGE_SIZE - 1

#: Number of virtual-address bits (x86-64 canonical lower half).
VA_BITS = 48

#: Highest valid virtual address + 1.
VA_LIMIT = 1 << VA_BITS

#: Bits of index per radix level (512-entry nodes, as on x86-64).
LEVEL_BITS = 9

#: Number of radix levels in the page table (48 = 12 + 4 * 9).
LEVELS = 4

#: Default load address for guest code.
CODE_BASE = 0x0000_0000_0040_0000

#: Default base for static data (guest .data / .bss).
DATA_BASE = 0x0000_0000_0060_0000

#: Default base of the guest heap (grows upward via ``brk``).
HEAP_BASE = 0x0000_0000_1000_0000

#: Initial stack top (stack grows downward from here).
STACK_TOP = 0x0000_7FFF_FFFF_F000

#: Anonymous-mmap regions grow downward from here (below the stack).
MMAP_BASE = 0x0000_7000_0000_0000

#: Default number of stack pages mapped eagerly for a new guest.
DEFAULT_STACK_PAGES = 64


def page_align_down(addr: int) -> int:
    """Round *addr* down to the start of its page."""
    return addr & ~PAGE_MASK


def page_align_up(addr: int) -> int:
    """Round *addr* up to the next page boundary (identity if aligned)."""
    return (addr + PAGE_MASK) & ~PAGE_MASK


def vpn_of(addr: int) -> int:
    """Return the virtual page number containing *addr*."""
    return addr >> PAGE_SHIFT


def offset_of(addr: int) -> int:
    """Return the offset of *addr* within its page."""
    return addr & PAGE_MASK


def is_canonical(addr: int) -> bool:
    """True if *addr* lies in the simulated canonical address range."""
    return 0 <= addr < VA_LIMIT
