"""Reference-counted physical frames and the simulated physical memory pool.

A :class:`Frame` is one page of simulated physical memory.  Frames are
shared between address spaces and snapshots via reference counting: taking
a snapshot bumps refcounts instead of copying, and a write to a frame whose
refcount exceeds one triggers a copy-on-write duplication.

The :class:`FramePool` plays the role of the physical memory allocator.
It tracks allocation statistics (live frames, high-water mark, total
allocations and copies) so experiments can report memory footprint — e.g.
the E2/E6 live-frame watermark comparisons between COW snapshots and eager
full copies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.mem.layout import PAGE_SIZE

#: Shared all-zero page contents used to detect zero pages cheaply.
_ZERO_PAGE = bytes(PAGE_SIZE)


class Frame:
    """One reference-counted page of simulated physical memory.

    The refcount counts how many page-table leaf entries reference this
    frame (across all live address spaces and snapshots).  Writers must
    hold the only reference; :meth:`repro.mem.addrspace.AddressSpace` makes
    that true by copying shared frames on write faults.
    """

    __slots__ = ("pfn", "data", "refcount")

    def __init__(self, pfn: int, data: Optional[bytearray] = None):
        self.pfn = pfn
        self.data = data if data is not None else bytearray(PAGE_SIZE)
        self.refcount = 1

    def is_zero(self) -> bool:
        """True if the frame currently holds only zero bytes."""
        return self.data == _ZERO_PAGE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Frame(pfn={self.pfn}, rc={self.refcount})"


@dataclass
class PoolStats:
    """Allocation statistics for a :class:`FramePool`."""

    allocated: int = 0
    freed: int = 0
    copied: int = 0
    live: int = 0
    peak_live: int = 0
    limit: Optional[int] = None

    def snapshot(self) -> "PoolStats":
        return PoolStats(
            allocated=self.allocated,
            freed=self.freed,
            copied=self.copied,
            live=self.live,
            peak_live=self.peak_live,
            limit=self.limit,
        )


class OutOfMemoryError(MemoryError):
    """Raised when a bounded :class:`FramePool` is exhausted."""


class FramePool:
    """Allocator for simulated physical frames.

    Parameters
    ----------
    limit:
        Optional maximum number of live frames; exceeding it raises
        :class:`OutOfMemoryError`.  ``None`` (default) means unbounded,
        which suits most tests; bounded pools are used by the SM-A*
        strategy experiments where memory pressure matters.
    """

    def __init__(self, limit: Optional[int] = None):
        self._next_pfn = 0
        self.stats = PoolStats(limit=limit)

    def alloc(self, data: Optional[bytearray] = None) -> Frame:
        """Allocate a fresh frame (zero-filled unless *data* is given)."""
        limit = self.stats.limit
        if limit is not None and self.stats.live >= limit:
            raise OutOfMemoryError(
                f"frame pool exhausted ({self.stats.live}/{limit} frames live)"
            )
        frame = Frame(self._next_pfn, data)
        self._next_pfn += 1
        self.stats.allocated += 1
        self.stats.live += 1
        self.stats.peak_live = max(self.stats.peak_live, self.stats.live)
        return frame

    def copy(self, frame: Frame) -> Frame:
        """Allocate a new frame containing a copy of *frame*'s bytes.

        This is the physical-copy half of a copy-on-write fault.  The
        caller is responsible for dropping its reference to the original.
        """
        clone = self.alloc(bytearray(frame.data))
        self.stats.copied += 1
        return clone

    def get(self, frame: Frame) -> Frame:
        """Take an additional reference to *frame*."""
        frame.refcount += 1
        return frame

    def put(self, frame: Frame) -> None:
        """Drop one reference to *frame*, freeing it at refcount zero."""
        if frame.refcount <= 0:
            raise ValueError(f"double free of {frame!r}")
        frame.refcount -= 1
        if frame.refcount == 0:
            self.stats.freed += 1
            self.stats.live -= 1

    @property
    def live_frames(self) -> int:
        """Number of frames currently allocated and referenced."""
        return self.stats.live

    @property
    def peak_live_frames(self) -> int:
        """High-water mark of live frames over the pool's lifetime."""
        return self.stats.peak_live
