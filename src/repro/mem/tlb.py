"""Software TLB model.

A real implementation of lightweight snapshots must invalidate cached
translations when a snapshot is taken (so the next write faults and COWs)
and when one is restored (the address space just changed wholesale).  We
model that explicitly: the :class:`TLB` caches ``vpn -> TLBEntry`` and the
address space flushes it at the same points hardware would require a TLB
shootdown.  Hit/miss/flush counters feed the F2 architecture accounting
benchmark.

The TLB also gives the pure-Python simulator an important fast path: a hit
avoids the 4-level radix walk entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple, Optional

from repro.mem.frames import Frame
from repro.mem.pagetable import Permission


class TLBEntry(NamedTuple):
    """A cached translation: the frame and the permissions it was cached
    under.  ``writable`` is False for pages that must COW-fault on write
    even though their PTE says WRITE (i.e. shared frames)."""

    frame: Frame
    perms: Permission
    writable: bool


@dataclass
class TLBStats:
    hits: int = 0
    misses: int = 0
    flushes: int = 0
    invalidations: int = 0
    evictions: int = 0


class TLB:
    """A bounded translation cache with LRU-ish eviction.

    Capacity defaults to 1024 entries (a generous L2 TLB).  Eviction pops
    an arbitrary old entry via dict ordering, which approximates FIFO and
    is cheap; the simulator only needs the flush semantics to be exact,
    not the replacement policy.
    """

    def __init__(self, capacity: int = 1024):
        if capacity <= 0:
            raise ValueError("TLB capacity must be positive")
        self.capacity = capacity
        self._entries: dict[int, TLBEntry] = {}
        self.stats = TLBStats()

    def lookup(self, vpn: int) -> Optional[TLBEntry]:
        """Return the cached entry for *vpn*, or None on a miss."""
        entry = self._entries.get(vpn)
        if entry is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return entry

    def insert(self, vpn: int, entry: TLBEntry) -> None:
        """Cache a translation, evicting if at capacity."""
        if vpn not in self._entries and len(self._entries) >= self.capacity:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
            self.stats.evictions += 1
        self._entries[vpn] = entry

    def invalidate(self, vpn: int) -> None:
        """Drop the cached translation for one page (INVLPG)."""
        if self._entries.pop(vpn, None) is not None:
            self.stats.invalidations += 1

    def flush(self) -> None:
        """Drop every cached translation (CR3 reload / shootdown)."""
        self._entries.clear()
        self.stats.flushes += 1

    def __len__(self) -> int:
        return len(self._entries)
