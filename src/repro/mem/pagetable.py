"""Persistent 4-level radix page table with structural sharing.

This is the data structure that makes lightweight snapshots *lightweight*.
A snapshot of an address space is a new reference to the page-table root
(an O(1) operation); interior nodes and leaf frames are shared between the
snapshot and the running address space via reference counts.  The first
write that would disturb a shared subtree copies only the nodes on the
path from the root to the touched page plus the page itself — the software
analogue of what the paper achieves with hardware nested page tables and
write-protected PTEs.

The layout matches x86-64: 4 levels of 512-entry nodes indexed by 9-bit
slices of the 36-bit virtual page number, 4 KiB leaf pages.  Nodes store
their entries sparsely in dicts, so an address space that maps N pages
costs O(N) memory regardless of how spread out the mappings are.

Ownership protocol
------------------
* :meth:`PageTable.map` *consumes* the caller's reference to the frame.
* :meth:`PageTable.unmap` and :meth:`PageTable.free` release frame
  references back to the pool.
* :meth:`PageTable.clone` shares the root (refcount bump); either table may
  subsequently mutate without affecting the other.
"""

from __future__ import annotations

import enum
from typing import Iterator, NamedTuple, Optional

from repro.mem.frames import Frame, FramePool
from repro.mem.layout import LEVEL_BITS, LEVELS

_INDEX_MASK = (1 << LEVEL_BITS) - 1
_TOP_LEVEL = LEVELS - 1


class Permission(enum.IntFlag):
    """Page permission bits (subset of an x86 PTE)."""

    NONE = 0
    READ = 1
    WRITE = 2
    EXEC = 4
    RW = READ | WRITE
    RX = READ | EXEC
    RWX = READ | WRITE | EXEC


class PTE(NamedTuple):
    """A leaf page-table entry: a frame plus its permission bits.

    PTEs are immutable so they can be shared freely between a node and its
    copy; mutation happens by replacing the entry in an exclusively-owned
    level-0 node.
    """

    frame: Frame
    perms: Permission


class _Node:
    """One radix node.  Level 0 nodes map index -> PTE; higher levels map
    index -> child node."""

    __slots__ = ("level", "entries", "refcount")

    def __init__(self, level: int):
        self.level = level
        self.entries: dict = {}
        self.refcount = 1


def _index_at(vpn: int, level: int) -> int:
    return (vpn >> (LEVEL_BITS * level)) & _INDEX_MASK


class PageTable:
    """A mutable page table backed by persistent, sharable radix nodes."""

    def __init__(self, pool: FramePool, _root: Optional[_Node] = None):
        self.pool = pool
        self._root = _root if _root is not None else _Node(_TOP_LEVEL)
        #: Number of radix nodes copied to regain exclusivity (COW cost).
        self.nodes_copied = 0
        #: Monotonic generation, bumped on every structural mutation; used
        #: by the TLB layer to know when cached translations are stale.
        self.generation = 0

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def lookup(self, vpn: int) -> Optional[PTE]:
        """Return the PTE mapping *vpn*, or None if unmapped.

        Never mutates the tree — safe on shared (snapshot) tables.
        """
        node = self._root
        for level in range(_TOP_LEVEL, 0, -1):
            node = node.entries.get(_index_at(vpn, level))
            if node is None:
                return None
        return node.entries.get(_index_at(vpn, 0))

    def is_mapped(self, vpn: int) -> bool:
        """True if *vpn* has a mapping."""
        return self.lookup(vpn) is not None

    def mapped_vpns(self) -> Iterator[int]:
        """Yield every mapped virtual page number in ascending order."""
        for vpn, _pte in self.items():
            yield vpn

    def items(self) -> Iterator[tuple[int, PTE]]:
        """Yield ``(vpn, pte)`` pairs for every mapping, ascending."""
        yield from self._items(self._root, 0)

    def _items(self, node: _Node, prefix: int) -> Iterator[tuple[int, PTE]]:
        if node.level == 0:
            for idx in sorted(node.entries):
                yield (prefix << LEVEL_BITS) | idx, node.entries[idx]
        else:
            for idx in sorted(node.entries):
                yield from self._items(
                    node.entries[idx], (prefix << LEVEL_BITS) | idx
                )

    def entry_count(self) -> int:
        """Total number of mapped pages."""
        return sum(1 for _ in self.items())

    def private_entry_count(self) -> int:
        """Number of pages only this table can reach.

        A page is private iff every node on its path is exclusively owned
        (refcount 1 all the way from the root) *and* its frame refcount is
        1 — node sharing makes every frame underneath logically shared
        even when the frame's own refcount is 1.
        """

        def walk(node: _Node, exclusive: bool) -> int:
            exclusive = exclusive and node.refcount == 1
            if node.level == 0:
                if not exclusive:
                    return 0
                return sum(
                    1 for pte in node.entries.values() if pte.frame.refcount == 1
                )
            return sum(walk(c, exclusive) for c in node.entries.values())

        return walk(self._root, True)

    def node_count(self) -> int:
        """Total number of radix nodes reachable from this root."""

        def count(node: _Node) -> int:
            if node.level == 0:
                return 1
            return 1 + sum(count(c) for c in node.entries.values())

        return count(self._root)

    def shares_root_with(self, other: "PageTable") -> bool:
        """True if *other* currently shares this table's root node."""
        return self._root is other._root

    # ------------------------------------------------------------------
    # Snapshot path
    # ------------------------------------------------------------------

    def clone(self) -> "PageTable":
        """Create a logical copy of the whole table in O(1).

        The clone shares every node and frame with this table; reference
        counts keep both sides safe to mutate independently (mutation
        copies shared nodes lazily).
        """
        self._root.refcount += 1
        clone = PageTable(self.pool, _root=self._root)
        return clone

    # ------------------------------------------------------------------
    # Write path (copy-on-write aware)
    # ------------------------------------------------------------------

    def _copy_node(self, node: _Node) -> _Node:
        """Shallow-copy *node*, bumping refs on all its children.

        The caller releases its reference to *node* and owns the copy.
        """
        fresh = _Node(node.level)
        fresh.entries = dict(node.entries)
        if node.level == 0:
            for pte in fresh.entries.values():
                pte.frame.refcount += 1
        else:
            for child in fresh.entries.values():
                child.refcount += 1
        node.refcount -= 1
        self.nodes_copied += 1
        return fresh

    def _leaf_exclusive(self, vpn: int, create: bool) -> Optional[_Node]:
        """Descend to the level-0 node for *vpn*, copying shared nodes so
        that the whole path is exclusively owned by this table.

        With ``create=True`` missing interior nodes are allocated; with
        ``create=False`` a missing path returns None untouched.
        """
        if self._root.refcount > 1:
            self._root = self._copy_node(self._root)
        node = self._root
        for level in range(_TOP_LEVEL, 0, -1):
            idx = _index_at(vpn, level)
            child = node.entries.get(idx)
            if child is None:
                if not create:
                    return None
                child = _Node(level - 1)
                node.entries[idx] = child
            elif child.refcount > 1:
                child = self._copy_node(child)
                node.entries[idx] = child
            node = child
        return node

    def map(self, vpn: int, frame: Frame, perms: Permission) -> None:
        """Map *vpn* to *frame* with *perms*, consuming the frame ref.

        Replacing an existing mapping releases the old frame.
        """
        leaf = self._leaf_exclusive(vpn, create=True)
        idx = _index_at(vpn, 0)
        old = leaf.entries.get(idx)
        leaf.entries[idx] = PTE(frame, perms)
        if old is not None:
            self.pool.put(old.frame)
        self.generation += 1

    def unmap(self, vpn: int) -> bool:
        """Remove the mapping for *vpn*.  Returns False if it was absent."""
        leaf = self._leaf_exclusive(vpn, create=False)
        if leaf is None:
            return False
        idx = _index_at(vpn, 0)
        old = leaf.entries.pop(idx, None)
        if old is None:
            return False
        self.pool.put(old.frame)
        self.generation += 1
        return True

    def set_perms(self, vpn: int, perms: Permission) -> None:
        """Change the permission bits of an existing mapping."""
        leaf = self._leaf_exclusive(vpn, create=False)
        idx = _index_at(vpn, 0)
        if leaf is None or idx not in leaf.entries:
            raise KeyError(f"vpn {vpn:#x} is not mapped")
        old = leaf.entries[idx]
        leaf.entries[idx] = PTE(old.frame, perms)
        self.generation += 1

    def make_private(self, vpn: int) -> PTE:
        """Resolve a copy-on-write fault on *vpn*.

        Ensures the path and the frame are exclusively owned, copying the
        frame if it is shared, and returns the (possibly new) PTE.  Raises
        KeyError if *vpn* is unmapped.
        """
        leaf = self._leaf_exclusive(vpn, create=False)
        idx = _index_at(vpn, 0)
        if leaf is None or idx not in leaf.entries:
            raise KeyError(f"vpn {vpn:#x} is not mapped")
        pte = leaf.entries[idx]
        if pte.frame.refcount > 1:
            fresh = self.pool.copy(pte.frame)
            pte.frame.refcount -= 1
            # pool accounting: the original stays live (other refs), the
            # copy is a new live frame already counted by pool.copy().
            pte = PTE(fresh, pte.perms)
            leaf.entries[idx] = pte
            self.generation += 1
        return pte

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def free(self) -> None:
        """Release this table's reference to the whole tree."""
        if self._root is not None:
            self._put_node(self._root)
            self._root = None  # type: ignore[assignment]

    def _put_node(self, node: _Node) -> None:
        node.refcount -= 1
        if node.refcount > 0:
            return
        if node.level == 0:
            for pte in node.entries.values():
                self.pool.put(pte.frame)
        else:
            for child in node.entries.values():
                self._put_node(child)
        node.entries.clear()
