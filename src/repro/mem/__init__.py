"""Simulated virtual-memory subsystem.

This package stands in for the x86 MMU + nested page tables that the paper
builds on via Dune.  It provides:

* :mod:`repro.mem.layout` -- page-size and address-space layout constants;
* :mod:`repro.mem.frames` -- reference-counted physical frames and the
  global frame pool (simulated physical memory);
* :mod:`repro.mem.pagetable` -- a persistent 4-level radix page table with
  structural sharing, the data structure that makes snapshot creation O(1);
* :mod:`repro.mem.addrspace` -- :class:`AddressSpace`, the mutable
  process-facing view with copy-on-write fault handling;
* :mod:`repro.mem.tlb` -- a software TLB model with invalidation counting;
* :mod:`repro.mem.faults` -- page-fault exception types and statistics.

The cost model is explicit: every copy-on-write fault, copied page-table
node, and copied frame is counted, so benchmarks can report simulated cost
(pages copied, faults taken) alongside Python wall-clock.
"""

from repro.mem.addrspace import AddressSpace, MemStats
from repro.mem.faults import (
    AccessKind,
    NotMappedError,
    PageFaultError,
    ProtectionError,
)
from repro.mem.frames import Frame, FramePool
from repro.mem.layout import (
    CODE_BASE,
    DATA_BASE,
    HEAP_BASE,
    PAGE_MASK,
    PAGE_SHIFT,
    PAGE_SIZE,
    STACK_TOP,
    page_align_down,
    page_align_up,
)
from repro.mem.pagetable import PageTable, Permission
from repro.mem.tlb import TLB, TLBEntry

__all__ = [
    "AccessKind",
    "AddressSpace",
    "CODE_BASE",
    "DATA_BASE",
    "Frame",
    "FramePool",
    "HEAP_BASE",
    "MemStats",
    "NotMappedError",
    "PAGE_MASK",
    "PAGE_SHIFT",
    "PAGE_SIZE",
    "PageFaultError",
    "PageTable",
    "Permission",
    "ProtectionError",
    "STACK_TOP",
    "TLB",
    "TLBEntry",
    "page_align_down",
    "page_align_up",
]
