"""Hand-coded backtracking.

"Clearly, problems with a trivial instruction count per extension step
(e.g., n-queens) are best implemented by hand-coding the backtracking
logic on a stack." (§5)  This module is that upper bound: the same
search as Figure 1 with explicit undo, no engine, no snapshots.
"""

from __future__ import annotations

from typing import Callable, Optional


def handcoded_nqueens_count(n: int) -> int:
    """Count n-queens solutions with explicit undo (Figure 1's arrays)."""
    row = [0] * n
    ld = [0] * (2 * n)
    rd = [0] * (2 * n)
    count = 0

    def place(c: int) -> None:
        nonlocal count
        if c == n:
            count += 1
            return
        for r in range(n):
            if row[r] or ld[r + c] or rd[n + r - c]:
                continue
            row[r] = 1
            ld[r + c] = 1
            rd[n + r - c] = 1
            place(c + 1)
            row[r] = 0          # the hand-written undo the paper's
            ld[r + c] = 0       # abstraction makes unnecessary
            rd[n + r - c] = 0

    place(0)
    return count


def handcoded_nqueens_boards(n: int) -> list[str]:
    """Enumerate boards as digit strings (matching the guests' output)."""
    col = [0] * n
    row = [0] * n
    ld = [0] * (2 * n)
    rd = [0] * (2 * n)
    boards: list[str] = []

    def place(c: int) -> None:
        if c == n:
            boards.append("".join(str(col[i]) for i in range(n)))
            return
        for r in range(n):
            if row[r] or ld[r + c] or rd[n + r - c]:
                continue
            col[c] = r
            row[r] = 1
            ld[r + c] = 1
            rd[n + r - c] = 1
            place(c + 1)
            row[r] = 0
            ld[r + c] = 0
            rd[n + r - c] = 0

    place(0)
    return boards


def handcoded_search(
    fanout: Callable[[tuple], int],
    check: Callable[[tuple], bool],
    depth: int,
    on_solution: Optional[Callable[[tuple], None]] = None,
) -> int:
    """Generic hand-coded DFS used by the synthetic E3 workloads.

    Explores prefix tuples; ``fanout(prefix)`` gives the number of
    choices at this node, ``check(prefix)`` prunes invalid prefixes.
    Returns the number of complete, valid prefixes of length *depth*.
    """
    count = 0
    stack: list[tuple] = [()]
    while stack:
        prefix = stack.pop()
        if len(prefix) == depth:
            count += 1
            if on_solution is not None:
                on_solution(prefix)
            continue
        for choice in range(fanout(prefix) - 1, -1, -1):
            candidate = prefix + (choice,)
            if check(candidate):
                stack.append(candidate)
    return count
