"""libckpt-style checkpointing (the §6 related-work contrast).

"Lightweight, immutable snapshots are a form of checkpointing [14].
However, our approach differs in that [...] snapshots are designed to
both take and restore with very high frequency."  A classic checkpoint
serialises the entire image to a flat byte blob and restores by
rebuilding the address space page by page — O(image size) both ways,
regardless of how little changed.  E6 measures that against O(1) COW
snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mem.addrspace import AddressSpace
from repro.mem.frames import FramePool
from repro.mem.layout import PAGE_SHIFT, PAGE_SIZE
from repro.mem.pagetable import Permission

_MAGIC = b"CKPT"
#: Serialized page record: 8-byte vpn, 2-byte perms, PAGE_SIZE data.
_HEADER = 4 + 8


@dataclass
class CkptStats:
    checkpoints: int = 0
    restores: int = 0
    bytes_serialized: int = 0
    bytes_restored: int = 0


class Checkpointer:
    """Serialise/rebuild whole address spaces."""

    def __init__(self) -> None:
        self.stats = CkptStats()

    def checkpoint(self, space: AddressSpace) -> bytes:
        """Serialise every mapped page (data and permissions) to a blob."""
        out = bytearray(_MAGIC)
        count = 0
        for vpn, pte in space.table.items():
            out += vpn.to_bytes(8, "little")
            out += int(pte.perms).to_bytes(2, "little")
            out += pte.frame.data
            count += 1
        out[4:4] = count.to_bytes(8, "little")
        self.stats.checkpoints += 1
        self.stats.bytes_serialized += len(out)
        return bytes(out)

    def restore(self, blob: bytes, pool: FramePool,
                name: str = "ckpt-restore") -> AddressSpace:
        """Rebuild an address space from a checkpoint blob."""
        if blob[:4] != _MAGIC:
            raise ValueError("not a checkpoint blob")
        count = int.from_bytes(blob[4:12], "little")
        space = AddressSpace(pool, name=name)
        pos = 12
        record = 8 + 2 + PAGE_SIZE
        for _ in range(count):
            vpn = int.from_bytes(blob[pos : pos + 8], "little")
            perms = Permission(int.from_bytes(blob[pos + 8 : pos + 10], "little"))
            data = blob[pos + 10 : pos + 10 + PAGE_SIZE]
            space.map_region(vpn << PAGE_SHIFT, PAGE_SIZE, perms, data=data)
            pos += record
        if pos != len(blob):
            raise ValueError("trailing bytes in checkpoint blob")
        self.stats.restores += 1
        self.stats.bytes_restored += len(blob)
        return space
