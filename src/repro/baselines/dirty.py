"""Dirty-set-eager snapshotting (the DESIGN.md §5 granularity ablation).

Two ways to preserve a snapshot's immutability against an extension's
writes:

* **fault-per-page COW** (the default :class:`SnapshotManager`): restore
  shares everything; the extension's first write to each page takes a
  fault and copies it — pay only for what is *actually* rewritten;
* **eager copy of the dirty set** (this manager): the snapshot records
  which pages its creator had dirtied since the previous snapshot point
  (its working set); every restore pre-copies exactly those pages into
  the child, predicting that the child will rewrite them.

For loop-shaped guests that rewrite the same working set every step the
prediction is perfect — the same pages get copied, just up front, with
no fault handling.  For search guests whose extensions mostly fail
before writing much, the prediction overcopies.  The X2 ablation
benchmark quantifies both regimes.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.mem.addrspace import AddressSpace
from repro.snapshot.snapshot import Snapshot, SnapshotManager


class DirtyEagerSnapshotManager(SnapshotManager):
    """Snapshot manager that pre-copies the recorded dirty set on restore."""

    def __init__(self, pool=None, registry=None):
        super().__init__(pool, registry=registry)
        #: Pages privatised eagerly at restore time (vs on a later fault).
        self.eager_copies = 0

    def take(
        self,
        space: AddressSpace,
        regs: Any = None,
        files: Any = None,
        parent: Optional[Snapshot] = None,
    ) -> Snapshot:
        snap = super().take(space, regs=regs, files=files, parent=parent)
        # Record the creator's working set; children will likely rewrite
        # exactly these pages.
        snap.meta["dirty"] = frozenset(space.dirty_vpns)
        space.dirty_vpns.clear()
        return snap

    def restore(self, snap: Snapshot) -> tuple[Any, AddressSpace, Any]:
        regs, space, files = super().restore(snap)
        for vpn in snap.meta.get("dirty", ()):
            pte = space.table.lookup(vpn)
            if pte is None:
                continue
            before = pte.frame
            fresh = space.table.make_private(vpn)
            if fresh.frame is not before:
                self.eager_copies += 1
                space.faults.pages_copied += 1
                space.dirty_vpns.add(vpn)
        space.tlb.flush()
        return regs, space, files
