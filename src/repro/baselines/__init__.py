"""Comparison baselines from the paper.

* :mod:`repro.baselines.handcoded` -- backtracking hand-coded "on a
  stack" (§5: best for trivial extension steps);
* :mod:`repro.baselines.eager` -- the naive-``fork`` strawman of §3:
  every guess eagerly copies the whole address space;
* :mod:`repro.baselines.ckpt` -- libckpt-style checkpointing (§6):
  serialize/restore of the full image, the heavyweight contrast to
  lightweight snapshots.
"""

from repro.baselines.ckpt import Checkpointer
from repro.baselines.eager import EagerSnapshotManager
from repro.baselines.handcoded import (
    handcoded_nqueens_boards,
    handcoded_nqueens_count,
)

__all__ = [
    "Checkpointer",
    "EagerSnapshotManager",
    "handcoded_nqueens_boards",
    "handcoded_nqueens_count",
]
