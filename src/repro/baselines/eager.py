"""The naive-fork baseline: eager full copies instead of COW sharing.

§3 dismisses plain ``fork`` for backtracking partly because of "the
large performance overheads of this naive approach".  This manager is a
drop-in replacement for :class:`SnapshotManager` whose take/restore do
an **eager physical copy of every mapped page**, so the E2 experiment
can run the identical engine and guest on both substrates and compare
pages copied, frame footprint, and wall-clock.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.errors import SnapshotDiscardedError
from repro.mem.addrspace import AddressSpace
from repro.snapshot.snapshot import Snapshot, SnapshotManager


class EagerSnapshotManager(SnapshotManager):
    """SnapshotManager with fork-like eager-copy semantics."""

    def take(
        self,
        space: AddressSpace,
        regs: Any = None,
        files: Any = None,
        parent: Optional[Snapshot] = None,
    ) -> Snapshot:
        if space.pool is not self.pool:
            raise ValueError("address space does not belong to this manager's pool")
        frozen_space = space.fork_eager(name=f"eagersnap-of-{space.name}")
        frozen_files = files.fork_cow() if hasattr(files, "fork_cow") else files
        snap = Snapshot(regs, frozen_space, frozen_files, parent)
        self._note_take(snap)
        return snap

    def restore(self, snap: Snapshot) -> tuple[Any, AddressSpace, Any]:
        if not snap.alive:
            raise SnapshotDiscardedError(snap.sid, "restore")
        space = snap.space.fork_eager(name=f"eager-restore-{snap.sid}")
        files = (
            snap.files.fork_cow() if hasattr(snap.files, "fork_cow") else snap.files
        )
        self._note_restore(snap, space)
        return snap.regs, space, files
