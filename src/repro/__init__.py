"""repro: lightweight immutable execution snapshots and system-level
backtracking.

A from-scratch reproduction of *"Lightweight Snapshots and System-level
Backtracking"* (Bugnion, Chipounov, Candea — HotOS 2013) as a pure-Python
library.  The hardware the paper relies on (VT-x, nested page tables, the
Dune kernel module) is replaced by a simulated machine; see DESIGN.md for
the substitution map.

Quick start
-----------
>>> from repro import ReplayEngine
>>> def two_bits(sys):
...     return sys.guess(2) * 2 + sys.guess(2)
>>> ReplayEngine(strategy="dfs").run(two_bits).solution_values
[0, 1, 2, 3]

Packages
--------
:mod:`repro.core`
    Engines and the guest-facing guess API.
:mod:`repro.mem`
    Simulated virtual memory: COW page tables, frames, TLB.
:mod:`repro.snapshot`
    Lightweight immutable snapshots and the snapshot tree.
:mod:`repro.search`
    DFS / BFS / A* / SM-A* / coverage / external strategies.
:mod:`repro.cpu`
    The simulated CPU: ISA, assembler, interpreter.
:mod:`repro.vmm`
    Dune-like virtualization layer: VCPU, VM exits, rings.
:mod:`repro.libos`
    The backtracking libOS: guest loading, syscalls, COW files.
:mod:`repro.interpose`
    System-call interposition policies.
:mod:`repro.sat`
    Incremental DPLL SAT solver (the Z3 stand-in).
:mod:`repro.symex`
    Symbolic execution engine (the S2E stand-in).
:mod:`repro.prolog`
    WAM-flavoured Prolog engine (the XSB stand-in).
:mod:`repro.baselines`
    Hand-coded, fork-eager and checkpoint baselines.
:mod:`repro.workloads`
    n-queens, sudoku, coloring, 8-puzzle, synthetic kernels.
"""

from repro.core import (
    GuessError,
    GuessFail,
    ReplayEngine,
    SearchResult,
    Solution,
)
from repro.search import Strategy, get_strategy
from repro.snapshot import Snapshot, SnapshotManager, SnapshotTree

__version__ = "1.0.0"


def __getattr__(name: str):
    """Lazily expose the machine-guest engines at the top level.

    They pull in the whole simulated-machine stack, so they load on
    first use rather than at package import.
    """
    lazy = {
        "MachineEngine",
        "ParallelMachineEngine",
        "ReplayMachineEngine",
        "PosixEngine",
        "InteractiveSearch",
    }
    if name in lazy:
        import repro.core as core

        return getattr(core, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "GuessError",
    "GuessFail",
    "InteractiveSearch",
    "MachineEngine",
    "ParallelMachineEngine",
    "PosixEngine",
    "ReplayEngine",
    "ReplayMachineEngine",
    "SearchResult",
    "Snapshot",
    "SnapshotManager",
    "SnapshotTree",
    "Solution",
    "Strategy",
    "__version__",
    "get_strategy",
]
