"""Deterministic chaos injection for the process-parallel engine.

A :class:`FaultPlan` is a *pure function of its seed*: every fault
decision is derived by hashing ``(seed, task prefix, attempt)``, so the
same plan injects the same faults at the same points on every run —
which is what lets a CI sweep assert solution-set invariance across
dozens of seeds and still reproduce any failure locally from its seed
alone.

The plan plugs into three seams:

* ``worker_hook`` — the cluster's pre-task ``fault_hook``: kills the
  worker (``os._exit``) or stalls it past the task timeout;
* ``pipe_hook`` — the result-pipe seam in ``_worker_main``: writes
  garbage bytes into the coordinator's result pipe before the real
  result, exercising the protocol-corruption path;
* ``journal_hook`` — the journal writer's fault seam: kills the
  coordinator at a chosen epoch, tears the write at that epoch (partial
  line then kill), or flips a bit in the record (silent corruption the
  recovery scan must skip and count).

Fault decisions are made only for ``task.attempt <= max_faulted_attempt``
(default: first attempt only), so every faulted task eventually
succeeds on retry and a chaos run remains *solution-complete* — the
invariant the differential sweep checks.  ``poison_prefixes`` opts
specific subtrees out of that guarantee (they crash on every attempt)
to exercise the circuit breaker's quarantine path instead.
"""

from __future__ import annotations

import os
import time
import zlib
from dataclasses import dataclass, replace
from typing import Optional

from repro.core.errors import CoordinatorKilled
from repro.core.journal import TornWrite
from repro.obs import events as _events
from repro.obs.trace import TRACER as _TRACER

#: Bytes written to the result pipe by a garbage fault.  Deliberately
#: not a valid pickle: the coordinator's recv must fail, not misparse.
GARBAGE = b"\xde\xad\xbe\xef" * 16

#: Worker fault kinds a plan can choose per task.
WORKER_FAULTS = ("exit", "stall", "garbage")


def _roll(*key) -> float:
    """Deterministic uniform [0, 1) from a hashable key."""
    digest = zlib.crc32(repr(key).encode("utf-8")) & 0xFFFFFFFF
    return digest / 2**32


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, picklable schedule of injected faults.

    Rates are per *task attempt* and mutually exclusive (one roll
    decides the kind), so ``crash_rate + stall_rate + garbage_rate``
    must stay <= 1.
    """

    seed: int = 0
    crash_rate: float = 0.0
    stall_rate: float = 0.0
    garbage_rate: float = 0.0
    #: How long a stall fault sleeps; must exceed the engine's
    #: task_timeout for the stall to be detected and recovered.
    stall_seconds: float = 30.0
    #: Inject worker faults only for attempts <= this (termination: a
    #: retried task runs fault-free).
    max_faulted_attempt: int = 0
    #: Decision prefixes that crash the worker on *every* attempt —
    #: guaranteed circuit-breaker food.
    poison_prefixes: tuple = ()
    #: Kill the coordinator when the journal reaches this epoch.
    coordinator_kill_epoch: Optional[int] = None
    #: Tear the journal write at this epoch (partial record, then kill).
    journal_tear_epoch: Optional[int] = None
    #: Flip one bit in the record at this epoch (run continues; the
    #: corruption must be caught by recovery's CRC scan).
    journal_bitflip_epoch: Optional[int] = None
    # -- network faults (TCP transport seam; per frame, per direction) --
    #: Probability a frame is silently dropped.
    net_drop_rate: float = 0.0
    #: Probability a frame is delayed by ``net_delay_s`` seconds.
    net_delay_rate: float = 0.0
    net_delay_s: float = 0.05
    #: Probability a frame is delivered twice.
    net_dup_rate: float = 0.0
    #: Probability a frame is held back and delivered after its
    #: successor (pairwise reorder).
    net_reorder_rate: float = 0.0
    #: Probability a *window* of ``partition_frames`` consecutive frames
    #: is dropped in both directions — a symmetric partition.  The
    #: worker keeps computing; the coordinator declares it down on the
    #: heartbeat deadline, re-dispatches its leases, and fences off the
    #: late results when the window lifts.
    partition_rate: float = 0.0
    partition_frames: int = 8
    #: Probability a window drops only worker→coordinator frames: the
    #: half-open case, where the worker still hears the coordinator but
    #: its own traffic (pings included) vanishes.
    half_open_rate: float = 0.0

    def __post_init__(self):
        total = self.crash_rate + self.stall_rate + self.garbage_rate
        if total > 1.0 + 1e-9:
            raise ValueError(
                f"fault rates must sum to <= 1, got {total}"
            )

    # -- decisions -----------------------------------------------------

    def worker_fault(self, task) -> Optional[str]:
        """The worker fault to inject for *task*, or None.

        Pure and deterministic: same plan + same (prefix, attempt) →
        same answer, in any process.
        """
        if tuple(task.prefix) in tuple(
            tuple(p) for p in self.poison_prefixes
        ):
            return "exit"
        if task.attempt > self.max_faulted_attempt:
            return None
        r = _roll(self.seed, tuple(task.prefix), task.attempt)
        if r < self.crash_rate:
            return "exit"
        if r < self.crash_rate + self.stall_rate:
            return "stall"
        if r < self.crash_rate + self.stall_rate + self.garbage_rate:
            return "garbage"
        return None

    def sterile(self) -> "FaultPlan":
        """This plan with every coordinator/journal fault removed.

        Used when resuming a killed run: the kill epoch already fired,
        and epochs continue across resume, so carrying it over would
        kill the resumed coordinator at the same epoch forever.  Worker
        faults are kept — resume must survive them too.
        """
        return replace(
            self,
            coordinator_kill_epoch=None,
            journal_tear_epoch=None,
            journal_bitflip_epoch=None,
        )

    @property
    def has_worker_faults(self) -> bool:
        return bool(
            self.crash_rate or self.stall_rate or self.garbage_rate
            or self.poison_prefixes
        )

    @property
    def has_net_faults(self) -> bool:
        return bool(
            self.net_drop_rate or self.net_delay_rate or self.net_dup_rate
            or self.net_reorder_rate or self.partition_rate
            or self.half_open_rate
        )

    def net_fault(self, direction: str, wid: int, seq: int) -> list:
        """Transport actions for frame *seq* of *wid* in *direction*.

        Returns ``[(action, delay_s), ...]``; actions are ``pass``
        (deliver), ``drop``, ``delay``, ``dup`` (an extra delivery,
        emitted alongside a pass) and ``hold`` (park until the next
        passing frame — pairwise reorder).  Deterministic in
        ``(seed, direction, wid, seq)``, so a sweep failure reproduces
        from its seed alone.  Window faults (partition, half-open) are
        keyed on ``seq // partition_frames`` so they blind a worker for
        several consecutive frames — long enough to trip the heartbeat
        deadline rather than look like a single lost message.
        """
        window = seq // max(1, self.partition_frames)
        if self.partition_rate and _roll(
            self.seed, "partition", wid, window
        ) < self.partition_rate:
            return [("drop", 0.0)]
        if self.half_open_rate and direction == "w2c" and _roll(
            self.seed, "halfopen", wid, window
        ) < self.half_open_rate:
            return [("drop", 0.0)]
        r = _roll(self.seed, "net", direction, wid, seq)
        edge = self.net_drop_rate
        if r < edge:
            return [("drop", 0.0)]
        edge += self.net_delay_rate
        if r < edge:
            return [("delay", self.net_delay_s)]
        edge += self.net_dup_rate
        if r < edge:
            return [("pass", 0.0), ("dup", 0.0)]
        edge += self.net_reorder_rate
        if r < edge:
            return [("hold", 0.0)]
        return [("pass", 0.0)]

    def net_hook(self, direction: str, wid: int, seq: int) -> list:
        """TcpTransport's ``net_hook`` seam (see :meth:`net_fault`)."""
        return self.net_fault(direction, wid, seq)

    # -- hooks (the seams the engine wires these into) -----------------

    def worker_hook(self, task) -> None:
        """ClusterConfig.fault_hook: runs in the worker before a task."""
        kind = self.worker_fault(task)
        if kind == "exit":
            if _TRACER.enabled:
                _TRACER.emit(_events.CHAOS_WORKER_FAULT, kind="exit",
                             task=list(task.prefix), attempt=task.attempt)
            os._exit(17)
        if kind == "stall":
            if _TRACER.enabled:
                _TRACER.emit(_events.CHAOS_WORKER_FAULT, kind="stall",
                             task=list(task.prefix), attempt=task.attempt)
            time.sleep(self.stall_seconds)

    def pipe_hook(self, conn, task) -> None:
        """ClusterConfig.pipe_hook: runs before a result is sent."""
        if self.worker_fault(task) == "garbage":
            if _TRACER.enabled:
                _TRACER.emit(_events.CHAOS_WORKER_FAULT, kind="garbage",
                             task=list(task.prefix), attempt=task.attempt)
            conn.send_bytes(GARBAGE)

    def journal_hook(self, epoch: int, line: str) -> Optional[str]:
        """JournalWriter.fault_hook: runs before a record is written."""
        if epoch == self.coordinator_kill_epoch:
            if _TRACER.enabled:
                _TRACER.emit(_events.CHAOS_COORDINATOR_KILL, epoch=epoch)
            raise CoordinatorKilled(epoch)
        if epoch == self.journal_tear_epoch:
            if _TRACER.enabled:
                _TRACER.emit(_events.CHAOS_JOURNAL_FAULT, kind="tear",
                             epoch=epoch)
            # Keep at least one byte and lose at least the newline, so
            # the tail is genuinely torn whatever the record length.
            cut = max(1, (len(line) * 2) // 3)
            raise TornWrite(line[:cut])
        if epoch == self.journal_bitflip_epoch:
            if _TRACER.enabled:
                _TRACER.emit(_events.CHAOS_JOURNAL_FAULT, kind="bitflip",
                             epoch=epoch)
            body = line.rstrip("\n")
            pos = int(_roll(self.seed, "bitflip", epoch) * len(body))
            pos = min(pos, len(body) - 1)
            flipped = chr(ord(body[pos]) ^ 0x01)
            return body[:pos] + flipped + body[pos + 1:] + "\n"
        return None
