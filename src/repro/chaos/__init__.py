"""Deterministic chaos injection for crash-tolerance testing.

See :mod:`repro.chaos.plan` for the seeded :class:`FaultPlan` and
``python -m repro.tools.chaos`` for the seed-sweep CLI that asserts
solution-set invariance under injected faults.
"""

from repro.chaos.plan import GARBAGE, WORKER_FAULTS, FaultPlan

__all__ = ["FaultPlan", "GARBAGE", "WORKER_FAULTS"]
