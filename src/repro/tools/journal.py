"""Inspect a write-ahead run journal.

Usage::

    python -m repro.tools.journal inspect run.journal [--json] [--records]

``inspect`` scans the journal with the same CRC-verifying recovery path
the engine resumes through (:func:`repro.core.journal.recover`) and
reports what a resume would see: the header, per-type record counts,
epoch range, corrupt records (interior skips vs torn tail), the pending
frontier, durable solutions, and quarantined tasks with their evidence.

Exit status: 0 for a clean journal, 1 when any corruption was detected
(skipped or torn records) — so CI can flag a journal that recovered but
lost records.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.core.errors import JournalError
from repro.core.journal import recover, scan


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.journal",
        description="Inspect a crash-tolerant run journal.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    inspect = sub.add_parser(
        "inspect", help="scan a journal and report its recoverable state"
    )
    inspect.add_argument("journal", help="journal file (JSONL)")
    inspect.add_argument("--json", action="store_true",
                        help="emit the report as one JSON object")
    inspect.add_argument("--records", action="store_true",
                        help="also dump every valid record")
    return parser


def _report(args) -> dict:
    recovered = recover(args.journal)
    header = recovered.header or {}
    report = {
        "journal": args.journal,
        "version": header.get("version"),
        "program": header.get("program"),
        "strategy": header.get("strategy"),
        "workers": header.get("workers"),
        "certified": header.get("certified"),
        "records": recovered.records,
        "counts": recovered.counts,
        "last_epoch": recovered.last_epoch,
        "valid_bytes": recovered.valid_bytes,
        "skipped": recovered.skipped,
        "torn": recovered.torn,
        "resumes": recovered.resumes,
        "finished": recovered.finished,
        "stop_reason": (
            recovered.run_end.get("stop_reason")
            if recovered.run_end else None
        ),
        "pending": [list(t.prefix) for t in recovered.pending],
        "completed": len(recovered.completed_keys),
        "solutions": len(recovered.solutions),
        "dropped": [list(t.prefix) for t in recovered.dropped],
        "transport": header.get("transport"),
        "lease_timeout": header.get("lease_timeout"),
        "last_fence": recovered.last_fence,
        "poisoned": [
            {
                "task": list(task.prefix),
                "evidence": evidence,
                # The distinct workers this task is blamed for killing —
                # the circuit breaker's quarantine basis.
                "workers": sorted({
                    e.get("worker") for e in evidence
                    if e.get("worker") is not None
                }),
                "lease_history": recovered.lease_history.get(
                    task.key(), []
                ),
            }
            for task, evidence in recovered.poisoned
        ],
        # Full per-task dispatch/expire/stale/complete lineage for every
        # task that was ever re-dispatched or fenced — the forensic view
        # of which worker held which fence when, and whether the subtree
        # was ultimately accounted.
        "lease_history": {
            ",".join(map(str, key)): {
                "events": events,
                "completed": key in recovered.completed_keys,
            }
            for key, events in sorted(recovered.lease_history.items())
            if len(events) > 1
        },
    }
    if args.records:
        records, _, _, _ = scan(args.journal)
        report["record_list"] = records
    return report


def _render_human(report: dict) -> str:
    lines = [f"journal {report['journal']}"]
    lines.append(
        f"  header: version={report['version']} "
        f"strategy={report['strategy']} workers={report['workers']} "
        f"certified={report['certified']}"
    )
    lines.append(f"  program: {report['program']}")
    counts = " ".join(
        f"{k}={v}" for k, v in sorted(report["counts"].items())
    )
    lines.append(
        f"  records: {report['records']} ({counts}), "
        f"last epoch {report['last_epoch']}, resumes {report['resumes']}"
    )
    if report["skipped"] or report["torn"]:
        lines.append(
            f"  CORRUPTION: {report['skipped']} interior record(s) "
            f"skipped, {report['torn']} torn tail record(s) dropped "
            f"(valid through byte {report['valid_bytes']})"
        )
    else:
        lines.append("  integrity: all records valid")
    if report["finished"]:
        lines.append(
            f"  run finished (stop_reason={report['stop_reason']}); "
            f"{report['solutions']} solution(s), "
            f"{report['completed']} task(s) completed"
        )
    else:
        lines.append(
            f"  run interrupted: {len(report['pending'])} pending "
            f"task(s), {report['solutions']} durable solution(s), "
            f"{report['completed']} completed"
        )
        for prefix in report["pending"][:10]:
            lines.append(f"    pending {prefix}")
        if len(report["pending"]) > 10:
            lines.append(
                f"    ... and {len(report['pending']) - 10} more"
            )
    if report["dropped"]:
        lines.append(f"  dropped (retryable on resume): "
                     f"{report['dropped']}")
    if report.get("transport"):
        lease = report.get("lease_timeout")
        lines.append(
            f"  transport: {report['transport']}, lease_timeout="
            f"{'none' if lease is None else f'{lease:.1f}s'}, "
            f"last fence {report.get('last_fence', 0)}"
        )
    for entry in report["poisoned"]:
        kills = entry["evidence"]
        workers = entry.get("workers") or sorted(
            {e.get("worker") for e in kills}
        )
        lines.append(
            f"  POISONED {entry['task']}: killed {len(kills)} worker(s) "
            f"{workers}"
        )
        for ev in kills:
            lines.append(
                f"    {ev.get('kind')} worker={ev.get('worker')} "
                f"slot={ev.get('slot')} {ev.get('detail', '')}".rstrip()
            )
        for ev in entry.get("lease_history", []):
            lines.append(
                f"    lease {ev.get('event')} fence={ev.get('fence')} "
                f"worker={ev.get('worker')} epoch={ev.get('epoch')}"
            )
    history = report.get("lease_history") or {}
    if history:
        lines.append(
            f"  lease lineage ({len(history)} re-dispatched/fenced "
            "task(s)):"
        )
        for key, entry in list(history.items())[:10]:
            trail = " -> ".join(
                f"{ev.get('event')}[f{ev.get('fence')}@w{ev.get('worker')}]"
                for ev in entry["events"]
            )
            mark = "completed" if entry["completed"] else "UNRESOLVED"
            lines.append(f"    ({key}): {trail} [{mark}]")
        if len(history) > 10:
            lines.append(f"    ... and {len(history) - 10} more")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        report = _report(args)
    except (OSError, JournalError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(_render_human(report))
    return 1 if (report["skipped"] or report["torn"]) else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
