"""Assemble and explore a guest program from the command line.

Usage::

    python -m repro.tools.run_guest path/to/guest.s [options]

Options let you pick the engine (snapshot / replay / parallel /
process), the search strategy, budgets, and the snapshot substrate; the
tool prints each solution's exit code, path and console output, plus the
engine's cost counters — a one-command view of the whole system.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import Optional, Sequence

from repro.core.cluster import ProcessParallelEngine
from repro.core.machine import MachineEngine
from repro.core.parallel import ParallelMachineEngine
from repro.core.replay_machine import ReplayMachineEngine
from repro.cpu.assembler import AssemblyError, assemble
from repro.obs.trace import TRACER


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.run_guest",
        description="Explore a guest binary with system-level backtracking.",
    )
    parser.add_argument("source", nargs="?", default=None,
                        help="assembly source file (omitted when joining "
                        "a coordinator with --connect: the program ships "
                        "over the wire)")
    parser.add_argument(
        "--engine", choices=["snapshot", "replay", "parallel", "process"],
        default="snapshot", help="exploration engine (default: snapshot)",
    )
    parser.add_argument(
        "--strategy", default="dfs",
        help="search strategy: dfs, bfs, astar, sma, coverage, random",
    )
    parser.add_argument(
        "--snapshot-mode", choices=["cow", "eager", "dirty-eager"],
        default="cow", help="snapshot substrate (snapshot engine only)",
    )
    parser.add_argument("--workers", type=int, default=4,
                        help="worker count (parallel/process engines)")
    parser.add_argument("--task-step-budget", type=int, default=25_000,
                        help="guest instructions a process worker explores "
                        "per task before spilling (process engine only)")
    parser.add_argument("--subtree-depth", type=int, default=None,
                        help="guess depth a process worker explores per "
                        "task before spilling (process engine only)")
    parser.add_argument("--task-timeout", type=float, default=30.0,
                        help="per-task wall-clock limit in seconds "
                        "(process engine only)")
    parser.add_argument("--batch-size", type=int, default=4,
                        help="tasks per worker dispatch (process engine "
                        "only)")
    parser.add_argument("--transport", choices=["pipe", "tcp"],
                        default="pipe",
                        help="coordinator/worker wire (process engine "
                        "only): pipe = local duplex pipes (default), tcp "
                        "= framed sockets with elastic membership — "
                        "external workers may join with --connect")
    parser.add_argument("--listen", metavar="HOST:PORT", default=None,
                        help="TCP transport: accept workers on this "
                        "address (default 127.0.0.1:0 — loopback, "
                        "ephemeral port)")
    parser.add_argument("--connect", metavar="HOST:PORT", default=None,
                        help="join a running TCP coordinator as a worker "
                        "instead of starting a run; the guest program and "
                        "engine config arrive over the wire, so no source "
                        "file or engine flags are needed")
    parser.add_argument("--lease-ms", type=float, default=None,
                        metavar="MS",
                        help="task lease duration in milliseconds: a "
                        "dispatched task whose lease sees no progress for "
                        "this long is re-dispatched and the late result "
                        "fenced off (default: 1.5 x --task-timeout)")
    parser.add_argument("--journal", metavar="PATH", default=None,
                        help="write-ahead run journal for crash-tolerant "
                        "runs (process engine only); inspect it with "
                        "repro.tools.journal")
    parser.add_argument("--resume", action="store_true",
                        help="resume an interrupted run from --journal "
                        "instead of starting fresh (process engine only)")
    parser.add_argument("--fsync", choices=["always", "batch", "off"],
                        default="batch",
                        help="journal durability policy (default: batch)")
    parser.add_argument("--min-workers", type=int, default=1,
                        help="graceful-degradation floor: finish the run "
                        "in-process when fewer worker slots stay "
                        "serviceable (process engine only)")
    parser.add_argument("--chaos-kill-epoch", type=int, default=None,
                        metavar="EPOCH",
                        help="chaos injection: kill the coordinator when "
                        "the journal reaches EPOCH (testing only; "
                        "requires --journal)")
    parser.add_argument("--chaos-crash-rate", type=float, default=None,
                        metavar="RATE",
                        help="chaos injection: crash each worker task "
                        "attempt with probability RATE (testing only; "
                        "process engine only; combines with "
                        "--chaos-kill-epoch)")
    parser.add_argument("--status-port", type=int, default=None,
                        metavar="PORT",
                        help="serve live run status over HTTP on "
                        "127.0.0.1:PORT while the run executes — JSON at "
                        "/status, Prometheus text at /metrics (0 picks a "
                        "free port; process engine only); watch it with "
                        "repro.tools.top")
    parser.add_argument("--status-log", metavar="PATH", default=None,
                        help="append periodic status.sample snapshots to "
                        "a JSONL time series (process engine only); "
                        "consumed by repro.tools.top --status-log and "
                        "repro.tools.trace_report")
    parser.add_argument("--status-interval", type=float, default=0.5,
                        help="seconds between --status-log samples "
                        "(default: 0.5)")
    parser.add_argument("--flight-dir", metavar="DIR", default=None,
                        help="flight recorder: on a worker crash, "
                        "poisoning or timeout, dump that worker's recent "
                        "trace events to a post-mortem JSONL file in DIR "
                        "(process engine only)")
    parser.add_argument("--obs-trace", metavar="PATH", default=None,
                        help="record the run's observability trace to a "
                        "JSONL file (process engine merges every worker's "
                        "events into one causally-ordered stream); inspect "
                        "it with repro.tools.trace_report or "
                        "repro.tools.profile")
    parser.add_argument("--verify", choices=["off", "warn", "strict"],
                        default="warn",
                        help="static analysis gate before execution: warn "
                        "(default) prints the analyzer's summary table and "
                        "runs anyway; strict refuses programs with errors "
                        "or without the determinism certificate; off skips "
                        "analysis entirely")
    parser.add_argument("--replay-mode", choices=["off", "record", "strict"],
                        default="off",
                        help="record/replay of nondeterministic syscall "
                        "outcomes (time, getrandom, console reads): record "
                        "logs first-execution outcomes and replays known "
                        "ones, making nondeterministic guests shardable "
                        "and resumable; strict replays only and fails "
                        "loudly on divergence (see docs/REPLAY.md)")
    parser.add_argument("--replay-log", metavar="PATH", default=None,
                        help="nondet-event log file: loaded before the run "
                        "when it exists (required by --replay-mode=strict), "
                        "written after a completed --replay-mode=record run")
    parser.add_argument("--input", metavar="PATH", default=None,
                        help="file whose bytes are the guest's scripted "
                        "stdin (fd 0)")
    parser.add_argument("--max-solutions", type=int, default=None)
    parser.add_argument("--max-steps", type=int, default=5_000_000,
                        help="instruction budget per extension step")
    parser.add_argument("--transcript", action="store_true",
                        help="also print failed paths' console output")
    parser.add_argument("--quiet", action="store_true",
                        help="print only the summary line")
    return parser


def _parse_hostport(text: str) -> tuple[str, int]:
    host, _, port = text.rpartition(":")
    return (host or "127.0.0.1", int(port))


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.connect is not None:
        # Worker mode: no local program, no engine — dial the
        # coordinator, fetch program+config in the handshake, and serve
        # until poisoned or disconnected for good.
        if args.source is not None:
            print("error: --connect takes no source file (the program "
                  "ships over the wire)", file=sys.stderr)
            return 2
        try:
            host, port = _parse_hostport(args.connect)
        except ValueError:
            print(f"error: --connect expects HOST:PORT, got "
                  f"{args.connect!r}", file=sys.stderr)
            return 2
        from repro.core.cluster import tcp_worker

        print(f"joining coordinator at {host}:{port}", file=sys.stderr)
        tcp_worker(host, port)
        return 0
    if args.source is None:
        print("error: a source file is required (or --connect to join a "
              "coordinator as a worker)", file=sys.stderr)
        return 2
    try:
        with open(args.source) as handle:
            source = handle.read()
    except OSError as err:
        print(f"error: cannot read {args.source}: {err}", file=sys.stderr)
        return 2
    try:
        program = assemble(source)
    except AssemblyError as err:
        print(f"assembly error: {err}", file=sys.stderr)
        return 2

    from repro.core.errors import ReplayDivergenceError
    from repro.core.journal import program_digest
    from repro.core.recorder import NondetLog

    if args.replay_mode == "strict" and not args.replay_log:
        print("error: --replay-mode=strict requires --replay-log",
              file=sys.stderr)
        return 2
    if args.replay_mode == "off" and args.replay_log:
        print("error: --replay-log requires --replay-mode=record|strict",
              file=sys.stderr)
        return 2
    if args.replay_mode != "off" and args.engine == "parallel":
        print("error: --replay-mode is not supported by the thread-"
              "parallel engine (use snapshot, replay or process)",
              file=sys.stderr)
        return 2
    if args.engine != "process":
        for flag, value in (
            ("--status-port", args.status_port),
            ("--status-log", args.status_log),
            ("--flight-dir", args.flight_dir),
            ("--chaos-crash-rate", args.chaos_crash_rate),
            ("--listen", args.listen),
            ("--lease-ms", args.lease_ms),
        ):
            if value is not None:
                print(f"error: {flag} requires --engine process",
                      file=sys.stderr)
                return 2
        if args.transport != "pipe":
            print("error: --transport requires --engine process",
                  file=sys.stderr)
            return 2
    if args.listen is not None and args.transport != "tcp":
        print("error: --listen requires --transport tcp", file=sys.stderr)
        return 2
    listen = None
    if args.listen is not None:
        try:
            listen = _parse_hostport(args.listen)
        except ValueError:
            print(f"error: --listen expects HOST:PORT, got {args.listen!r}",
                  file=sys.stderr)
            return 2
    if args.lease_ms is not None and args.lease_ms <= 0:
        print("error: --lease-ms must be > 0", file=sys.stderr)
        return 2
    digest = program_digest(program)
    seed_log = None
    if args.replay_log:
        import os as _os

        if args.replay_mode == "strict" or _os.path.exists(args.replay_log):
            try:
                seed_log = NondetLog.load(args.replay_log, program=digest)
            except ReplayDivergenceError as err:
                print(f"replay log refused: {err}", file=sys.stderr)
                return 4

    input_script = None
    if args.input:
        try:
            with open(args.input, "rb") as handle:
                input_script = handle.read()
        except OSError as err:
            print(f"error: cannot read {args.input}: {err}", file=sys.stderr)
            return 2

    if args.verify != "off":
        # The gate lives here (not in each engine) so every engine choice
        # — including replay and thread-parallel, which take no verify
        # parameter — shares one analysis and one summary table.  The
        # report is memoised, so engines that re-verify pay nothing.
        from repro.analysis import analyze as _analyze
        from repro.analysis.verifier import strict_failure

        report = _analyze(program)
        if not args.quiet:
            print(report.render_human())
            print()
        if args.verify == "strict":
            failure = strict_failure(
                report, allow_recordable=args.replay_mode != "off"
            )
            if failure is not None:
                print(f"error: {failure}", file=sys.stderr)
                return 2

    def input_source():
        if input_script is None:
            return None
        from repro.libos.console import InputSource

        return InputSource(input_script)

    if args.engine == "snapshot":
        engine = MachineEngine(
            strategy=args.strategy,
            snapshot_mode=args.snapshot_mode,
            max_solutions=args.max_solutions,
            max_steps_per_extension=args.max_steps,
            replay_mode=args.replay_mode,
            replay_log=seed_log,
            input=input_source(),
        )
    elif args.engine == "parallel":
        engine = ParallelMachineEngine(
            workers=args.workers,
            strategy=args.strategy,
            max_solutions=args.max_solutions,
            max_steps_per_extension=args.max_steps,
        )
    elif args.engine == "process":
        if args.resume and not args.journal:
            print("error: --resume requires --journal", file=sys.stderr)
            return 2
        chaos = None
        if (args.chaos_kill_epoch is not None
                or args.chaos_crash_rate is not None):
            if args.chaos_kill_epoch is not None and not args.journal:
                print("error: --chaos-kill-epoch requires --journal",
                      file=sys.stderr)
                return 2
            crash_rate = args.chaos_crash_rate or 0.0
            if not 0.0 <= crash_rate <= 1.0:
                print("error: --chaos-crash-rate must be in [0, 1]",
                      file=sys.stderr)
                return 2
            from repro.chaos import FaultPlan

            chaos = FaultPlan(
                coordinator_kill_epoch=args.chaos_kill_epoch,
                crash_rate=crash_rate,
            )
        if args.status_port is not None and args.status_port != 0:
            # Port 0 asks the OS for a free port; its URL is only known
            # once the server binds, so it is reported after the run.
            print(f"status: http://127.0.0.1:{args.status_port}/status",
                  file=sys.stderr)
        engine = ProcessParallelEngine(
            workers=args.workers,
            strategy=args.strategy,
            batch_size=args.batch_size,
            subtree_depth=args.subtree_depth,
            task_step_budget=args.task_step_budget,
            task_timeout=args.task_timeout,
            max_solutions=args.max_solutions,
            max_steps_per_extension=args.max_steps,
            # Re-verifying is free (memoised) and ships the analyzer's
            # nondeterminism sites to the replaying workers.
            verify=args.verify,
            journal=args.journal,
            resume=args.resume,
            fsync=args.fsync,
            min_workers=args.min_workers,
            chaos=chaos,
            replay_mode=args.replay_mode,
            replay_log=seed_log,
            input_script=input_script,
            status_port=args.status_port,
            status_log=args.status_log,
            status_interval=args.status_interval,
            flight_dir=args.flight_dir,
            transport=args.transport,
            listen=listen,
            lease_timeout=(
                args.lease_ms / 1000.0 if args.lease_ms is not None else None
            ),
        )
        if args.transport == "tcp" and listen is not None:
            print(f"accepting workers on {listen[0]}:{listen[1]} "
                  "(join with: repro.tools.run_guest --connect "
                  f"{listen[0]}:{listen[1]})", file=sys.stderr)
    else:
        engine = ReplayMachineEngine(
            strategy=args.strategy,
            max_solutions=args.max_solutions,
            max_steps_per_path=args.max_steps,
            replay_mode=args.replay_mode,
            replay_log=seed_log,
            input=input_source(),
        )

    from repro.core.errors import CoordinatorKilled, ResumeMismatchError

    with contextlib.ExitStack() as stack:
        if args.obs_trace:
            stack.enter_context(TRACER.to_file(args.obs_trace))
        try:
            result = engine.run(program)
        except CoordinatorKilled as err:
            # Chaos injection: the run is interrupted, not lost — the
            # journal has everything needed to resume.
            print(f"coordinator killed: {err}", file=sys.stderr)
            print(f"resume with: --engine process --journal {args.journal} "
                  "--resume", file=sys.stderr)
            return 3
        except ResumeMismatchError as err:
            print(f"resume refused: {err}", file=sys.stderr)
            return 2
        except ReplayDivergenceError as err:
            # Strict replay caught the guest deviating from the recorded
            # execution (or the log was incomplete): fail loudly.
            print(f"replay divergence: {err}", file=sys.stderr)
            return 4
    if args.replay_mode == "record" and args.replay_log:
        final_log = getattr(engine, "replay_log", None)
        if final_log is None and getattr(engine, "recorder", None) is not None:
            final_log = engine.recorder.log
        if final_log is not None:
            written = final_log.save(args.replay_log, program=digest)
            print(f"replay log: {written} event(s) written to "
                  f"{args.replay_log}", file=sys.stderr)
    if args.obs_trace:
        print(f"trace written to {args.obs_trace}", file=sys.stderr)
    print(result.summary())
    if not args.quiet:
        for solution in result.solutions:
            status, text = solution.value
            line = f"  path={solution.path} exit={status}"
            if text:
                line += f" output={text.strip()!r}"
            print(line)
        if args.transcript and hasattr(engine, "failed_output"):
            for text in engine.failed_output():
                print(f"  [failed path] {text.strip()!r}")
        extra = result.stats.extra
        if "guest_instructions" in extra:
            print(f"  guest instructions: {extra['guest_instructions']:,}")
        if "snapshots_taken" in extra:
            print(
                f"  snapshots: {extra['snapshots_taken']} taken, "
                f"{extra.get('snapshots_restored', 0)} restored; "
                f"COW pages copied: {extra.get('frames_copied', 0)}"
            )
        if "journal" in extra:
            line = (
                f"  journal: {extra['journal']} "
                f"({extra['journal_records']} records, "
                f"{extra['journal_fsyncs']} fsyncs)"
            )
            if extra.get("resumed"):
                line += (
                    f"; resumed with {extra['resume_pending']} pending, "
                    f"{extra['resume_solutions']} recovered solutions"
                )
            print(line)
        if "steals" in extra:
            line = (
                f"  scheduling [{extra.get('transport', 'pipe')}]: "
                f"{extra['steals']} steals, "
                f"{extra['leases_expired']} leases expired, "
                f"{extra['fenced_stale']} stale results fenced"
            )
            if extra.get("worker_joins"):
                line += f", {extra['worker_joins']} workers joined"
            print(line)
        if "heartbeats" in extra:
            line = f"  telemetry: {extra['heartbeats']} heartbeats"
            if "status_url" in extra:
                line += f"; served at {extra['status_url']}"
            if args.status_log:
                line += f"; samples in {args.status_log}"
            print(line)
        for dump in extra.get("flight_dumps", []):
            print(f"  flight dump: {dump}")
    return 0 if result.solutions or result.exhausted else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
