"""Solve a DIMACS CNF file with the CDCL solver.

Usage::

    python -m repro.tools.solve_cnf formula.cnf [--model] [--stats]

Prints ``SATISFIABLE`` / ``UNSATISFIABLE`` (and, with ``--model``, a
DIMACS ``v`` line), mirroring the conventional SAT-solver interface.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.sat import Solver, parse_dimacs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.solve_cnf",
        description="CDCL SAT solver over a DIMACS file.",
    )
    parser.add_argument("cnf", help="DIMACS CNF file")
    parser.add_argument("--model", action="store_true",
                        help="print the satisfying assignment")
    parser.add_argument("--stats", action="store_true",
                        help="print solver statistics")
    parser.add_argument("--max-conflicts", type=int, default=None,
                        help="give up after this many conflicts")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        with open(args.cnf) as handle:
            cnf = parse_dimacs(handle.read())
    except (OSError, ValueError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2

    solver = Solver()
    for clause in cnf.clauses:
        solver.add_clause(clause)
    solver._grow_to(cnf.num_vars)
    result = solver.solve(max_conflicts=args.max_conflicts)

    if result.sat is None:
        print("s UNKNOWN")
        code = 0
    elif result.sat:
        print("s SATISFIABLE")
        if args.model:
            lits = [
                str(v if result.model.get(v) else -v)
                for v in range(1, cnf.num_vars + 1)
            ]
            print("v " + " ".join(lits) + " 0")
        code = 10
    else:
        print("s UNSATISFIABLE")
        code = 20
    if args.stats:
        stats = solver.stats
        print(f"c decisions    {stats.decisions}")
        print(f"c propagations {stats.propagations}")
        print(f"c conflicts    {stats.conflicts}")
        print(f"c learned      {stats.learned}")
        print(f"c restarts     {stats.restarts}")
    return code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
