"""Summarize an observability trace (JSONL) into per-subsystem tables.

Usage::

    python -m repro.tools.trace_report trace.jsonl [--json]

The input is the event stream :class:`repro.obs.trace.JsonlSink` writes
(one JSON object per line, ``{"seq", "ts", "type", ...fields}``), for
example from::

    pytest benchmarks/ --benchmark-only --obs-trace=trace.jsonl

The report answers the questions the paper's cost model poses:

* snapshot lifecycle — how many takes/restores/discards/prunes, peak
  live snapshots (recomputed from the event stream, not trusted from
  counters);
* **COW faults per restore** — each ``snapshot.restore`` records the
  asid of the space it materialized; ``mem.cow_fault`` events carry the
  faulting asid, so joining the two attributes per-page COW work to the
  restore that incurred it.  O(1) restore + per-page faults is *the*
  headline claim, and this is its direct measurement;
* syscall mix and search shape (guesses / fails / solutions / depth);
* parallel scheduling activity per worker;
* cluster utilization and skew (process engine): per-worker busy vs
  idle wall time and replay share, from ``task.begin``/``task.end``
  events in a merged multi-worker trace.

Corrupt lines (truncated JSON from a crashed run) are skipped and
counted, not fatal.  For guess-tree cost attribution and flamegraphs,
see ``python -m repro.tools.profile``.

``--json`` emits the same summary as one machine-readable JSON object.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter as TallyCounter
from collections import defaultdict
from typing import Any, Iterable, Optional, Sequence

from repro.bench.report import Table
from repro.obs import events as ev


def load_events(path: str) -> tuple[list[dict], int]:
    """Parse a JSONL trace file into ``(events, skipped)``.

    Blank lines are ignored.  Malformed lines — truncated JSON from a
    crashed run, or lines that are not trace events — are *skipped and
    counted*, not fatal: a crashed run's partial trace is exactly when
    you need the report most.  Callers should surface a non-zero
    ``skipped`` to the user.
    """
    out: list[dict] = []
    skipped = 0
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if not isinstance(event, dict) or "type" not in event:
                skipped += 1
                continue
            out.append(event)
    return out, skipped


# ----------------------------------------------------------------------
# Summaries (plain data, shared by table and JSON output)
# ----------------------------------------------------------------------


def summarize(events: Iterable[dict]) -> dict[str, Any]:
    """Reduce an event stream to the per-subsystem summary dict."""
    events = list(events)
    type_counts = TallyCounter(e["type"] for e in events)

    # -- snapshot lifecycle, recomputed from the stream ----------------
    live = 0
    peak_live = 0
    for e in events:
        if e["type"] == ev.SNAPSHOT_TAKE:
            live += 1
            peak_live = max(peak_live, live)
        elif e["type"] == ev.SNAPSHOT_DISCARD:
            live -= 1
    snapshot = {
        "taken": type_counts.get(ev.SNAPSHOT_TAKE, 0),
        "restored": type_counts.get(ev.SNAPSHOT_RESTORE, 0),
        "discarded": type_counts.get(ev.SNAPSHOT_DISCARD, 0),
        "pruned": type_counts.get(ev.SNAPSHOT_PRUNE, 0),
        "peak_live": peak_live,
        "end_live": live,
        "private_pages_freed": sum(
            e.get("private_pages", 0)
            for e in events
            if e["type"] == ev.SNAPSHOT_DISCARD
        ),
    }

    # -- COW-faults-per-restore correlation ----------------------------
    faults_by_asid: dict[Any, int] = defaultdict(int)
    zero_fills_by_asid: dict[Any, int] = defaultdict(int)
    for e in events:
        if e["type"] == ev.MEM_COW_FAULT:
            if e.get("kind") == "zero":
                zero_fills_by_asid[e["asid"]] += 1
            else:
                faults_by_asid[e["asid"]] += 1
    restores = [e for e in events if e["type"] == ev.SNAPSHOT_RESTORE]
    per_restore = [
        {
            "sid": e["sid"],
            "asid": e["asid"],
            "cow_faults": faults_by_asid.get(e["asid"], 0),
            "zero_fills": zero_fills_by_asid.get(e["asid"], 0),
        }
        for e in restores
    ]
    fault_counts = [r["cow_faults"] for r in per_restore]
    restore_asids = {e["asid"] for e in restores}
    cow = {
        "restores": len(per_restore),
        "cow_faults_total": sum(faults_by_asid.values()),
        "cow_faults_in_restored_spaces": sum(fault_counts),
        "zero_fills_total": sum(zero_fills_by_asid.values()),
        "per_restore_mean": (
            sum(fault_counts) / len(fault_counts) if fault_counts else 0.0
        ),
        "per_restore_max": max(fault_counts, default=0),
        "per_restore_min": min(fault_counts, default=0),
        # Faults in spaces that were never the product of a restore
        # (the mutable pre-guess execution spaces).
        "cow_faults_elsewhere": sum(
            n for asid, n in faults_by_asid.items() if asid not in restore_asids
        ),
        "hottest": sorted(
            per_restore, key=lambda r: r["cow_faults"], reverse=True
        )[:5],
    }

    # -- syscalls ------------------------------------------------------
    sys_tally: dict[tuple[Any, Any], int] = defaultdict(int)
    for e in events:
        if e["type"] == ev.LIBOS_SYSCALL:
            sys_tally[(e.get("nr"), e.get("name", "?"))] += 1
    syscalls = [
        {"nr": nr, "name": name, "count": count}
        for (nr, name), count in sorted(
            sys_tally.items(), key=lambda item: item[1], reverse=True
        )
    ]

    # -- search shape --------------------------------------------------
    guesses = [e for e in events if e["type"] == ev.SEARCH_GUESS]
    search = {
        "guesses": len(guesses),
        "fails": type_counts.get(ev.SEARCH_FAIL, 0),
        "solutions": type_counts.get(ev.SEARCH_SOLUTION, 0),
        "total_fanout": sum(e.get("n", 0) for e in guesses),
        "max_depth": max(
            (
                e.get("depth", 0)
                for e in events
                if e["type"]
                in (ev.SEARCH_GUESS, ev.SEARCH_FAIL, ev.SEARCH_SOLUTION)
            ),
            default=0,
        ),
    }

    # -- parallel scheduling -------------------------------------------
    sched_by_worker: dict[Any, int] = defaultdict(int)
    preempt_by_worker: dict[Any, int] = defaultdict(int)
    for e in events:
        if e["type"] == ev.PARALLEL_SCHEDULE:
            sched_by_worker[e["worker"]] += 1
        elif e["type"] == ev.PARALLEL_PREEMPT:
            preempt_by_worker[e["worker"]] += 1
    workers = sorted(set(sched_by_worker) | set(preempt_by_worker))
    parallel = {
        "workers": [
            {
                "worker": w,
                "schedules": sched_by_worker.get(w, 0),
                "preempts": preempt_by_worker.get(w, 0),
            }
            for w in workers
        ],
        "schedules": sum(sched_by_worker.values()),
        "preempts": sum(preempt_by_worker.values()),
    }

    # -- cluster workers (process engine): utilization and skew --------
    cluster_rows = []
    ends_by_worker: dict[Any, list[dict]] = defaultdict(list)
    for e in events:
        if e["type"] == ev.TASK_END:
            ends_by_worker[e.get("worker")].append(e)
    # Wall clock of the whole parallel phase: first task.begin to last
    # task.end (coordinator timestamps are on the merged events' ts).
    task_ts = [
        e.get("ts") for e in events
        if e["type"] in (ev.TASK_BEGIN, ev.TASK_END) and e.get("ts") is not None
    ]
    wall_s = (max(task_ts) - min(task_ts)) if len(task_ts) >= 2 else 0.0
    for worker in sorted(ends_by_worker, key=lambda w: (w is None, w)):
        ends = ends_by_worker[worker]
        busy_s = sum(e.get("task_s", 0.0) or 0.0 for e in ends)
        explore = sum(e.get("explore_steps", 0) or 0 for e in ends)
        replay = sum(e.get("replay_steps", 0) or 0 for e in ends)
        total = explore + replay
        cluster_rows.append({
            "worker": worker,
            "tasks": len(ends),
            "solutions": sum(e.get("solutions", 0) or 0 for e in ends),
            "spilled": sum(e.get("spilled", 0) or 0 for e in ends),
            "explore_steps": explore,
            "replay_steps": replay,
            "replay_share": replay / total if total else 0.0,
            "busy_s": busy_s,
            "idle_s": max(0.0, wall_s - busy_s),
            "utilization": busy_s / wall_s if wall_s else 0.0,
        })
    busy_values = [row["busy_s"] for row in cluster_rows]
    cluster = {
        "workers": cluster_rows,
        "wall_s": wall_s,
        "tasks": sum(row["tasks"] for row in cluster_rows),
        # Skew: slowest worker's busy time over the mean — 1.0 is a
        # perfectly balanced cluster, 2.0 means one worker did double.
        "busy_skew": (
            max(busy_values) / (sum(busy_values) / len(busy_values))
            if busy_values and sum(busy_values) else 0.0
        ),
    }

    # -- versioned file layer and crash-consistency search -------------
    fsyncs = [e for e in events if e["type"] == ev.FILE_FSYNC]
    syncs = [e for e in events if e["type"] == ev.FILE_SYNC]
    selects = [e for e in events if e["type"] == ev.CRASH_SELECT]
    commits = [e for e in events if e["type"] == ev.CRASH_COMMIT]
    select_dims = [e.get("dims", 0) or 0 for e in selects]
    commit_kept = [e.get("kept", 0) or 0 for e in commits]
    filelayer = {
        "fsyncs": len(fsyncs),
        "fsync_records": sum(e.get("records", 0) or 0 for e in fsyncs),
        "syncs": len(syncs),
        "sync_records": sum(e.get("records", 0) or 0 for e in syncs),
        "crash_selects": len(selects),
        "crash_dims_total": sum(select_dims),
        "crash_dims_max": max(select_dims, default=0),
        "crash_commits": len(commits),
        "crash_kept_total": sum(commit_kept),
        "crash_kept_max": max(commit_kept, default=0),
    }

    # -- live telemetry samples (status.sample time series) ------------
    samples = [e for e in events if e["type"] == ev.STATUS_SAMPLE]
    live: dict[str, Any] = {"samples": len(samples)}
    if samples:
        ts_values = [e.get("ts") for e in samples if e.get("ts") is not None]
        final = samples[-1]
        live.update({
            "span_s": (
                max(ts_values) - min(ts_values) if len(ts_values) >= 2
                else 0.0
            ),
            "final_pending": final.get("tasks", {}).get("pending", 0),
            "final_done": final.get("tasks", {}).get("done", 0),
            "final_solutions": final.get("solutions", 0),
            "final_coverage": final.get(
                "coverage", {}).get("fraction", 0.0),
            "final_steps_per_s": final.get(
                "throughput", {}).get("steps_per_s", 0.0),
            "max_steps_per_s": max(
                e.get("throughput", {}).get("steps_per_s", 0.0)
                for e in samples
            ),
        })

    # -- memory --------------------------------------------------------
    allocs = [e for e in events if e["type"] == ev.MEM_PAGE_ALLOC]
    mem = {
        "cow_faults": cow["cow_faults_total"],
        "zero_fills": cow["zero_fills_total"],
        "page_alloc_calls": len(allocs),
        "pages_allocated": sum(e.get("pages", 0) for e in allocs),
    }

    return {
        "events": len(events),
        "event_counts": dict(sorted(type_counts.items())),
        "snapshot": snapshot,
        "cow_per_restore": cow,
        "mem": mem,
        "syscalls": syscalls,
        "search": search,
        "parallel": parallel,
        "cluster": cluster,
        "filelayer": filelayer,
        "live": live,
    }


# ----------------------------------------------------------------------
# Table rendering
# ----------------------------------------------------------------------


def build_tables(summary: dict[str, Any]) -> list[Table]:
    tables: list[Table] = []

    counts = Table("Trace events", ["event type", "count"])
    for etype, count in summary["event_counts"].items():
        counts.add(etype, count)
    counts.add("total", summary["events"])
    tables.append(counts)

    snap = summary["snapshot"]
    lifecycle = Table("Snapshot lifecycle", ["metric", "value"])
    for key in (
        "taken", "restored", "discarded", "pruned",
        "peak_live", "end_live", "private_pages_freed",
    ):
        lifecycle.add(key, snap[key])
    tables.append(lifecycle)

    cow = summary["cow_per_restore"]
    corr = Table("COW faults per restore", ["metric", "value"])
    corr.add("restores", cow["restores"])
    corr.add("cow faults (total)", cow["cow_faults_total"])
    corr.add("cow faults (in restored spaces)", cow["cow_faults_in_restored_spaces"])
    corr.add("cow faults (elsewhere)", cow["cow_faults_elsewhere"])
    corr.add("zero fills (total)", cow["zero_fills_total"])
    corr.add("mean per restore", round(cow["per_restore_mean"], 3))
    corr.add("min per restore", cow["per_restore_min"])
    corr.add("max per restore", cow["per_restore_max"])
    tables.append(corr)

    if cow["hottest"]:
        hot = Table(
            "Hottest restores (by COW faults)",
            ["snapshot", "asid", "cow faults", "zero fills"],
        )
        for row in cow["hottest"]:
            hot.add(row["sid"], row["asid"], row["cow_faults"], row["zero_fills"])
        tables.append(hot)

    if summary["syscalls"]:
        sys_table = Table("Syscalls", ["name", "nr", "count"])
        for row in summary["syscalls"]:
            sys_table.add(row["name"], row["nr"], row["count"])
        tables.append(sys_table)

    search = summary["search"]
    search_table = Table("Search", ["metric", "value"])
    for key in ("guesses", "total_fanout", "fails", "solutions", "max_depth"):
        search_table.add(key, search[key])
    tables.append(search_table)

    if summary["parallel"]["workers"]:
        par = Table("Parallel workers", ["worker", "schedules", "preempts"])
        for row in summary["parallel"]["workers"]:
            par.add(row["worker"], row["schedules"], row["preempts"])
        tables.append(par)

    cluster = summary.get("cluster", {})
    if cluster.get("workers"):
        util = Table(
            f"Cluster utilization (wall {cluster['wall_s']:.3f}s, "
            f"busy skew {cluster['busy_skew']:.2f}x)",
            ["worker", "tasks", "busy s", "idle s", "util",
             "explore insns", "replay insns", "replay share"],
        )
        for row in cluster["workers"]:
            util.add(
                row["worker"], row["tasks"],
                f"{row['busy_s']:.3f}", f"{row['idle_s']:.3f}",
                f"{row['utilization']:.1%}",
                row["explore_steps"], row["replay_steps"],
                f"{row['replay_share']:.1%}",
            )
        tables.append(util)

    filelayer = summary.get("filelayer", {})
    if any(filelayer.values()):
        fl = Table("Versioned file layer", ["metric", "value"])
        for key in (
            "fsyncs", "fsync_records", "syncs", "sync_records",
            "crash_selects", "crash_dims_total", "crash_dims_max",
            "crash_commits", "crash_kept_total", "crash_kept_max",
        ):
            fl.add(key, filelayer[key])
        tables.append(fl)

    live = summary.get("live", {})
    if live.get("samples"):
        lt = Table("Live telemetry (status samples)", ["metric", "value"])
        lt.add("samples", live["samples"])
        lt.add("span s", f"{live['span_s']:.3f}")
        lt.add("final pending", live["final_pending"])
        lt.add("final done", live["final_done"])
        lt.add("final solutions", live["final_solutions"])
        lt.add("final coverage", f"{live['final_coverage']:.1%}")
        lt.add("final steps/s", f"{live['final_steps_per_s']:,.0f}")
        lt.add("max steps/s", f"{live['max_steps_per_s']:,.0f}")
        tables.append(lt)

    return tables


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.trace_report",
        description="Summarize an observability trace (JSONL) into tables.",
    )
    parser.add_argument("trace", help="JSONL trace file (from --obs-trace "
                        "or repro.obs.trace.JsonlSink)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the summary as one JSON object")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        events, skipped = load_events(args.trace)
    except OSError as err:
        print(f"error: cannot read {args.trace}: {err}", file=sys.stderr)
        return 2
    if skipped:
        print(f"warning: skipped {skipped} corrupt line(s) in {args.trace}",
              file=sys.stderr)
    summary = summarize(events)
    summary["skipped_lines"] = skipped
    if args.as_json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    if not events:
        print(f"{args.trace}: empty trace")
        return 0
    for table in build_tables(summary):
        print(table.render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
