"""Summarize an observability trace (JSONL) into per-subsystem tables.

Usage::

    python -m repro.tools.trace_report trace.jsonl [--json]

The input is the event stream :class:`repro.obs.trace.JsonlSink` writes
(one JSON object per line, ``{"seq", "ts", "type", ...fields}``), for
example from::

    pytest benchmarks/ --benchmark-only --obs-trace=trace.jsonl

The report answers the questions the paper's cost model poses:

* snapshot lifecycle — how many takes/restores/discards/prunes, peak
  live snapshots (recomputed from the event stream, not trusted from
  counters);
* **COW faults per restore** — each ``snapshot.restore`` records the
  asid of the space it materialized; ``mem.cow_fault`` events carry the
  faulting asid, so joining the two attributes per-page COW work to the
  restore that incurred it.  O(1) restore + per-page faults is *the*
  headline claim, and this is its direct measurement;
* syscall mix and search shape (guesses / fails / solutions / depth);
* parallel scheduling activity per worker.

``--json`` emits the same summary as one machine-readable JSON object.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter as TallyCounter
from collections import defaultdict
from typing import Any, Iterable, Optional, Sequence

from repro.bench.report import Table
from repro.obs import events as ev


def load_events(path: str) -> list[dict]:
    """Parse a JSONL trace file into a list of event dicts.

    Blank lines are skipped; malformed lines raise ``ValueError`` with
    the offending line number (a truncated trace should be loud, not a
    silently shorter report).
    """
    out: list[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as err:
                raise ValueError(f"{path}:{lineno}: bad JSONL line: {err}") from None
            if not isinstance(event, dict) or "type" not in event:
                raise ValueError(f"{path}:{lineno}: not a trace event")
            out.append(event)
    return out


# ----------------------------------------------------------------------
# Summaries (plain data, shared by table and JSON output)
# ----------------------------------------------------------------------


def summarize(events: Iterable[dict]) -> dict[str, Any]:
    """Reduce an event stream to the per-subsystem summary dict."""
    events = list(events)
    type_counts = TallyCounter(e["type"] for e in events)

    # -- snapshot lifecycle, recomputed from the stream ----------------
    live = 0
    peak_live = 0
    for e in events:
        if e["type"] == ev.SNAPSHOT_TAKE:
            live += 1
            peak_live = max(peak_live, live)
        elif e["type"] == ev.SNAPSHOT_DISCARD:
            live -= 1
    snapshot = {
        "taken": type_counts.get(ev.SNAPSHOT_TAKE, 0),
        "restored": type_counts.get(ev.SNAPSHOT_RESTORE, 0),
        "discarded": type_counts.get(ev.SNAPSHOT_DISCARD, 0),
        "pruned": type_counts.get(ev.SNAPSHOT_PRUNE, 0),
        "peak_live": peak_live,
        "end_live": live,
        "private_pages_freed": sum(
            e.get("private_pages", 0)
            for e in events
            if e["type"] == ev.SNAPSHOT_DISCARD
        ),
    }

    # -- COW-faults-per-restore correlation ----------------------------
    faults_by_asid: dict[Any, int] = defaultdict(int)
    zero_fills_by_asid: dict[Any, int] = defaultdict(int)
    for e in events:
        if e["type"] == ev.MEM_COW_FAULT:
            if e.get("kind") == "zero":
                zero_fills_by_asid[e["asid"]] += 1
            else:
                faults_by_asid[e["asid"]] += 1
    restores = [e for e in events if e["type"] == ev.SNAPSHOT_RESTORE]
    per_restore = [
        {
            "sid": e["sid"],
            "asid": e["asid"],
            "cow_faults": faults_by_asid.get(e["asid"], 0),
            "zero_fills": zero_fills_by_asid.get(e["asid"], 0),
        }
        for e in restores
    ]
    fault_counts = [r["cow_faults"] for r in per_restore]
    restore_asids = {e["asid"] for e in restores}
    cow = {
        "restores": len(per_restore),
        "cow_faults_total": sum(faults_by_asid.values()),
        "cow_faults_in_restored_spaces": sum(fault_counts),
        "zero_fills_total": sum(zero_fills_by_asid.values()),
        "per_restore_mean": (
            sum(fault_counts) / len(fault_counts) if fault_counts else 0.0
        ),
        "per_restore_max": max(fault_counts, default=0),
        "per_restore_min": min(fault_counts, default=0),
        # Faults in spaces that were never the product of a restore
        # (the mutable pre-guess execution spaces).
        "cow_faults_elsewhere": sum(
            n for asid, n in faults_by_asid.items() if asid not in restore_asids
        ),
        "hottest": sorted(
            per_restore, key=lambda r: r["cow_faults"], reverse=True
        )[:5],
    }

    # -- syscalls ------------------------------------------------------
    sys_tally: dict[tuple[Any, Any], int] = defaultdict(int)
    for e in events:
        if e["type"] == ev.LIBOS_SYSCALL:
            sys_tally[(e.get("nr"), e.get("name", "?"))] += 1
    syscalls = [
        {"nr": nr, "name": name, "count": count}
        for (nr, name), count in sorted(
            sys_tally.items(), key=lambda item: item[1], reverse=True
        )
    ]

    # -- search shape --------------------------------------------------
    guesses = [e for e in events if e["type"] == ev.SEARCH_GUESS]
    search = {
        "guesses": len(guesses),
        "fails": type_counts.get(ev.SEARCH_FAIL, 0),
        "solutions": type_counts.get(ev.SEARCH_SOLUTION, 0),
        "total_fanout": sum(e.get("n", 0) for e in guesses),
        "max_depth": max(
            (
                e.get("depth", 0)
                for e in events
                if e["type"]
                in (ev.SEARCH_GUESS, ev.SEARCH_FAIL, ev.SEARCH_SOLUTION)
            ),
            default=0,
        ),
    }

    # -- parallel scheduling -------------------------------------------
    sched_by_worker: dict[Any, int] = defaultdict(int)
    preempt_by_worker: dict[Any, int] = defaultdict(int)
    for e in events:
        if e["type"] == ev.PARALLEL_SCHEDULE:
            sched_by_worker[e["worker"]] += 1
        elif e["type"] == ev.PARALLEL_PREEMPT:
            preempt_by_worker[e["worker"]] += 1
    workers = sorted(set(sched_by_worker) | set(preempt_by_worker))
    parallel = {
        "workers": [
            {
                "worker": w,
                "schedules": sched_by_worker.get(w, 0),
                "preempts": preempt_by_worker.get(w, 0),
            }
            for w in workers
        ],
        "schedules": sum(sched_by_worker.values()),
        "preempts": sum(preempt_by_worker.values()),
    }

    # -- memory --------------------------------------------------------
    allocs = [e for e in events if e["type"] == ev.MEM_PAGE_ALLOC]
    mem = {
        "cow_faults": cow["cow_faults_total"],
        "zero_fills": cow["zero_fills_total"],
        "page_alloc_calls": len(allocs),
        "pages_allocated": sum(e.get("pages", 0) for e in allocs),
    }

    return {
        "events": len(events),
        "event_counts": dict(sorted(type_counts.items())),
        "snapshot": snapshot,
        "cow_per_restore": cow,
        "mem": mem,
        "syscalls": syscalls,
        "search": search,
        "parallel": parallel,
    }


# ----------------------------------------------------------------------
# Table rendering
# ----------------------------------------------------------------------


def build_tables(summary: dict[str, Any]) -> list[Table]:
    tables: list[Table] = []

    counts = Table("Trace events", ["event type", "count"])
    for etype, count in summary["event_counts"].items():
        counts.add(etype, count)
    counts.add("total", summary["events"])
    tables.append(counts)

    snap = summary["snapshot"]
    lifecycle = Table("Snapshot lifecycle", ["metric", "value"])
    for key in (
        "taken", "restored", "discarded", "pruned",
        "peak_live", "end_live", "private_pages_freed",
    ):
        lifecycle.add(key, snap[key])
    tables.append(lifecycle)

    cow = summary["cow_per_restore"]
    corr = Table("COW faults per restore", ["metric", "value"])
    corr.add("restores", cow["restores"])
    corr.add("cow faults (total)", cow["cow_faults_total"])
    corr.add("cow faults (in restored spaces)", cow["cow_faults_in_restored_spaces"])
    corr.add("cow faults (elsewhere)", cow["cow_faults_elsewhere"])
    corr.add("zero fills (total)", cow["zero_fills_total"])
    corr.add("mean per restore", round(cow["per_restore_mean"], 3))
    corr.add("min per restore", cow["per_restore_min"])
    corr.add("max per restore", cow["per_restore_max"])
    tables.append(corr)

    if cow["hottest"]:
        hot = Table(
            "Hottest restores (by COW faults)",
            ["snapshot", "asid", "cow faults", "zero fills"],
        )
        for row in cow["hottest"]:
            hot.add(row["sid"], row["asid"], row["cow_faults"], row["zero_fills"])
        tables.append(hot)

    if summary["syscalls"]:
        sys_table = Table("Syscalls", ["name", "nr", "count"])
        for row in summary["syscalls"]:
            sys_table.add(row["name"], row["nr"], row["count"])
        tables.append(sys_table)

    search = summary["search"]
    search_table = Table("Search", ["metric", "value"])
    for key in ("guesses", "total_fanout", "fails", "solutions", "max_depth"):
        search_table.add(key, search[key])
    tables.append(search_table)

    if summary["parallel"]["workers"]:
        par = Table("Parallel workers", ["worker", "schedules", "preempts"])
        for row in summary["parallel"]["workers"]:
            par.add(row["worker"], row["schedules"], row["preempts"])
        tables.append(par)

    return tables


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.trace_report",
        description="Summarize an observability trace (JSONL) into tables.",
    )
    parser.add_argument("trace", help="JSONL trace file (from --obs-trace "
                        "or repro.obs.trace.JsonlSink)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the summary as one JSON object")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        events = load_events(args.trace)
    except OSError as err:
        print(f"error: cannot read {args.trace}: {err}", file=sys.stderr)
        return 2
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    summary = summarize(events)
    if args.as_json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    if not events:
        print(f"{args.trace}: empty trace")
        return 0
    for table in build_tables(summary):
        print(table.render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
