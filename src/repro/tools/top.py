"""Live cluster dashboard: watch a run's status endpoint or log.

Usage::

    python -m repro.tools.top http://127.0.0.1:8123 [--interval 1.0]
    python -m repro.tools.top --status-log status.jsonl --once --json

The data source is either the ``/status`` JSON endpoint a process-engine
run serves when started with ``run_guest --status-port``, or the
``status.sample`` JSONL time series it writes with ``--status-log``
(the last sample is the current state — both sources carry the same
snapshot schema, so the dashboard renders identically from either).

Default mode refreshes a full-screen dashboard every ``--interval``
seconds: header with elapsed / coverage / ETA, a throughput sparkline
built from successive samples, a task-state summary, and a per-worker
table (phase, current task prefix, steps, COW faults, heartbeat age).
``--once`` renders a single frame and exits; ``--json`` prints the raw
snapshot instead of the dashboard (``--once --json`` is the scriptable
probe the CI observability job uses).  The tool exits 0 as soon as a
snapshot reports ``done`` — pointing it at a finishing run is the
simplest way to block until completion.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request
from typing import Any, Optional, Sequence

from repro.bench.report import Table

#: Eight-level block characters for the throughput sparkline (index 0 is
#: a space: "no sample"/zero renders as a gap, not a bar).
SPARK_BLOCKS = " ▁▂▃▄▅▆▇█"


# ----------------------------------------------------------------------
# Data sources
# ----------------------------------------------------------------------


def status_url(base: str) -> str:
    """Normalize a base URL to its ``/status`` endpoint."""
    base = base.rstrip("/")
    if base.endswith("/status"):
        return base
    return base + "/status"


def fetch_snapshot(url: str, timeout: float = 5.0) -> dict:
    """GET one status snapshot from a running engine's HTTP endpoint."""
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return json.loads(resp.read().decode("utf-8"))


def last_sample(path: str) -> Optional[dict]:
    """Return the newest ``status.sample`` object in a status log.

    The log is append-only JSONL; a run that was SIGKILLed mid-write may
    leave a truncated final line, so corrupt lines are skipped — the
    latest *parseable* sample is the answer.
    """
    newest: Optional[dict] = None
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(event, dict) and "tasks" in event:
                    newest = event
    except OSError:
        return None
    return newest


# ----------------------------------------------------------------------
# Rendering (pure functions of snapshot dicts — unit-testable)
# ----------------------------------------------------------------------


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """Render the last *width* values as unicode block bars."""
    tail = list(values)[-width:]
    if not tail:
        return ""
    top = max(tail)
    if top <= 0:
        return SPARK_BLOCKS[0] * len(tail)
    out = []
    for value in tail:
        idx = int(round((value / top) * (len(SPARK_BLOCKS) - 1)))
        out.append(SPARK_BLOCKS[max(0, min(idx, len(SPARK_BLOCKS) - 1))])
    return "".join(out)


def gauge(fraction: float, width: int = 30) -> str:
    """Render a 0..1 fraction as ``[#####.....] 50.0%``."""
    fraction = max(0.0, min(1.0, fraction))
    filled = int(round(fraction * width))
    return "[%s%s] %5.1f%%" % (
        "#" * filled, "." * (width - filled), fraction * 100.0
    )


def _fmt_eta(eta: Optional[float]) -> str:
    if eta is None:
        return "?"
    if eta >= 3600:
        return "%dh%02dm" % (eta // 3600, (eta % 3600) // 60)
    if eta >= 60:
        return "%dm%02ds" % (eta // 60, eta % 60)
    return "%.1fs" % eta


def _fmt_task(task: Any) -> str:
    if not task:
        return "-"
    path = ".".join(str(c) for c in task)
    return path if len(path) <= 18 else "…" + path[-17:]


def render_workers_table(detail: Sequence[dict]) -> Table:
    """Per-worker table: slot health joined with the latest heartbeat."""
    table = Table(
        "Workers",
        ["worker", "slot", "state", "phase", "task", "steps",
         "cow", "spills", "done", "beat age"],
    )
    for entry in detail:
        beat_age = entry.get("beat_age_s")
        table.add(
            entry.get("worker", "?"),
            entry.get("slot", "?"),
            entry.get("state", "?"),
            entry.get("phase", "-"),
            _fmt_task(entry.get("task")),
            entry.get("steps", 0),
            entry.get("cow_faults", 0),
            entry.get("spills", 0),
            entry.get("tasks_done", 0),
            "%.1fs" % beat_age if beat_age is not None else "-",
        )
    return table


def render_dashboard(snapshot: dict,
                     rate_history: Sequence[float] = ()) -> str:
    """Render one full dashboard frame (no ANSI — caller clears screen)."""
    tasks = snapshot.get("tasks", {})
    cov = snapshot.get("coverage", {})
    thr = snapshot.get("throughput", {})
    lines = []
    state = "DONE" if snapshot.get("done") else "RUNNING"
    if snapshot.get("degraded"):
        state += " (degraded)"
    header = (
        f"repro.top — {state}  elapsed {snapshot.get('elapsed_s', 0.0):.1f}s"
        f"  strategy {snapshot.get('strategy', '?')}"
        f"  workers {snapshot.get('workers_busy', 0)}"
        f"/{snapshot.get('workers', 0)} busy"
    )
    if snapshot.get("stop_reason"):
        header += f"  stop={snapshot['stop_reason']}"
    lines.append(header)
    lines.append(
        "coverage " + gauge(cov.get("fraction", 0.0))
        + f"  eta {_fmt_eta(cov.get('eta_s'))}"
        + f"  mean fan-out {cov.get('mean_fanout', 0.0):.2f}"
    )
    rate_line = (
        f"throughput {thr.get('steps_per_s', 0.0):,.0f} steps/s"
        f"  (total {thr.get('steps_total', 0):,},"
        f" {thr.get('heartbeats', 0)} heartbeats)"
    )
    spark = sparkline(rate_history)
    if spark.strip():
        rate_line += "  " + spark
    lines.append(rate_line)
    lines.append(
        f"tasks: pending {tasks.get('pending', 0)}"
        f"  in-flight {tasks.get('in_flight', 0)}"
        f"  done {tasks.get('done', 0)}"
        f"  spilled {tasks.get('spilled', 0)}"
        f"  retried {tasks.get('retried', 0)}"
        f"  poisoned {tasks.get('poisoned', 0)}"
        f"  crashes {tasks.get('crashes', 0)}"
        f"  timeouts {tasks.get('timeouts', 0)}"
        f"   solutions {snapshot.get('solutions', 0)}"
    )
    detail = snapshot.get("workers_detail") or []
    if detail:
        lines.append("")
        lines.append(render_workers_table(detail).render())
    return "\n".join(lines)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.top",
        description="Live dashboard over a run's status endpoint or log.",
    )
    parser.add_argument(
        "url", nargs="?", default=None,
        help="status server base URL (e.g. http://127.0.0.1:8123; "
        "/status is appended automatically)",
    )
    parser.add_argument(
        "--status-log", metavar="PATH", default=None,
        help="read snapshots from a --status-log JSONL file instead of "
        "an HTTP endpoint (latest sample wins)",
    )
    parser.add_argument("--interval", type=float, default=1.0,
                        help="refresh period in seconds (default: 1.0)")
    parser.add_argument("--once", action="store_true",
                        help="render a single frame and exit")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="print the raw snapshot JSON instead of the "
                        "dashboard")
    parser.add_argument("--connect-retries", type=int, default=10,
                        help="initial-connection attempts before giving "
                        "up, 0.5s apart (default: 10) — lets the tool "
                        "start before the run it watches")
    return parser


def _get(source_url: Optional[str], log_path: Optional[str]) -> Optional[dict]:
    if source_url is not None:
        return fetch_snapshot(source_url)
    assert log_path is not None
    return last_sample(log_path)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if (args.url is None) == (args.status_log is None):
        print("error: give exactly one of URL or --status-log",
              file=sys.stderr)
        return 2
    if args.interval <= 0:
        print("error: --interval must be > 0", file=sys.stderr)
        return 2
    url = status_url(args.url) if args.url else None

    # First snapshot, with connection retries: `top` is typically raced
    # against the run it watches, so a refused connection (server thread
    # not up yet) or a missing/empty log is retried, not fatal.
    snapshot: Optional[dict] = None
    attempts = max(1, args.connect_retries)
    last_err: Optional[str] = None
    for attempt in range(attempts):
        try:
            snapshot = _get(url, args.status_log)
        except (urllib.error.URLError, OSError, json.JSONDecodeError) as err:
            last_err = str(err)
            snapshot = None
        if snapshot is not None:
            break
        if attempt + 1 < attempts:
            time.sleep(0.5)
    if snapshot is None:
        source = url or args.status_log
        detail = f": {last_err}" if last_err else ""
        print(f"error: no status from {source}{detail}", file=sys.stderr)
        return 1

    history: list[float] = []
    while True:
        history.append(
            float(snapshot.get("throughput", {}).get("steps_per_s", 0.0))
        )
        if args.as_json:
            print(json.dumps(snapshot, indent=None, sort_keys=True))
        else:
            frame = render_dashboard(snapshot, history)
            if not args.once and sys.stdout.isatty():
                sys.stdout.write("\x1b[2J\x1b[H")  # clear + home
            print(frame)
        sys.stdout.flush()
        if args.once or snapshot.get("done"):
            return 0
        time.sleep(args.interval)
        try:
            fresh = _get(url, args.status_log)
        except (urllib.error.URLError, OSError, json.JSONDecodeError):
            # The run finished and the server went away between frames:
            # the last snapshot we rendered is the final word.
            return 0
        if fresh is not None:
            snapshot = fresh


if __name__ == "__main__":  # pragma: no cover
    try:
        code = main()
    except BrokenPipeError:  # downstream (e.g. `| head`) closed the pipe
        code = 0
    raise SystemExit(code)
