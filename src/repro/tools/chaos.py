"""Deterministic chaos sweep: assert solution-set invariance under faults.

Usage::

    python -m repro.tools.chaos --seeds 20 [--kill] [--json]

For each seed the sweep builds a :class:`repro.chaos.FaultPlan` and runs
the process-parallel engine over an N-queens guest while the plan kills
workers, stalls them past the task timeout, and writes garbage into the
result pipe.  The invariant checked is the paper's core soundness claim
for the robustness layer: *injected faults may cost retries, but never
solutions* — every chaos run must produce exactly the solution multiset
of the fault-free baseline.

With ``--kill``, each seed additionally schedules a coordinator kill at
a seed-derived journal epoch: the run dies mid-flight, is resumed from
its journal (with the kill stripped via :meth:`FaultPlan.sterile`), and
the combined run must again match the baseline exactly — the
crash/resume differential test, swept across seeds.

Every fault decision is a pure function of the seed, so any failing
seed reproduces locally with the same command line.

Exit status: 0 when every seed holds the invariant, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from typing import Optional, Sequence

from repro.chaos import FaultPlan
from repro.core.cluster import ProcessParallelEngine
from repro.core.errors import CoordinatorKilled
from repro.workloads.nqueens import KNOWN_SOLUTION_COUNTS, nqueens_asm


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.chaos",
        description="Sweep chaos seeds; assert solution-set invariance.",
    )
    parser.add_argument("--seeds", type=int, default=20,
                        help="number of seeds to sweep (default: 20)")
    parser.add_argument("--seed-base", type=int, default=0,
                        help="first seed (default: 0)")
    parser.add_argument("--workload",
                        choices=["nqueens", "nqueens-random", "stdin-sum"],
                        default="nqueens",
                        help="guest under test: nqueens is deterministic; "
                        "nqueens-random draws per-column entropy and "
                        "stdin-sum consumes scripted console input — both "
                        "are first recorded sequentially and the sweep "
                        "replays the log under --replay-mode=strict, so "
                        "faults must not perturb even nondeterministic "
                        "runs (default: nqueens)")
    parser.add_argument("--n", type=int, default=6,
                        help="instance size: board size for the n-queens "
                        "workloads, tree depth for stdin-sum (default: 6)")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--crash-rate", type=float, default=0.2)
    parser.add_argument("--stall-rate", type=float, default=0.05)
    parser.add_argument("--garbage-rate", type=float, default=0.1)
    parser.add_argument("--task-timeout", type=float, default=2.0,
                        help="per-task timeout; stall faults sleep past "
                        "it so they are detected (default: 2.0)")
    parser.add_argument("--transport", choices=["pipe", "tcp"],
                        default="pipe",
                        help="worker transport for the chaos runs; the "
                        "fault-free baseline always uses pipes, so a tcp "
                        "sweep doubles as a pipe-vs-TCP differential "
                        "(default: pipe)")
    parser.add_argument("--net", action="store_true",
                        help="inject the standard network fault mix "
                        "(drop/delay/duplicate/reorder/partition/"
                        "half-open) at the TCP transport seam; requires "
                        "--transport tcp")
    parser.add_argument("--kill", action="store_true",
                        help="also kill the coordinator at a seed-derived "
                        "journal epoch and resume from the journal")
    parser.add_argument("--journal-dir", default=None,
                        help="keep per-seed journals here (default: a "
                        "temporary directory, removed afterwards)")
    parser.add_argument("--json", action="store_true",
                        help="emit the sweep report as JSON")
    return parser


def _solution_multiset(result):
    return sorted((s.path, s.value) for s in result.solutions)


def _engine(args, replay_log=None, baseline=False,
            **kwargs) -> ProcessParallelEngine:
    if replay_log is not None:
        kwargs.update(replay_mode="strict", replay_log=replay_log,
                      verify="warn")
    if not baseline:
        kwargs.setdefault("transport", args.transport)
        if args.net:
            # Partitions look like dead workers and cost retries; give
            # the sweep a short heartbeat and a deep retry budget so
            # every re-dispatched subtree still lands.
            kwargs.setdefault("heartbeat_timeout", 1.5)
            kwargs.setdefault("max_task_retries", 10)
    return ProcessParallelEngine(
        workers=args.workers,
        task_step_budget=3000,
        task_timeout=args.task_timeout,
        max_task_retries=kwargs.pop("max_task_retries", 4),
        **kwargs,
    )


def _build_workload(args):
    """Resolve --workload: returns (guest, baseline multiset, replay log).

    The nondeterministic workloads are recorded once on the sequential
    engine; that run's solutions are the sweep baseline and its nondet
    log seeds every chaos run, which then replays under strict mode.
    """
    if args.workload == "nqueens":
        if args.n not in KNOWN_SOLUTION_COUNTS:
            raise SystemExit(f"error: no known solution count for n={args.n}")
        guest = nqueens_asm(args.n)
        baseline = _solution_multiset(
            _engine(args, baseline=True).run(guest)
        )
        if len(baseline) != KNOWN_SOLUTION_COUNTS[args.n]:
            raise SystemExit(
                f"error: fault-free baseline found {len(baseline)} "
                f"solutions, expected {KNOWN_SOLUTION_COUNTS[args.n]}"
            )
        return guest, baseline, None

    import warnings

    from repro.core.machine import MachineEngine
    from repro.workloads.nqueens import nqueens_randomized_asm
    from repro.workloads.synthetic import stdin_sum_asm

    if args.workload == "nqueens-random":
        if args.n not in KNOWN_SOLUTION_COUNTS:
            raise SystemExit(f"error: no known solution count for n={args.n}")
        guest, expected = nqueens_randomized_asm(args.n), \
            KNOWN_SOLUTION_COUNTS[args.n]
        recorder_kwargs = {}
    else:
        guest, expected = stdin_sum_asm(args.n), 2 ** args.n
        from repro.libos.console import InputSource

        recorder_kwargs = {"input": InputSource(b"chaos sweep input")}
    seq = MachineEngine(replay_mode="record", verify="warn",
                        **recorder_kwargs)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")  # the DT lint is the point here
        result = seq.run(guest)
    baseline = _solution_multiset(result)
    if len(baseline) != expected:
        raise SystemExit(
            f"error: recording baseline found {len(baseline)} solutions, "
            f"expected {expected}"
        )
    return guest, baseline, seq.recorder.log


def run_seed(args, seed: int, guest, baseline, journal_dir,
             replay_log=None) -> dict:
    """One sweep iteration; returns its report row."""
    net = dict(
        net_drop_rate=0.08,
        net_delay_rate=0.10,
        net_delay_s=0.05,
        net_dup_rate=0.08,
        net_reorder_rate=0.08,
        partition_rate=0.04,
        partition_frames=6,
        half_open_rate=0.03,
    ) if args.net else {}
    plan = FaultPlan(
        seed=seed,
        crash_rate=args.crash_rate,
        stall_rate=args.stall_rate,
        garbage_rate=args.garbage_rate,
        stall_seconds=args.task_timeout * 4,
        coordinator_kill_epoch=(15 + seed % 25) if args.kill else None,
        **net,
    )
    row: dict = {"seed": seed, "kill_epoch": plan.coordinator_kill_epoch}
    journal = (
        os.path.join(journal_dir, f"seed{seed}.journal")
        if (args.kill or args.journal_dir) else None
    )
    started = time.monotonic()
    import contextlib
    import warnings

    quiet = warnings.catch_warnings() if replay_log is not None \
        else contextlib.nullcontext()
    engine = _engine(args, chaos=plan, journal=journal,
                     replay_log=replay_log)
    with quiet:
        if replay_log is not None:
            warnings.simplefilter("ignore")
        try:
            result = engine.run(guest)
            row["killed"] = False
        except CoordinatorKilled:
            row["killed"] = True
            resumed = _engine(
                args, chaos=plan.sterile(), journal=journal, resume=True,
                replay_log=replay_log,
            )
            result = resumed.run(guest)
            row["resume_pending"] = result.stats.extra["resume_pending"]
            row["resume_solutions"] = result.stats.extra["resume_solutions"]
    row["elapsed_s"] = round(time.monotonic() - started, 3)
    extra = result.stats.extra
    row.update({
        "solutions": len(result.solutions),
        "crashes": extra["worker_crashes"],
        "timeouts": extra["task_timeouts"],
        "protocol_errors": extra["protocol_errors"],
        "retried": extra["tasks_retried"],
        "respawns": extra["respawns"],
        "degraded": extra["degraded"],
        "ok": _solution_multiset(result) == baseline,
    })
    if args.transport == "tcp":
        row.update({
            "steals": extra["steals"],
            "leases_expired": extra["leases_expired"],
            "fenced_stale": extra["fenced_stale"],
            "joins": extra["worker_joins"],
        })
    return row


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.net and args.transport != "tcp":
        print("error: --net requires --transport tcp", file=sys.stderr)
        return 2
    try:
        guest, baseline, replay_log = _build_workload(args)
    except SystemExit as err:
        print(err, file=sys.stderr)
        return 2

    with tempfile.TemporaryDirectory() as tmp:
        journal_dir = args.journal_dir or tmp
        if args.journal_dir:
            os.makedirs(args.journal_dir, exist_ok=True)
        rows = [
            run_seed(args, args.seed_base + i, guest, baseline, journal_dir,
                     replay_log=replay_log)
            for i in range(args.seeds)
        ]

    failures = [row for row in rows if not row["ok"]]
    report = {
        "n": args.n,
        "workload": args.workload,
        "expected_solutions": len(baseline),
        "seeds": args.seeds,
        "kill_mode": args.kill,
        "transport": args.transport,
        "net_mode": args.net,
        "total_fenced_stale": sum(
            r.get("fenced_stale", 0) for r in rows
        ),
        "failures": [row["seed"] for row in failures],
        "total_crashes": sum(r["crashes"] for r in rows),
        "total_timeouts": sum(r["timeouts"] for r in rows),
        "total_protocol_errors": sum(r["protocol_errors"] for r in rows),
        "total_respawns": sum(r["respawns"] for r in rows),
        "rows": rows,
    }
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        for row in rows:
            status = "ok" if row["ok"] else "SOLUTION MISMATCH"
            kill = (
                f" kill@{row['kill_epoch']}"
                + ("+resume" if row["killed"] else " (finished first)")
                if row["kill_epoch"] is not None else ""
            )
            net = (
                f" fenced={row['fenced_stale']} "
                f"leases={row['leases_expired']}"
                if "fenced_stale" in row else ""
            )
            print(
                f"seed {row['seed']:>4}: {status}  "
                f"solutions={row['solutions']} crashes={row['crashes']} "
                f"timeouts={row['timeouts']} "
                f"garbage={row['protocol_errors']} "
                f"respawns={row['respawns']}{net}{kill}"
            )
        fenced = (
            f", {report['total_fenced_stale']} stale results fenced"
            if args.transport == "tcp" else ""
        )
        print(
            f"{args.seeds} seed(s): {len(failures)} failure(s), "
            f"{report['total_crashes']} worker crashes, "
            f"{report['total_timeouts']} timeouts, "
            f"{report['total_protocol_errors']} garbage injections "
            f"survived{fenced}"
        )
    if failures:
        print(
            "chaos invariant violated for seed(s): "
            + ", ".join(str(r["seed"]) for r in failures),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
