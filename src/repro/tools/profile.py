"""Profile a search trace: flamegraphs, hotspots, critical path.

Usage::

    python -m repro.tools.profile trace.jsonl                # summary tables
    python -m repro.tools.profile trace.jsonl --folded       # folded stacks
    python -m repro.tools.profile trace.jsonl --speedscope out.json
    python -m repro.tools.profile trace.jsonl --top 20
    python -m repro.tools.profile trace.jsonl --json

The input is an observability trace (JSONL, from ``--obs-trace`` or
:class:`repro.obs.trace.JsonlSink`) — sequential or merged multi-worker;
:mod:`repro.obs.profile` rebuilds the guess tree from it and attributes
instructions retired, COW faults, pages, snapshot lifecycle and wall
time to every decision prefix.

``--folded`` prints Brendan-Gregg folded-stack lines (the decision
prefix is the stack) ready for any flamegraph renderer; the rendered
root frame totals the whole run's retired-instruction counter.
``--speedscope FILE`` writes a https://www.speedscope.app document.
``--metric`` switches what is folded/ranked (default ``steps``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Optional, Sequence

from repro.bench.report import Table
from repro.obs.profile import (
    METRICS,
    Profile,
    build_profile,
    folded_stacks,
    hotspots,
    speedscope_document,
    summarize_profile,
)
from repro.tools.trace_report import load_events


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.profile",
        description="Rebuild the guess tree from a trace and attribute "
        "cost to every subtree.",
    )
    parser.add_argument("trace", help="JSONL trace file (from --obs-trace "
                        "or repro.obs.trace.JsonlSink)")
    parser.add_argument("--folded", action="store_true",
                        help="emit folded-stack flamegraph lines and exit")
    parser.add_argument("--speedscope", metavar="FILE",
                        help="write a speedscope-compatible JSON profile")
    parser.add_argument("--metric", choices=METRICS, default="steps",
                        help="cost metric to fold/rank by (default: steps)")
    parser.add_argument("--top", type=int, default=10, metavar="N",
                        help="hotspot rows to show (default: 10)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the full summary as one JSON object")
    return parser


# ----------------------------------------------------------------------
# Table rendering
# ----------------------------------------------------------------------


def build_tables(profile: Profile, summary: dict[str, Any],
                 top: int, metric: str) -> list[Table]:
    tables: list[Table] = []

    totals = Table("Profile totals", ["metric", "value"])
    totals.add("events", summary["events"])
    totals.add("tree nodes", summary["nodes"])
    totals.add("instructions (explore)", summary["total_steps"])
    totals.add("instructions (replay)", summary["total_replay_steps"])
    totals.add("replay overhead", f"{summary['replay_overhead']:.1%}")
    cum = summary["totals"]
    totals.add("cow faults", cum.get("cow_faults", 0))
    totals.add("pages allocated", cum.get("pages_allocated", 0))
    totals.add("snapshots taken", cum.get("snapshots_taken", 0))
    totals.add("snapshots restored", cum.get("snapshots_restored", 0))
    totals.add("solutions", cum.get("solutions", 0))
    tables.append(totals)

    rows = hotspots(profile, top=top, metric=metric)
    if rows:
        hot = Table(
            f"Hotspots (top {len(rows)} by exclusive {metric})",
            ["path", "excl steps", "subtree steps", "replay",
             "cow faults", "outcome"],
        )
        for row in rows:
            hot.add(row["path"], row["steps"], row["subtree_steps"],
                    row["replay_steps"], row["cow_faults"], row["outcome"])
        tables.append(hot)

    critical = summary["critical_path"]
    crit = Table(
        f"Critical path (cost={critical['cost']}, "
        f"depth={critical['depth']})",
        ["path", "steps", "cow faults", "outcome"],
    )
    for node in critical["nodes"]:
        crit.add(node["path"], node["steps"], node["cow_faults"],
                 node["outcome"])
    tables.append(crit)

    if summary["workers"]:
        par = Table(
            "Cluster workers",
            ["worker", "tasks", "explore insns", "replay insns",
             "replay share", "busy s"],
        )
        for worker, agg in summary["workers"].items():
            steps = agg["explore_steps"] + agg["replay_steps"]
            share = agg["replay_steps"] / steps if steps else 0.0
            par.add(worker, agg["tasks"], agg["explore_steps"],
                    agg["replay_steps"], f"{share:.1%}",
                    f"{agg['busy_s']:.3f}")
        tables.append(par)

    return tables


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        events, skipped = load_events(args.trace)
    except OSError as err:
        print(f"error: cannot read {args.trace}: {err}", file=sys.stderr)
        return 2
    if skipped:
        print(f"warning: skipped {skipped} corrupt line(s) in {args.trace}",
              file=sys.stderr)

    profile = build_profile(events)

    if args.speedscope:
        document = speedscope_document(profile, metric=args.metric)
        with open(args.speedscope, "w", encoding="utf-8") as fh:
            json.dump(document, fh)
            fh.write("\n")
        print(f"wrote speedscope profile to {args.speedscope}",
              file=sys.stderr)

    if args.folded:
        for line in folded_stacks(profile, metric=args.metric):
            print(line)
        return 0

    summary = summarize_profile(profile, top=args.top, metric=args.metric)
    summary["skipped_lines"] = skipped
    if args.as_json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    if not events:
        print(f"{args.trace}: empty trace")
        return 0
    for table in build_tables(profile, summary, args.top, args.metric):
        print(table.render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    try:
        status = main()
    except BrokenPipeError:  # e.g. `... --folded | head`
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        status = 0
    raise SystemExit(status)
