"""Static analysis front-end: lint and certify a guest program.

Usage::

    python -m repro.tools.analyze path/to/guest.s [options]
    python -m repro.tools.analyze --plan journaled_append_clean [options]
    python -m repro.tools.analyze --explain FS001

Assembles the source, runs the full CFG + dataflow analysis
(:func:`repro.analysis.analyze`) and prints the report.  Exit code is
the lint verdict — 0 clean, 1 warnings, 2 errors — so the tool slots
directly into CI.

``--plan NAME`` analyzes the generated guest of a crashfs corpus plan
with the plan's FS context (base files, block size, final rules), so
the FS lint family runs at full precision.  ``--explain LINTID``
prints one catalog entry (description, severity, example) and exits.

``--differential`` additionally *executes* the guest to validate the
determinism certificate dynamically: two sequential runs must produce
identical normalized trace streams, and a sequential vs process-parallel
run must agree on terminal search outcomes.  A differential failure
forces a non-zero exit even when the static report is clean.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.analysis import CATALOG, analyze
from repro.analysis.differential import (
    cross_engine_differential,
    sequential_differential,
)
from repro.cpu.assembler import AssemblyError, assemble


def explain(lint_id: str, out=None) -> int:
    """Print the catalog entry for one lint id; exit 2 when unknown."""
    out = out if out is not None else sys.stdout
    spec = CATALOG.get(lint_id)
    if spec is None:
        known = ", ".join(sorted(CATALOG))
        print(f"error: unknown lint id {lint_id!r} (known: {known})",
              file=sys.stderr)
        return 2
    print(f"{spec.lint_id} ({spec.name})", file=out)
    print(f"severity: {spec.default_severity.label}", file=out)
    print(f"description: {spec.description}", file=out)
    if spec.example:
        print(f"example: {spec.example}", file=out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.analyze",
        description="Statically analyze a guest program and certify "
        "its replay determinism.",
    )
    parser.add_argument("source", nargs="?", default=None,
                        help="assembly source file")
    parser.add_argument("--explain", metavar="LINTID", default=None,
                        help="print the catalog entry for a lint id "
                        "(e.g. FS001) and exit")
    parser.add_argument("--plan", metavar="NAME", default=None,
                        help="analyze the generated guest of a crashfs "
                        "corpus plan (with its FS context) instead of "
                        "a source file")
    output = parser.add_mutually_exclusive_group()
    output.add_argument("--json", action="store_true",
                        help="emit the report as JSON")
    output.add_argument("--sarif", action="store_true",
                        help="emit the report as SARIF 2.1.0")
    parser.add_argument("--output", metavar="PATH", default=None,
                        help="write the report to PATH instead of stdout")
    parser.add_argument("--differential", action="store_true",
                        help="also run the guest and check the "
                        "determinism certificate dynamically")
    parser.add_argument("--workers", type=int, default=2,
                        help="process-engine workers for --differential "
                        "(default: 2)")
    parser.add_argument("--stack-pages", type=int, default=None,
                        help="stack size assumed by the memory-bounds "
                        "lints (default: loader default)")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.explain is not None:
        return explain(args.explain)
    if args.plan is not None and args.source is not None:
        parser.error("--plan and a source file are mutually exclusive")
    if args.plan is None and args.source is None:
        parser.error("a source file, --plan or --explain is required")

    kwargs = {}
    if args.stack_pages is not None:
        kwargs["stack_pages"] = args.stack_pages

    if args.plan is not None:
        from repro.crashsim import crash_asm, fs_context_for
        from repro.workloads.crashfs import CORPUS

        plan = CORPUS.get(args.plan)
        if plan is None:
            print(f"error: unknown plan {args.plan!r} "
                  f"(known: {', '.join(sorted(CORPUS))})", file=sys.stderr)
            return 2
        source = crash_asm(plan)
        artifact = f"plan:{args.plan}"
        kwargs["fs_context"] = fs_context_for(plan)
    else:
        try:
            with open(args.source) as handle:
                source = handle.read()
        except OSError as err:
            print(f"error: cannot read {args.source}: {err}", file=sys.stderr)
            return 2
        artifact = args.source
    try:
        program = assemble(source)
    except AssemblyError as err:
        print(f"assembly error: {err}", file=sys.stderr)
        return 2

    report = analyze(program, **kwargs)

    if args.sarif:
        rendered = report.sarif_text(artifact=artifact)
    elif args.json:
        rendered = json.dumps(report.to_json(), indent=2)
    else:
        rendered = report.render_human()
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered + "\n")
    else:
        print(rendered)

    exit_code = report.exit_code
    if args.differential:
        checks = [sequential_differential(program)]
        if report.certificate.certified:
            checks.append(
                cross_engine_differential(program, workers=args.workers)
            )
        else:
            print(
                "differential: skipping cross-engine check "
                "(program is not certified deterministic)",
                file=sys.stderr,
            )
        for check in checks:
            status = "ok" if check.ok else "FAILED"
            print(f"differential[{check.check}]: {status} — {check.detail}",
                  file=sys.stderr)
            if not check.ok:
                exit_code = max(exit_code, 2)
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
