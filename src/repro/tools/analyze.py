"""Static analysis front-end: lint and certify a guest program.

Usage::

    python -m repro.tools.analyze path/to/guest.s [options]

Assembles the source, runs the full CFG + dataflow analysis
(:func:`repro.analysis.analyze`) and prints the report.  Exit code is
the lint verdict — 0 clean, 1 warnings, 2 errors — so the tool slots
directly into CI.

``--differential`` additionally *executes* the guest to validate the
determinism certificate dynamically: two sequential runs must produce
identical normalized trace streams, and a sequential vs process-parallel
run must agree on terminal search outcomes.  A differential failure
forces a non-zero exit even when the static report is clean.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.analysis import analyze
from repro.analysis.differential import (
    cross_engine_differential,
    sequential_differential,
)
from repro.cpu.assembler import AssemblyError, assemble


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.analyze",
        description="Statically analyze a guest program and certify "
        "its replay determinism.",
    )
    parser.add_argument("source", help="assembly source file")
    output = parser.add_mutually_exclusive_group()
    output.add_argument("--json", action="store_true",
                        help="emit the report as JSON")
    output.add_argument("--sarif", action="store_true",
                        help="emit the report as SARIF 2.1.0")
    parser.add_argument("--output", metavar="PATH", default=None,
                        help="write the report to PATH instead of stdout")
    parser.add_argument("--differential", action="store_true",
                        help="also run the guest and check the "
                        "determinism certificate dynamically")
    parser.add_argument("--workers", type=int, default=2,
                        help="process-engine workers for --differential "
                        "(default: 2)")
    parser.add_argument("--stack-pages", type=int, default=None,
                        help="stack size assumed by the memory-bounds "
                        "lints (default: loader default)")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        with open(args.source) as handle:
            source = handle.read()
    except OSError as err:
        print(f"error: cannot read {args.source}: {err}", file=sys.stderr)
        return 2
    try:
        program = assemble(source)
    except AssemblyError as err:
        print(f"assembly error: {err}", file=sys.stderr)
        return 2

    kwargs = {}
    if args.stack_pages is not None:
        kwargs["stack_pages"] = args.stack_pages
    report = analyze(program, **kwargs)

    if args.sarif:
        rendered = report.sarif_text(artifact=args.source)
    elif args.json:
        rendered = json.dumps(report.to_json(), indent=2)
    else:
        rendered = report.render_human()
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered + "\n")
    else:
        print(rendered)

    exit_code = report.exit_code
    if args.differential:
        checks = [sequential_differential(program)]
        if report.certificate.certified:
            checks.append(
                cross_engine_differential(program, workers=args.workers)
            )
        else:
            print(
                "differential: skipping cross-engine check "
                "(program is not certified deterministic)",
                file=sys.stderr,
            )
        for check in checks:
            status = "ok" if check.ok else "FAILED"
            print(f"differential[{check.check}]: {status} — {check.detail}",
                  file=sys.stderr)
            if not check.ok:
                exit_code = max(exit_code, 2)
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
