"""crashfind: search a workload for crash-consistency bugs.

Runs the crash-consistency search (:mod:`repro.crashsim`) over a named
corpus plan and reports every surviving crash state with the write
trace that produced it.

Usage::

    python -m repro.tools.crashfind --list
    python -m repro.tools.crashfind journaled_append_missing_fsync
    python -m repro.tools.crashfind journaled_append_clean --prune
    python -m repro.tools.crashfind rename_update_no_sync --engine process \
        --workers 3 --json

``--prune`` lets the static file-effect analysis skip crash points it
proves redundant; survivors at pruned points are synthesized exactly
from representatives, so the report is unchanged (see docs/CRASH.md).

Exit status: 0 — the search matched the plan's declaration (bugs found
with the expected blame, or proven clean); 1 — mismatch (a declared
bug was missed, a clean plan produced survivors, or the blame was
wrong); 2 — usage error.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.crashsim import run_crashfind
from repro.workloads.crashfs import CORPUS


def _list_plans(out) -> None:
    width = max(len(name) for name in CORPUS)
    for name, plan in sorted(CORPUS.items()):
        kind = "bug" if plan.expect_bug else "clean"
        print(f"{name:<{width}}  [{kind:5s}] {plan.description}", file=out)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="crashfind",
        description="Search a corpus workload for crash-consistency bugs.",
    )
    parser.add_argument("workload", nargs="?",
                        help="corpus plan name (see --list)")
    parser.add_argument("--list", action="store_true",
                        help="list the corpus plans and exit")
    parser.add_argument("--engine", choices=("snapshot", "process"),
                        default="snapshot",
                        help="search engine (default: snapshot)")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes for --engine process")
    parser.add_argument("--journal", default=None,
                        help="write-ahead run journal path (process engine)")
    parser.add_argument("--resume", action="store_true",
                        help="resume an interrupted run from --journal")
    parser.add_argument("--prune", action="store_true",
                        help="skip crash points the static file-effect "
                        "analysis proves redundant")
    parser.add_argument("--json", action="store_true",
                        help="emit the report as JSON instead of text")
    args = parser.parse_args(argv)

    if args.list:
        _list_plans(sys.stdout)
        return 0
    if args.workload is None:
        parser.error("workload name required (or --list)")
    if args.workload not in CORPUS:
        parser.error(
            f"unknown workload {args.workload!r} (see --list)"
        )
    if (args.journal or args.resume) and args.engine != "process":
        parser.error("--journal/--resume require --engine process")

    report = run_crashfind(
        CORPUS[args.workload],
        engine=args.engine,
        workers=args.workers,
        journal=args.journal,
        resume=args.resume,
        prune=args.prune,
    )
    if args.json:
        print(report.to_json())
    else:
        print(report.render_text())
        if args.prune:
            if report.stats.get("pruned"):
                print(
                    "pruning: {points_pruned}/{points_total} crash points "
                    "skipped, {images_explored}/{images_total} images "
                    "explored".format(**report.stats)
                )
            else:
                print("pruning: declined (analysis could not certify "
                      "the write log)")
    return 0 if report.verdict_ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
