"""Command-line tools.

* ``python -m repro.tools.run_guest prog.s`` -- assemble and explore a
  guest binary under system-level backtracking;
* ``python -m repro.tools.solve_cnf file.cnf`` -- run the CDCL solver on
  a DIMACS formula.
"""
