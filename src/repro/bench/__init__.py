"""Benchmark-harness utilities: result tables and timing helpers."""

from repro.bench.report import Table, fmt_ratio, time_once

__all__ = ["Table", "fmt_ratio", "time_once"]
