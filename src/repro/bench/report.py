"""Plain-text result tables for the experiment harness.

Every bench prints the rows/series the corresponding experiment reports
in EXPERIMENTS.md, so a run of ``pytest benchmarks/ --benchmark-only -s``
regenerates the paper-shaped output directly.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Sequence


class Table:
    """A fixed-column table printed in aligned plain text."""

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[str]] = []

    def add(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append([_fmt(v) for v in values])

    def render(self) -> str:
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in self.rows))
            if self.rows else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        sep = "  "
        header = sep.join(c.ljust(w) for c, w in zip(self.columns, widths))
        rule = "-" * len(header)
        lines = [f"\n== {self.title} ==", header, rule]
        for row in self.rows:
            lines.append(sep.join(v.rjust(w) for v, w in zip(row, widths)))
        return "\n".join(lines)

    def show(self) -> None:
        print(self.render())


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:,.0f}"
        return f"{value:.3g}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def fmt_ratio(numerator: float, denominator: float) -> str:
    """'12.3x' (or 'inf' when the denominator is zero)."""
    if denominator == 0:
        return "inf"
    return f"{numerator / denominator:.1f}x"


def time_once(fn: Callable[[], Any]) -> tuple[float, Any]:
    """Wall-clock one call; returns (seconds, result)."""
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result
