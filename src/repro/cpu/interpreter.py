"""Fetch/decode/execute core.

The interpreter runs guest machine code against a :class:`AddressSpace`,
so every load, store, push, pop and instruction fetch is translated by
the simulated MMU — copy-on-write faults happen exactly where real guest
code would take them.

Execution proceeds until a *CPU exit*: a ``syscall`` or ``hlt``
instruction, an unresolvable fault, or the step budget.  The VMM layer
(:mod:`repro.vmm`) wraps these in VM exits for the libOS.

A decode cache (rip -> decoded tuple) makes re-execution cheap.  It stays
valid across snapshot restore because .text is mapped read-execute: guest
code physically cannot modify itself without taking a protection fault.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.cpu import isa
from repro.cpu.registers import MASK64, RegisterFile
from repro.mem.addrspace import AddressSpace
from repro.mem.faults import PageFaultError

_SIGN_BIT = 1 << 63


class DivideError(Exception):
    """Guest divided by zero (#DE)."""


class InvalidOpcodeError(Exception):
    """Guest executed an undefined opcode byte (#UD)."""

    def __init__(self, rip: int, opcode: int):
        self.rip = rip
        self.opcode = opcode
        super().__init__(f"invalid opcode {opcode:#04x} at {rip:#x}")


class ExitReason(enum.Enum):
    """Why the CPU stopped executing."""

    SYSCALL = "syscall"
    HLT = "hlt"
    FAULT = "fault"
    STEP_LIMIT = "step_limit"


@dataclass
class CpuExit:
    """One CPU exit event."""

    reason: ExitReason
    steps: int
    fault: Optional[Exception] = None


def _signed(value: int) -> int:
    """Reinterpret an unsigned 64-bit value as signed."""
    return value - (1 << 64) if value & _SIGN_BIT else value


class Interpreter:
    """Executes decoded instructions over an address space.

    Parameters
    ----------
    space:
        The guest address space (swappable via :meth:`attach_space` when
        the scheduler restores a snapshot).
    regs:
        The mutable register file (default: fresh zeroed file).
    icache:
        Optional shared decode cache.  The machine engine passes one
        cache across all snapshot restores of the same program.
    """

    def __init__(
        self,
        space: AddressSpace,
        regs: Optional[RegisterFile] = None,
        icache: Optional[dict] = None,
    ):
        self.space = space
        self.regs = regs if regs is not None else RegisterFile()
        self._icache: dict[int, tuple] = icache if icache is not None else {}
        #: Total instructions executed over this interpreter's lifetime.
        self.instructions_executed = 0

    def attach_space(self, space: AddressSpace) -> None:
        """Point the CPU at a different address space (snapshot restore)."""
        self.space = space

    # ------------------------------------------------------------------
    # Decode
    # ------------------------------------------------------------------

    def _decode(self, rip: int) -> tuple:
        space = self.space
        opcode = space.fetch(rip, 1)[0]
        spec = isa.OPCODES.get(opcode)
        if spec is None:
            raise InvalidOpcodeError(rip, opcode)
        length = isa.insn_length(opcode)
        raw = space.fetch(rip + 1, length - 1) if length > 1 else b""
        next_rip = rip + length
        pos = 0
        fields: list[int] = [opcode]
        for kind in spec.layout:
            if kind in ("r", "c"):
                if kind == "r" and raw[pos] >= 16:
                    # A register operand outside r0..r15 is an invalid
                    # encoding, not a host error.
                    raise InvalidOpcodeError(rip, opcode)
                fields.append(raw[pos])
                pos += 1
            elif kind == "i":
                fields.append(int.from_bytes(raw[pos : pos + 8], "little"))
                pos += 8
            elif kind == "s" or kind == "d":
                fields.append(
                    int.from_bytes(raw[pos : pos + 4], "little", signed=True)
                )
                pos += 4
            else:  # "t": branch target, pre-resolved to absolute
                rel = int.from_bytes(raw[pos : pos + 4], "little", signed=True)
                fields.append(next_rip + rel)
                pos += 4
        fields.append(next_rip)
        return tuple(fields)

    # ------------------------------------------------------------------
    # Execute
    # ------------------------------------------------------------------

    def step(self) -> CpuExit:
        """Execute exactly one instruction (slow path, used in tests)."""
        return self.run(max_steps=1)

    def run(self, max_steps: Optional[int] = None) -> CpuExit:
        """Run until syscall/hlt/fault or *max_steps* instructions."""
        regs = self.regs
        g = regs.gprs
        space = self.space
        icache = self._icache
        read_word = space.read_word
        write_word = space.write_word
        read_byte = space.read_byte
        write_byte = space.write_byte
        rip = regs.rip
        zf, sf, cf, of = regs.zf, regs.sf, regs.cf, regs.of
        steps = 0
        budget = max_steps if max_steps is not None else -1

        def sync_out() -> None:
            regs.rip = rip
            regs.zf, regs.sf, regs.cf, regs.of = zf, sf, cf, of
            self.instructions_executed += steps

        I = isa
        try:
            while True:
                if steps == budget:
                    sync_out()
                    return CpuExit(ExitReason.STEP_LIMIT, steps)
                d = icache.get(rip)
                if d is None:
                    d = self._decode(rip)
                    icache[rip] = d
                op = d[0]
                steps += 1

                if op == I.MOVI:
                    g[d[1]] = d[2]
                    rip = d[3]
                elif op == I.MOVR:
                    g[d[1]] = g[d[2]]
                    rip = d[3]
                elif op == I.LOAD:
                    g[d[1]] = read_word((g[d[2]] + d[3]) & MASK64)
                    rip = d[4]
                elif op == I.STORE:
                    write_word((g[d[1]] + d[2]) & MASK64, g[d[3]])
                    rip = d[4]
                elif op == I.LOADB:
                    g[d[1]] = read_byte((g[d[2]] + d[3]) & MASK64)
                    rip = d[4]
                elif op == I.STOREB:
                    write_byte((g[d[1]] + d[2]) & MASK64, g[d[3]])
                    rip = d[4]
                elif op == I.LOADX:
                    addr = (g[d[2]] + g[d[3]] * d[4] + d[5]) & MASK64
                    g[d[1]] = read_word(addr)
                    rip = d[6]
                elif op == I.STOREX:
                    addr = (g[d[1]] + g[d[2]] * d[3] + d[4]) & MASK64
                    write_word(addr, g[d[5]])
                    rip = d[6]
                elif op == I.LOADBX:
                    addr = (g[d[2]] + g[d[3]] * d[4] + d[5]) & MASK64
                    g[d[1]] = read_byte(addr)
                    rip = d[6]
                elif op == I.STOREBX:
                    addr = (g[d[1]] + g[d[2]] * d[3] + d[4]) & MASK64
                    write_byte(addr, g[d[5]])
                    rip = d[6]
                elif op == I.LEA:
                    g[d[1]] = (g[d[2]] + d[3]) & MASK64
                    rip = d[4]
                elif op == I.LEAX:
                    g[d[1]] = (g[d[2]] + g[d[3]] * d[4] + d[5]) & MASK64
                    rip = d[6]

                elif op == I.ADDRR or op == I.ADDRI:
                    a = g[d[1]]
                    b = g[d[2]] if op == I.ADDRR else d[2] & MASK64
                    full = a + b
                    res = full & MASK64
                    g[d[1]] = res
                    zf = res == 0
                    sf = bool(res & _SIGN_BIT)
                    cf = full > MASK64
                    of = bool(~(a ^ b) & (a ^ res) & _SIGN_BIT)
                    rip = d[3]
                elif op == I.SUBRR or op == I.SUBRI:
                    a = g[d[1]]
                    b = g[d[2]] if op == I.SUBRR else d[2] & MASK64
                    res = (a - b) & MASK64
                    g[d[1]] = res
                    zf = res == 0
                    sf = bool(res & _SIGN_BIT)
                    cf = a < b
                    of = bool((a ^ b) & (a ^ res) & _SIGN_BIT)
                    rip = d[3]
                elif op == I.CMPRR or op == I.CMPRI:
                    a = g[d[1]]
                    b = g[d[2]] if op == I.CMPRR else d[2] & MASK64
                    res = (a - b) & MASK64
                    zf = res == 0
                    sf = bool(res & _SIGN_BIT)
                    cf = a < b
                    of = bool((a ^ b) & (a ^ res) & _SIGN_BIT)
                    rip = d[3]
                elif op == I.TESTRR:
                    res = g[d[1]] & g[d[2]]
                    zf = res == 0
                    sf = bool(res & _SIGN_BIT)
                    cf = of = False
                    rip = d[3]
                elif op == I.IMULRR or op == I.IMULRI:
                    a = _signed(g[d[1]])
                    b = _signed(g[d[2]]) if op == I.IMULRR else d[2]
                    res = (a * b) & MASK64
                    g[d[1]] = res
                    zf = res == 0
                    sf = bool(res & _SIGN_BIT)
                    rip = d[3]
                elif op == I.ANDRR or op == I.ANDRI:
                    res = g[d[1]] & (g[d[2]] if op == I.ANDRR else d[2] & MASK64)
                    g[d[1]] = res
                    zf = res == 0
                    sf = bool(res & _SIGN_BIT)
                    cf = of = False
                    rip = d[3]
                elif op == I.ORRR or op == I.ORRI:
                    res = g[d[1]] | (g[d[2]] if op == I.ORRR else d[2] & MASK64)
                    g[d[1]] = res
                    zf = res == 0
                    sf = bool(res & _SIGN_BIT)
                    cf = of = False
                    rip = d[3]
                elif op == I.XORRR or op == I.XORRI:
                    res = g[d[1]] ^ (g[d[2]] if op == I.XORRR else d[2] & MASK64)
                    g[d[1]] = res
                    zf = res == 0
                    sf = bool(res & _SIGN_BIT)
                    cf = of = False
                    rip = d[3]
                elif op == I.SHLI:
                    res = (g[d[1]] << (d[2] & 63)) & MASK64
                    g[d[1]] = res
                    zf = res == 0
                    sf = bool(res & _SIGN_BIT)
                    rip = d[3]
                elif op == I.SHRI:
                    res = g[d[1]] >> (d[2] & 63)
                    g[d[1]] = res
                    zf = res == 0
                    sf = bool(res & _SIGN_BIT)
                    rip = d[3]
                elif op == I.NEG:
                    res = (-g[d[1]]) & MASK64
                    g[d[1]] = res
                    zf = res == 0
                    sf = bool(res & _SIGN_BIT)
                    cf = res != 0
                    rip = d[2]
                elif op == I.NOT:
                    g[d[1]] = g[d[1]] ^ MASK64
                    rip = d[2]
                elif op == I.INC:
                    res = (g[d[1]] + 1) & MASK64
                    g[d[1]] = res
                    zf = res == 0
                    sf = bool(res & _SIGN_BIT)
                    rip = d[2]
                elif op == I.DEC:
                    res = (g[d[1]] - 1) & MASK64
                    g[d[1]] = res
                    zf = res == 0
                    sf = bool(res & _SIGN_BIT)
                    rip = d[2]
                elif op == I.UDIVRR or op == I.UMODRR:
                    divisor = g[d[2]]
                    if divisor == 0:
                        raise DivideError(f"division by zero at {rip:#x}")
                    if op == I.UDIVRR:
                        g[d[1]] = g[d[1]] // divisor
                    else:
                        g[d[1]] = g[d[1]] % divisor
                    rip = d[3]

                elif op == I.JMP:
                    rip = d[1]
                elif op == I.JE:
                    rip = d[1] if zf else d[2]
                elif op == I.JNE:
                    rip = d[2] if zf else d[1]
                elif op == I.JL:
                    rip = d[1] if sf != of else d[2]
                elif op == I.JLE:
                    rip = d[1] if zf or sf != of else d[2]
                elif op == I.JG:
                    rip = d[1] if not zf and sf == of else d[2]
                elif op == I.JGE:
                    rip = d[1] if sf == of else d[2]
                elif op == I.JB:
                    rip = d[1] if cf else d[2]
                elif op == I.JAE:
                    rip = d[2] if cf else d[1]

                elif op == I.CALL:
                    rsp = (g[4] - 8) & MASK64
                    write_word(rsp, d[2])  # return address
                    g[4] = rsp
                    rip = d[1]
                elif op == I.RET:
                    rsp = g[4]
                    rip = read_word(rsp)
                    g[4] = (rsp + 8) & MASK64
                elif op == I.PUSH:
                    rsp = (g[4] - 8) & MASK64
                    write_word(rsp, g[d[1]])
                    g[4] = rsp
                    rip = d[2]
                elif op == I.POP:
                    rsp = g[4]
                    g[d[1]] = read_word(rsp)
                    g[4] = (rsp + 8) & MASK64
                    rip = d[2]

                elif op == I.NOP:
                    rip = d[1]
                elif op == I.SYSCALL:
                    rip = d[1]  # resume after the syscall instruction
                    sync_out()
                    return CpuExit(ExitReason.SYSCALL, steps)
                elif op == I.HLT:
                    rip = d[1]
                    sync_out()
                    return CpuExit(ExitReason.HLT, steps)
                else:  # pragma: no cover - table and executor kept in sync
                    raise InvalidOpcodeError(rip, op)
        except (PageFaultError, DivideError, InvalidOpcodeError) as fault:
            # rip still points at the faulting instruction.
            sync_out()
            return CpuExit(ExitReason.FAULT, steps, fault=fault)
