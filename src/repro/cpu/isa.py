"""Instruction-set definition for the simulated CPU.

A compact x86-64-flavoured ISA.  Every instruction is one opcode byte
followed by fixed-layout operands; register operands are one byte
(index 0..15), immediates are little-endian (imm64 for MOVI, sign-extended
imm32 elsewhere), displacements and branch targets are signed 32-bit.

The encoding is deliberately regular — this is not a binary-compatible
x86 core, it is the smallest ISA that lets the paper's claims be tested
with *machine code whose memory traffic goes through a paged MMU*.
"""

from __future__ import annotations

from typing import NamedTuple

# --- opcode space ------------------------------------------------------

# data movement
MOVI = 0x01       # reg <- imm64
MOVR = 0x02       # reg <- reg
LOAD = 0x03       # reg <- [reg + disp32]              (64-bit)
STORE = 0x04      # [reg + disp32] <- reg              (64-bit)
LOADB = 0x05      # reg <- zx([reg + disp32])          (8-bit)
STOREB = 0x06     # [reg + disp32] <- low8(reg)
LOADX = 0x07      # reg <- [base + idx*scale + disp32] (64-bit)
STOREX = 0x08     # [base + idx*scale + disp32] <- reg
LOADBX = 0x09     # 8-bit indexed load (zero-extended)
STOREBX = 0x0A    # 8-bit indexed store
LEA = 0x0B        # reg <- base + disp32
LEAX = 0x0C       # reg <- base + idx*scale + disp32

# arithmetic / logic (RR = reg,reg; RI = reg,imm32 sign-extended)
ADDRR = 0x10
ADDRI = 0x11
SUBRR = 0x12
SUBRI = 0x13
IMULRR = 0x14
IMULRI = 0x15
ANDRR = 0x16
ANDRI = 0x17
ORRR = 0x18
ORRI = 0x19
XORRR = 0x1A
XORRI = 0x1B
SHLI = 0x1C
SHRI = 0x1D
NEG = 0x1E
NOT = 0x1F
UDIVRR = 0x23     # dst <- dst / src (unsigned; #DE on zero)
UMODRR = 0x24     # dst <- dst % src
INC = 0x25
DEC = 0x26

# compare / test
CMPRR = 0x20
CMPRI = 0x21
TESTRR = 0x22

# control flow (targets are rip-relative signed 32-bit, from next insn)
JMP = 0x30
JE = 0x31
JNE = 0x32
JL = 0x33
JLE = 0x34
JG = 0x35
JGE = 0x36
JB = 0x37
JAE = 0x38
CALL = 0x40
RET = 0x41
PUSH = 0x42
POP = 0x43

# system
SYSCALL = 0x50
NOP = 0x90
HLT = 0xF4


class OpSpec(NamedTuple):
    """Static operand layout of one opcode."""

    name: str
    #: operand layout string: each char describes one encoded operand:
    #:   r = register byte, i = imm64, s = imm32 (sign-extended),
    #:   d = disp32 (signed), t = branch target rel32 (signed),
    #:   c = scale byte (1/2/4/8)
    layout: str


#: opcode byte -> operand spec.  The assembler and interpreter both
#: derive operand sizes from this single table.
OPCODES: dict[int, OpSpec] = {
    MOVI: OpSpec("mov", "ri"),
    MOVR: OpSpec("mov", "rr"),
    LOAD: OpSpec("mov", "rrd"),
    STORE: OpSpec("mov", "rdr"),
    LOADB: OpSpec("movb", "rrd"),
    STOREB: OpSpec("movb", "rdr"),
    LOADX: OpSpec("mov", "rrrcd"),
    STOREX: OpSpec("mov", "rrcdr"),
    LOADBX: OpSpec("movb", "rrrcd"),
    STOREBX: OpSpec("movb", "rrcdr"),
    LEA: OpSpec("lea", "rrd"),
    LEAX: OpSpec("lea", "rrrcd"),
    ADDRR: OpSpec("add", "rr"),
    ADDRI: OpSpec("add", "rs"),
    SUBRR: OpSpec("sub", "rr"),
    SUBRI: OpSpec("sub", "rs"),
    IMULRR: OpSpec("imul", "rr"),
    IMULRI: OpSpec("imul", "rs"),
    ANDRR: OpSpec("and", "rr"),
    ANDRI: OpSpec("and", "rs"),
    ORRR: OpSpec("or", "rr"),
    ORRI: OpSpec("or", "rs"),
    XORRR: OpSpec("xor", "rr"),
    XORRI: OpSpec("xor", "rs"),
    SHLI: OpSpec("shl", "rs"),
    SHRI: OpSpec("shr", "rs"),
    NEG: OpSpec("neg", "r"),
    NOT: OpSpec("not", "r"),
    UDIVRR: OpSpec("udiv", "rr"),
    UMODRR: OpSpec("umod", "rr"),
    INC: OpSpec("inc", "r"),
    DEC: OpSpec("dec", "r"),
    CMPRR: OpSpec("cmp", "rr"),
    CMPRI: OpSpec("cmp", "rs"),
    TESTRR: OpSpec("test", "rr"),
    JMP: OpSpec("jmp", "t"),
    JE: OpSpec("je", "t"),
    JNE: OpSpec("jne", "t"),
    JL: OpSpec("jl", "t"),
    JLE: OpSpec("jle", "t"),
    JG: OpSpec("jg", "t"),
    JGE: OpSpec("jge", "t"),
    JB: OpSpec("jb", "t"),
    JAE: OpSpec("jae", "t"),
    CALL: OpSpec("call", "t"),
    RET: OpSpec("ret", ""),
    PUSH: OpSpec("push", "r"),
    POP: OpSpec("pop", "r"),
    SYSCALL: OpSpec("syscall", ""),
    NOP: OpSpec("nop", ""),
    HLT: OpSpec("hlt", ""),
}

#: Encoded byte width of each operand kind.
_FIELD_WIDTH = {"r": 1, "c": 1, "i": 8, "s": 4, "d": 4, "t": 4}


def insn_length(opcode: int) -> int:
    """Total encoded length (opcode byte + operands) of *opcode*."""
    spec = OPCODES[opcode]
    return 1 + sum(_FIELD_WIDTH[f] for f in spec.layout)
