"""The simulated CPU.

Extension steps in the paper "run as arbitrary x86 code" (§3.1); this
package provides the simulated equivalent: a small x86-64-flavoured ISA
with 16 general-purpose registers, flags, a two-pass assembler, and an
interpreter whose loads and stores go through :mod:`repro.mem` address
spaces — so guest code takes real COW page faults.

* :mod:`repro.cpu.registers` -- the register file (the immutable half of
  a snapshot together with the address space).
* :mod:`repro.cpu.isa` -- opcode definitions and encoding layout.
* :mod:`repro.cpu.assembler` -- text assembly -> :class:`Program`.
* :mod:`repro.cpu.interpreter` -- fetch/decode/execute with a decode
  cache; stops with typed :class:`CpuExit` events (syscall, halt, fault,
  step budget) that the VMM layer turns into VM exits.
"""

from repro.cpu.assembler import AssemblyError, Program, assemble
from repro.cpu.interpreter import CpuExit, ExitReason, Interpreter
from repro.cpu.registers import REG_NAMES, RegisterFile

__all__ = [
    "AssemblyError",
    "CpuExit",
    "ExitReason",
    "Interpreter",
    "Program",
    "REG_NAMES",
    "RegisterFile",
    "assemble",
]
