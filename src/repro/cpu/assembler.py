"""Two-pass assembler for the simulated ISA.

Supports an AT&T-free, Intel-ish syntax::

    ; n-queens inner loop (comments with ';' or '#')
    .data
    board:  .zero 64
    msg:    .asciz "hello\\n"
    .text
    _start:
        mov   rdi, 8
        mov   rsi, board
        call  solve
        hlt
    solve:
        mov   rax, [rsi + rdi*8 - 8]
        add   rax, 1
        mov   [rsi], rax
        ret

Sections: ``.text`` assembles at *text_base* (RX), ``.data`` at
*data_base* (RW).  Directives: ``.quad``, ``.byte``, ``.zero``,
``.ascii``, ``.asciz``.  Labels may be used as immediates (``mov rax,
label``), as ``.quad`` values, and as branch/call targets.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

from repro.cpu import isa
from repro.cpu.registers import REG_INDEX
from repro.mem.layout import CODE_BASE, DATA_BASE


class AssemblyError(Exception):
    """Syntax or range error in assembly source (includes line number)."""


@dataclass
class Program:
    """An assembled guest binary."""

    text: bytes
    data: bytes
    text_base: int
    data_base: int
    symbols: dict[str, int] = field(default_factory=dict)
    source: str = ""
    #: pc of each .text instruction -> 1-based source line (static
    #: analyzers cite these; empty for hand-built programs).
    lines: dict[int, int] = field(default_factory=dict)

    @property
    def entry(self) -> int:
        """Entry point: the ``_start`` symbol, else the top of .text."""
        return self.symbols.get("_start", self.text_base)


# --- operand model -------------------------------------------------------


@dataclass
class _Mem:
    base: str
    index: Optional[str] = None
    scale: int = 1
    disp: int | str = 0  # int or unresolved label


_MEM_RE = re.compile(r"^\[(.+)\]$")
_SCALED_RE = re.compile(r"^([a-z0-9]+)\*([1248])$")


def _parse_int(tok: str) -> Optional[int]:
    tok = tok.strip()
    if len(tok) >= 3 and tok.startswith("'") and tok.endswith("'"):
        body = tok[1:-1]
        unescaped = body.encode().decode("unicode_escape")
        if len(unescaped) != 1:
            return None
        return ord(unescaped)
    try:
        return int(tok, 0)
    except ValueError:
        return None


def _parse_mem(body: str, lineno: int) -> _Mem:
    """Parse the inside of ``[...]``: base [+ idx*scale] [+/- disp]."""
    # Whitespace is insignificant inside brackets; normalise "a - b" to
    # "a + -b" so we can split on '+'.
    body = body.replace(" ", "").replace("\t", "")
    body = body.replace("-", "+-")
    parts = [p.strip() for p in body.split("+") if p.strip()]
    mem = _Mem(base="")
    for part in parts:
        scaled = _SCALED_RE.match(part)
        if scaled and scaled.group(1) in REG_INDEX:
            if mem.index is not None:
                raise AssemblyError(f"line {lineno}: two index registers")
            mem.index = scaled.group(1)
            mem.scale = int(scaled.group(2))
        elif part in REG_INDEX:
            if not mem.base:
                mem.base = part
            elif mem.index is None:
                mem.index = part
                mem.scale = 1
            else:
                raise AssemblyError(f"line {lineno}: three registers in address")
        else:
            value = _parse_int(part)
            if value is None:
                if part.startswith("-"):
                    raise AssemblyError(f"line {lineno}: bad displacement {part!r}")
                if mem.disp != 0:
                    raise AssemblyError(f"line {lineno}: two displacements")
                mem.disp = part  # label, resolved in pass 2
            else:
                mem.disp = (mem.disp if isinstance(mem.disp, int) else 0) + value
    if not mem.base:
        raise AssemblyError(f"line {lineno}: memory operand needs a base register")
    return mem


def _split_operands(rest: str) -> list[str]:
    """Split on commas not inside brackets or quotes."""
    out, depth, quote, cur = [], 0, False, []
    for ch in rest:
        if ch == '"':
            quote = not quote
        elif ch == "[" and not quote:
            depth += 1
        elif ch == "]" and not quote:
            depth -= 1
        if ch == "," and depth == 0 and not quote:
            out.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
    tail = "".join(cur).strip()
    if tail:
        out.append(tail)
    return out


# --- the assembler -------------------------------------------------------

_ALIASES = {"jz": "je", "jnz": "jne", "movq": "mov"}

_I32_MIN, _I32_MAX = -(1 << 31), (1 << 31) - 1


class _Item:
    """One assembled item: an instruction or a data blob."""

    __slots__ = ("kind", "opcode", "operands", "length", "lineno", "blob")

    def __init__(self, kind, lineno, opcode=None, operands=None, length=0, blob=b""):
        self.kind = kind  # "insn" | "blob"
        self.opcode = opcode
        self.operands = operands or []
        self.length = length or len(blob)
        self.lineno = lineno
        self.blob = blob


def assemble(
    source: str,
    text_base: int = CODE_BASE,
    data_base: int = DATA_BASE,
) -> Program:
    """Assemble *source* into a :class:`Program`.

    Raises :class:`AssemblyError` with a line number on any syntax,
    range, or unknown-symbol problem.
    """
    sections: dict[str, list[_Item]] = {"text": [], "data": []}
    label_at: list[tuple[str, str, int]] = []  # (label, section, item index)
    current = "text"

    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = raw.split(";")[0].split("#")[0].strip()
        if not line:
            continue
        while True:
            match = re.match(r"^([A-Za-z_.$][\w.$]*):\s*(.*)$", line)
            if not match:
                break
            label_at.append((match.group(1), current, len(sections[current])))
            line = match.group(2).strip()
        if not line:
            continue
        if line.startswith("."):
            directive = line.split(None, 1)
            name = directive[0]
            rest = directive[1] if len(directive) > 1 else ""
            if name == ".text":
                current = "text"
            elif name == ".data":
                current = "data"
            else:
                sections[current].append(_directive(name, rest, lineno))
            continue
        sections[current].append(_instruction(line, lineno))

    # Pass 1: lay out addresses.
    symbols: dict[str, int] = {}
    offsets = {"text": [], "data": []}
    bases = {"text": text_base, "data": data_base}
    for section in ("text", "data"):
        pos = bases[section]
        for item in sections[section]:
            offsets[section].append(pos)
            pos += item.length
    for label, section, index in label_at:
        if label in symbols:
            raise AssemblyError(f"duplicate label {label!r}")
        if index < len(offsets[section]):
            symbols[label] = offsets[section][index]
        else:  # label at end of section
            base = bases[section]
            items = sections[section]
            symbols[label] = (
                offsets[section][-1] + items[-1].length if items else base
            )

    # Pass 2: encode.
    blobs = {}
    for section in ("text", "data"):
        out = bytearray()
        for item, addr in zip(sections[section], offsets[section]):
            if item.kind == "blob":
                out += _resolve_blob(item, symbols)
            else:
                out += _encode(item, addr, symbols)
        blobs[section] = bytes(out)

    lines = {
        addr: item.lineno
        for item, addr in zip(sections["text"], offsets["text"])
        if item.kind == "insn"
    }

    return Program(
        text=blobs["text"],
        data=blobs["data"],
        text_base=text_base,
        data_base=data_base,
        symbols=symbols,
        source=source,
        lines=lines,
    )


def _directive(name: str, rest: str, lineno: int) -> _Item:
    if name == ".quad":
        values = _split_operands(rest)
        return _Item(
            "blob", lineno, blob=b"", length=8 * len(values),
            operands=[("quads", values)],
        )
    if name == ".byte":
        values = []
        for tok in _split_operands(rest):
            val = _parse_int(tok)
            if val is None or not (0 <= val <= 255):
                raise AssemblyError(f"line {lineno}: bad byte {tok!r}")
            values.append(val)
        return _Item("blob", lineno, blob=bytes(values))
    if name == ".zero":
        n = _parse_int(rest)
        if n is None or n < 0:
            raise AssemblyError(f"line {lineno}: bad .zero size {rest!r}")
        return _Item("blob", lineno, blob=bytes(n))
    if name in (".ascii", ".asciz"):
        match = re.match(r'^"(.*)"$', rest.strip())
        if not match:
            raise AssemblyError(f"line {lineno}: {name} needs a quoted string")
        text = match.group(1).encode().decode("unicode_escape").encode("latin-1")
        if name == ".asciz":
            text += b"\x00"
        return _Item("blob", lineno, blob=text)
    raise AssemblyError(f"line {lineno}: unknown directive {name!r}")


def _resolve_blob(item: _Item, symbols: dict[str, int]) -> bytes:
    if not item.operands:
        return item.blob
    kind, values = item.operands[0]
    assert kind == "quads"
    out = bytearray()
    for tok in values:
        val = _parse_int(tok)
        if val is None:
            if tok not in symbols:
                raise AssemblyError(f"line {item.lineno}: unknown symbol {tok!r}")
            val = symbols[tok]
        out += ((val + (1 << 64)) % (1 << 64)).to_bytes(8, "little")
    return bytes(out)


def _instruction(line: str, lineno: int) -> _Item:
    parts = line.split(None, 1)
    mnemonic = _ALIASES.get(parts[0].lower(), parts[0].lower())
    rest = parts[1] if len(parts) > 1 else ""
    operands = []
    for tok in _split_operands(rest):
        mem_match = _MEM_RE.match(tok)
        if mem_match:
            operands.append(_parse_mem(mem_match.group(1).lower(), lineno))
        elif tok.lower() in REG_INDEX:
            operands.append(tok.lower())
        else:
            value = _parse_int(tok)
            operands.append(value if value is not None else ("sym", tok))
    opcode = _pick_opcode(mnemonic, operands, lineno)
    return _Item(
        "insn", lineno, opcode=opcode, operands=operands,
        length=isa.insn_length(opcode),
    )


def _is_reg(op) -> bool:
    return isinstance(op, str)


def _is_imm(op) -> bool:
    return isinstance(op, int) or (isinstance(op, tuple) and op[0] == "sym")


_SIMPLE = {
    "ret": isa.RET, "syscall": isa.SYSCALL, "nop": isa.NOP, "hlt": isa.HLT,
}
_UNARY_R = {
    "push": isa.PUSH, "pop": isa.POP, "neg": isa.NEG, "not": isa.NOT,
    "inc": isa.INC, "dec": isa.DEC,
}
_BRANCH = {
    "jmp": isa.JMP, "je": isa.JE, "jne": isa.JNE, "jl": isa.JL,
    "jle": isa.JLE, "jg": isa.JG, "jge": isa.JGE, "jb": isa.JB,
    "jae": isa.JAE, "call": isa.CALL,
}
_ALU_RR_RI = {
    "add": (isa.ADDRR, isa.ADDRI), "sub": (isa.SUBRR, isa.SUBRI),
    "imul": (isa.IMULRR, isa.IMULRI), "and": (isa.ANDRR, isa.ANDRI),
    "or": (isa.ORRR, isa.ORRI), "xor": (isa.XORRR, isa.XORRI),
    "cmp": (isa.CMPRR, isa.CMPRI),
}


def _pick_opcode(mnemonic: str, operands: list, lineno: int) -> int:
    def err(msg: str):
        return AssemblyError(f"line {lineno}: {msg}")

    if mnemonic in _SIMPLE:
        if operands:
            raise err(f"{mnemonic} takes no operands")
        return _SIMPLE[mnemonic]
    if mnemonic in _UNARY_R:
        if len(operands) != 1 or not _is_reg(operands[0]):
            raise err(f"{mnemonic} needs one register operand")
        return _UNARY_R[mnemonic]
    if mnemonic in _BRANCH:
        if len(operands) != 1 or not _is_imm(operands[0]):
            raise err(f"{mnemonic} needs a label or address")
        return _BRANCH[mnemonic]
    if mnemonic in _ALU_RR_RI:
        rr, ri = _ALU_RR_RI[mnemonic]
        if len(operands) != 2 or not _is_reg(operands[0]):
            raise err(f"{mnemonic} needs reg, reg/imm")
        return rr if _is_reg(operands[1]) else ri
    if mnemonic in ("shl", "shr"):
        if len(operands) != 2 or not _is_reg(operands[0]) or not _is_imm(operands[1]):
            raise err(f"{mnemonic} needs reg, imm")
        return isa.SHLI if mnemonic == "shl" else isa.SHRI
    if mnemonic in ("udiv", "umod"):
        if len(operands) != 2 or not all(_is_reg(o) for o in operands):
            raise err(f"{mnemonic} needs reg, reg")
        return isa.UDIVRR if mnemonic == "udiv" else isa.UMODRR
    if mnemonic == "test":
        if len(operands) != 2 or not all(_is_reg(o) for o in operands):
            raise err("test needs reg, reg")
        return isa.TESTRR
    if mnemonic in ("mov", "movb"):
        if len(operands) != 2:
            raise err(f"{mnemonic} needs two operands")
        dst, src = operands
        byte = mnemonic == "movb"
        if _is_reg(dst) and isinstance(src, _Mem):
            if src.index is not None:
                return isa.LOADBX if byte else isa.LOADX
            return isa.LOADB if byte else isa.LOAD
        if isinstance(dst, _Mem) and _is_reg(src):
            if dst.index is not None:
                return isa.STOREBX if byte else isa.STOREX
            return isa.STOREB if byte else isa.STORE
        if byte:
            raise err("movb needs a memory operand")
        if _is_reg(dst) and _is_reg(src):
            return isa.MOVR
        if _is_reg(dst) and _is_imm(src):
            return isa.MOVI
        raise err("unsupported mov form")
    if mnemonic == "lea":
        if len(operands) != 2 or not _is_reg(operands[0]) \
                or not isinstance(operands[1], _Mem):
            raise err("lea needs reg, [mem]")
        return isa.LEAX if operands[1].index is not None else isa.LEA
    raise err(f"unknown mnemonic {mnemonic!r}")


def _sym_value(op, symbols: dict[str, int], lineno: int) -> int:
    if isinstance(op, int):
        return op
    if isinstance(op, tuple) and op[0] == "sym":
        name = op[1]
        if name not in symbols:
            raise AssemblyError(f"line {lineno}: unknown symbol {name!r}")
        return symbols[name]
    raise AssemblyError(f"line {lineno}: expected immediate, got {op!r}")


def _encode(item: _Item, addr: int, symbols: dict[str, int]) -> bytes:
    """Encode one instruction according to its opcode's layout."""
    opcode = item.opcode
    spec = isa.OPCODES[opcode]
    lineno = item.lineno
    out = bytearray([opcode])

    # Flatten operands into layout fields.
    fields: list[tuple[str, int]] = []
    ops = list(item.operands)

    def reg(name: str) -> int:
        return REG_INDEX[name]

    def disp_value(disp) -> int:
        if isinstance(disp, str):
            if disp not in symbols:
                raise AssemblyError(f"line {lineno}: unknown symbol {disp!r}")
            return symbols[disp]
        return disp

    if spec.layout == "ri":  # MOVI
        fields = [("r", reg(ops[0])), ("i", _sym_value(ops[1], symbols, lineno))]
    elif spec.layout == "rr":
        fields = [("r", reg(ops[0])), ("r", reg(ops[1]))]
    elif spec.layout == "rs":
        fields = [("r", reg(ops[0])), ("s", _sym_value(ops[1], symbols, lineno))]
    elif spec.layout == "r":
        fields = [("r", reg(ops[0]))]
    elif spec.layout == "t":
        target = _sym_value(ops[0], symbols, lineno)
        rel = target - (addr + item.length)
        fields = [("t", rel)]
    elif spec.layout == "rrd":  # LOAD/LOADB/LEA: dst, [base+disp]
        if opcode in (isa.STORE, isa.STOREB):
            raise AssemblyError("internal: store uses rdr")
        mem = ops[1]
        fields = [("r", reg(ops[0])), ("r", reg(mem.base)),
                  ("d", disp_value(mem.disp))]
    elif spec.layout == "rdr":  # STORE/STOREB: [base+disp], src
        mem = ops[0]
        fields = [("r", reg(mem.base)), ("d", disp_value(mem.disp)),
                  ("r", reg(ops[1]))]
    elif spec.layout == "rrrcd":  # LOADX/LEAX: dst, [base+idx*scale+disp]
        mem = ops[1]
        fields = [("r", reg(ops[0])), ("r", reg(mem.base)), ("r", reg(mem.index)),
                  ("c", mem.scale), ("d", disp_value(mem.disp))]
    elif spec.layout == "rrcdr":  # STOREX: [base+idx*scale+disp], src
        mem = ops[0]
        fields = [("r", reg(mem.base)), ("r", reg(mem.index)), ("c", mem.scale),
                  ("d", disp_value(mem.disp)), ("r", reg(ops[1]))]
    elif spec.layout == "":
        fields = []
    else:  # pragma: no cover - table and encoder kept in sync
        raise AssemblyError(f"line {lineno}: unhandled layout {spec.layout!r}")

    for kind, value in fields:
        if kind == "r":
            out.append(value)
        elif kind == "c":
            out.append(value)
        elif kind == "i":
            if not (-(1 << 63) <= value < (1 << 64)):
                raise AssemblyError(f"line {lineno}: imm64 out of range")
            out += (value & ((1 << 64) - 1)).to_bytes(8, "little")
        elif kind in ("s", "d", "t"):
            if not (_I32_MIN <= value <= _I32_MAX):
                raise AssemblyError(
                    f"line {lineno}: 32-bit field out of range ({value})"
                )
            out += (value & 0xFFFFFFFF).to_bytes(4, "little")
    if len(out) != item.length:  # pragma: no cover - encoder invariant
        raise AssemblyError(f"line {lineno}: encoding length mismatch")
    return bytes(out)
