"""The guest register file.

A register file plus an address space is exactly what a lightweight
snapshot captures (§3.1: "a copy of the register file and an immutable
logical copy of the entire address space").  :meth:`RegisterFile.frozen`
produces the immutable value stored in snapshots; :meth:`RegisterFile.load`
restores one into a mutable file when the scheduler resumes an extension.
"""

from __future__ import annotations

from typing import NamedTuple

MASK64 = (1 << 64) - 1

#: Register index constants (order defines the guest-visible numbering).
RAX, RCX, RDX, RBX, RSP, RBP, RSI, RDI = range(8)
R8, R9, R10, R11, R12, R13, R14, R15 = range(8, 16)

#: Index -> canonical name, x86-64 order.
REG_NAMES = [
    "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
    "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
]

#: Name -> index.
REG_INDEX = {name: i for i, name in enumerate(REG_NAMES)}


class FrozenRegisters(NamedTuple):
    """An immutable register-file value (the snapshot half of state)."""

    gprs: tuple[int, ...]
    rip: int
    zf: bool
    sf: bool
    cf: bool
    of: bool


class RegisterFile:
    """Sixteen 64-bit GPRs, an instruction pointer, and four flags."""

    __slots__ = ("gprs", "rip", "zf", "sf", "cf", "of")

    def __init__(self) -> None:
        self.gprs = [0] * 16
        self.rip = 0
        self.zf = False
        self.sf = False
        self.cf = False
        self.of = False

    # -- named accessors used by syscall handlers and tests ------------

    def __getitem__(self, name_or_index) -> int:
        if isinstance(name_or_index, str):
            return self.gprs[REG_INDEX[name_or_index]]
        return self.gprs[name_or_index]

    def __setitem__(self, name_or_index, value: int) -> None:
        if isinstance(name_or_index, str):
            self.gprs[REG_INDEX[name_or_index]] = value & MASK64
        else:
            self.gprs[name_or_index] = value & MASK64

    @property
    def rax(self) -> int:
        return self.gprs[RAX]

    @rax.setter
    def rax(self, value: int) -> None:
        self.gprs[RAX] = value & MASK64

    @property
    def rsp(self) -> int:
        return self.gprs[RSP]

    @rsp.setter
    def rsp(self, value: int) -> None:
        self.gprs[RSP] = value & MASK64

    @property
    def rdi(self) -> int:
        return self.gprs[RDI]

    @property
    def rsi(self) -> int:
        return self.gprs[RSI]

    @property
    def rdx(self) -> int:
        return self.gprs[RDX]

    # -- snapshot support ----------------------------------------------

    def frozen(self) -> FrozenRegisters:
        """Capture an immutable copy of the whole register state."""
        return FrozenRegisters(
            tuple(self.gprs), self.rip, self.zf, self.sf, self.cf, self.of
        )

    def load(self, frozen: FrozenRegisters) -> None:
        """Restore a previously captured register state."""
        self.gprs = list(frozen.gprs)
        self.rip = frozen.rip
        self.zf = frozen.zf
        self.sf = frozen.sf
        self.cf = frozen.cf
        self.of = frozen.of

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        regs = ", ".join(
            f"{name}={self.gprs[i]:#x}" for i, name in enumerate(REG_NAMES[:8])
        )
        return f"RegisterFile(rip={self.rip:#x}, {regs})"
