"""A Prolog engine in the WAM tradition (the XSB stand-in).

§5 compares the snapshot prototype against "a Prolog implementation
running on XSB"; §6 relates ``sys_guess`` to WAM choice points.  This
package provides the comparison point: an SLD-resolution engine with

* structure terms, logic variables with in-place binding,
* a **trail** for O(1) undo on backtracking (the WAM mechanism the
  paper's snapshots replace with page-level COW),
* chronological backtracking via choice points,
* arithmetic and comparison builtins, negation as failure,
* a small Prolog text parser (:mod:`repro.prolog.parser`).

The engine counts logical inferences, choice points and trail writes so
E1 can report the bookkeeping cost that system-level backtracking moves
out of the runtime.
"""

from repro.prolog.engine import Database, PrologEngine
from repro.prolog.parser import parse_program, parse_query
from repro.prolog.terms import Struct, Var, from_list, make_list, walk

__all__ = [
    "Database",
    "PrologEngine",
    "Struct",
    "Var",
    "from_list",
    "make_list",
    "parse_program",
    "parse_query",
    "walk",
]
