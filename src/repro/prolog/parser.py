"""A small Prolog reader.

Supports the subset the experiments need: facts and rules, conjunctive
bodies, atoms, integers, variables, compound terms, lists with ``|``
tails, arithmetic expressions with standard precedence, comparison
operators, negation as failure (``\\+``), and ``%`` comments.

>>> db = parse_program("even(0). even(N) :- N > 0, M is N - 2, even(M).")
>>> from repro.prolog.engine import PrologEngine
>>> PrologEngine(db).count(*parse_query("even(8)"))
1
"""

from __future__ import annotations

import re
from typing import Optional

from repro.prolog.engine import Database
from repro.prolog.terms import Struct, Term, Var, make_list


class PrologSyntaxError(Exception):
    """Malformed Prolog text."""


_TOKEN_RE = re.compile(
    r"""
      (?P<ws>\s+|%[^\n]*)
    | (?P<int>\d+)
    | (?P<op>:-|=\\=|=:=|=<|>=|\\\+|\\=|//|[=<>+\-*,|()\[\]])
    | (?P<name>[a-z][A-Za-z0-9_]*)
    | (?P<var>[A-Z_][A-Za-z0-9_]*)
    | (?P<quoted>'(?:[^'\\]|\\.)*')
    | (?P<end>\.(?=\s|$))
    """,
    re.VERBOSE,
)

_CMP_OPS = {"<", ">", "=<", ">=", "=:=", "=\\=", "=", "\\="}
_ADD_OPS = {"+", "-"}
_MUL_OPS = {"*", "//", "mod"}


class _Tokens:
    def __init__(self, text: str):
        self.items: list[tuple[str, str]] = []
        pos = 0
        while pos < len(text):
            match = _TOKEN_RE.match(text, pos)
            if match is None:
                raise PrologSyntaxError(f"bad character at: {text[pos:pos+20]!r}")
            pos = match.end()
            kind = match.lastgroup
            if kind == "ws":
                continue
            self.items.append((kind, match.group()))
        self.pos = 0

    def peek(self) -> Optional[tuple[str, str]]:
        return self.items[self.pos] if self.pos < len(self.items) else None

    def next(self) -> tuple[str, str]:
        tok = self.peek()
        if tok is None:
            raise PrologSyntaxError("unexpected end of input")
        self.pos += 1
        return tok

    def accept(self, value: str) -> bool:
        tok = self.peek()
        if tok is not None and tok[1] == value:
            self.pos += 1
            return True
        return False

    def expect(self, value: str) -> None:
        tok = self.next()
        if tok[1] != value:
            raise PrologSyntaxError(f"expected {value!r}, got {tok[1]!r}")


class _Parser:
    def __init__(self, tokens: _Tokens):
        self.tokens = tokens
        self.varmap: dict[str, Var] = {}

    def fresh_scope(self) -> None:
        self.varmap = {}

    # term at comparison level (goals and expressions)
    def term(self) -> Term:
        left = self.additive()
        tok = self.tokens.peek()
        if tok is not None and tok[1] in _CMP_OPS:
            op = self.tokens.next()[1]
            right = self.additive()
            return Struct(op, (left, right))
        if tok is not None and tok[0] == "name" and tok[1] == "is":
            self.tokens.next()
            right = self.additive()
            return Struct("is", (left, right))
        return left

    def additive(self) -> Term:
        left = self.multiplicative()
        while True:
            tok = self.tokens.peek()
            if tok is None or tok[1] not in _ADD_OPS:
                return left
            op = self.tokens.next()[1]
            left = Struct(op, (left, self.multiplicative()))

    def multiplicative(self) -> Term:
        left = self.primary()
        while True:
            tok = self.tokens.peek()
            if tok is None or tok[1] not in _MUL_OPS:
                return left
            op = self.tokens.next()[1]
            left = Struct(op, (left, self.primary()))

    def primary(self) -> Term:
        kind, value = self.tokens.next()
        if kind == "int":
            return int(value)
        if value == "-":
            operand = self.primary()
            if isinstance(operand, int):
                return -operand
            return Struct("-", (operand,))
        if value == "\\+":
            return Struct("\\+", (self.term(),))
        if value == "(":
            inner = self.term()
            self.tokens.expect(")")
            return inner
        if value == "[":
            return self.list_term()
        if kind == "var":
            if value == "_":
                return Var("_")
            var = self.varmap.get(value)
            if var is None:
                var = Var(value)
                self.varmap[value] = var
            return var
        if kind == "quoted":
            value = value[1:-1].replace("\\'", "'")
            kind = "name"
        if kind == "name":
            if value == "mod":
                raise PrologSyntaxError("mod used as a term")
            if self.tokens.accept("("):
                args = [self.term()]
                while self.tokens.accept(","):
                    args.append(self.term())
                self.tokens.expect(")")
                return Struct(value, tuple(args))
            return value  # plain atom
        raise PrologSyntaxError(f"unexpected token {value!r}")

    def list_term(self) -> Term:
        if self.tokens.accept("]"):
            return "[]"
        items = [self.term()]
        while self.tokens.accept(","):
            items.append(self.term())
        tail: Term = "[]"
        if self.tokens.accept("|"):
            tail = self.term()
        self.tokens.expect("]")
        return make_list(items, tail)

    def body(self) -> tuple:
        goals = [self.term()]
        while self.tokens.accept(","):
            goals.append(self.term())
        return tuple(goals)

    def clause(self) -> tuple[Term, tuple]:
        self.fresh_scope()
        head = self.term()
        if self.tokens.accept(":-"):
            goals = self.body()
        else:
            goals = ()
        tok = self.tokens.next()
        if tok[0] != "end":
            raise PrologSyntaxError(f"expected '.', got {tok[1]!r}")
        return head, goals


def parse_program(text: str) -> Database:
    """Parse clauses into a fresh :class:`Database`."""
    db = Database()
    tokens = _Tokens(text)
    parser = _Parser(tokens)
    while tokens.peek() is not None:
        head, body = parser.clause()
        db.add(head, body)
    return db


def parse_query(text: str) -> tuple:
    """Parse a conjunctive query (no trailing dot required)."""
    tokens = _Tokens(text.rstrip().rstrip("."))
    parser = _Parser(tokens)
    goals = parser.body()
    if tokens.peek() is not None:
        raise PrologSyntaxError(f"trailing tokens after query: {tokens.peek()[1]!r}")
    return goals
