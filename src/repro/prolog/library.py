"""Standard library predicates and the n-queens program.

``PRELUDE`` provides the list predicates the workloads need; the
n-queens source is the classic incremental-placement formulation, the
closest Prolog analogue of Figure 1 (place one queen per column, fail
early on attack).
"""

from repro.prolog.engine import Database, PrologEngine
from repro.prolog.parser import parse_program, parse_query

PRELUDE = """
append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).

member(X, [X|_]).
member(X, [_|T]) :- member(X, T).

select(X, [X|T], T).
select(X, [H|T], [H|R]) :- select(X, T, R).

length_([], 0).
length_([_|T], N) :- length_(T, M), N is M + 1.

range(L, H, []) :- L > H.
range(L, H, [L|T]) :- L =< H, L1 is L + 1, range(L1, H, T).
"""

NQUEENS = """
queens(N, Qs) :-
    range(1, N, Ns),
    place(Ns, [], Qs).

place([], Acc, Acc).
place(Unplaced, Acc, Qs) :-
    select(Q, Unplaced, Rest),
    no_attack(Q, Acc, 1),
    place(Rest, [Q|Acc], Qs).

no_attack(_, [], _).
no_attack(Q, [P|Ps], D) :-
    Q =\\= P + D,
    Q =\\= P - D,
    D1 is D + 1,
    no_attack(Q, Ps, D1).
"""


def nqueens_database() -> Database:
    """The prelude plus the n-queens program, ready to query."""
    return parse_program(PRELUDE + NQUEENS)


def count_nqueens_solutions(n: int) -> tuple[int, PrologEngine]:
    """Count all n-queens solutions; returns (count, engine) so callers
    can inspect the engine's bookkeeping statistics."""
    engine = PrologEngine(nqueens_database())
    goals = parse_query(f"queens({n}, Qs)")
    return engine.count(*goals), engine
