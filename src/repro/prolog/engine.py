"""SLD resolution with trail-based chronological backtracking.

The engine realises what §6 calls "the WAM choice points": each clause
alternative is a choice point; bindings made while trying one alternative
are recorded on the **trail** and unwound when it fails.  This per-binding
bookkeeping is exactly the cost that the paper's page-granular
copy-on-write snapshots amortise away, so the engine counts it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.prolog.terms import (
    CONS,
    Struct,
    Term,
    Var,
    rename,
    reify,
    term_vars,
    walk,
)


@dataclass
class PrologStats:
    """Work counters (the "bookkeeping" E1 reports)."""

    inferences: int = 0
    choice_points: int = 0
    trail_writes: int = 0
    unifications: int = 0


class PrologError(Exception):
    """Malformed program or unsupported goal."""


class Database:
    """Clause storage indexed by predicate indicator."""

    def __init__(self) -> None:
        self._clauses: dict[tuple[str, int], list[tuple[Term, tuple]]] = {}

    def add(self, head: Term, body: tuple = ()) -> None:
        """Add ``head :- body`` (facts have an empty body)."""
        head = walk(head)
        if isinstance(head, str):
            head = Struct(head)
        if not isinstance(head, Struct):
            raise PrologError(f"clause head must be callable: {head!r}")
        self._clauses.setdefault(head.indicator, []).append((head, tuple(body)))

    def clauses_for(self, goal: Struct) -> list[tuple[Term, tuple]]:
        return self._clauses.get(goal.indicator, [])

    def __contains__(self, indicator: tuple[str, int]) -> bool:
        return indicator in self._clauses


_COMPARISONS = {
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "=<": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
    "=:=": lambda a, b: a == b,
    "=\\=": lambda a, b: a != b,
}

_ARITH = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "//": lambda a, b: a // b,
    "mod": lambda a, b: a % b,
}


_NO_MORE = object()


class PrologEngine:
    """Queries a :class:`Database` by SLD resolution.

    >>> db = Database()
    >>> db.add(Struct("parent", ("tom", "bob")))
    >>> engine = PrologEngine(db)
    >>> x = Var("X")
    >>> [walk(x) for _ in engine.solve((Struct("parent", ("tom", x)),))]
    ['bob']
    """

    def __init__(self, db: Database, max_depth: int = 100_000):
        self.db = db
        self.max_depth = max_depth
        self.stats = PrologStats()
        self._trail: list[Var] = []

    # ------------------------------------------------------------------
    # Unification with trailing
    # ------------------------------------------------------------------

    def _bind(self, var: Var, term: Term) -> None:
        var.ref = term
        self._trail.append(var)
        self.stats.trail_writes += 1

    def _undo_to(self, mark: int) -> None:
        trail = self._trail
        while len(trail) > mark:
            trail.pop().ref = None

    def unify(self, a: Term, b: Term) -> bool:
        """Unify, trailing bindings for backtracking."""
        self.stats.unifications += 1
        stack = [(a, b)]
        while stack:
            x, y = stack.pop()
            x, y = walk(x), walk(y)
            if x is y:
                continue
            if isinstance(x, Var):
                self._bind(x, y)
            elif isinstance(y, Var):
                self._bind(y, x)
            elif isinstance(x, Struct) and isinstance(y, Struct):
                if x.functor != y.functor or len(x.args) != len(y.args):
                    return False
                stack.extend(zip(x.args, y.args))
            elif x != y:
                return False
        return True

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------

    def evaluate(self, term: Term) -> int:
        """Evaluate an arithmetic expression term to an integer."""
        term = walk(term)
        if isinstance(term, int):
            return term
        if isinstance(term, Var):
            raise PrologError("arguments are not sufficiently instantiated")
        if isinstance(term, Struct):
            if term.functor == "abs" and len(term.args) == 1:
                return abs(self.evaluate(term.args[0]))
            if term.functor == "-" and len(term.args) == 1:
                return -self.evaluate(term.args[0])
            op = _ARITH.get(term.functor)
            if op is not None and len(term.args) == 2:
                return op(self.evaluate(term.args[0]), self.evaluate(term.args[1]))
        raise PrologError(f"unknown arithmetic expression: {term!r}")

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------

    def solve(self, goals: tuple) -> Iterator[None]:
        """Yield once per solution of the conjunction *goals*.

        Bindings are live at yield time; callers must read them (e.g.
        via :func:`reify`) before requesting the next solution.

        The machine is iterative: an explicit stack of choice-point
        frames (alternatives iterator + trail mark), so resolution depth
        is bounded by the engine's ``max_depth``, not Python's recursion
        limit — structurally the WAM's choice-point stack.
        """
        stack: list[tuple[Iterator[tuple], int]] = [
            (iter((goals,)), len(self._trail))
        ]
        while stack:
            alts, mark = stack[-1]
            self._undo_to(mark)
            nxt = next(alts, _NO_MORE)
            if nxt is _NO_MORE:
                stack.pop()
                continue
            if not nxt:
                yield  # a solution; backtracking resumes on re-entry
                continue
            if len(stack) > self.max_depth:
                raise PrologError("depth limit exceeded")
            goal, rest = walk(nxt[0]), nxt[1:]
            self.stats.inferences += 1
            if isinstance(goal, str):
                goal = Struct(goal)
            if not isinstance(goal, Struct):
                raise PrologError(f"callable expected: {goal!r}")
            stack.append((self._expand(goal, rest), len(self._trail)))

    def _expand(self, goal: Struct, rest: tuple) -> Iterator[tuple]:
        """Yield successor goal-tuples for one resolution step.

        Bindings made while producing an alternative are undone by the
        main loop (to the frame's trail mark) before the next one is
        requested, so each alternative starts from a clean store.
        """
        functor, arity = goal.indicator

        # --- control builtins ------------------------------------------
        if functor == "true" and arity == 0:
            yield rest
            return
        if functor == "fail" and arity == 0:
            return
        if functor == "," and arity == 2:
            yield (goal.args[0], goal.args[1]) + rest
            return
        if functor == "\\+" and arity == 1:
            mark = len(self._trail)
            succeeded = False
            for _ in self.solve((goal.args[0],)):
                succeeded = True
                break
            self._undo_to(mark)
            if not succeeded:
                yield rest
            return
        if functor == "once" and arity == 1:
            # Like call/1 but committed to the first solution.
            mark = len(self._trail)
            for _ in self.solve((goal.args[0],)):
                yield rest
                break
            self._undo_to(mark)
            return
        if functor == "findall" and arity == 3:
            template, subgoal, out = goal.args
            mark = len(self._trail)
            collected = []
            for _ in self.solve((subgoal,)):
                collected.append(reify(template))
            self._undo_to(mark)
            from repro.prolog.terms import make_list

            mark = len(self._trail)
            if self.unify(out, make_list(collected)):
                yield rest
            else:
                self._undo_to(mark)
            return

        # --- unification and arithmetic builtins -----------------------
        if functor == "=" and arity == 2:
            mark = len(self._trail)
            if self.unify(goal.args[0], goal.args[1]):
                yield rest
            else:
                self._undo_to(mark)
            return
        if functor == "\\=" and arity == 2:
            mark = len(self._trail)
            ok = self.unify(goal.args[0], goal.args[1])
            self._undo_to(mark)
            if not ok:
                yield rest
            return
        if functor == "is" and arity == 2:
            value = self.evaluate(goal.args[1])
            mark = len(self._trail)
            if self.unify(goal.args[0], value):
                yield rest
            else:
                self._undo_to(mark)
            return
        if functor in _COMPARISONS and arity == 2:
            lhs = self.evaluate(goal.args[0])
            rhs = self.evaluate(goal.args[1])
            if _COMPARISONS[functor](lhs, rhs):
                yield rest
            return
        if functor == "between" and arity == 3:
            low = self.evaluate(goal.args[0])
            high = self.evaluate(goal.args[1])
            mark = len(self._trail)
            for value in range(low, high + 1):
                self.stats.choice_points += 1
                if self.unify(goal.args[2], value):
                    yield rest
                else:
                    self._undo_to(mark)
            return

        # --- user clauses ----------------------------------------------
        clauses = self.db.clauses_for(goal)
        if not clauses and goal.indicator not in self.db:
            raise PrologError(f"unknown predicate {functor}/{arity}")
        multiple = len(clauses) > 1
        mark = len(self._trail)
        for head, body in clauses:
            if multiple:
                self.stats.choice_points += 1
            mapping: dict[int, Var] = {}
            if self.unify(goal, rename(head, mapping)):
                yield tuple(rename(b, mapping) for b in body) + rest
            else:
                self._undo_to(mark)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def query(self, *goals: Term, limit: Optional[int] = None) -> list[dict[str, Term]]:
        """Collect solutions as ``{var_name: value}`` dicts."""
        variables = []
        for goal in goals:
            term_vars(goal, variables)
        out = []
        for _ in self.solve(tuple(goals)):
            out.append({v.name: reify(v) for v in variables})
            if limit is not None and len(out) >= limit:
                break
        self._undo_to(0)
        return out

    def count(self, *goals: Term) -> int:
        """Number of solutions of the conjunction."""
        n = 0
        for _ in self.solve(tuple(goals)):
            n += 1
        self._undo_to(0)
        return n
