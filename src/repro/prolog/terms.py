"""Prolog terms: logic variables, atoms, integers, structures.

Representation choices follow the WAM: variables are mutable cells bound
in place and undone via the trail; atoms are Python strings; integers are
Python ints; compound terms are :class:`Struct`.  Lists use the usual
``'.'/2`` cons cells with the atom ``[]`` as nil.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable, Optional

_var_ids = itertools.count()

#: The empty-list atom.
NIL = "[]"

#: The cons functor.
CONS = "."


class Var:
    """A logic variable: an initially-unbound mutable cell."""

    __slots__ = ("ref", "name", "vid")

    def __init__(self, name: Optional[str] = None):
        self.ref: Any = None  # None = unbound; otherwise the bound term
        self.vid = next(_var_ids)
        self.name = name or f"_G{self.vid}"

    def __repr__(self) -> str:
        target = walk(self)
        if target is self:
            return self.name
        return repr(target)


class Struct:
    """A compound term ``functor(arg1, ..., argN)``."""

    __slots__ = ("functor", "args")

    def __init__(self, functor: str, args: tuple = ()):
        self.functor = functor
        self.args = args

    @property
    def indicator(self) -> tuple[str, int]:
        """The predicate indicator ``functor/arity``."""
        return (self.functor, len(self.args))

    def __repr__(self) -> str:
        listified = to_list(self)
        if listified is not None:
            return "[" + ", ".join(repr(x) for x in listified) + "]"
        if not self.args:
            return self.functor
        return f"{self.functor}({', '.join(repr(a) for a in self.args)})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Struct)
            and self.functor == other.functor
            and self.args == other.args
        )

    def __hash__(self) -> int:
        return hash((self.functor, self.args))


Term = Any  # Var | Struct | str (atom) | int


def walk(term: Term) -> Term:
    """Dereference a chain of bound variables to its representative."""
    while isinstance(term, Var) and term.ref is not None:
        term = term.ref
    return term


def make_list(items: Iterable[Term], tail: Term = NIL) -> Term:
    """Build a Prolog list term from Python items."""
    result = tail
    for item in reversed(list(items)):
        result = Struct(CONS, (item, result))
    return result


def from_list(term: Term) -> list[Term]:
    """Convert a proper Prolog list term to a Python list.

    Raises ValueError on a partial (open-tailed) list.
    """
    out = []
    term = walk(term)
    while True:
        if term == NIL:
            return out
        if isinstance(term, Struct) and term.functor == CONS and len(term.args) == 2:
            out.append(walk(term.args[0]))
            term = walk(term.args[1])
        else:
            raise ValueError(f"not a proper list: {term!r}")


def to_list(term: Term) -> Optional[list[Term]]:
    """Like :func:`from_list` but returns None instead of raising."""
    try:
        return from_list(term)
    except ValueError:
        return None


def term_vars(term: Term, acc: Optional[list[Var]] = None) -> list[Var]:
    """Collect the distinct unbound variables in *term*, in order.

    Iterative so arbitrarily deep terms (long lists) cannot overflow the
    Python stack.
    """
    if acc is None:
        acc = []
    stack = [term]
    while stack:
        current = walk(stack.pop())
        if isinstance(current, Var):
            if current not in acc:
                acc.append(current)
        elif isinstance(current, Struct):
            stack.extend(reversed(current.args))
    return acc


def rename(term: Term, mapping: dict[int, Var]) -> Term:
    """Copy *term* with fresh variables (clause renaming-apart)."""
    term = walk(term)
    if isinstance(term, Var):
        fresh = mapping.get(term.vid)
        if fresh is None:
            fresh = Var(term.name)
            mapping[term.vid] = fresh
        return fresh
    if isinstance(term, Struct):
        return Struct(term.functor, tuple(rename(a, mapping) for a in term.args))
    return term


def reify(term: Term) -> Term:
    """Resolve every bound variable in *term* into a ground-ish copy.

    Iterative postorder rebuild, safe for arbitrarily deep terms.
    """
    term = walk(term)
    if not isinstance(term, Struct):
        return term
    values: list[Term] = []
    work: list[tuple[Term, bool]] = [(term, False)]
    while work:
        node, rebuild = work.pop()
        if rebuild:
            arity = len(node.args)
            args = tuple(values[len(values) - arity :]) if arity else ()
            if arity:
                del values[len(values) - arity :]
            values.append(Struct(node.functor, args))
            continue
        node = walk(node)
        if isinstance(node, Struct):
            work.append((node, True))
            for arg in reversed(node.args):
                work.append((arg, False))
        else:
            values.append(node)
    return values[0]
