"""Live-telemetry plumbing: emitter, flight recorder, exporters.

Four small pieces around :mod:`repro.obs.status`:

* :class:`RingSink` — a bounded tracer sink holding a worker's most
  recent events (the flight-recorder ring).  Cheap enough to leave on
  even when full tracing is off: an append to a bounded deque.
* :class:`HeartbeatEmitter` — worker-side; rate-limits heartbeats,
  ships the registry's uncommitted state plus lifetime scalars and the
  drained ring over the result pipe as ``("hb", wid, record)``.
* :class:`FlightRecorder` — coordinator-side; keeps the last N shipped
  events per worker and dumps them to a JSONL post-mortem when the
  supervisor observes a crash/timeout.  Because rings are shipped
  inside heartbeats, the events survive the worker's death — including
  ``kill -9``, which no worker-side flush could.
* :class:`StatusServer` / :class:`StatusLogger` — a stdlib
  ``ThreadingHTTPServer`` exposing ``/status`` (JSON) and ``/metrics``
  (Prometheus text), and a daemon thread appending ``status.sample``
  JSONL records next to the trace.  Both only ever call the
  :class:`~repro.obs.status.RunStatus` read API.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Iterable, Optional

from repro.obs.events import FLIGHT_HEADER, STATUS_SAMPLE
from repro.obs.registry import MetricsRegistry
from repro.obs.status import HeartbeatRecord, RunStatus
from repro.obs.trace import JsonlSink, _encode_line


class RingSink:
    """A tracer sink that keeps only the most recent *capacity* events."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("ring capacity must be >= 1")
        self.capacity = capacity
        self.events: deque = deque(maxlen=capacity)

    def write(self, event: dict) -> None:
        self.events.append(event)

    def drain(self) -> list[dict]:
        events = list(self.events)
        self.events.clear()
        return events

    def close(self) -> None:  # sink protocol symmetry
        pass


class HeartbeatEmitter:
    """Worker-side heartbeat source over the duplex result pipe.

    ``beat()`` is called from the exploration hot loop; it is a clock
    read and a compare unless the interval elapsed.  Lifetime scalars
    survive the per-result registry resets because
    :meth:`note_task_result` banks each shipped state's counters before
    the reset zeroes them.
    """

    #: (scalar key, registry counters summed into it).
    LIFETIME: tuple[tuple[str, tuple[str, ...]], ...] = (
        ("steps", ("parallel.guest_steps", "parallel.replay_steps")),
        ("cow_faults", ("mem.frames_copied",)),
        ("spills", ("parallel.worker_spills",)),
    )

    def __init__(self, conn: Any, worker: int, registry: MetricsRegistry,
                 interval: float, *, ring: Optional[RingSink] = None,
                 sync: Optional[Callable[[], None]] = None,
                 clock: Callable[[], float] = time.monotonic):
        if interval < 0:
            raise ValueError("heartbeat interval must be >= 0")
        self.conn = conn
        self.worker = worker
        self.registry = registry
        self.interval = float(interval)
        self.ring = ring
        self._sync = sync
        self._clock = clock
        self.seq = 0
        self.tasks_done = 0
        # Backdate so the first beat() check fires immediately.
        self._last = clock() - self.interval
        self._base = {key: 0 for key, _ in self.LIFETIME}

    def note_task_result(self, state: dict) -> None:
        """Bank the counters of a result *state* about to be reset."""
        for key, names in self.LIFETIME:
            for name in names:
                data = state.get(name)
                if data:
                    self._base[key] += data.get("value", 0)
        self.tasks_done += 1

    def _lifetime(self, key: str, names: tuple[str, ...]) -> int:
        total = self._base[key]
        for name in names:
            if name in self.registry:
                total += self.registry.get(name).value
        return total

    def poll_timeout(self) -> float:
        """Seconds until the next beat is due (for idle ``conn.poll``)."""
        return max(0.0, self.interval - (self._clock() - self._last))

    def beat(self, task: Optional[tuple[int, ...]] = None,
             span: Optional[int] = None, phase: str = "exploring",
             force: bool = False) -> bool:
        """Ship one heartbeat if due (or *force*); True when shipped."""
        now = self._clock()
        if not force and now - self._last < self.interval:
            return False
        self._last = now
        if self._sync is not None:
            self._sync()
        record = HeartbeatRecord(
            worker=self.worker,
            seq=self.seq,
            ts=time.time(),
            state=self.registry.state_dict(),
            task=tuple(task) if task is not None else None,
            span=span,
            steps=self._lifetime("steps", self.LIFETIME[0][1]),
            cow_faults=self._lifetime("cow_faults", self.LIFETIME[1][1]),
            spills=self._lifetime("spills", self.LIFETIME[2][1]),
            tasks_done=self.tasks_done,
            phase=phase,
            events=tuple(self.ring.drain()) if self.ring is not None else (),
        )
        self.seq += 1
        try:
            self.conn.send(("hb", self.worker, record))
        except (OSError, ValueError):
            return False  # coordinator went away; the main loop notices
        return True


class FlightRecorder:
    """Coordinator-side post-mortem rings, one per worker.

    Heartbeats carry each worker's recent trace events; the recorder
    retains the newest *capacity* per worker and writes them to
    ``flight-w<wid>-<kind>-<n>.jsonl`` (header line + one event per
    line) when the engine observes that worker crash or stall.
    """

    def __init__(self, directory: str, capacity: int = 256):
        if capacity < 1:
            raise ValueError("flight capacity must be >= 1")
        self.directory = directory
        self.capacity = capacity
        os.makedirs(directory, exist_ok=True)
        self._rings: dict[int, deque] = {}
        #: Paths of every dump written, in order.
        self.dumps: list[str] = []

    def extend(self, worker: int, events: Iterable[dict]) -> None:
        ring = self._rings.get(worker)
        if ring is None:
            ring = self._rings[worker] = deque(maxlen=self.capacity)
        ring.extend(events)

    def record_failure(self, worker: int, kind: str, detail: str = "",
                       task: Optional[list] = None) -> str:
        """Dump *worker*'s ring (possibly empty) and return the path."""
        events = list(self._rings.pop(worker, ()))
        path = os.path.join(
            self.directory,
            f"flight-w{worker}-{kind}-{len(self.dumps):03d}.jsonl",
        )
        header = {
            "type": FLIGHT_HEADER,
            "ts": time.time(),
            "worker": worker,
            "kind": kind,
            "detail": detail,
            "task": task,
            "events": len(events),
        }
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(_encode_line(header))
            for event in events:
                fh.write(_encode_line(event))
        self.dumps.append(path)
        return path


class StatusServer:
    """``/status`` + ``/metrics`` + ``/healthz`` on a daemon thread.

    Binds loopback only; ``port=0`` picks a free port (read
    :attr:`port` / :attr:`url` after construction).
    """

    def __init__(self, status: RunStatus, port: int = 0,
                 host: str = "127.0.0.1"):
        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                try:
                    path = self.path.rstrip("/") or "/"
                    if path == "/status":
                        body = json.dumps(status.snapshot()).encode("utf-8")
                        ctype = "application/json"
                    elif path == "/metrics":
                        body = status.prometheus().encode("utf-8")
                        ctype = "text/plain; version=0.0.4; charset=utf-8"
                    elif path in ("/", "/healthz"):
                        body = b"ok\n"
                        ctype = "text/plain; charset=utf-8"
                    else:
                        self.send_error(404)
                        return
                except Exception as exc:  # surface, don't kill the thread
                    self.send_error(500, type(exc).__name__)
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: Any) -> None:
                pass  # no per-request stderr noise from the run

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self.host = host
        self.port = self._httpd.server_address[1]
        self.url = f"http://{host}:{self.port}"
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "StatusServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, kwargs={"poll_interval": 0.1},
            daemon=True, name="repro-status-http",
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


class StatusLogger:
    """Appends periodic ``status.sample`` JSONL records to a file.

    Each line is ``{"seq", "ts", "type": "status.sample"}`` plus the
    full :meth:`RunStatus.snapshot` — the same shape the HTTP endpoint
    serves, so ``repro.tools.top --status-log`` and ``trace_report``
    replay a run's trajectory offline.  Autoflushes every sample (the
    point is surviving an unclean end) and writes one final sample at
    :meth:`stop`, after the run finalizes.
    """

    def __init__(self, status: RunStatus, path: str, interval: float = 0.5):
        if interval <= 0:
            raise ValueError("status-log interval must be > 0")
        self.status = status
        self.path = path
        self.interval = float(interval)
        self._sink = JsonlSink(path, autoflush=True)
        self._stop = threading.Event()
        self._seq = 0
        self._thread: Optional[threading.Thread] = None

    def sample(self) -> None:
        event = {"seq": self._seq, "ts": time.time(), "type": STATUS_SAMPLE}
        event.update(self.status.snapshot())
        self._sink.write(event)
        self._seq += 1

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample()

    def start(self) -> "StatusLogger":
        self.sample()
        self._thread = threading.Thread(
            target=self._run, daemon=True, name="repro-status-log",
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.sample()
        self._sink.close()
