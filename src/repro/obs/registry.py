"""The metrics registry: named counters, gauges, timers, histograms.

Design constraints (in priority order):

1. **Hot-path cheapness.**  ``Counter.inc`` is one attribute add on a
   slotted object; nothing formats, allocates, or takes a lock (the
   simulator is single-threaded by construction).  Attaching a sink or
   rendering a report pays all presentation costs.
2. **Uniform enumeration.**  Every metric has a dotted name
   (``snapshot.taken``, ``mem.cow_faults``) and a scalar-ish value, so
   one ``as_dict()`` call snapshots a whole subsystem for reports,
   benches and invariant checks.
3. **Backward-compatible views.**  The legacy stats dataclasses expose
   their old attributes through :class:`metric_view` descriptors, so
   ``manager.stats.taken`` and ``stats.taken += 1`` keep working while
   the single source of truth lives here.

Registries are instantiable (one per engine/manager keeps concurrent
sessions from double-counting); :func:`get_registry` returns the
process-wide default for code without a natural owner.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterator, Optional, Sequence


class Counter:
    """A monotonically-growing event count (decrements are not policed,
    but reports assume counters only go up)."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A level that moves both ways (live snapshots, frontier size).

    Tracks its own high-water mark: ``peak`` is the largest value ever
    ``set``/``inc``-ed, which is what footprint experiments report.
    """

    __slots__ = ("name", "value", "peak")
    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self.peak = 0

    def set(self, value: Any) -> None:
        self.value = value
        if value > self.peak:
            self.peak = value

    def inc(self, n: int = 1) -> None:
        self.set(self.value + n)

    def dec(self, n: int = 1) -> None:
        self.value -= n

    def reset(self) -> None:
        self.value = 0
        self.peak = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, {self.value}, peak={self.peak})"


class Timer:
    """Accumulated wall-clock spent in a region (monotonic clock).

    ``with timer.time(): ...`` adds one sample; ``mean_s`` is the average
    duration.  The clock is injectable for deterministic tests.
    """

    __slots__ = ("name", "count", "total_s", "_clock")
    kind = "timer"

    def __init__(self, name: str, clock: Callable[[], float] = time.perf_counter):
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self._clock = clock

    def record(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("negative duration")
        self.count += 1
        self.total_s += seconds

    def time(self) -> "_TimerContext":
        return _TimerContext(self)

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    @property
    def value(self) -> float:
        """Total seconds (the scalar ``as_dict`` exposes)."""
        return self.total_s

    def reset(self) -> None:
        self.count = 0
        self.total_s = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timer({self.name!r}, n={self.count}, total={self.total_s:.6f}s)"


class _TimerContext:
    __slots__ = ("_timer", "_start")

    def __init__(self, timer: Timer):
        self._timer = timer
        self._start = 0.0

    def __enter__(self) -> "_TimerContext":
        self._start = self._timer._clock()
        return self

    def __exit__(self, *exc: Any) -> None:
        self._timer.record(self._timer._clock() - self._start)


class Histogram:
    """Fixed-bucket histogram of observed values.

    *bounds* are the inclusive upper edges of the first ``len(bounds)``
    buckets; one implicit overflow bucket catches everything above the
    last edge.  Bucketing is a linear scan — bound lists are short (the
    point of *fixed* buckets is a cheap, allocation-free observe path).
    """

    __slots__ = ("name", "bounds", "counts", "count", "total")
    kind = "histogram"

    def __init__(self, name: str, bounds: Sequence[float]):
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        ordered = list(bounds)
        if ordered != sorted(ordered):
            raise ValueError("histogram bounds must be sorted ascending")
        self.name = name
        self.bounds = tuple(ordered)
        self.counts = [0] * (len(ordered) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def value(self) -> float:
        """Total of observed values (the scalar ``as_dict`` exposes)."""
        return self.total

    def reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def bucket_pairs(self) -> list[tuple[str, int]]:
        """``[("<=bound", count), ..., (">last", count)]`` for reports."""
        labels = [f"<={b:g}" for b in self.bounds] + [f">{self.bounds[-1]:g}"]
        return list(zip(labels, self.counts))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, n={self.count})"


Metric = Any  # Counter | Gauge | Timer | Histogram


class MetricsRegistry:
    """A namespace of metrics, created on first use by dotted name.

    The accessors are get-or-create: asking twice for the same name
    returns the same object, and asking for an existing name as a
    different metric kind raises (names are the schema).
    """

    def __init__(self, name: str = "default"):
        self.name = name
        self._metrics: dict[str, Metric] = {}

    # -- get-or-create accessors ---------------------------------------

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def timer(self, name: str) -> Timer:
        return self._get_or_create(name, Timer)

    def histogram(self, name: str, bounds: Optional[Sequence[float]] = None) -> Histogram:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, Histogram):
                raise TypeError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            if bounds is not None and tuple(bounds) != existing.bounds:
                raise ValueError(f"metric {name!r} re-registered with new bounds")
            return existing
        if bounds is None:
            raise ValueError(f"first registration of histogram {name!r} needs bounds")
        metric = Histogram(name, bounds)
        self._metrics[name] = metric
        return metric

    def _get_or_create(self, name: str, cls: type) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(f"metric {name!r} already registered as {metric.kind}")
        return metric

    # -- enumeration ---------------------------------------------------

    def get(self, name: str) -> Metric:
        """Look up an existing metric (KeyError if never registered)."""
        return self._metrics[name]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def as_dict(self) -> dict[str, Any]:
        """Flat ``{name: scalar value}`` snapshot of every metric.

        Gauges additionally export ``name.peak``; timers export
        ``name.count`` next to their total seconds.
        """
        out: dict[str, Any] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            out[name] = metric.value
            if isinstance(metric, Gauge):
                out[f"{name}.peak"] = metric.peak
            elif isinstance(metric, (Timer, Histogram)):
                out[f"{name}.count"] = metric.count
        return out

    def reset(self) -> None:
        """Zero every metric (keeps registrations and bounds)."""
        for metric in self._metrics.values():
            metric.reset()

    # -- cross-process export / merge ----------------------------------

    def state_dict(self) -> dict[str, dict[str, Any]]:
        """Structured, picklable snapshot of every metric.

        Unlike :meth:`as_dict` (a flat report), the state dict keeps the
        metric *kind* and enough internals that :meth:`merge_state` can
        combine registries from other processes losslessly — the
        process-parallel engine ships worker registries to the
        coordinator this way.
        """
        out: dict[str, dict[str, Any]] = {}
        for name, metric in self._metrics.items():
            if isinstance(metric, Counter):
                out[name] = {"kind": "counter", "value": metric.value}
            elif isinstance(metric, Gauge):
                out[name] = {
                    "kind": "gauge", "value": metric.value, "peak": metric.peak
                }
            elif isinstance(metric, Timer):
                out[name] = {
                    "kind": "timer",
                    "count": metric.count,
                    "total_s": metric.total_s,
                }
            elif isinstance(metric, Histogram):
                out[name] = {
                    "kind": "histogram",
                    "bounds": metric.bounds,
                    "counts": list(metric.counts),
                    "count": metric.count,
                    "total": metric.total,
                }
        return out

    def merge_state(self, state: dict[str, dict[str, Any]]) -> None:
        """Fold another registry's :meth:`state_dict` into this one.

        Merge semantics per kind:

        * counters and timers add (event totals are additive across
          processes);
        * gauges add their *values* (live levels across workers sum) but
          take the max of *peaks* — concurrent high-water marks are not
          additive, so the merged peak is a lower bound;
        * histograms add bucket-wise (bounds must match).

        Metrics missing on this side are created on the fly.
        """
        for name, data in state.items():
            kind = data["kind"]
            if kind == "counter":
                self.counter(name).inc(data["value"])
            elif kind == "gauge":
                gauge = self.gauge(name)
                gauge.value += data["value"]
                gauge.peak = max(gauge.peak, data["peak"], gauge.value)
            elif kind == "timer":
                timer = self.timer(name)
                timer.count += data["count"]
                timer.total_s += data["total_s"]
            elif kind == "histogram":
                # histogram() raises on a bounds mismatch with an
                # existing registration, so merged buckets always align.
                hist = self.histogram(name, bounds=data["bounds"])
                for i, c in enumerate(data["counts"]):
                    hist.counts[i] += c
                hist.count += data["count"]
                hist.total += data["total"]
            else:
                raise ValueError(f"unknown metric kind {kind!r} for {name!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetricsRegistry({self.name!r}, {len(self._metrics)} metrics)"


class metric_view:
    """Descriptor exposing a registry metric as a plain numeric attribute.

    The legacy stats objects use this to stay source-compatible: reading
    the attribute reads ``metric.value``, assigning writes it (so the
    pre-registry ``stats.taken += 1`` call sites still work).  The owning
    instance must keep its metrics in a ``_metrics`` dict keyed by the
    view's *key*.
    """

    __slots__ = ("key",)

    def __init__(self, key: str):
        self.key = key

    def __get__(self, obj: Any, objtype: Any = None) -> Any:
        if obj is None:
            return self
        return obj._metrics[self.key].value

    def __set__(self, obj: Any, value: Any) -> None:
        metric = obj._metrics[self.key]
        if isinstance(metric, Gauge):
            metric.set(value)
        else:
            metric.value = value


_GLOBAL = MetricsRegistry("global")


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _GLOBAL
