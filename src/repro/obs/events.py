"""The typed trace-event schema.

One flat namespace of dotted event types, each with a declared set of
required fields.  The tracer validates known types at emit time (tracing
is opt-in, so validation costs nothing on the default path); unknown
types pass through so downstream workloads can add events without
touching this table, at the cost of no field checking.

Field conventions:

* ``sid`` — snapshot id; ``parent`` is a sid or None.
* ``asid`` — address-space id.  ``snapshot.restore`` records the asid of
  the fresh COW fork it returns, which is what lets a report join later
  ``mem.cow_fault`` events back to the restore that caused them.
* ``vpn`` — virtual page number.
* ``depth`` — search depth (number of guesses on the path).
* ``worker`` — logical core id in the parallel engine, or the worker
  process id in the cluster engine (stamped on every worker-originated
  event via the tracer's emit-time context).
* ``path`` — the decision prefix reaching the event, as a list.  The
  terminal search events (``search.guess/fail/solution/kill``) carry it
  so the profiler can rebuild the guess tree without positional
  guessing; they also carry ``steps`` (guest instructions retired by the
  extension run ending at the event) and, in the cluster engine,
  ``replay_steps`` (the rehydration share of that run).
* ``span`` — the root span id of the cluster run a ``task.*`` event
  belongs to (propagated to workers inside every PrefixTask).
* ``wseq`` — the original worker-local ``seq`` of a merged event
  (:meth:`repro.obs.trace.Tracer.ingest` preserves it when it assigns
  the merged stream's global ``seq``).
"""

from __future__ import annotations

from typing import Any, Mapping

# -- snapshot lifecycle ------------------------------------------------
SNAPSHOT_TAKE = "snapshot.take"
SNAPSHOT_RESTORE = "snapshot.restore"
SNAPSHOT_DISCARD = "snapshot.discard"
SNAPSHOT_PRUNE = "snapshot.prune"

# -- memory subsystem --------------------------------------------------
MEM_COW_FAULT = "mem.cow_fault"
MEM_PAGE_ALLOC = "mem.page_alloc"

# -- libOS -------------------------------------------------------------
LIBOS_SYSCALL = "libos.syscall"

# -- versioned file layer / crash simulation ---------------------------
#: A per-inode barrier retired ``records`` pending blocks to durability.
FILE_FSYNC = "file.fsync"
#: A global barrier flushed ``records`` pending data blocks (plus all
#: pending namespace records).
FILE_SYNC = "file.sync"
#: A crash point was prepared: ``point`` is the log index, ``dims`` the
#: number of persistence dimensions the search will fork over.
CRASH_SELECT = "crash.select"
#: A crash image was materialised; ``kept`` at-risk records survived.
CRASH_COMMIT = "crash.commit"

# -- record/replay of nondeterministic events --------------------------
#: A nondeterministic syscall outcome was recorded (``replayed`` False)
#: or served from the log (``replayed`` True).  ``nseq`` is the event's
#: per-segment sequence number (``seq`` is the tracer's own counter).
REPLAY_EVENT = "replay.event"

# -- search engine -----------------------------------------------------
SEARCH_GUESS = "search.guess"
SEARCH_FAIL = "search.fail"
SEARCH_SOLUTION = "search.solution"
SEARCH_KILL = "search.kill"
#: A cluster worker hit its budget at a choice point and handed the
#: subtree back to the coordinator instead of guessing.
SEARCH_SPILL = "search.spill"

# -- cluster worker task spans (worker side) ---------------------------
TASK_BEGIN = "task.begin"
TASK_END = "task.end"

# -- parallel scheduler ------------------------------------------------
PARALLEL_SCHEDULE = "parallel.schedule"
PARALLEL_PREEMPT = "parallel.preempt"

# -- process-parallel cluster (coordinator side) -----------------------
PARALLEL_DISPATCH = "parallel.dispatch"
PARALLEL_RESULT = "parallel.result"
PARALLEL_CRASH = "parallel.crash"
PARALLEL_TIMEOUT = "parallel.timeout"
PARALLEL_RETRY = "parallel.retry"
PARALLEL_DROP = "parallel.drop"
#: The supervisor respawned a worker into a failed slot (after backoff).
PARALLEL_RESPAWN = "parallel.respawn"
#: The circuit breaker quarantined a task that killed too many workers.
PARALLEL_POISONED = "parallel.poisoned"
#: The pool collapsed below min_workers; the coordinator finishes the
#: remaining frontier in-process.
PARALLEL_DEGRADED = "parallel.degraded"
#: An idle worker announced steal capacity (the pull half of
#: work-stealing; the matching grant is a parallel.dispatch).
PARALLEL_STEAL = "parallel.steal"
#: A task lease saw no progress for its duration: its fence was retired
#: and the task requeued under a fresh one.
PARALLEL_LEASE_EXPIRED = "parallel.lease_expired"
#: A result arrived under a fence that is no longer live (expired lease,
#: superseded grant, or duplicated delivery) and was discarded wholesale.
PARALLEL_FENCED_STALE = "parallel.fenced_stale"
#: An external worker joined the pool over the network (elastic
#: membership), or a presumed-dead one resurfaced as a new endpoint.
PARALLEL_JOIN = "parallel.join"

# -- crash-tolerance journal -------------------------------------------
#: Emitted by journal recovery with the rebuilt-run shape.
JOURNAL_RECOVER = "journal.recover"

# -- live telemetry ----------------------------------------------------
#: A periodic coordinator status sample (one full RunStatus snapshot),
#: appended as JSONL by ``run_guest --status-log``.  Written directly by
#: the status logger, not emitted through the tracer.
STATUS_SAMPLE = "status.sample"
#: First line of a flight-recorder post-mortem dump: which worker died,
#: how, and how many ring events follow.
FLIGHT_HEADER = "flight.header"

# -- chaos injection (deterministic fault harness) ---------------------
#: A worker-side fault fired (kind: exit | stall | garbage).  Emitted in
#: the worker just before the fault, so for ``exit`` it usually dies
#: with the worker's un-shipped trace segment — by design: the fault is
#: observable coordinator-side as parallel.crash/timeout instead.
CHAOS_WORKER_FAULT = "chaos.worker_fault"
#: The chaos plan killed the coordinator at a journal epoch.
CHAOS_COORDINATOR_KILL = "chaos.coordinator_kill"
#: The chaos plan injected a journal fault (kind: tear | bitflip).
CHAOS_JOURNAL_FAULT = "chaos.journal_fault"
#: The chaos plan acted on a transport frame (action: drop | delay |
#: dup | hold; direction: c2w | w2c).
CHAOS_NET_FAULT = "chaos.net_fault"

#: Required fields per event type.  Extra fields are always allowed.
EVENT_FIELDS: dict[str, tuple[str, ...]] = {
    SNAPSHOT_TAKE: ("sid", "parent", "live"),
    SNAPSHOT_RESTORE: ("sid", "asid"),
    SNAPSHOT_DISCARD: ("sid", "private_pages"),
    SNAPSHOT_PRUNE: ("sid", "depth"),
    MEM_COW_FAULT: ("asid", "vpn", "kind"),
    MEM_PAGE_ALLOC: ("asid", "pages", "kind"),
    LIBOS_SYSCALL: ("nr", "name"),
    FILE_FSYNC: ("fd", "records"),
    FILE_SYNC: ("records",),
    CRASH_SELECT: ("point", "dims"),
    CRASH_COMMIT: ("kept",),
    REPLAY_EVENT: ("kind", "replayed", "path", "nseq"),
    SEARCH_GUESS: ("n", "depth"),
    SEARCH_FAIL: ("depth",),
    SEARCH_SOLUTION: ("depth", "path"),
    SEARCH_KILL: ("depth",),
    SEARCH_SPILL: ("depth", "n"),
    TASK_BEGIN: ("worker", "task", "depth"),
    TASK_END: ("worker", "task", "solutions", "spilled",
               "explore_steps", "replay_steps"),
    PARALLEL_SCHEDULE: ("worker", "ext", "depth"),
    PARALLEL_PREEMPT: ("worker", "steps"),
    PARALLEL_DISPATCH: ("worker", "tasks"),
    PARALLEL_RESULT: ("worker", "solutions", "spilled"),
    PARALLEL_CRASH: ("worker",),
    PARALLEL_TIMEOUT: ("worker",),
    PARALLEL_RETRY: ("worker", "tasks"),
    PARALLEL_DROP: ("tasks",),
    PARALLEL_RESPAWN: ("worker", "slot", "failures"),
    PARALLEL_POISONED: ("task", "kills"),
    PARALLEL_DEGRADED: ("pending",),
    PARALLEL_STEAL: ("worker", "want"),
    PARALLEL_LEASE_EXPIRED: ("task", "fence", "worker"),
    PARALLEL_FENCED_STALE: ("worker", "task", "fence"),
    PARALLEL_JOIN: ("worker",),
    JOURNAL_RECOVER: ("records", "pending", "solutions", "skipped", "torn"),
    STATUS_SAMPLE: ("tasks", "solutions", "throughput"),
    FLIGHT_HEADER: ("worker", "kind", "events"),
    CHAOS_WORKER_FAULT: ("kind",),
    CHAOS_COORDINATOR_KILL: ("epoch",),
    CHAOS_JOURNAL_FAULT: ("kind", "epoch"),
    CHAOS_NET_FAULT: ("action", "direction", "worker"),
}

EVENT_TYPES = frozenset(EVENT_FIELDS)

#: The subsystem prefix of each event type (`snapshot`, `mem`, ...).
def subsystem(etype: str) -> str:
    return etype.split(".", 1)[0]


class EventSchemaError(ValueError):
    """A known event type was emitted with required fields missing."""


def validate_event(etype: str, fields: Mapping[str, Any]) -> None:
    """Check *fields* against the schema for *etype*.

    Raises :class:`EventSchemaError` when a known type misses a required
    field; unknown types are accepted as-is.
    """
    required = EVENT_FIELDS.get(etype)
    if required is None:
        return
    missing = [key for key in required if key not in fields]
    if missing:
        raise EventSchemaError(
            f"event {etype!r} missing required field(s): {', '.join(missing)}"
        )
