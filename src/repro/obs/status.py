"""Live run status: heartbeat records and the coordinator's fold.

The cluster's observability was post-mortem only — registries and traces
tell you what a run did after it exits.  This module is the in-flight
half: workers ship :class:`HeartbeatRecord`\\ s over the result pipe
(see :mod:`repro.obs.live` for the worker-side emitter) and the
coordinator folds them into one :class:`RunStatus`, a thread-safe model
of the run *right now* — tasks pending/in-flight/done, solutions so
far, per-worker health, aggregate guest-instructions/sec, and a
decision-tree coverage/ETA estimate.

Soundness of the fold: a worker's registry is reset after every task
result, so a mid-task ``state_dict()`` *is* the uncommitted delta since
the last result.  The coordinator keeps exactly one uncommitted state
per worker (latest heartbeat wins — the pipe is FIFO, so seq order is
arrival order, but out-of-order replays through :meth:`observe_heartbeat`
are still safe) and drops it the moment that worker's task result is
merged into the committed registry.  Total = committed + Σ uncommitted,
with no event counted twice; once the run drains, the uncommitted side
is empty and the status metrics equal the engine registry exactly.

Coverage: a :class:`~repro.search.shard.PrefixTask` with fan-outs
``(f1..fk)`` roots a subtree that is ``1/(f1*...*fk)`` of the whole
decision tree under the uniform-fanout prior.  Completing a task covers
its weight minus the weight it spilled back, so the covered fraction
converges to 1.0 exactly when the frontier drains — and its growth rate
over a sliding window gives an ETA without knowing the tree shape in
advance.
"""

from __future__ import annotations

import re
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)

#: Counter names whose committed+uncommitted sum is the run's retired
#: guest instructions (exploration plus rehydration replay).
STEP_COUNTERS = ("parallel.guest_steps", "parallel.replay_steps")


def subtree_weight(fanouts: Sequence[int]) -> float:
    """Prior weight of the subtree under a prefix with *fanouts*.

    The root (no fanouts) weighs 1.0; each recorded choice point divides
    the weight by its fan-out.  Weights of a task and of the children it
    spills are consistent by construction, which is what makes the
    covered fraction telescope to 1.0 on an exhausted run.
    """
    weight = 1.0
    for fanout in fanouts:
        if fanout > 0:
            weight /= fanout
    return weight


@dataclass(frozen=True)
class HeartbeatRecord:
    """One worker's periodic self-report, shipped over the result pipe.

    ``state`` is the worker registry's ``state_dict()`` — the
    *uncommitted* delta since its last task result (see module
    docstring).  The scalar fields (``steps``, ``cow_faults``,
    ``spills``, ``tasks_done``) are worker-lifetime totals so their
    monotonicity is meaningful across result-driven registry resets.
    ``events`` is the drained flight-recorder ring (possibly empty).
    """

    worker: int
    seq: int
    ts: float
    state: dict = field(default_factory=dict)
    task: Optional[tuple[int, ...]] = None
    span: Optional[int] = None
    steps: int = 0
    cow_faults: int = 0
    spills: int = 0
    tasks_done: int = 0
    phase: str = "exploring"
    events: tuple[dict, ...] = ()

    def to_record(self) -> dict:
        """JSON-safe encoding (tuples become lists)."""
        state: dict[str, dict] = {}
        for name, data in self.state.items():
            data = dict(data)
            if "bounds" in data:
                data["bounds"] = list(data["bounds"])
            if "counts" in data:
                data["counts"] = list(data["counts"])
            state[name] = data
        return {
            "worker": self.worker,
            "seq": self.seq,
            "ts": self.ts,
            "state": state,
            "task": list(self.task) if self.task is not None else None,
            "span": self.span,
            "steps": self.steps,
            "cow_faults": self.cow_faults,
            "spills": self.spills,
            "tasks_done": self.tasks_done,
            "phase": self.phase,
            "events": [dict(event) for event in self.events],
        }

    @classmethod
    def from_record(cls, record: dict) -> "HeartbeatRecord":
        """Inverse of :meth:`to_record` (restores the tuple fields)."""
        state: dict[str, dict] = {}
        for name, data in record.get("state", {}).items():
            data = dict(data)
            if "bounds" in data:
                data["bounds"] = tuple(data["bounds"])
            if "counts" in data:
                data["counts"] = list(data["counts"])
            state[name] = data
        task = record.get("task")
        return cls(
            worker=int(record["worker"]),
            seq=int(record["seq"]),
            ts=float(record["ts"]),
            state=state,
            task=tuple(task) if task is not None else None,
            span=record.get("span"),
            steps=int(record.get("steps", 0)),
            cow_faults=int(record.get("cow_faults", 0)),
            spills=int(record.get("spills", 0)),
            tasks_done=int(record.get("tasks_done", 0)),
            phase=str(record.get("phase", "exploring")),
            events=tuple(dict(e) for e in record.get("events", ())),
        )


def _counter_value(state: dict, name: str) -> float:
    data = state.get(name)
    return data.get("value", 0) if data else 0


class RunStatus:
    """Thread-safe live model of one cluster run.

    The coordinator mutates it (``observe_heartbeat`` per heartbeat,
    ``on_task_complete`` per result, rate-limited ``refresh`` with the
    committed registry, ``finalize`` at the end); the HTTP server thread
    and the status-log thread only call :meth:`snapshot` /
    :meth:`prometheus`.  Every method takes the one internal lock, and
    snapshots deep-enough-copy everything they return.
    """

    def __init__(self, workers: int, span: Optional[int] = None,
                 strategy: Optional[str] = None,
                 clock: Callable[[], float] = time.monotonic,
                 window: int = 64):
        self._clock = clock
        self._lock = threading.Lock()
        self.started = clock()
        self.workers = workers
        self.span = span
        self.strategy = strategy
        self.done = False
        self.degraded = False
        self.stop_reason: Optional[str] = None
        self.heartbeats = 0
        #: Covered fraction of the decision tree (can float above 1.0
        #: by epsilon through float error; snapshots clamp).
        self.covered = 0.0
        self._committed: dict = {}
        #: worker id -> uncommitted registry state from its latest
        #: heartbeat (cleared when that worker's task result commits).
        self._inflight: dict[int, dict] = {}
        #: worker id -> scalars of the latest heartbeat.
        self._hb: dict[int, dict] = {}
        self._health: list[dict] = []
        self._pending = 0
        self._in_flight = 0
        self._solutions = 0
        self._fanout_sum = 0
        self._fanout_n = 0
        #: (monotonic ts, covered, steps_total) samples for rates.
        self._window: deque = deque(maxlen=window)

    # -- coordinator-side mutation -------------------------------------

    def observe_heartbeat(self, record: HeartbeatRecord) -> bool:
        """Fold one heartbeat in; returns True when it shows progress.

        Progress means the worker's lifetime step counter grew since
        its previous heartbeat — the engine uses this to defer the
        per-task timeout for long tasks that are demonstrably running
        (a stalled worker cannot beat, so stalls still time out).
        Records older than the latest seen for the worker are ignored,
        which makes the fold order-independent per worker.
        """
        with self._lock:
            self.heartbeats += 1
            last = self._hb.get(record.worker)
            if last is not None and record.seq <= last["seq"]:
                return False
            progressed = last is None or record.steps > last["steps"]
            self._hb[record.worker] = {
                "seq": record.seq,
                "steps": record.steps,
                "cow_faults": record.cow_faults,
                "spills": record.spills,
                "tasks_done": record.tasks_done,
                "task": list(record.task) if record.task is not None else None,
                "span": record.span,
                "phase": record.phase,
                "at": self._clock(),
            }
            self._inflight[record.worker] = record.state
            return progressed

    def on_task_complete(self, worker: int, fanouts: Sequence[int],
                         solutions: int, spilled: Iterable[Sequence[int]]) -> None:
        """Account one committed task result from *worker*.

        The worker's uncommitted heartbeat state is dropped here: the
        authoritative registry delta arrived with the result and was
        merged into the coordinator registry, which the next
        :meth:`refresh` re-commits.
        """
        with self._lock:
            weight = subtree_weight(fanouts)
            for child in spilled:
                weight -= subtree_weight(child)
            self.covered += max(weight, 0.0)
            if fanouts:
                self._fanout_sum += fanouts[-1]
                self._fanout_n += 1
            self._inflight.pop(worker, None)

    def on_worker_failed(self, worker: int) -> None:
        """A worker died: its uncommitted delta is lost, not committed."""
        with self._lock:
            self._inflight.pop(worker, None)
            last = self._hb.get(worker)
            if last is not None:
                last["phase"] = "failed"

    def refresh(self, state: dict, *, pending: int, in_flight: int,
                solutions: int, health: Iterable[dict] = ()) -> None:
        """Re-commit the coordinator registry snapshot + frontier shape.

        *state* must be a fresh ``state_dict()`` — the status takes
        ownership (the HTTP thread reads it unlocked-copy-free).
        """
        with self._lock:
            self._committed = state
            self._pending = pending
            self._in_flight = in_flight
            self._solutions = solutions
            self._health = [dict(entry) for entry in health]
            steps = self._steps_locked()
            self._window.append((self._clock(), self.covered, steps))

    def finalize(self, state: dict, *, pending: int, solutions: int,
                 health: Iterable[dict] = (),
                 stop_reason: Optional[str] = None,
                 degraded: bool = False) -> None:
        """Seal the status: after this, metrics equal *state* exactly."""
        with self._lock:
            self._inflight.clear()
            self._committed = state
            self._pending = pending
            self._in_flight = 0
            self._solutions = solutions
            self._health = [dict(entry) for entry in health]
            self.done = True
            self.stop_reason = stop_reason
            self.degraded = degraded
            self._window.append(
                (self._clock(), self.covered, self._steps_locked())
            )

    # -- internals (caller holds the lock) -----------------------------

    def _steps_locked(self) -> float:
        total = 0.0
        for name in STEP_COUNTERS:
            total += _counter_value(self._committed, name)
            for state in self._inflight.values():
                total += _counter_value(state, name)
        return total

    def _merged_locked(self) -> MetricsRegistry:
        merged = MetricsRegistry("run-status")
        if self._committed:
            merged.merge_state(self._committed)
        for state in self._inflight.values():
            merged.merge_state(state)
        return merged

    def _rate_locked(self, now: float, index: int, current: float) -> float:
        if not self._window:
            return 0.0
        oldest = self._window[0]
        dt = now - oldest[0]
        if dt <= 0:
            return 0.0
        return max(0.0, (current - oldest[index]) / dt)

    # -- consumer-side views -------------------------------------------

    def snapshot(self) -> dict:
        """One JSON-safe view of the whole run, internally consistent."""
        with self._lock:
            now = self._clock()
            merged = self._merged_locked()
            flat = merged.as_dict()
            steps_total = self._steps_locked()
            steps_rate = self._rate_locked(now, 2, steps_total)
            covered = min(self.covered, 1.0)
            if covered > 1.0 - 1e-9:
                covered = 1.0  # telescoped weights, modulo float error
            coverage_rate = self._rate_locked(now, 1, self.covered)
            if self.done:
                eta: Optional[float] = 0.0
            elif coverage_rate > 0 and covered < 1.0:
                eta = (1.0 - covered) / coverage_rate
            else:
                eta = None
            mean_fanout = (
                self._fanout_sum / self._fanout_n if self._fanout_n else 0.0
            )
            detail: list[dict] = []
            for entry in self._health:
                entry = dict(entry)
                beat = self._hb.get(entry.get("worker"))
                if beat is not None:
                    entry.update(
                        phase=beat["phase"],
                        task=beat["task"],
                        task_span=beat["span"],
                        steps=beat["steps"],
                        cow_faults=beat["cow_faults"],
                        spills=beat["spills"],
                        tasks_done=beat["tasks_done"],
                        beat_seq=beat["seq"],
                        beat_age_s=max(0.0, now - beat["at"]),
                    )
                detail.append(entry)
            busy = sum(
                1 for entry in detail
                if entry.get("state") == "running" and entry.get("busy")
            )
            return {
                "schema": 1,
                "done": self.done,
                "stop_reason": self.stop_reason,
                "degraded": self.degraded,
                "elapsed_s": max(0.0, now - self.started),
                "span": self.span,
                "strategy": self.strategy,
                "workers": self.workers,
                "workers_busy": busy,
                "tasks": {
                    "pending": self._pending,
                    "in_flight": self._in_flight,
                    "done": int(flat.get("parallel.tasks_completed", 0)),
                    "spilled": int(flat.get("parallel.tasks_spilled", 0)),
                    "retried": int(flat.get("parallel.tasks_retried", 0)),
                    "dropped": int(flat.get("parallel.tasks_dropped", 0)),
                    "poisoned": int(flat.get("parallel.poisoned_tasks", 0)),
                    "crashes": int(flat.get("parallel.worker_crashes", 0)),
                    "timeouts": int(flat.get("parallel.task_timeouts", 0)),
                },
                "solutions": self._solutions,
                "coverage": {
                    "fraction": covered,
                    "rate_per_s": coverage_rate,
                    "eta_s": eta,
                    "mean_fanout": mean_fanout,
                },
                "throughput": {
                    "steps_total": int(steps_total),
                    "steps_per_s": steps_rate,
                    "heartbeats": self.heartbeats,
                },
                "workers_detail": detail,
                "metrics": flat,
            }

    def prometheus(self) -> str:
        """Prometheus text exposition (format 0.0.4) of the run."""
        with self._lock:
            merged = self._merged_locked()
        return render_prometheus(merged, self.snapshot())


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

_PROM_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    return "repro_" + _PROM_BAD.sub("_", name)


def _prom_num(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry,
                      snapshot: Optional[dict] = None) -> str:
    """Render *registry* (+ run-level series from *snapshot*) as
    Prometheus text exposition format 0.0.4.

    Counters map to ``repro_<name>_total``, gauges to ``repro_<name>``
    (+ ``_peak``), timers to ``repro_<name>_seconds_total`` and
    ``_seconds_count``, histograms to the conventional cumulative
    ``_bucket{le=...}`` / ``_sum`` / ``_count`` triple.
    """
    lines: list[str] = []
    for metric in sorted(registry, key=lambda m: m.name):
        name = _prom_name(metric.name)
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {name}_total counter")
            lines.append(f"{name}_total {_prom_num(metric.value)}")
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_prom_num(metric.value)}")
            lines.append(f"# TYPE {name}_peak gauge")
            lines.append(f"{name}_peak {_prom_num(metric.peak)}")
        elif isinstance(metric, Timer):
            lines.append(f"# TYPE {name}_seconds_total counter")
            lines.append(f"{name}_seconds_total {_prom_num(metric.total_s)}")
            lines.append(f"# TYPE {name}_seconds_count counter")
            lines.append(f"{name}_seconds_count {_prom_num(metric.count)}")
        elif isinstance(metric, Histogram):
            lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            for bound, count in zip(metric.bounds, metric.counts):
                cumulative += count
                lines.append(
                    f'{name}_bucket{{le="{bound:g}"}} {cumulative}'
                )
            lines.append(f'{name}_bucket{{le="+Inf"}} {metric.count}')
            lines.append(f"{name}_sum {_prom_num(metric.total)}")
            lines.append(f"{name}_count {_prom_num(metric.count)}")
    if snapshot is not None:
        run_gauges = [
            ("repro_run_elapsed_seconds", snapshot["elapsed_s"]),
            ("repro_run_done", snapshot["done"]),
            ("repro_run_degraded", snapshot["degraded"]),
            ("repro_run_workers", snapshot["workers"]),
            ("repro_run_workers_busy", snapshot["workers_busy"]),
            ("repro_tasks_pending", snapshot["tasks"]["pending"]),
            ("repro_tasks_in_flight", snapshot["tasks"]["in_flight"]),
            ("repro_solutions", snapshot["solutions"]),
            ("repro_coverage_fraction", snapshot["coverage"]["fraction"]),
            ("repro_guest_steps_per_second",
             snapshot["throughput"]["steps_per_s"]),
        ]
        eta = snapshot["coverage"]["eta_s"]
        if eta is not None:
            run_gauges.append(("repro_coverage_eta_seconds", eta))
        for name, value in run_gauges:
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_prom_num(value)}")
        worker_lines: list[str] = []
        for entry in snapshot["workers_detail"]:
            wid = entry.get("worker")
            if wid is None:
                continue
            labels = (
                f'worker="{wid}",slot="{entry.get("slot", "")}"'
                f',state="{entry.get("state", "")}"'
            )
            worker_lines.append(f"repro_worker_up{{{labels}}} 1")
            if "steps" in entry:
                worker_lines.append(
                    f'repro_worker_steps_total{{worker="{wid}"}} '
                    f'{_prom_num(entry["steps"])}'
                )
                worker_lines.append(
                    f'repro_worker_tasks_done{{worker="{wid}"}} '
                    f'{_prom_num(entry["tasks_done"])}'
                )
        if worker_lines:
            lines.append("# TYPE repro_worker_up gauge")
            lines.extend(worker_lines)
    return "\n".join(lines) + "\n"
