"""Unified observability: the metrics registry and the structured trace.

The paper's claims are *cost-shape* claims — O(1) take/restore,
O(private pages) discard, per-page COW faults — so every subsystem needs
to report costs in one schema, and cross-subsystem causality ("this
restore caused these COW faults") needs an ordered event trace.  This
package provides both:

* :mod:`repro.obs.registry` — named counters, gauges, monotonic timers
  and fixed-bucket histograms.  The legacy per-subsystem stats objects
  (``SnapshotStats``, ``FaultStats``, ``StrategyStats``, ``SearchStats``)
  are now thin attribute views over registry metrics, so their public
  fields keep working while everything is uniformly enumerable.
* :mod:`repro.obs.events` — the typed event schema
  (``snapshot.take/restore/discard``, ``mem.cow_fault`` …).
* :mod:`repro.obs.trace` — the process-wide :class:`Tracer` with
  monotonic ordering, JSONL export, emit-time context stamping, segment
  ingestion for cross-process merging, and near-zero overhead when no
  sink is attached.
* :mod:`repro.obs.status` / :mod:`repro.obs.live` — in-flight
  telemetry: worker heartbeat records folded into a thread-safe
  :class:`RunStatus` (tasks, workers, throughput, coverage/ETA), served
  as Prometheus text + JSON by :class:`StatusServer`, logged as
  ``status.sample`` JSONL by :class:`StatusLogger`, with a per-worker
  flight-recorder ring dumped on crashes (:class:`FlightRecorder`).
* :mod:`repro.obs.profile` — the search-tree profiler: rebuilds the
  guess tree from a trace and attributes instructions, COW faults,
  snapshot lifecycle and wall time to each decision prefix, with
  subtree rollups, critical path, and flamegraph/speedscope exports.

``python -m repro.tools.trace_report trace.jsonl`` summarizes an
exported trace; ``python -m repro.tools.profile trace.jsonl`` profiles
it; ``pytest benchmarks/ --obs-trace=PATH`` records one.
"""

from repro.obs.events import EVENT_FIELDS, EVENT_TYPES, validate_event
from repro.obs.live import (
    FlightRecorder,
    HeartbeatEmitter,
    RingSink,
    StatusLogger,
    StatusServer,
)
from repro.obs.profile import (
    Profile,
    ProfileNode,
    build_profile,
    folded_stacks,
    hotspots,
    speedscope_document,
    summarize_profile,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    get_registry,
    metric_view,
)
from repro.obs.status import (
    HeartbeatRecord,
    RunStatus,
    render_prometheus,
    subtree_weight,
)
from repro.obs.trace import (
    TRACER,
    JsonlSink,
    MemorySink,
    Tracer,
    get_tracer,
    normalize_events,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Timer",
    "get_registry",
    "metric_view",
    "EVENT_FIELDS",
    "EVENT_TYPES",
    "validate_event",
    "Profile",
    "ProfileNode",
    "build_profile",
    "folded_stacks",
    "hotspots",
    "speedscope_document",
    "summarize_profile",
    "TRACER",
    "Tracer",
    "JsonlSink",
    "MemorySink",
    "get_tracer",
    "normalize_events",
    "HeartbeatRecord",
    "RunStatus",
    "render_prometheus",
    "subtree_weight",
    "FlightRecorder",
    "HeartbeatEmitter",
    "RingSink",
    "StatusLogger",
    "StatusServer",
]
