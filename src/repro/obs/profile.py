"""Search-tree profiling: rebuild the guess tree, attribute costs.

The paper's argument is a cost model: snapshot take/restore must be
cheap enough that the *shape of the search tree* — how many guesses,
how many fails, how many COW faults each restore provokes — dominates
total cost.  The trace layer records all of those as a flat event
stream; this module folds the stream back into the tree it came from
and charges every cost to the decision prefix that incurred it, the way
multi-path engines attribute exploration cost to execution-tree nodes.

The attribution contract
------------------------

Engines emit one *terminal* search event per extension run
(``search.guess`` / ``search.fail`` / ``search.solution`` /
``search.kill`` / ``search.spill``), carrying ``path`` (the decision
prefix of the node the run belongs to) and ``steps`` (guest
instructions retired by the run; in the cluster engine the replayed
share is split out as ``replay_steps``).  Because every retired
instruction belongs to exactly one run and every run ends in exactly one
terminal event, **the sum of attributed steps equals the engine's
retired-instruction counter exactly** — the differential test in
``tests/obs/test_profile.py`` pins this.

Non-search events (snapshot lifecycle, COW faults, page allocations)
carry no path; they are attributed to the terminal event that ends the
run they occurred in, swept per originating event stream so merged
multi-worker traces attribute correctly.  A *stream* is one worker's
merged segment sequence (events carrying ``wseq``, grouped by
``worker``) or the coordinator/sequential process itself (everything
else).  For the simulated :class:`ParallelMachineEngine` the logical
workers interleave inside one process stream, so per-node *memory*
attribution is approximate there — instruction attribution is always
exact because ``steps`` rides on the terminal event itself.

Wall-clock per node is the span from the run's ``snapshot.restore`` (or
the previous terminal event) to its terminal event, measured on the
originating process's monotonic clock; cross-stream wall times are
never compared.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.obs import events as ev

#: Event types that end an extension run and absorb pending costs.
TERMINAL_TYPES = frozenset({
    ev.SEARCH_GUESS,
    ev.SEARCH_FAIL,
    ev.SEARCH_SOLUTION,
    ev.SEARCH_KILL,
    ev.SEARCH_SPILL,
})

#: Cost fields every node accumulates (exclusive = this node's runs
#: only; ``cum`` adds the whole subtree).
COST_FIELDS = (
    "steps",
    "replay_steps",
    "wall_s",
    "cow_faults",
    "zero_fills",
    "pages_allocated",
    "snapshots_taken",
    "snapshots_restored",
)


class ProfileNode:
    """One guess-tree node: a decision prefix plus its attributed costs."""

    __slots__ = (
        "path", "parent", "children", "fanout",
        "guesses", "fails", "solutions", "kills", "spills", "runs",
        "cum",
    ) + COST_FIELDS

    def __init__(self, path: tuple[int, ...],
                 parent: Optional["ProfileNode"]):
        self.path = path
        self.parent = parent
        self.children: dict[int, ProfileNode] = {}
        #: Fan-out recorded by a ``search.guess`` at this node (None if
        #: the node never guessed — leaf or spill-only).
        self.fanout: Optional[int] = None
        self.guesses = 0
        self.fails = 0
        self.solutions = 0
        self.kills = 0
        self.spills = 0
        #: Terminal events attributed here (≥1 run per event).
        self.runs = 0
        self.steps = 0
        self.replay_steps = 0
        self.wall_s = 0.0
        self.cow_faults = 0
        self.zero_fills = 0
        self.pages_allocated = 0
        self.snapshots_taken = 0
        self.snapshots_restored = 0
        #: Subtree rollup, filled in by :meth:`Profile.finalize`.
        self.cum: dict[str, Any] = {}

    @property
    def depth(self) -> int:
        return len(self.path)

    def label(self) -> str:
        """Folded-stack frame sequence for this node (root first)."""
        return ";".join(["root"] + [str(i) for i in self.path])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProfileNode({self.path!r}, steps={self.steps}, "
            f"children={len(self.children)})"
        )


class _RunBuffer:
    """Costs observed since the last terminal event in one stream."""

    __slots__ = ("cow_faults", "zero_fills", "pages_allocated",
                 "snapshots_taken", "snapshots_restored", "start_ts")

    def __init__(self) -> None:
        self.reset(None)

    def reset(self, start_ts: Optional[float]) -> None:
        self.cow_faults = 0
        self.zero_fills = 0
        self.pages_allocated = 0
        self.snapshots_taken = 0
        self.snapshots_restored = 0
        self.start_ts = start_ts


class Profile:
    """The reconstructed guess tree plus per-task / per-worker views."""

    def __init__(self) -> None:
        self.root = ProfileNode((), None)
        self.nodes: dict[tuple[int, ...], ProfileNode] = {(): self.root}
        #: One dict per ``task.end`` event (cluster runs only).
        self.tasks: list[dict] = []
        #: Aggregates per worker id (cluster runs only).
        self.workers: dict[Any, dict] = {}
        self.events = 0

    # -- tree access ---------------------------------------------------

    def node(self, path: tuple[int, ...]) -> ProfileNode:
        """Get-or-create the node for *path* (and its ancestors)."""
        found = self.nodes.get(path)
        if found is not None:
            return found
        parent = self.node(path[:-1])
        child = ProfileNode(path, parent)
        parent.children[path[-1]] = child
        self.nodes[path] = child
        return child

    def walk(self) -> Iterable[ProfileNode]:
        """Depth-first pre-order over every node."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(
                node.children[i] for i in sorted(node.children, reverse=True)
            )

    # -- rollups -------------------------------------------------------

    def finalize(self) -> "Profile":
        """Compute subtree rollups (children before parents)."""
        ordered = list(self.walk())
        for node in reversed(ordered):
            cum = {field: getattr(node, field) for field in COST_FIELDS}
            cum["solutions"] = node.solutions
            cum["nodes"] = 1
            for child in node.children.values():
                for key, value in child.cum.items():
                    cum[key] += value
            node.cum = cum
        return self

    # -- totals --------------------------------------------------------

    @property
    def total_steps(self) -> int:
        """Instructions retired across the whole tree (explore only)."""
        return self.root.cum.get("steps", 0)

    @property
    def total_replay_steps(self) -> int:
        return self.root.cum.get("replay_steps", 0)

    def replay_overhead(self) -> float:
        """Replayed instructions as a share of all retired instructions."""
        total = self.total_steps + self.total_replay_steps
        return self.total_replay_steps / total if total else 0.0

    # -- critical path -------------------------------------------------

    def critical_path(self, metric: str = "steps") -> list[ProfileNode]:
        """The most-expensive root→solution chain (deepest on ties).

        Chain cost is the sum of *exclusive* costs of the nodes on the
        chain — the serial cost of reaching that solution.  Falls back
        to the most expensive root→leaf chain when the trace holds no
        solutions.
        """
        targets = [n for n in self.walk() if n.solutions > 0]
        if not targets:
            targets = [n for n in self.walk() if not n.children]
        best: list[ProfileNode] = []
        best_key: tuple = (-1.0, -1)
        for node in targets:
            chain: list[ProfileNode] = []
            cursor: Optional[ProfileNode] = node
            while cursor is not None:
                chain.append(cursor)
                cursor = cursor.parent
            chain.reverse()
            cost = sum(getattr(n, metric) for n in chain)
            key = (cost, node.depth)
            if key > best_key:
                best_key = key
                best = chain
        return best


def build_profile(events: Iterable[dict]) -> Profile:
    """Fold an event stream into a finalized :class:`Profile`.

    Accepts a merged multi-worker trace, a sequential trace, or any mix
    (e.g. a benchmark session covering several runs); events the profiler
    does not understand are counted but otherwise ignored.
    """
    profile = Profile()
    buffers: dict[Any, _RunBuffer] = {}

    def stream_key(event: dict) -> Any:
        # Merged worker segments carry wseq; everything else (sequential
        # engines, the coordinator, the simulated parallel engine) is
        # the local process stream.
        if "wseq" in event:
            return ("worker", event.get("worker"))
        return ("local",)

    for event in events:
        profile.events += 1
        etype = event.get("type")
        key = stream_key(event)
        buf = buffers.get(key)
        if buf is None:
            buf = buffers[key] = _RunBuffer()

        if etype == ev.MEM_COW_FAULT:
            if event.get("kind") == "zero":
                buf.zero_fills += 1
            else:
                buf.cow_faults += 1
        elif etype == ev.MEM_PAGE_ALLOC:
            buf.pages_allocated += event.get("pages", 0)
        elif etype == ev.SNAPSHOT_TAKE:
            buf.snapshots_taken += 1
        elif etype == ev.SNAPSHOT_RESTORE:
            buf.snapshots_restored += 1
            # A restore begins a fresh extension run; the wall clock for
            # the next terminal event starts here (not at the previous
            # terminal event — the strategy's host-side work in between
            # is not the guest's cost).
            buf.start_ts = event.get("ts")
        elif etype == ev.TASK_BEGIN:
            buf.reset(event.get("ts"))
        elif etype == ev.TASK_END:
            worker = event.get("worker")
            explore = event.get("explore_steps", 0)
            replay = event.get("replay_steps", 0)
            task = {
                "worker": worker,
                "span": event.get("span"),
                "task": tuple(event.get("task", ())),
                "solutions": event.get("solutions", 0),
                "spilled": event.get("spilled", 0),
                "explore_steps": explore,
                "replay_steps": replay,
                "task_s": event.get("task_s", 0.0),
                "replay_share": (
                    replay / (explore + replay) if explore + replay else 0.0
                ),
            }
            profile.tasks.append(task)
            agg = profile.workers.setdefault(worker, {
                "tasks": 0, "solutions": 0, "spilled": 0,
                "explore_steps": 0, "replay_steps": 0, "busy_s": 0.0,
            })
            agg["tasks"] += 1
            agg["solutions"] += task["solutions"]
            agg["spilled"] += task["spilled"]
            agg["explore_steps"] += explore
            agg["replay_steps"] += replay
            agg["busy_s"] += task["task_s"]
            buf.reset(None)
        elif etype in TERMINAL_TYPES:
            path = tuple(event.get("path", ()))
            node = profile.node(path)
            node.runs += 1
            node.steps += event.get("steps", 0)
            node.replay_steps += event.get("replay_steps", 0)
            node.cow_faults += buf.cow_faults
            node.zero_fills += buf.zero_fills
            node.pages_allocated += buf.pages_allocated
            node.snapshots_taken += buf.snapshots_taken
            node.snapshots_restored += buf.snapshots_restored
            ts = event.get("ts")
            if buf.start_ts is not None and ts is not None:
                node.wall_s += max(ts - buf.start_ts, 0.0)
            if etype == ev.SEARCH_GUESS:
                node.guesses += 1
                node.fanout = event.get("n")
            elif etype == ev.SEARCH_FAIL:
                node.fails += 1
            elif etype == ev.SEARCH_SOLUTION:
                node.solutions += 1
            elif etype == ev.SEARCH_KILL:
                node.kills += 1
            else:
                node.spills += 1
            buf.reset(ts)

    return profile.finalize()


# ----------------------------------------------------------------------
# Output formats
# ----------------------------------------------------------------------

#: Metrics the output tooling can fold/rank by.
METRICS = ("steps", "replay_steps", "wall_s", "cow_faults",
           "pages_allocated")


def folded_stacks(profile: Profile, metric: str = "steps") -> list[str]:
    """Brendan-Gregg folded-stack lines: ``root;0;3;1 1234``.

    One line per node with a nonzero exclusive *metric*, the decision
    prefix as the stack.  Feed to any flamegraph renderer; the rendered
    root frame's total equals the whole run's metric total (for
    ``steps``, the retired-instruction counter).
    """
    if metric not in METRICS:
        raise ValueError(f"unknown metric {metric!r}; choose from {METRICS}")
    lines = []
    for node in profile.walk():
        value = getattr(node, metric)
        if not value:
            continue
        if metric == "wall_s":
            # Folded-stack values are integers by convention; use µs.
            value = int(round(value * 1e6))
            if not value:
                continue
        lines.append(f"{node.label()} {value}")
    return lines


def speedscope_document(profile: Profile, metric: str = "steps",
                        name: str = "repro search profile") -> dict:
    """A speedscope-compatible ``sampled`` profile document.

    Each node with a nonzero exclusive *metric* becomes one sample whose
    stack is the decision prefix and whose weight is the exclusive cost.
    Open at https://www.speedscope.app or with any compatible viewer.
    """
    if metric not in METRICS:
        raise ValueError(f"unknown metric {metric!r}; choose from {METRICS}")
    frames: list[dict] = []
    frame_index: dict[str, int] = {}

    def frame(name: str) -> int:
        idx = frame_index.get(name)
        if idx is None:
            idx = frame_index[name] = len(frames)
            frames.append({"name": name})
        return idx

    samples: list[list[int]] = []
    weights: list[float] = []
    for node in profile.walk():
        value = getattr(node, metric)
        if not value:
            continue
        stack = [frame("root")]
        for depth, choice in enumerate(node.path):
            stack.append(frame(f"d{depth}:{choice}"))
        samples.append(stack)
        weights.append(float(value))

    unit = "microseconds" if metric == "wall_s" else "none"
    if metric == "wall_s":
        weights = [w * 1e6 for w in weights]
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "sampled",
                "name": f"{name} ({metric})",
                "unit": unit,
                "startValue": 0,
                "endValue": sum(weights),
                "samples": samples,
                "weights": weights,
            }
        ],
        "name": name,
        "activeProfileIndex": 0,
        "exporter": "repro.tools.profile",
    }


def hotspots(profile: Profile, top: int = 10,
             metric: str = "steps") -> list[dict]:
    """The *top* nodes by exclusive *metric*, as flat report rows."""
    if metric not in METRICS:
        raise ValueError(f"unknown metric {metric!r}; choose from {METRICS}")
    ranked = sorted(
        (n for n in profile.walk() if getattr(n, metric)),
        key=lambda n: (getattr(n, metric), n.depth),
        reverse=True,
    )
    return [
        {
            "path": node.label(),
            "depth": node.depth,
            "steps": node.steps,
            "subtree_steps": node.cum.get("steps", 0),
            "replay_steps": node.replay_steps,
            "cow_faults": node.cow_faults,
            "restores": node.snapshots_restored,
            "wall_s": node.wall_s,
            "outcome": _outcome(node),
        }
        for node in ranked[:top]
    ]


def _outcome(node: ProfileNode) -> str:
    parts = []
    if node.guesses:
        parts.append(f"guess×{node.fanout}" if node.fanout else "guess")
    if node.solutions:
        parts.append("solution")
    if node.fails:
        parts.append("fail")
    if node.kills:
        parts.append("kill")
    if node.spills:
        parts.append("spill")
    return "+".join(parts) or "-"


def summarize_profile(profile: Profile, top: int = 10,
                      metric: str = "steps") -> dict:
    """One JSON-able summary dict (the CLI's ``--json`` payload)."""
    critical = profile.critical_path(metric=metric)
    return {
        "events": profile.events,
        "nodes": len(profile.nodes),
        "total_steps": profile.total_steps,
        "total_replay_steps": profile.total_replay_steps,
        "replay_overhead": profile.replay_overhead(),
        "totals": dict(profile.root.cum),
        "hotspots": hotspots(profile, top=top, metric=metric),
        "critical_path": {
            "cost": sum(getattr(n, metric) for n in critical),
            "metric": metric,
            "depth": critical[-1].depth if critical else 0,
            "path": critical[-1].label() if critical else "root",
            "nodes": [
                {
                    "path": node.label(),
                    "steps": node.steps,
                    "cow_faults": node.cow_faults,
                    "outcome": _outcome(node),
                }
                for node in critical
            ],
        },
        "tasks": {
            "count": len(profile.tasks),
            "replay_share_mean": (
                sum(t["replay_share"] for t in profile.tasks)
                / len(profile.tasks) if profile.tasks else 0.0
            ),
            "replay_share_max": max(
                (t["replay_share"] for t in profile.tasks), default=0.0
            ),
        },
        "workers": {
            str(worker): dict(agg)
            for worker, agg in sorted(
                profile.workers.items(), key=lambda kv: str(kv[0])
            )
        },
    }
