"""The structured event trace: emit, order, export, compare.

One process-wide :data:`TRACER` (the simulator is single-threaded; the
parallel engine is simulated concurrency on one thread) receives typed
events from every subsystem.  The contract rr's engineering report
argues for — a cheap, always-on-able event stream — translates here to:

* **Disabled is (almost) free.**  ``TRACER.emit(...)`` with no sink
  attached is one attribute test and a return.  Hot paths additionally
  guard with ``if TRACER.enabled:`` so even the kwargs dict is never
  built.
* **Total order.**  Every event carries a monotonically increasing
  ``seq`` and a monotonic-clock ``ts``; within one process, ``seq`` is
  the ground-truth ordering (timestamps can tie).
* **JSONL export.**  One JSON object per line, flat schema
  ``{"seq", "ts", "type", ...fields}``; ``repro.tools.trace_report``
  consumes this.
* **Comparability.**  :func:`normalize_events` strips the volatile parts
  (timestamps, global id allocation) so two traces of the same logical
  run compare equal — the determinism guard the differential tests use.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Any, Callable, IO, Iterable, Iterator, Optional, Union

from repro.obs.events import validate_event


class MemorySink:
    """Collects events in a list (tests and in-process analysis)."""

    def __init__(self) -> None:
        self.events: list[dict] = []

    def write(self, event: dict) -> None:
        self.events.append(event)

    def close(self) -> None:  # symmetry with JsonlSink
        pass


class JsonlSink:
    """Writes one JSON object per event to a file (or file-like object)."""

    def __init__(self, target: Union[str, IO[str]]):
        if isinstance(target, str):
            self._fh: IO[str] = open(target, "w", encoding="utf-8")
            self._owns = True
        else:
            self._fh = target
            self._owns = False
        self.written = 0

    def write(self, event: dict) -> None:
        self._fh.write(json.dumps(event, default=_json_default))
        self._fh.write("\n")
        self.written += 1

    def close(self) -> None:
        self._fh.flush()
        if self._owns:
            self._fh.close()


def _json_default(value: Any) -> Any:
    """Last-resort JSON encoding for event field values."""
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    if isinstance(value, bytes):
        return value.decode("utf-8", errors="replace")
    return str(value)


class Tracer:
    """Dispatches typed events to attached sinks in monotonic order."""

    __slots__ = ("enabled", "_sinks", "_next_seq", "_clock")

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        #: True iff at least one sink is attached.  Hot call sites read
        #: this before building event fields.
        self.enabled = False
        self._sinks: list[Any] = []
        self._next_seq = 0
        self._clock = clock

    # -- sink management -----------------------------------------------

    def attach(self, sink: Any) -> Any:
        """Attach *sink* (anything with ``write(event)``); returns it."""
        self._sinks.append(sink)
        self.enabled = True
        return sink

    def detach(self, sink: Any) -> None:
        """Detach *sink*; unknown sinks are ignored."""
        if sink in self._sinks:
            self._sinks.remove(sink)
        self.enabled = bool(self._sinks)

    @contextmanager
    def capture(self) -> Iterator[MemorySink]:
        """Collect events into a MemorySink for the duration of a block."""
        sink = MemorySink()
        self.attach(sink)
        try:
            yield sink
        finally:
            self.detach(sink)

    @contextmanager
    def to_file(self, path: Union[str, IO[str]]) -> Iterator[JsonlSink]:
        """Stream events to a JSONL file for the duration of a block."""
        sink = JsonlSink(path)
        self.attach(sink)
        try:
            yield sink
        finally:
            self.detach(sink)
            sink.close()

    # -- emission ------------------------------------------------------

    def emit(self, etype: str, **fields: Any) -> None:
        """Record one event (no-op when no sink is attached).

        Known event types are validated against the schema; the event
        dict is shared across sinks (sinks must not mutate it).
        """
        if not self.enabled:
            return
        validate_event(etype, fields)
        event = {"seq": self._next_seq, "ts": self._clock(), "type": etype}
        event.update(fields)
        self._next_seq += 1
        for sink in self._sinks:
            sink.write(event)


#: The process-wide tracer every instrumented subsystem emits to.
TRACER = Tracer()


def get_tracer() -> Tracer:
    return TRACER


# ----------------------------------------------------------------------
# Trace comparison
# ----------------------------------------------------------------------

#: Fields holding globally-allocated ids, grouped by id space: two runs
#: of the same program allocate different raw sids/asids, but the *k*-th
#: distinct id observed must line up.  ``parent`` refers to sids.
_ID_SPACES = {"sid": "sid", "parent": "sid", "asid": "asid"}


def normalize_events(events: Iterable[dict]) -> list[dict]:
    """Rewrite a trace into its run-independent canonical form.

    Drops ``ts``, rebases ``seq`` to start at 0, and remaps every id
    field to its first-occurrence index within its id space.  Two traces
    of deterministic runs normalize to equal lists; any divergence
    (ordering, fan-out, fault pattern) survives normalization.
    """
    out: list[dict] = []
    maps: dict[str, dict[Any, int]] = {"sid": {}, "asid": {}}
    base_seq: Optional[int] = None
    for event in events:
        canon = dict(event)
        canon.pop("ts", None)
        if base_seq is None:
            base_seq = canon.get("seq", 0)
        if "seq" in canon:
            canon["seq"] -= base_seq
        for field_name, space in _ID_SPACES.items():
            if field_name in canon and canon[field_name] is not None:
                mapping = maps[space]
                raw = canon[field_name]
                if raw not in mapping:
                    mapping[raw] = len(mapping)
                canon[field_name] = mapping[raw]
        out.append(canon)
    return out
