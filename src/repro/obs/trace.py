"""The structured event trace: emit, order, export, compare.

One process-wide :data:`TRACER` (the simulator is single-threaded; the
parallel engine is simulated concurrency on one thread) receives typed
events from every subsystem.  The contract rr's engineering report
argues for — a cheap, always-on-able event stream — translates here to:

* **Disabled is (almost) free.**  ``TRACER.emit(...)`` with no sink
  attached is one attribute test and a return.  Hot paths additionally
  guard with ``if TRACER.enabled:`` so even the kwargs dict is never
  built.
* **Total order.**  Every event carries a monotonically increasing
  ``seq`` and a monotonic-clock ``ts``; within one process, ``seq`` is
  the ground-truth ordering (timestamps can tie).
* **JSONL export.**  One JSON object per line, flat schema
  ``{"seq", "ts", "type", ...fields}``; ``repro.tools.trace_report``
  consumes this.
* **Comparability.**  :func:`normalize_events` strips the volatile parts
  (timestamps, global id allocation) so two traces of the same logical
  run compare equal — the determinism guard the differential tests use.
"""

from __future__ import annotations

import json
import time
import weakref
from contextlib import contextmanager
from typing import Any, Callable, IO, Iterable, Iterator, Optional, Union

from repro.obs.events import validate_event


class MemorySink:
    """Collects events in a list (tests and in-process analysis).

    Doubles as the cluster workers' buffered segment collector: a worker
    attaches one, explores a task, then :meth:`drain`\\ s the buffered
    segment into the result message it ships to the coordinator.
    """

    def __init__(self) -> None:
        self.events: list[dict] = []

    def write(self, event: dict) -> None:
        self.events.append(event)

    def drain(self) -> list[dict]:
        """Return the buffered events and clear the buffer."""
        events, self.events = self.events, []
        return events

    def close(self) -> None:  # symmetry with JsonlSink
        pass


def _settle_fh(fh: IO[str], owns: bool) -> None:
    """Flush (and close, when owned) a sink's file handle, tolerantly."""
    try:
        fh.flush()
        if owns:
            fh.close()
    except (OSError, ValueError):
        pass  # already closed, or the target went away


class JsonlSink:
    """Writes one JSON object per event to a file (or file-like object).

    Buffered tail events must not be lost when a sink is dropped without
    ``close()`` — short CLI runs and crashing processes both end that
    way — so every sink registers a ``weakref.finalize`` callback, which
    runs both at garbage collection and at interpreter exit (``atexit``).
    That cannot help against ``SIGKILL``; callers that must survive a
    hard kill set *autoflush* (every write hits the OS) or call
    :meth:`flush` at their own durability points.
    """

    def __init__(self, target: Union[str, IO[str]], autoflush: bool = False):
        if isinstance(target, str):
            self._fh: IO[str] = open(target, "w", encoding="utf-8")
            self._owns = True
        else:
            self._fh = target
            self._owns = False
        self.autoflush = autoflush
        self.written = 0
        self._finalizer = weakref.finalize(
            self, _settle_fh, self._fh, self._owns
        )

    def write(self, event: dict) -> None:
        self._fh.write(_encode_line(event))
        self.written += 1
        if self.autoflush:
            self._fh.flush()

    def flush(self) -> None:
        """Push buffered events to the OS (visible to other processes)."""
        self._fh.flush()

    def close(self) -> None:
        self._finalizer()  # flush + close once; later GC/atexit no-ops


def _json_default(value: Any) -> Any:
    """Last-resort JSON encoding for event field values."""
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    if isinstance(value, bytes):
        return value.decode("utf-8", errors="replace")
    return str(value)


def _encode_line(event: dict) -> str:
    """Encode one event as a JSONL line, fast.

    Event fields are overwhelmingly ints, short safe strings, floats and
    small int lists; open-coding those skips ``json.dumps``'s generic
    dispatch (~25% less CPU per event, which matters at the merged-trace
    volumes the cluster engine produces).  Anything unusual falls back
    to ``json.dumps`` so the output is always valid JSON.
    """
    parts = []
    for key, value in event.items():
        t = type(value)
        if t is int:
            parts.append('"%s":%d' % (key, value))
        elif t is str:
            if '"' in value or "\\" in value:
                parts.append('"%s":%s' % (key, json.dumps(value)))
            else:
                parts.append('"%s":"%s"' % (key, value))
        elif t is float:
            parts.append('"%s":%r' % (key, value))
        elif t is list and all(type(i) is int for i in value):
            parts.append('"%s":[%s]' % (key, ",".join(map(str, value))))
        else:
            parts.append(
                '"%s":%s' % (key, json.dumps(value, default=_json_default))
            )
    return "{%s}\n" % ",".join(parts)


class Tracer:
    """Dispatches typed events to attached sinks in monotonic order."""

    __slots__ = ("enabled", "_sinks", "_next_seq", "_clock", "_context")

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        #: True iff at least one sink is attached.  Hot call sites read
        #: this before building event fields.
        self.enabled = False
        self._sinks: list[Any] = []
        self._next_seq = 0
        self._clock = clock
        #: Fields stamped onto every emitted event (explicit fields win).
        self._context: Optional[dict] = None

    # -- sink management -----------------------------------------------

    def attach(self, sink: Any) -> Any:
        """Attach *sink* (anything with ``write(event)``); returns it."""
        self._sinks.append(sink)
        self.enabled = True
        return sink

    def detach(self, sink: Any) -> None:
        """Detach *sink*; unknown sinks are ignored."""
        if sink in self._sinks:
            self._sinks.remove(sink)
        self.enabled = bool(self._sinks)

    def reset_sinks(self) -> None:
        """Drop every sink *without* closing it.

        Cluster workers call this right after ``fork``: the child
        inherits the coordinator's sink list (including any open
        ``JsonlSink`` file object), and writing through the shared file
        description from two processes would interleave garbage.  The
        coordinator still owns the underlying file, so the child must
        forget the sinks, not close them.
        """
        self._sinks = []
        self.enabled = False

    # -- emit-time context ---------------------------------------------

    def set_context(self, **fields: Any) -> None:
        """Merge *fields* into the emit-time context.

        Every subsequently emitted event carries these fields unless the
        emit call supplies the same key itself.  A value of ``None``
        removes the key.  This is how cluster workers stamp ``worker``
        on *all* their events (snapshot, mem, search, ...) rather than
        only on the scheduling events the coordinator emits.
        """
        context = dict(self._context or {})
        for key, value in fields.items():
            if value is None:
                context.pop(key, None)
            else:
                context[key] = value
        self._context = context or None

    def clear_context(self) -> None:
        """Drop every emit-time context field."""
        self._context = None

    @contextmanager
    def capture(self) -> Iterator[MemorySink]:
        """Collect events into a MemorySink for the duration of a block."""
        sink = MemorySink()
        self.attach(sink)
        try:
            yield sink
        finally:
            self.detach(sink)

    @contextmanager
    def to_file(self, path: Union[str, IO[str]]) -> Iterator[JsonlSink]:
        """Stream events to a JSONL file for the duration of a block."""
        sink = JsonlSink(path)
        self.attach(sink)
        try:
            yield sink
        finally:
            self.detach(sink)
            sink.close()

    # -- emission ------------------------------------------------------

    def emit(self, etype: str, **fields: Any) -> None:
        """Record one event (no-op when no sink is attached).

        Known event types are validated against the schema; the event
        dict is shared across sinks (sinks must not mutate it).
        """
        if not self.enabled:
            return
        validate_event(etype, fields)
        event = {"seq": self._next_seq, "ts": self._clock(), "type": etype}
        if self._context is not None:
            event.update(self._context)
        event.update(fields)
        self._next_seq += 1
        for sink in self._sinks:
            sink.write(event)

    def ingest(self, events: Iterable[dict], **stamp: Any) -> int:
        """Re-sequence foreign events into this tracer's stream.

        The coordinator merges worker trace segments this way: each
        event keeps all its fields (including its worker-local ``ts``,
        which is only comparable *within* one worker), its original
        ``seq`` is preserved as ``wseq``, and a fresh global ``seq`` is
        assigned so the merged stream has one total order.  *stamp*
        fields are added where the event does not already carry them
        (e.g. ``worker=3`` for segments from pre-context traces).

        The event dicts are rewritten in place — callers hand over
        ownership of the segment (the cluster coordinator's segments
        come straight off the unpickler, so nothing else holds them).

        Returns the number of events written.  No-op when disabled.
        """
        if not self.enabled:
            return 0
        written = 0
        sinks = self._sinks
        for event in events:
            # The segment was unpickled for this call, so the dicts are
            # ours to rewrite in place — no per-event copy.
            wseq = event.get("seq")
            if wseq is not None:
                event["wseq"] = wseq
            event["seq"] = self._next_seq
            self._next_seq += 1
            if stamp:
                for key, value in stamp.items():
                    event.setdefault(key, value)
            for sink in sinks:
                sink.write(event)
            written += 1
        return written


#: The process-wide tracer every instrumented subsystem emits to.
TRACER = Tracer()


def get_tracer() -> Tracer:
    return TRACER


# ----------------------------------------------------------------------
# Trace comparison
# ----------------------------------------------------------------------

#: Fields holding globally-allocated ids, grouped by id space: two runs
#: of the same program allocate different raw sids/asids, but the *k*-th
#: distinct id observed must line up.  ``parent`` refers to sids.
_ID_SPACES = {"sid": "sid", "parent": "sid", "asid": "asid"}


def normalize_events(events: Iterable[dict]) -> list[dict]:
    """Rewrite a trace into its run-independent canonical form.

    Drops ``ts``, rebases ``seq`` to start at 0, and remaps every id
    field to its first-occurrence index within its id space.  Two traces
    of deterministic runs normalize to equal lists; any divergence
    (ordering, fan-out, fault pattern) survives normalization.
    """
    out: list[dict] = []
    maps: dict[str, dict[Any, int]] = {"sid": {}, "asid": {}}
    base_seq: Optional[int] = None
    for event in events:
        canon = dict(event)
        canon.pop("ts", None)
        if base_seq is None:
            base_seq = canon.get("seq", 0)
        if "seq" in canon:
            canon["seq"] -= base_seq
        for field_name, space in _ID_SPACES.items():
            if field_name in canon and canon[field_name] is not None:
                mapping = maps[space]
                raw = canon[field_name]
                if raw not in mapping:
                    mapping[raw] = len(mapping)
                canon[field_name] = mapping[raw]
        out.append(canon)
    return out
