"""Path-constraint feasibility by bounded enumeration.

The paper's systems use Z3; our symbolic inputs have small bounded
domains (bytes or less), so a backtracking enumeration with per-variable
constraint filtering is sound and complete here, and keeps the entire
stack dependency-free (substitution documented in DESIGN.md §2).

The search assigns variables one at a time and checks every constraint
as soon as its full support is bound, pruning early.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.symex.expr import Expr, SymVar, collect_symvars


class PathConstraints:
    """An immutable-ish conjunction of boolean expressions.

    ``extend`` returns a new object sharing the prefix, mirroring how a
    child state's constraint set extends its parent's.
    """

    __slots__ = ("exprs",)

    def __init__(self, exprs: tuple[Expr, ...] = ()):
        self.exprs = exprs

    def extend(self, expr: Expr) -> "PathConstraints":
        return PathConstraints(self.exprs + (expr,))

    def __len__(self) -> int:
        return len(self.exprs)

    def __iter__(self):
        return iter(self.exprs)

    def __repr__(self) -> str:
        return " & ".join(repr(e) for e in self.exprs) or "true"


def _variables(constraints: Iterable[Expr]) -> dict[str, SymVar]:
    acc: dict[str, SymVar] = {}
    for expr in constraints:
        collect_symvars(expr, acc=acc)
    return acc


def solve_assignment(
    constraints: Iterable[Expr],
    budget: int = 2_000_000,
) -> Optional[dict[str, int]]:
    """Find a satisfying assignment, or None if none exists.

    Raises RuntimeError if the enumeration *budget* (number of partial
    assignments tried) is exhausted — a signal that the workload's
    symbolic inputs are too wide for enumeration.
    """
    exprs = list(constraints)
    variables = sorted(_variables(exprs).values(), key=lambda v: v.name)
    if not variables:
        return {} if all(e.evaluate({}) for e in exprs) else None

    # Bind each constraint to the index of its last-assigned variable so
    # it is checked as early as possible.
    order = {var.name: i for i, var in enumerate(variables)}
    check_at: list[list[Expr]] = [[] for _ in variables]
    for expr in exprs:
        support = expr.vars()
        last = max(order[name] for name in support)
        check_at[last].append(expr)

    assignment: dict[str, int] = {}
    tried = 0

    def backtrack(index: int) -> bool:
        nonlocal tried
        if index == len(variables):
            return True
        var = variables[index]
        for value in range(var.domain):
            tried += 1
            if tried > budget:
                raise RuntimeError("constraint enumeration budget exhausted")
            assignment[var.name] = value
            if all(e.evaluate(assignment) for e in check_at[index]):
                if backtrack(index + 1):
                    return True
        del assignment[var.name]
        return False

    if backtrack(0):
        return dict(assignment)
    return None


def is_satisfiable(constraints: Iterable[Expr], budget: int = 2_000_000) -> bool:
    """True if some assignment satisfies every constraint."""
    return solve_assignment(constraints, budget=budget) is not None
