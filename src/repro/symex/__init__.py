"""Symbolic execution of guest binaries (the S2E stand-in).

§2's first motivating application: an automated path explorer that forks
the entire machine state at every branch whose condition depends on
symbolic data.  This package provides a KLEE-style engine for
:mod:`repro.cpu` binaries with **two interchangeable state-forking
backends**, which is exactly the comparison the paper proposes:

* :class:`SnapshotBackend` -- state forking via lightweight snapshots:
  guest writes are *uninstrumented* (page-level COW catches them), and
  forking is O(1) in the size of the state;
* :class:`SWCowBackend` -- the S2E status quo: copy-on-write emulated in
  software inside the engine, which must interpose on *every* memory
  write and pays O(state pages) per fork for share-marking.

Path feasibility is decided by bounded enumeration over the (small)
input domains — the Z3 substitution documented in DESIGN.md §2.
"""

from repro.symex.backends import SnapshotBackend, SWCowBackend
from repro.symex.expr import BinExpr, Const, SymVar, simplify
from repro.symex.explorer import ExploreResult, SymbolicExplorer
from repro.symex.solver import PathConstraints, is_satisfiable, solve_assignment

__all__ = [
    "BinExpr",
    "Const",
    "ExploreResult",
    "PathConstraints",
    "SWCowBackend",
    "SnapshotBackend",
    "SymVar",
    "SymbolicExplorer",
    "is_satisfiable",
    "simplify",
    "solve_assignment",
]
