"""The symbolic interpreter.

Executes :mod:`repro.cpu` instructions over a :class:`SymState`, keeping
values as either concrete ints or symbolic expressions.  Execution stops
with a typed event the explorer acts on: a symbolic branch (fork point),
path exit, a found bug, or a kill (unsupported operation on symbolic
data — e.g. symbolic pointers, which real engines concretize; we keep
the engine honest and small by killing those paths, documented in
DESIGN.md).

Code is fetched from the static program image (guest code is mapped
read-execute, so it cannot change), keeping decode identical across
backends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.cpu import isa
from repro.cpu.assembler import Program
from repro.cpu.registers import MASK64
from repro.symex.expr import (
    Expr,
    Value,
    compare,
    is_concrete,
    negate,
    simplify,
    to_expr,
)
from repro.symex.backends import SymState

RSP = 4


@dataclass
class Forked:
    """Reached a branch whose condition is symbolic."""

    condition: Expr  # truth means "branch taken"
    taken_rip: int
    fallthrough_rip: int
    branch_pc: int


@dataclass
class Exited:
    """Path terminated (exit syscall or hlt)."""

    status: Value


@dataclass
class Bug:
    """A bug found on this path (with the triggering condition)."""

    kind: str
    pc: int
    condition: Optional[Expr]  # None = happens unconditionally


@dataclass
class Killed:
    """Path abandoned: unsupported operation on symbolic data."""

    reason: str


@dataclass
class OutOfFuel:
    """Step budget exhausted."""


Event = Union[Forked, Exited, Bug, Killed, OutOfFuel]

_JCC_OP = {
    isa.JE: "eq", isa.JNE: "ne", isa.JL: "slt", isa.JLE: "sle",
    isa.JG: "sgt", isa.JGE: "sge", isa.JB: "ult", isa.JAE: "uge",
}

_ALU_RR = {
    isa.ADDRR: "add", isa.SUBRR: "sub", isa.IMULRR: "mul",
    isa.ANDRR: "and", isa.ORRR: "or", isa.XORRR: "xor",
}
_ALU_RI = {
    isa.ADDRI: "add", isa.SUBRI: "sub", isa.IMULRI: "mul",
    isa.ANDRI: "and", isa.ORRI: "or", isa.XORRI: "xor",
}

SYS_EXIT = 60
#: Console writes are allowed but ignored by the symbolic engine.
SYS_WRITE = 1


class StaticDecoder:
    """Decodes instructions straight from the program image."""

    def __init__(self, program: Program):
        self.program = program
        self._cache: dict[int, tuple] = {}

    def decode(self, rip: int) -> tuple:
        cached = self._cache.get(rip)
        if cached is not None:
            return cached
        text = self.program.text
        base = self.program.text_base
        offset = rip - base
        if not (0 <= offset < len(text)):
            raise KeyError(f"rip {rip:#x} outside .text")
        opcode = text[offset]
        spec = isa.OPCODES.get(opcode)
        if spec is None:
            raise KeyError(f"invalid opcode {opcode:#x} at {rip:#x}")
        length = isa.insn_length(opcode)
        raw = text[offset + 1 : offset + length]
        next_rip = rip + length
        fields: list[int] = [opcode]
        pos = 0
        for kind in spec.layout:
            if kind in ("r", "c"):
                fields.append(raw[pos])
                pos += 1
            elif kind == "i":
                fields.append(int.from_bytes(raw[pos : pos + 8], "little"))
                pos += 8
            elif kind in ("s", "d"):
                fields.append(
                    int.from_bytes(raw[pos : pos + 4], "little", signed=True)
                )
                pos += 4
            else:  # "t"
                rel = int.from_bytes(raw[pos : pos + 4], "little", signed=True)
                fields.append(next_rip + rel)
                pos += 4
        fields.append(next_rip)
        decoded = tuple(fields)
        self._cache[rip] = decoded
        return decoded


class SymMachine:
    """Runs one SymState until the next explorer-visible event."""

    def __init__(self, program: Program, backend, concretizer=None):
        self.decoder = StaticDecoder(program)
        self.backend = backend
        #: Optional hook ``(state, expr) -> int | None``: pick a concrete
        #: value for a symbolic address (adding the binding constraint to
        #: the state) instead of killing the path — KLEE-style address
        #: concretization.  None (or a hook returning None) falls back to
        #: killing the path.
        self.concretizer = concretizer
        #: Number of symbolic values concretized via the hook.
        self.concretizations = 0
        #: Branch PCs executed (for coverage-driven strategies).
        self.instructions = 0

    def _resolve(self, state: SymState, value: Value, what: str) -> int:
        """Force *value* concrete, concretizing through the hook if set."""
        if is_concrete(value):
            return value
        if self.concretizer is not None:
            concrete = self.concretizer(state, value)
            if concrete is not None:
                self.concretizations += 1
                return concrete
        raise _Kill(f"symbolic {what}")

    def _mem_addr(self, state: SymState, base: Value, disp: int) -> int:
        """Effective address ``base + disp``, concretizing if needed."""
        if is_concrete(base):
            return (base + disp) & MASK64
        return (self._resolve(state, base, "base register in address")
                + disp) & MASK64

    def _mem_addr_x(self, state: SymState, base: Value, index: Value,
                    scale: int, disp: int) -> int:
        """Effective address ``base + index*scale + disp``."""
        if is_concrete(base) and is_concrete(index):
            return (base + index * scale + disp) & MASK64
        # Concretize the whole effective-address expression at once, so
        # the binding constraint covers the combined computation.
        scaled = simplify("mul", index, scale)
        effective = simplify("add", simplify("add", base, scaled), disp)
        return self._resolve(state, effective, "register in indexed address")

    # ------------------------------------------------------------------
    # Memory access combining overlay (symbolic) and backend (concrete)
    # ------------------------------------------------------------------

    def _load(self, state: SymState, addr: Value, size: int) -> Value:
        if not is_concrete(addr):
            raise _Kill("symbolic pointer on load")
        sym = state.overlay.get((addr, size))
        if sym is not None:
            return sym
        for (o_addr, o_size) in state.overlay:
            if o_addr < addr + size and addr < o_addr + o_size:
                raise _Kill("partially-overlapping symbolic load")
        return self.backend.read(state.mem, addr, size)

    def _store(self, state: SymState, addr: Value, value: Value, size: int) -> None:
        if not is_concrete(addr):
            raise _Kill("symbolic pointer on store")
        for key in [k for k in state.overlay
                    if k[0] < addr + size and addr < k[0] + k[1]]:
            if key != (addr, size):
                raise _Kill("partially-overlapping symbolic store")
            del state.overlay[key]
        if is_concrete(value):
            self.backend.write(state.mem, addr, value, size)
        else:
            state.overlay[(addr, size)] = value

    # ------------------------------------------------------------------

    def run(self, state: SymState, max_steps: int = 200_000) -> Event:
        """Execute until fork / exit / bug / kill / fuel exhaustion."""
        from repro.mem.faults import PageFaultError

        try:
            return self._run(state, max_steps)
        except _Kill as kill:
            return Killed(str(kill))
        except (KeyError, PageFaultError) as err:
            return Killed(f"memory/decode error: {err}")

    def _run(self, state: SymState, max_steps: int) -> Event:
        decoder = self.decoder
        g = state.regs
        I = isa
        for _ in range(max_steps):
            d = decoder.decode(state.rip)
            op = d[0]
            state.steps += 1
            self.instructions += 1

            if op == I.MOVI:
                g[d[1]] = d[2]
                state.rip = d[3]
            elif op == I.MOVR:
                g[d[1]] = g[d[2]]
                state.rip = d[3]
            elif op == I.LOAD or op == I.LOADB:
                size = 8 if op == I.LOAD else 1
                g[d[1]] = self._load(state, self._mem_addr(state, g[d[2]], d[3]), size)
                state.rip = d[4]
            elif op == I.STORE or op == I.STOREB:
                size = 8 if op == I.STORE else 1
                value = g[d[3]]
                if size == 1 and not is_concrete(value):
                    value = simplify("and", value, 0xFF)
                elif size == 1:
                    value &= 0xFF
                self._store(state, self._mem_addr(state, g[d[1]], d[2]), value, size)
                state.rip = d[4]
            elif op == I.LOADX or op == I.LOADBX:
                size = 8 if op == I.LOADX else 1
                addr = self._mem_addr_x(state, g[d[2]], g[d[3]], d[4], d[5])
                g[d[1]] = self._load(state, addr, size)
                state.rip = d[6]
            elif op == I.STOREX or op == I.STOREBX:
                size = 8 if op == I.STOREX else 1
                addr = self._mem_addr_x(state, g[d[1]], g[d[2]], d[3], d[4])
                value = g[d[5]]
                if size == 1:
                    value = (value & 0xFF) if is_concrete(value) \
                        else simplify("and", value, 0xFF)
                self._store(state, addr, value, size)
                state.rip = d[6]
            elif op == I.LEA:
                g[d[1]] = simplify("add", g[d[2]], d[3])
                state.rip = d[4]
            elif op == I.LEAX:
                scaled = simplify("mul", g[d[3]], d[4])
                g[d[1]] = simplify("add", simplify("add", g[d[2]], scaled), d[5])
                state.rip = d[6]

            elif op in _ALU_RR:
                g[d[1]] = simplify(_ALU_RR[op], g[d[1]], g[d[2]])
                state.flags = ("move", g[d[1]], 0)
                state.rip = d[3]
            elif op in _ALU_RI:
                g[d[1]] = simplify(_ALU_RI[op], g[d[1]], d[2] & MASK64)
                state.flags = ("move", g[d[1]], 0)
                state.rip = d[3]
            elif op == I.SHLI:
                g[d[1]] = simplify("shl", g[d[1]], d[2] & 63)
                state.rip = d[3]
            elif op == I.SHRI:
                g[d[1]] = simplify("shr", g[d[1]], d[2] & 63)
                state.rip = d[3]
            elif op == I.INC:
                g[d[1]] = simplify("add", g[d[1]], 1)
                state.flags = ("move", g[d[1]], 0)
                state.rip = d[2]
            elif op == I.DEC:
                g[d[1]] = simplify("sub", g[d[1]], 1)
                state.flags = ("move", g[d[1]], 0)
                state.rip = d[2]
            elif op == I.NEG:
                g[d[1]] = simplify("sub", 0, g[d[1]])
                state.rip = d[2]
            elif op == I.NOT:
                g[d[1]] = simplify("xor", g[d[1]], MASK64)
                state.rip = d[2]

            elif op == I.CMPRR:
                state.flags = ("cmp", g[d[1]], g[d[2]])
                state.rip = d[3]
            elif op == I.CMPRI:
                state.flags = ("cmp", g[d[1]], d[2] & MASK64)
                state.rip = d[3]
            elif op == I.TESTRR:
                state.flags = ("test", g[d[1]], g[d[2]])
                state.rip = d[3]

            elif op == I.UDIVRR or op == I.UMODRR:
                divisor = g[d[2]]
                if not is_concrete(divisor):
                    return Bug(
                        "possible-divide-by-zero", state.rip,
                        condition=_as_cond(compare("eq", divisor, 0)),
                    )
                if divisor == 0:
                    return Bug("divide-by-zero", state.rip, condition=None)
                dividend = g[d[1]]
                if not is_concrete(dividend):
                    raise _Kill("symbolic dividend")
                g[d[1]] = dividend // divisor if op == I.UDIVRR \
                    else dividend % divisor
                state.rip = d[3]

            elif op == I.JMP:
                state.rip = d[1]
            elif op in _JCC_OP:
                cond = self._condition(state, _JCC_OP[op])
                if is_concrete(cond):
                    state.rip = d[1] if cond else d[2]
                else:
                    return Forked(
                        condition=cond,
                        taken_rip=d[1],
                        fallthrough_rip=d[2],
                        branch_pc=state.rip,
                    )

            elif op == I.CALL:
                rsp = self._resolve(state, g[RSP], "rsp") - 8
                self._store(state, rsp, d[2], 8)
                g[RSP] = rsp
                state.rip = d[1]
            elif op == I.RET:
                rsp = self._resolve(state, g[RSP], "rsp")
                target = self._load(state, rsp, 8)
                g[RSP] = rsp + 8
                state.rip = self._resolve(state, target, "return address")
            elif op == I.PUSH:
                rsp = self._resolve(state, g[RSP], "rsp") - 8
                self._store(state, rsp, g[d[1]], 8)
                g[RSP] = rsp
                state.rip = d[2]
            elif op == I.POP:
                rsp = self._resolve(state, g[RSP], "rsp")
                g[d[1]] = self._load(state, rsp, 8)
                g[RSP] = rsp + 8
                state.rip = d[2]

            elif op == I.NOP:
                state.rip = d[1]
            elif op == I.SYSCALL:
                state.rip = d[1]
                number = self._resolve(state, g[0], "syscall number")
                if number == SYS_EXIT:
                    return Exited(status=g[7])  # rdi
                if number == SYS_WRITE:
                    g[0] = g[2]  # pretend full write; output ignored
                    continue
                raise _Kill(f"unsupported syscall #{number} in symbolic mode")
            elif op == I.HLT:
                return Exited(status=g[0])
            else:
                raise _Kill(f"unsupported opcode {op:#x}")
        return OutOfFuel()

    def _condition(self, state: SymState, cmp_op: str) -> Value:
        flags = state.flags
        if flags is None:
            raise _Kill("conditional jump with no flags set")
        kind, lhs, rhs = flags
        if kind == "cmp":
            return compare(cmp_op, lhs, rhs)
        if kind == "test":
            anded = simplify("and", lhs, rhs)
            zero = compare("eq", anded, 0)
            mapping = {"eq": zero}
            if cmp_op == "eq":
                return zero
            if cmp_op == "ne":
                return negate(to_expr(zero)) if not is_concrete(zero) \
                    else int(not zero)
            raise _Kill(f"unsupported jcc {cmp_op!r} after test")
        # "move": flags from an ALU result (compare result against 0).
        if cmp_op in ("eq", "ne", "slt", "sle", "sgt", "sge"):
            return compare(cmp_op, lhs, 0)
        raise _Kill(f"unsupported jcc {cmp_op!r} after ALU result")


class _Kill(Exception):
    pass


def _as_cond(value: Value) -> Expr:
    return to_expr(value)
