"""State-forking backends for the symbolic explorer.

The comparison at the heart of E4 (§2): S2E implements state forking by
"snapshotting in software all QEMU data structures", emulating
copy-on-write *inside the emulator* — which requires interposing on every
memory write; system-level lightweight snapshots get the same effect from
the virtual-memory subsystem, with no per-write instrumentation and O(1)
fork cost.

Both backends expose the same tiny interface (read/write/fork/release of
concrete guest memory); the symbolic overlay, registers and constraints
live in :class:`SymState` and are copied identically, so any measured
difference is the forking substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.mem.addrspace import AddressSpace
from repro.mem.frames import FramePool
from repro.mem.layout import PAGE_MASK, PAGE_SHIFT, PAGE_SIZE
from repro.mem.pagetable import Permission
from repro.snapshot.snapshot import SnapshotManager
from repro.symex.expr import Expr
from repro.symex.solver import PathConstraints


class SymState:
    """One symbolic execution state (a partial candidate, per §3.2)."""

    __slots__ = (
        "regs", "rip", "flags", "overlay", "constraints", "mem",
        "depth", "steps", "sid",
    )

    _ids = iter(range(1, 1 << 30))

    def __init__(self, regs, rip, flags, overlay, constraints, mem, depth=0):
        self.regs: list = regs
        self.rip: int = rip
        #: Either None or a pending ("cmp"|"test", lhs, rhs) record.
        self.flags = flags
        #: (addr, size) -> Expr for symbolic memory bytes.
        self.overlay: dict[tuple[int, int], Expr] = overlay
        self.constraints: PathConstraints = constraints
        self.mem: Any = mem  # backend-specific concrete memory handle
        self.depth = depth
        self.steps = 0
        self.sid = next(SymState._ids)


@dataclass
class BackendStats:
    """Forking-substrate cost counters."""

    forks: int = 0
    #: Writes the backend had to interpose on in software (the S2E-style
    #: per-write tax; zero for the snapshot backend).
    instrumented_writes: int = 0
    #: Pages physically copied by either COW mechanism.
    pages_copied: int = 0
    #: Work units spent *at fork time* (pages share-marked for software
    #: COW; constant ~1 for snapshots).  This is the O(state) vs O(1)
    #: distinction the paper claims.
    fork_work: int = 0
    states_released: int = 0


class SnapshotBackend:
    """Fork via lightweight snapshots (this paper's design).

    Guest memory is an :class:`AddressSpace`; writes go straight through
    the MMU (no engine-level interposition) and forking shares the page
    table in O(1).
    """

    name = "snapshot"

    def __init__(self) -> None:
        self.manager = SnapshotManager()
        self.pool: FramePool = self.manager.pool
        self.stats = BackendStats()

    def new_memory(self) -> AddressSpace:
        return AddressSpace(self.pool, name="symex")

    def map_region(self, mem: AddressSpace, base: int, size: int,
                   data: Optional[bytes] = None) -> None:
        mem.map_region(base, size, Permission.RW, data=data)

    def read(self, mem: AddressSpace, addr: int, size: int) -> int:
        return mem.read_int(addr, size)

    def write(self, mem: AddressSpace, addr: int, value: int, size: int) -> None:
        before = mem.faults.pages_copied
        mem.write_int(addr, value, size)
        self.stats.pages_copied += mem.faults.pages_copied - before

    def fork(self, state: SymState, n: int = 2) -> list[SymState]:
        """O(1) per child: take a snapshot, restore n times."""
        self.stats.forks += 1
        self.stats.fork_work += 1
        snap = self.manager.take(state.mem)
        children = []
        for _ in range(n):
            _regs, space, _files = self.manager.restore(snap)
            children.append(
                SymState(
                    list(state.regs), state.rip, state.flags,
                    dict(state.overlay), state.constraints, space,
                    depth=state.depth + 1,
                )
            )
        self.manager.discard(snap)
        state.mem.free()
        return children

    def release(self, state: SymState) -> None:
        self.stats.states_released += 1
        state.mem.free()

    def footprint_pages(self) -> int:
        return self.pool.live_frames


class _SWPage:
    """A software-COW page: data plus a share count the engine must
    maintain by hand (the 'tricked into doing the right thing' layer)."""

    __slots__ = ("data", "refcount")

    def __init__(self, data: Optional[bytearray] = None):
        self.data = data if data is not None else bytearray(PAGE_SIZE)
        self.refcount = 1


class SWMemory:
    """Concrete guest memory for the software-COW backend."""

    __slots__ = ("pages",)

    def __init__(self) -> None:
        self.pages: dict[int, _SWPage] = {}


class SWCowBackend:
    """Fork via engine-level software COW (the S2E status quo).

    Every write is interposed on in software to maintain the share
    counts; every fork walks the whole page dictionary to mark pages
    shared — O(state size), the cost §2 says "multiple (relatively fat)
    software layers" impose.
    """

    name = "swcow"

    def __init__(self) -> None:
        self.stats = BackendStats()
        self._live_pages = 0

    def new_memory(self) -> SWMemory:
        return SWMemory()

    def map_region(self, mem: SWMemory, base: int, size: int,
                   data: Optional[bytes] = None) -> None:
        if base & PAGE_MASK:
            raise ValueError("base must be page-aligned")
        npages = (size + PAGE_SIZE - 1) >> PAGE_SHIFT
        for i in range(npages):
            page = _SWPage()
            if data is not None:
                chunk = data[i * PAGE_SIZE : (i + 1) * PAGE_SIZE]
                page.data[: len(chunk)] = chunk
            mem.pages[(base >> PAGE_SHIFT) + i] = page
            self._live_pages += 1

    def read(self, mem: SWMemory, addr: int, size: int) -> int:
        out = 0
        for i in range(size):
            byte_addr = addr + i
            page = mem.pages.get(byte_addr >> PAGE_SHIFT)
            if page is None:
                raise KeyError(f"unmapped address {byte_addr:#x}")
            out |= page.data[byte_addr & PAGE_MASK] << (8 * i)
        return out

    def write(self, mem: SWMemory, addr: int, value: int, size: int) -> None:
        value &= (1 << (8 * size)) - 1
        for i in range(size):
            byte_addr = addr + i
            vpn = byte_addr >> PAGE_SHIFT
            page = mem.pages.get(vpn)
            if page is None:
                raise KeyError(f"unmapped address {byte_addr:#x}")
            # The software-COW tax: every write checks the share count.
            self.stats.instrumented_writes += 1
            if page.refcount > 1:
                fresh = _SWPage(bytearray(page.data))
                page.refcount -= 1
                mem.pages[vpn] = fresh
                page = fresh
                self.stats.pages_copied += 1
                self._live_pages += 1
            page.data[byte_addr & PAGE_MASK] = (value >> (8 * i)) & 0xFF

    def fork(self, state: SymState, n: int = 2) -> list[SymState]:
        """O(pages) per fork: every page must be share-marked."""
        self.stats.forks += 1
        children = []
        for _ in range(n):
            clone = SWMemory()
            for vpn, page in state.mem.pages.items():
                page.refcount += 1
                clone.pages[vpn] = page
                self.stats.fork_work += 1
            children.append(
                SymState(
                    list(state.regs), state.rip, state.flags,
                    dict(state.overlay), state.constraints, clone,
                    depth=state.depth + 1,
                )
            )
        self.release(state)
        return children

    def release(self, state: SymState) -> None:
        self.stats.states_released += 1
        for page in state.mem.pages.values():
            page.refcount -= 1
            if page.refcount == 0:
                self._live_pages -= 1
        state.mem.pages.clear()

    def footprint_pages(self) -> int:
        return self._live_pages
