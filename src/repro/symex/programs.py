"""Sample guests for the symbolic-execution experiments."""

from __future__ import annotations

from repro.symex.expr import SymVar

#: Where symbolic inputs are planted in guest memory.
INPUT_BASE = 0x0060_0000


def password_check(secret: bytes) -> tuple[str, list[tuple[int, int, SymVar]]]:
    """A byte-by-byte password check (the classic KLEE demo).

    Exits 1 iff the symbolic input equals *secret*; symbolic execution
    must discover the single accepting path and synthesise the secret.
    """
    lines = ["mov r8, 0x600000"]
    for i, byte in enumerate(secret):
        lines += [
            f"movb r9, [r8 + {i}]",
            f"cmp r9, {byte}",
            "jne reject",
        ]
    lines += [
        "mov rdi, 1",
        "mov rax, 60",
        "syscall",
        "reject:",
        "mov rdi, 0",
        "mov rax, 60",
        "syscall",
    ]
    symbolic = [
        (INPUT_BASE + i, 1, SymVar(f"pw{i}", domain=256))
        for i in range(len(secret))
    ]
    return "\n".join(lines), symbolic


def branch_tree(depth: int, domain: int = 2,
                writes_per_level: int = 1) -> tuple[str, list]:
    """A guest with *depth* sequential symbolic branches -> 2^depth paths.

    Each level stores into guest memory ``writes_per_level`` times so
    forking has real dirty state to contend with — the knob E4 uses to
    scale touched pages independently of path count.
    """
    lines = ["mov r8, 0x600000", "mov r15, 0"]
    for level in range(depth):
        lines += [
            f"movb r9, [r8 + {level}]",
            "and r9, 1",
            "shl r15, 1",
            "add r15, r9",
        ]
        for w in range(writes_per_level):
            # Touch a distinct page per write to spread dirty state.  The
            # stored value is concrete so the write exercises the
            # backend's concrete-memory path (symbolic values live in
            # the engine overlay and would bypass it).
            lines += [
                f"mov r10, {0x601000 + (level * writes_per_level + w) * 4096}",
                f"mov r11, {level + 1}",
                "mov [r10], r11",
            ]
        lines += [
            "cmp r9, 0",
            f"je skip{level}",
            "nop",
            f"skip{level}:",
        ]
    lines += [
        "mov rdi, r15",
        "mov rax, 60",
        "syscall",
    ]
    symbolic = [
        (INPUT_BASE + i, 1, SymVar(f"b{i}", domain=domain))
        for i in range(depth)
    ]
    return "\n".join(lines), symbolic


def div_by_zero_bug() -> tuple[str, list]:
    """Computes ``100 / (x - 7)``: divide-by-zero reachable iff x == 7."""
    src = """
    mov r8, 0x600000
    movb r9, [r8]
    sub r9, 7
    mov rax, 100
    udiv rax, r9
    mov rdi, rax
    mov rax, 60
    syscall
    """
    return src, [(INPUT_BASE, 1, SymVar("x", domain=16))]


def unreachable_bug() -> tuple[str, list]:
    """A division guarded by a contradictory branch: never divides by 0."""
    src = """
    mov r8, 0x600000
    movb r9, [r8]
    cmp r9, 3
    jne safe
    cmp r9, 5
    jne safe          ; r9 == 3 here, so r9 == 5 is impossible
    mov rax, 100
    mov r10, 0
    udiv rax, r10     ; unreachable
    safe:
    mov rdi, 0
    mov rax, 60
    syscall
    """
    return src, [(INPUT_BASE, 1, SymVar("x", domain=16))]
