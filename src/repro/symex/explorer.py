"""The multi-path explorer (the S2E role in §3.2).

Partial candidates are symbolic machine states; the evaluation of an
extension runs the state "until it terminates or reaches the next
symbolic branch", at which point two extensions are created for the
branch-taken and branch-not-taken constraints — the exact mapping §3.2
spells out.  Scheduling uses the same strategy objects as the
backtracking engines (DFS by default, coverage-optimized available).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.cpu.assembler import Program, assemble
from repro.mem.layout import DEFAULT_STACK_PAGES, PAGE_SIZE, STACK_TOP
from repro.search import Extension, Strategy, get_strategy
from repro.symex.backends import SnapshotBackend, SWCowBackend, SymState
from repro.symex.expr import Expr, SymVar, negate
from repro.symex.machine import (
    Bug,
    Exited,
    Forked,
    Killed,
    OutOfFuel,
    SymMachine,
)
from repro.symex.solver import PathConstraints, is_satisfiable, solve_assignment


@dataclass
class PathRecord:
    """One completed execution path."""

    status: Union[int, str]
    constraints: PathConstraints
    #: A concrete witness input driving execution down this path.
    example: Optional[dict[str, int]] = None


@dataclass
class BugRecord:
    """One bug found during exploration."""

    kind: str
    pc: int
    example: Optional[dict[str, int]] = None


@dataclass
class ExploreResult:
    """Outcome of a symbolic exploration run."""

    paths: list[PathRecord]
    bugs: list[BugRecord]
    states_forked: int
    infeasible_pruned: int
    kills: int
    coverage: set[int]
    backend: str
    extra: dict = field(default_factory=dict)

    @property
    def path_count(self) -> int:
        return len(self.paths)


class SymbolicExplorer:
    """Explore every feasible path of a guest binary.

    Parameters
    ----------
    program:
        Assembly source or an assembled :class:`Program`.
    symbolic:
        The symbolic inputs: a list of ``(address, size, SymVar)``
        triples planted into guest memory before execution.
    backend:
        ``"snapshot"`` (lightweight snapshots) or ``"swcow"`` (S2E-style
        software COW), or a backend instance.
    strategy:
        Scheduling strategy for pending states (default DFS).
    ballast:
        Extra zero-filled guest memory in bytes, touched by nothing —
        used by E4 to scale state size independently of path count.
    """

    def __init__(
        self,
        program: Union[str, Program],
        symbolic: list[tuple[int, int, SymVar]],
        backend: Union[str, object] = "snapshot",
        strategy: Union[str, Strategy] = "dfs",
        max_states: int = 10_000,
        max_steps_per_state: int = 200_000,
        ballast: int = 0,
        data_pages: int = 16,
        stack_pages: int = DEFAULT_STACK_PAGES,
        concretize: bool = True,
    ):
        self.program = assemble(program) if isinstance(program, str) else program
        self.symbolic = symbolic
        if isinstance(backend, str):
            backend = SnapshotBackend() if backend == "snapshot" else SWCowBackend()
        self.backend = backend
        if isinstance(strategy, Strategy):
            self._strategy = strategy
        else:
            self._strategy = get_strategy(strategy)
        self.max_states = max_states
        self.max_steps_per_state = max_steps_per_state
        self.ballast = ballast
        self.data_pages = data_pages
        self.stack_pages = stack_pages
        self.machine = SymMachine(
            self.program, self.backend,
            concretizer=self._concretize if concretize else None,
        )

    def _concretize(self, state, expr) -> Optional[int]:
        """KLEE-style concretization: bind a symbolic value (usually an
        address) to one feasible concrete value on this path.

        Sound but incomplete: other feasible values of the expression are
        not explored (the standard engineering trade-off for symbolic
        pointers).  Unconstrained inputs default to 0.
        """
        model = solve_assignment(state.constraints)
        if model is None:
            return None
        assignment = {name: 0 for name in expr.vars()}
        assignment.update(model)
        value = expr.evaluate(assignment)
        from repro.symex.expr import compare

        state.constraints = state.constraints.extend(
            compare("eq", expr, value)
        )
        return value

    # ------------------------------------------------------------------

    def _initial_state(self) -> SymState:
        mem = self.backend.new_memory()
        program = self.program
        self.backend.map_region(
            mem, program.text_base, max(len(program.text), 1),
            data=program.text or b"\x00",
        )
        data_size = max(
            (len(program.data) + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1),
            self.data_pages * PAGE_SIZE,
        )
        self.backend.map_region(mem, program.data_base, data_size,
                                data=program.data or None)
        stack_size = self.stack_pages * PAGE_SIZE
        self.backend.map_region(mem, STACK_TOP - stack_size, stack_size)
        if self.ballast:
            ballast_base = 0x2000_0000
            size = (self.ballast + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
            self.backend.map_region(mem, ballast_base, size)
        regs: list = [0] * 16
        regs[4] = STACK_TOP  # rsp
        overlay = {}
        for addr, size, var in self.symbolic:
            overlay[(addr, size)] = var
        return SymState(
            regs, self.program.entry, None, overlay, PathConstraints(), mem
        )

    def run(self) -> ExploreResult:
        """Explore until the frontier empties or ``max_states`` is hit."""
        paths: list[PathRecord] = []
        bugs: list[BugRecord] = []
        coverage: set[int] = set()
        forked = 0
        pruned = 0
        kills = 0
        evaluated = 0

        pending: list[SymState] = [self._initial_state()]
        self._strategy.drain()

        while pending or len(self._strategy):
            if evaluated >= self.max_states:
                break
            if pending:
                state = pending.pop()
            else:
                ext = self._strategy.next()
                if ext is None:
                    break
                state = ext.candidate
            evaluated += 1
            event = self.machine.run(state, max_steps=self.max_steps_per_state)

            if isinstance(event, Forked):
                coverage.add(event.branch_pc)
                forked += 1
                taken_c = state.constraints.extend(event.condition)
                fall_c = state.constraints.extend(negate(event.condition))
                feasible = []
                if is_satisfiable(taken_c):
                    feasible.append((event.taken_rip, taken_c))
                else:
                    pruned += 1
                if is_satisfiable(fall_c):
                    feasible.append((event.fallthrough_rip, fall_c))
                else:
                    pruned += 1
                if not feasible:
                    self.backend.release(state)
                    continue
                children = self.backend.fork(state, n=len(feasible))
                exts = []
                for child, (rip, constraints) in zip(children, feasible):
                    child.rip = rip
                    child.constraints = constraints
                    child.flags = None
                    exts.append(
                        Extension(child, number=len(exts), depth=child.depth)
                    )
                self._strategy.add(exts)
            elif isinstance(event, Exited):
                example = solve_assignment(state.constraints)
                if isinstance(event.status, int):
                    status: Union[int, str] = event.status
                elif example is not None:
                    # Concretize the symbolic exit status under the
                    # path's witness input (unconstrained inputs get 0).
                    assignment = {name: 0 for name in event.status.vars()}
                    assignment.update(example)
                    status = event.status.evaluate(assignment)
                else:
                    status = "symbolic"
                paths.append(
                    PathRecord(
                        status=status,
                        constraints=state.constraints,
                        example=example,
                    )
                )
                self.backend.release(state)
            elif isinstance(event, Bug):
                constraints = state.constraints
                if event.condition is not None:
                    constraints = constraints.extend(event.condition)
                example = solve_assignment(constraints)
                if example is not None or event.condition is None:
                    bugs.append(BugRecord(event.kind, event.pc, example))
                self.backend.release(state)
            elif isinstance(event, (Killed, OutOfFuel)):
                kills += 1
                self.backend.release(state)
            else:  # pragma: no cover
                raise AssertionError(f"unhandled event {event!r}")

        # Release anything still pending (budget stop).
        while True:
            ext = self._strategy.next()
            if ext is None:
                break
            self.backend.release(ext.candidate)

        stats = self.backend.stats
        return ExploreResult(
            paths=paths,
            bugs=bugs,
            states_forked=forked,
            infeasible_pruned=pruned,
            kills=kills,
            coverage=coverage,
            backend=self.backend.name,
            extra={
                "fork_work": stats.fork_work,
                "instrumented_writes": stats.instrumented_writes,
                "pages_copied": stats.pages_copied,
                "footprint_pages": self.backend.footprint_pages(),
                "states_evaluated": evaluated,
                "instructions": self.machine.instructions,
            },
        )
