"""Symbolic expressions over guest machine words.

Expressions are immutable trees over 64-bit unsigned semantics (matching
the CPU's wrap-around arithmetic).  ``evaluate`` interprets a tree under
a concrete assignment of the symbolic variables; the solver enumerates
assignments, so expressions only need evaluation, not algebraic solving.

Constant folding in :func:`simplify` keeps trees small along deep paths.
"""

from __future__ import annotations

from typing import Any, Optional, Union

MASK64 = (1 << 64) - 1

_ARITH_OPS = {
    "add": lambda a, b: (a + b) & MASK64,
    "sub": lambda a, b: (a - b) & MASK64,
    "mul": lambda a, b: (a * b) & MASK64,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: (a << (b & 63)) & MASK64,
    "shr": lambda a, b: a >> (b & 63),
}


def _signed(value: int) -> int:
    return value - (1 << 64) if value & (1 << 63) else value

_CMP_OPS = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "ult": lambda a, b: a < b,
    "uge": lambda a, b: a >= b,
    "slt": lambda a, b: _signed(a) < _signed(b),
    "sle": lambda a, b: _signed(a) <= _signed(b),
    "sgt": lambda a, b: _signed(a) > _signed(b),
    "sge": lambda a, b: _signed(a) >= _signed(b),
}


class Expr:
    """Base class for symbolic expression nodes."""

    __slots__ = ()

    def vars(self) -> set[str]:
        raise NotImplementedError

    def evaluate(self, assignment: dict[str, int]) -> int:
        raise NotImplementedError


class Const(Expr):
    """A concrete 64-bit constant (used at expression leaves)."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        self.value = value & MASK64

    def vars(self) -> set[str]:
        return set()

    def evaluate(self, assignment: dict[str, int]) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"{self.value:#x}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Const) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("const", self.value))


class SymVar(Expr):
    """A named symbolic input with a bounded domain.

    The domain bound is what makes enumeration-based solving tractable;
    symbolic inputs in the experiments are bytes or smaller.
    """

    __slots__ = ("name", "domain")

    def __init__(self, name: str, domain: int = 256):
        if domain < 2:
            raise ValueError("domain must allow at least two values")
        self.name = name
        self.domain = domain

    def vars(self) -> set[str]:
        return {self.name}

    def evaluate(self, assignment: dict[str, int]) -> int:
        return assignment[self.name] & MASK64

    def __repr__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SymVar) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("sym", self.name))


class BinExpr(Expr):
    """An arithmetic/logical operation over two sub-expressions."""

    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op: str, lhs: Expr, rhs: Expr):
        if op not in _ARITH_OPS:
            raise ValueError(f"unknown operation {op!r}")
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def vars(self) -> set[str]:
        return self.lhs.vars() | self.rhs.vars()

    def evaluate(self, assignment: dict[str, int]) -> int:
        return _ARITH_OPS[self.op](
            self.lhs.evaluate(assignment), self.rhs.evaluate(assignment)
        )

    def __repr__(self) -> str:
        return f"({self.lhs!r} {self.op} {self.rhs!r})"


class CmpExpr(Expr):
    """A comparison producing 1 (true) or 0 (false)."""

    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op: str, lhs: Expr, rhs: Expr):
        if op not in _CMP_OPS:
            raise ValueError(f"unknown comparison {op!r}")
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def vars(self) -> set[str]:
        return self.lhs.vars() | self.rhs.vars()

    def evaluate(self, assignment: dict[str, int]) -> int:
        return int(
            _CMP_OPS[self.op](
                self.lhs.evaluate(assignment), self.rhs.evaluate(assignment)
            )
        )

    def __repr__(self) -> str:
        return f"({self.lhs!r} {self.op} {self.rhs!r})"


class NotExpr(Expr):
    """Boolean negation of a comparison."""

    __slots__ = ("inner",)

    def __init__(self, inner: Expr):
        self.inner = inner

    def vars(self) -> set[str]:
        return self.inner.vars()

    def evaluate(self, assignment: dict[str, int]) -> int:
        return int(not self.inner.evaluate(assignment))

    def __repr__(self) -> str:
        return f"!({self.inner!r})"


Value = Union[int, Expr]


def is_concrete(value: Value) -> bool:
    return isinstance(value, int)


def to_expr(value: Value) -> Expr:
    return Const(value) if isinstance(value, int) else value


def simplify(op: str, lhs: Value, rhs: Value) -> Value:
    """Build ``lhs op rhs``, folding when both sides are concrete."""
    if isinstance(lhs, int) and isinstance(rhs, int):
        return _ARITH_OPS[op](lhs, rhs)
    return BinExpr(op, to_expr(lhs), to_expr(rhs))


def compare(op: str, lhs: Value, rhs: Value) -> Value:
    """Build the comparison ``lhs op rhs``, folding concretes to 0/1."""
    if isinstance(lhs, int) and isinstance(rhs, int):
        return int(_CMP_OPS[op](lhs, rhs))
    return CmpExpr(op, to_expr(lhs), to_expr(rhs))


def negate(cond: Expr) -> Expr:
    """Logical negation, cancelling double negation."""
    if isinstance(cond, NotExpr):
        return cond.inner
    if isinstance(cond, CmpExpr):
        flipped = {
            "eq": "ne", "ne": "eq", "ult": "uge", "uge": "ult",
            "slt": "sge", "sge": "slt", "sle": "sgt", "sgt": "sle",
        }[cond.op]
        return CmpExpr(flipped, cond.lhs, cond.rhs)
    return NotExpr(cond)


def collect_symvars(expr: Expr, registry: Optional[dict[str, "SymVar"]] = None,
                    acc: Optional[dict[str, SymVar]] = None) -> dict[str, SymVar]:
    """Map variable names in *expr* to their SymVar nodes."""
    if acc is None:
        acc = {}
    stack: list[Any] = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, SymVar):
            acc[node.name] = node
        elif isinstance(node, (BinExpr, CmpExpr)):
            stack.append(node.lhs)
            stack.append(node.rhs)
        elif isinstance(node, NotExpr):
            stack.append(node.inner)
    return acc
