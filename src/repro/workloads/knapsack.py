"""Subset-sum and 0/1 knapsack guests (branch-and-prune workloads)."""

from __future__ import annotations

import random

from repro.core.sysno import SYS_EXIT, SYS_GUESS, SYS_GUESS_FAIL, SYS_WRITE


def subset_sum_guest(sys, values: list[int], target: int) -> tuple[int, ...]:
    """Pick a subset summing exactly to *target*.

    Prunes with the classic bound: fail as soon as the running sum
    exceeds the target or the remaining values cannot reach it.
    """
    total = sum(values)
    running = 0
    chosen: list[int] = []
    remaining = total
    for value in values:
        take = sys.guess(2)
        remaining -= value
        if take:
            running += value
            chosen.append(value)
        if running > target or running + remaining < target:
            sys.fail()
    if running != target:
        sys.fail()
    return tuple(chosen)


def knapsack_guest(sys, weights: list[int], profits: list[int],
                   capacity: int, min_profit: int) -> tuple[int, ...]:
    """Find a selection within *capacity* achieving >= *min_profit*."""
    weight = 0
    profit = 0
    chosen: list[int] = []
    rest_profit = sum(profits)
    for i, (w, p) in enumerate(zip(weights, profits)):
        take = sys.guess(2)
        rest_profit -= p
        if take:
            weight += w
            profit += p
            chosen.append(i)
        if weight > capacity or profit + rest_profit < min_profit:
            sys.fail()
    if profit < min_profit:
        sys.fail()
    return tuple(chosen)


def subset_sum_asm(values: list[int], target: int) -> str:
    """Generate the assembly guest for subset-sum.

    Same search and pruning as :func:`subset_sum_guest`: one
    ``sys_guess(2)`` per item (loop unrolled — values are known at
    generation time), failing as soon as the running sum overshoots the
    target or the remaining items cannot reach it.  Each witness subset
    is printed as a 0/1 take-vector and the path exits.
    """
    n = len(values)
    total = sum(values)
    body = []
    remaining = total
    for i, value in enumerate(values):
        remaining -= value
        body.append(f"""
    item_{i}:                          ; take values[{i}] = {value}?
        mov   rax, {SYS_GUESS:#x}
        mov   rdi, 2
        syscall
        cmp   rax, 0
        je    skip_{i}
        add   r13, {value}          ; running += value
        mov   r8, chosen
        mov   r10, 1
        movb  [r8 + {i}], r10
    skip_{i}:
        cmp   r13, {target}         ; running > target?
        jg    fail
        mov   r10, r13              ; running + remaining < target?
        add   r10, {remaining}
        cmp   r10, {target}
        jl    fail""")

    return f"""
    ; subset-sum via system-level backtracking, {n} items, target {target}
    .data
    chosen: .zero {n}
    buf:    .zero {n + 1}

    .text
    _start:
        mov   r13, 0                ; running sum
        {''.join(body)}
        cmp   r13, {target}
        jne   fail

    solved:                         ; print the take-vector as 0/1
        mov   rbx, 0
        mov   r8, chosen
        mov   r9, buf
    print_loop:
        cmp   rbx, {n}
        jge   print_done
        movb  r10, [r8 + rbx]
        add   r10, '0'
        movb  [r9 + rbx], r10
        inc   rbx
        jmp   print_loop
    print_done:
        mov   r10, 10               ; newline
        movb  [r9 + {n}], r10
        mov   rax, {SYS_WRITE}
        mov   rdi, 1
        mov   rsi, buf
        mov   rdx, {n + 1}
        syscall
        mov   rax, {SYS_EXIT}
        mov   rdi, 0
        syscall

    fail:
        mov   rax, {SYS_GUESS_FAIL:#x}
        syscall
    """


def random_instance(n: int, seed: int = 0) -> tuple[list[int], int]:
    """A subset-sum instance with at least one witness subset."""
    rng = random.Random(seed)
    values = [rng.randrange(1, 50) for _ in range(n)]
    witness = [v for v in values if rng.random() < 0.5]
    if not witness:
        witness = [values[0]]
    return values, sum(witness)
