"""Subset-sum and 0/1 knapsack guests (branch-and-prune workloads)."""

from __future__ import annotations

import random


def subset_sum_guest(sys, values: list[int], target: int) -> tuple[int, ...]:
    """Pick a subset summing exactly to *target*.

    Prunes with the classic bound: fail as soon as the running sum
    exceeds the target or the remaining values cannot reach it.
    """
    total = sum(values)
    running = 0
    chosen: list[int] = []
    remaining = total
    for value in values:
        take = sys.guess(2)
        remaining -= value
        if take:
            running += value
            chosen.append(value)
        if running > target or running + remaining < target:
            sys.fail()
    if running != target:
        sys.fail()
    return tuple(chosen)


def knapsack_guest(sys, weights: list[int], profits: list[int],
                   capacity: int, min_profit: int) -> tuple[int, ...]:
    """Find a selection within *capacity* achieving >= *min_profit*."""
    weight = 0
    profit = 0
    chosen: list[int] = []
    rest_profit = sum(profits)
    for i, (w, p) in enumerate(zip(weights, profits)):
        take = sys.guess(2)
        rest_profit -= p
        if take:
            weight += w
            profit += p
            chosen.append(i)
        if weight > capacity or profit + rest_profit < min_profit:
            sys.fail()
    if profit < min_profit:
        sys.fail()
    return tuple(chosen)


def random_instance(n: int, seed: int = 0) -> tuple[list[int], int]:
    """A subset-sum instance with at least one witness subset."""
    rng = random.Random(seed)
    values = [rng.randrange(1, 50) for _ in range(n)]
    witness = [v for v in values if rng.random() < 0.5]
    if not witness:
        witness = [values[0]]
    return values, sum(witness)
