"""The 8-puzzle: the informed-search workload for E7.

A shortest-path problem where the extended guess call's goal-distance
hints (§3.1) pay off: the guest passes the Manhattan-distance heuristic
of each successor, so A* expands far fewer candidates than BFS while
still finding a minimum-length solution (the heuristic is admissible).

Boards are tuples of 9 ints, 0 = blank, goal = (1..8, 0).
"""

from __future__ import annotations

import random
from typing import Optional

GOAL = (1, 2, 3, 4, 5, 6, 7, 8, 0)

#: blank position -> legal successor blank positions.
_MOVES: dict[int, tuple[int, ...]] = {
    0: (1, 3), 1: (0, 2, 4), 2: (1, 5),
    3: (0, 4, 6), 4: (1, 3, 5, 7), 5: (2, 4, 8),
    6: (3, 7), 7: (4, 6, 8), 8: (5, 7),
}


def manhattan(board: tuple[int, ...]) -> int:
    """Sum of tile distances to their goal cells (admissible)."""
    total = 0
    for pos, tile in enumerate(board):
        if tile == 0:
            continue
        goal_pos = tile - 1
        total += abs(pos // 3 - goal_pos // 3) + abs(pos % 3 - goal_pos % 3)
    return total


def apply_move(board: tuple[int, ...], new_blank: int) -> tuple[int, ...]:
    """Slide the tile at *new_blank* into the blank."""
    blank = board.index(0)
    cells = list(board)
    cells[blank], cells[new_blank] = cells[new_blank], 0
    return tuple(cells)


def successors(board: tuple[int, ...]) -> list[tuple[int, ...]]:
    blank = board.index(0)
    return [apply_move(board, nb) for nb in _MOVES[blank]]


def scramble(steps: int, seed: int = 0) -> tuple[int, ...]:
    """Scramble the goal with *steps* random moves (always solvable)."""
    rng = random.Random(seed)
    board = GOAL
    previous = None
    for _ in range(steps):
        options = [b for b in successors(board) if b != previous]
        previous = board
        board = rng.choice(options)
    return board


def puzzle8_asm(start: tuple[int, ...], max_moves: int) -> str:
    """Generate the assembly guest that walks *start* to the goal.

    Machine-code counterpart of :func:`puzzle_guest`, shaped for static
    analysis: each step guesses a constant fan-out of 4 directions and
    indexes a 9x4 move table holding the successor blank position, with
    0xFF marking illegal direction slots (guessing one fails).  The move
    budget is checked *after* the guess, so every ``sys_guess_fail``
    site sits inside a guess scope.  No cycle avoidance — ``max_moves``
    alone bounds the walk, so keep it small.
    """
    from repro.core.sysno import SYS_EXIT, SYS_GUESS, SYS_GUESS_FAIL, SYS_WRITE

    if len(start) != 9 or sorted(start) != list(range(9)):
        raise ValueError("start must be a permutation of 0..8")
    move_table = []
    for pos in range(9):
        slots = list(_MOVES[pos]) + [0xFF] * (4 - len(_MOVES[pos]))
        move_table.extend(slots)

    return f"""
    ; 8-puzzle via system-level backtracking, budget {max_moves} moves
    .data
    board: .byte {', '.join(str(v) for v in start)}
    moves: .byte {', '.join(str(v) for v in move_table)}
    goal:  .byte {', '.join(str(v) for v in GOAL)}
    buf:   .zero 10

    .text
    _start:
        mov   r14, 0                ; moves used so far
    main_loop:
        mov   r8, board
        mov   rbx, 0
    goal_loop:                      ; solved when all 9 cells match
        cmp   rbx, 9
        jge   solved
        movb  r9, [r8 + rbx]
        mov   r10, goal
        movb  r11, [r10 + rbx]
        cmp   r9, r11
        jne   not_goal
        inc   rbx
        jmp   goal_loop
    not_goal:
        mov   rbx, 0
    blank_loop:                     ; find the blank (value 0)
        cmp   rbx, 9
        jge   fail                  ; malformed board: no blank
        movb  r9, [r8 + rbx]
        cmp   r9, 0
        je    have_blank
        inc   rbx
        jmp   blank_loop
    have_blank:                     ; rbx = blank position, 0..8
        mov   rax, {SYS_GUESS:#x}
        mov   rdi, 4                ; constant fan-out: 4 directions
        syscall
        mov   r12, rax              ; chosen direction k, 0..3
        inc   r14                   ; budget check after the guess
        cmp   r14, {max_moves}
        jg    fail
        mov   r10, moves
        mov   r11, rbx
        shl   r11, 2
        add   r11, r12              ; r11 = blank*4 + k
        movb  r13, [r10 + r11]      ; successor position or 0xFF
        cmp   r13, 0xff
        je    fail                  ; illegal direction slot
        movb  r9, [r8 + r13]        ; slide: board[blank] = board[target]
        movb  [r8 + rbx], r9
        mov   r9, 0
        movb  [r8 + r13], r9        ; board[target] = blank
        jmp   main_loop

    solved:                         ; print board as digits and exit
        mov   rbx, 0
        mov   r9, buf
    print_loop:
        cmp   rbx, 9
        jge   print_done
        movb  r10, [r8 + rbx]
        add   r10, '0'
        movb  [r9 + rbx], r10
        inc   rbx
        jmp   print_loop
    print_done:
        mov   r10, 10               ; newline
        movb  [r9 + 9], r10
        mov   rax, {SYS_WRITE}
        mov   rdi, 1
        mov   rsi, buf
        mov   rdx, 10
        syscall
        mov   rax, {SYS_EXIT}
        mov   rdi, 0
        syscall

    fail:
        mov   rax, {SYS_GUESS_FAIL:#x}
        syscall
    """


def puzzle_guest(sys, start: tuple[int, ...], max_moves: int,
                 use_hints: bool = True) -> tuple[tuple[int, ...], ...]:
    """Walk the puzzle to the goal, one guessed move at a time.

    With ``use_hints`` the guest supplies the Manhattan distance of each
    successor as the goal-distance hint — the extended guess call of
    §3.1.  Cycle avoidance keeps the search finite: revisiting any board
    along the current path fails.
    """
    board = start
    path = [board]
    for _ in range(max_moves):
        if board == GOAL:
            return tuple(path)
        succs = successors(board)
        hints = [float(manhattan(s)) for s in succs] if use_hints else None
        board = succs[sys.guess(len(succs), hints=hints)]
        if board in path:
            sys.fail()
        path.append(board)
    if board == GOAL:
        return tuple(path)
    sys.fail()


def solve(engine_factory, start: tuple[int, ...], max_moves: int,
          use_hints: bool = True):
    """Find one solution with the given engine factory; returns
    (solution_path, SearchResult)."""
    engine = engine_factory()
    result = engine.run(puzzle_guest, start, max_moves, use_hints)
    return (result.first.value if result.first else None), result
