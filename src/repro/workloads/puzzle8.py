"""The 8-puzzle: the informed-search workload for E7.

A shortest-path problem where the extended guess call's goal-distance
hints (§3.1) pay off: the guest passes the Manhattan-distance heuristic
of each successor, so A* expands far fewer candidates than BFS while
still finding a minimum-length solution (the heuristic is admissible).

Boards are tuples of 9 ints, 0 = blank, goal = (1..8, 0).
"""

from __future__ import annotations

import random
from typing import Optional

GOAL = (1, 2, 3, 4, 5, 6, 7, 8, 0)

#: blank position -> legal successor blank positions.
_MOVES: dict[int, tuple[int, ...]] = {
    0: (1, 3), 1: (0, 2, 4), 2: (1, 5),
    3: (0, 4, 6), 4: (1, 3, 5, 7), 5: (2, 4, 8),
    6: (3, 7), 7: (4, 6, 8), 8: (5, 7),
}


def manhattan(board: tuple[int, ...]) -> int:
    """Sum of tile distances to their goal cells (admissible)."""
    total = 0
    for pos, tile in enumerate(board):
        if tile == 0:
            continue
        goal_pos = tile - 1
        total += abs(pos // 3 - goal_pos // 3) + abs(pos % 3 - goal_pos % 3)
    return total


def apply_move(board: tuple[int, ...], new_blank: int) -> tuple[int, ...]:
    """Slide the tile at *new_blank* into the blank."""
    blank = board.index(0)
    cells = list(board)
    cells[blank], cells[new_blank] = cells[new_blank], 0
    return tuple(cells)


def successors(board: tuple[int, ...]) -> list[tuple[int, ...]]:
    blank = board.index(0)
    return [apply_move(board, nb) for nb in _MOVES[blank]]


def scramble(steps: int, seed: int = 0) -> tuple[int, ...]:
    """Scramble the goal with *steps* random moves (always solvable)."""
    rng = random.Random(seed)
    board = GOAL
    previous = None
    for _ in range(steps):
        options = [b for b in successors(board) if b != previous]
        previous = board
        board = rng.choice(options)
    return board


def puzzle_guest(sys, start: tuple[int, ...], max_moves: int,
                 use_hints: bool = True) -> tuple[tuple[int, ...], ...]:
    """Walk the puzzle to the goal, one guessed move at a time.

    With ``use_hints`` the guest supplies the Manhattan distance of each
    successor as the goal-distance hint — the extended guess call of
    §3.1.  Cycle avoidance keeps the search finite: revisiting any board
    along the current path fails.
    """
    board = start
    path = [board]
    for _ in range(max_moves):
        if board == GOAL:
            return tuple(path)
        succs = successors(board)
        hints = [float(manhattan(s)) for s in succs] if use_hints else None
        board = succs[sys.guess(len(succs), hints=hints)]
        if board in path:
            sys.fail()
        path.append(board)
    if board == GOAL:
        return tuple(path)
    sys.fail()


def solve(engine_factory, start: tuple[int, ...], max_moves: int,
          use_hints: bool = True):
    """Find one solution with the given engine factory; returns
    (solution_path, SearchResult)."""
    engine = engine_factory()
    result = engine.run(puzzle_guest, start, max_moves, use_hints)
    return (result.first.value if result.first else None), result
