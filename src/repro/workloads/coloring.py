"""Graph coloring as a guest program (also available as CNF via
:func:`repro.sat.gen.graph_coloring` for cross-checking)."""

from __future__ import annotations

from typing import Optional


def coloring_guest(sys, num_nodes: int, edges: list[tuple[int, int]],
                   colors: int) -> tuple[int, ...]:
    """Color nodes one by one; fail on any conflicting edge."""
    adjacency: list[list[int]] = [[] for _ in range(num_nodes)]
    for a, b in edges:
        adjacency[a].append(b)
        adjacency[b].append(a)
    assignment: list[Optional[int]] = [None] * num_nodes
    for node in range(num_nodes):
        color = sys.guess(colors)
        if any(assignment[nb] == color for nb in adjacency[node]
               if nb < node):
            sys.fail()
        assignment[node] = color
    return tuple(assignment)  # type: ignore[arg-type]


def is_proper_coloring(assignment: tuple[int, ...],
                       edges: list[tuple[int, int]]) -> bool:
    """True if no edge connects same-colored nodes."""
    return all(assignment[a] != assignment[b] for a, b in edges)


#: A wheel graph W5 (hub 0 + 5-cycle): chromatic number 4.
WHEEL5_NODES = 6
WHEEL5_EDGES = [(0, i) for i in range(1, 6)] + [
    (1, 2), (2, 3), (3, 4), (4, 5), (5, 1),
]

#: The Petersen graph: chromatic number 3.
PETERSEN_NODES = 10
PETERSEN_EDGES = [
    (0, 1), (1, 2), (2, 3), (3, 4), (4, 0),       # outer cycle
    (5, 7), (7, 9), (9, 6), (6, 8), (8, 5),       # inner star
    (0, 5), (1, 6), (2, 7), (3, 8), (4, 9),       # spokes
]
