"""Graph coloring as a guest program (also available as CNF via
:func:`repro.sat.gen.graph_coloring` for cross-checking)."""

from __future__ import annotations

from typing import Optional

from repro.core.sysno import SYS_EXIT, SYS_GUESS, SYS_GUESS_FAIL, SYS_WRITE


def coloring_guest(sys, num_nodes: int, edges: list[tuple[int, int]],
                   colors: int) -> tuple[int, ...]:
    """Color nodes one by one; fail on any conflicting edge."""
    adjacency: list[list[int]] = [[] for _ in range(num_nodes)]
    for a, b in edges:
        adjacency[a].append(b)
        adjacency[b].append(a)
    assignment: list[Optional[int]] = [None] * num_nodes
    for node in range(num_nodes):
        color = sys.guess(colors)
        if any(assignment[nb] == color for nb in adjacency[node]
               if nb < node):
            sys.fail()
        assignment[node] = color
    return tuple(assignment)  # type: ignore[arg-type]


def coloring_asm(num_nodes: int, edges: list[tuple[int, int]],
                 colors: int) -> str:
    """Generate the assembly guest for graph coloring.

    Same search as :func:`coloring_guest`: nodes are colored in index
    order with one ``sys_guess(colors)`` each, and the conflict checks
    against already-colored neighbors are unrolled per node (the edge
    list is known at generation time).  Each proper coloring is printed
    as a digit string and the path exits.
    """
    if colors > 10:
        raise ValueError("single-digit printing limits colors to 10")
    earlier: list[list[int]] = [[] for _ in range(num_nodes)]
    for a, b in edges:
        lo, hi = min(a, b), max(a, b)
        earlier[hi].append(lo)

    body = []
    for node in range(num_nodes):
        checks = "\n".join(
            f"""
        movb  r9, [r8 + {nb}]
        cmp   r9, r12
        je    fail"""
            for nb in sorted(set(earlier[node]))
        )
        body.append(f"""
    node_{node}:                        ; color node {node}
        mov   rax, {SYS_GUESS:#x}
        mov   rdi, {colors}
        syscall
        mov   r12, rax
        mov   r8, assign
        {checks}
        movb  [r8 + {node}], r12""")

    return f"""
    ; graph {colors}-coloring via system-level backtracking, {num_nodes} nodes
    .data
    assign: .zero {num_nodes}
    buf:    .zero {num_nodes + 1}

    .text
    _start:
        {''.join(body)}

    solved:                         ; print the assignment as digits
        mov   rbx, 0
        mov   r8, assign
        mov   r9, buf
    print_loop:
        cmp   rbx, {num_nodes}
        jge   print_done
        movb  r10, [r8 + rbx]
        add   r10, '0'
        movb  [r9 + rbx], r10
        inc   rbx
        jmp   print_loop
    print_done:
        mov   r10, 10               ; newline
        movb  [r9 + {num_nodes}], r10
        mov   rax, {SYS_WRITE}
        mov   rdi, 1
        mov   rsi, buf
        mov   rdx, {num_nodes + 1}
        syscall
        mov   rax, {SYS_EXIT}
        mov   rdi, 0
        syscall

    fail:
        mov   rax, {SYS_GUESS_FAIL:#x}
        syscall
    """


def is_proper_coloring(assignment: tuple[int, ...],
                       edges: list[tuple[int, int]]) -> bool:
    """True if no edge connects same-colored nodes."""
    return all(assignment[a] != assignment[b] for a, b in edges)


#: A wheel graph W5 (hub 0 + 5-cycle): chromatic number 4.
WHEEL5_NODES = 6
WHEEL5_EDGES = [(0, i) for i in range(1, 6)] + [
    (1, 2), (2, 3), (3, 4), (4, 5), (5, 1),
]

#: The Petersen graph: chromatic number 3.
PETERSEN_NODES = 10
PETERSEN_EDGES = [
    (0, 1), (1, 2), (2, 3), (3, 4), (4, 0),       # outer cycle
    (5, 7), (7, 9), (9, 6), (6, 8), (8, 5),       # inner star
    (0, 5), (1, 6), (2, 7), (3, 8), (4, 9),       # spokes
]
