"""The n-queens workload (Figure 1 of the paper).

Three renditions of the same program:

* :func:`nqueens_python` -- the Figure 1 C code transliterated into a
  Python guest for the replay/posix engines;
* :func:`nqueens_asm` -- the same program as an assembly guest for the
  machine engine, using the real ``sys_guess`` ABI;
* the hand-coded baseline lives in :mod:`repro.baselines.handcoded`.

All use Figure 1's data structures: ``col[c]`` (queen row per column),
``row[r]`` occupancy, and the two diagonal occupancy arrays ``ld[r+c]``
and ``rd[N+r-c]``.
"""

from __future__ import annotations

from repro.core.sysno import (
    STRATEGY_IDS,
    SYS_EXIT,
    SYS_GETRANDOM,
    SYS_GUESS,
    SYS_GUESS_FAIL,
    SYS_GUESS_STRATEGY,
    SYS_WRITE,
)

#: Number of distinct n-queens solutions, for verification.
KNOWN_SOLUTION_COUNTS = {
    1: 1, 2: 0, 3: 0, 4: 2, 5: 10, 6: 4, 7: 40, 8: 92, 9: 352, 10: 724,
}


def nqueens_python(sys, n: int) -> str:
    """Figure 1 as a Python guest: returns the board as a digit string.

    Note the absence of any undo logic — exactly the paper's point.  The
    arrays are recreated per evaluation (the replay engine re-executes
    the guest), so mutation needs no cleanup on backtrack.
    """
    col = [0] * n
    row = [0] * n
    ld = [0] * (2 * n)
    rd = [0] * (2 * n)
    for c in range(n):
        r = sys.guess(n)  # a little magic
        if row[r] or ld[r + c] or rd[n + r - c]:
            sys.fail()  # backtrack
        col[c] = r
        row[r] = c + 1
        ld[r + c] = 1
        rd[n + r - c] = 1
    return "".join(str(col[c]) for c in range(n))


def nqueens_asm(
    n: int,
    fig1_style: bool = False,
    select_strategy: bool = True,
    ballast_pages: int = 0,
) -> str:
    """Generate the assembly guest for *n* queens.

    With ``fig1_style=False`` (default) each solved board is printed and
    the path exits; the engine records a Solution and backtracks, so the
    run enumerates every solution.  With ``fig1_style=True`` the guest
    prints and then calls ``sys_guess_fail`` — the literal Figure 1
    pattern ("we can simply use backtracking to print all answers"); the
    boards then appear in the engine transcript rather than as Solutions.

    ``ballast_pages`` grows the guest heap by that many pages, each
    touched once at startup — E2's knob for scaling address-space size
    without changing the search (eager forking must copy the ballast on
    every snapshot, COW never touches it again).
    """
    if not (1 <= n <= 10):
        raise ValueError("n must be in 1..10 (single-digit board printing)")
    ballast_preamble = (
        f"""
        mov   rax, 12               ; brk(0) -> heap base
        mov   rdi, 0
        syscall
        mov   r13, rax
        mov   rdi, r13              ; grow heap by the ballast
        add   rdi, {ballast_pages * 4096}
        mov   rax, 12
        syscall
        mov   r9, {ballast_pages}   ; touch each ballast page once
        mov   r8, r13
        mov   r10, 1
    ballast_loop:
        cmp   r9, 0
        je    ballast_done
        mov   [r8], r10
        add   r8, 4096
        dec   r9
        jmp   ballast_loop
    ballast_done:
        """
        if ballast_pages
        else ""
    )
    after_print = (
        f"""
        mov   rax, {SYS_GUESS_FAIL:#x}      ; print all answers (Fig. 1)
        syscall
        """
        if fig1_style
        else f"""
        mov   rax, {SYS_EXIT}               ; complete this path
        mov   rdi, 0
        syscall
        """
    )
    strategy_preamble = (
        f"""
        mov   rax, {SYS_GUESS_STRATEGY:#x}  ; sys_guess_strategy(DFS)
        mov   rdi, {STRATEGY_IDS['dfs']}
        syscall
        """
        if select_strategy
        else ""
    )
    return f"""
    ; n-queens with system-level backtracking (paper Figure 1), N = {n}
    .data
    col:  .zero {n}
    row:  .zero {n}
    ld:   .zero {2 * n}
    rd:   .zero {2 * n}
    buf:  .zero {n + 1}

    .text
    _start:
        {strategy_preamble}
        {ballast_preamble}
        mov   rbx, 0                ; c = 0
    col_loop:
        cmp   rbx, {n}
        jge   solved
        mov   rax, {SYS_GUESS:#x}   ; r = sys_guess(N)
        mov   rdi, {n}
        syscall
        mov   r12, rax              ; r

        mov   r8, row               ; if (row[r]) fail
        movb  r9, [r8 + r12]
        cmp   r9, 0
        jne   fail

        mov   r10, r12              ; if (ld[r+c]) fail
        add   r10, rbx
        mov   r8, ld
        movb  r9, [r8 + r10]
        cmp   r9, 0
        jne   fail

        mov   r10, r12              ; if (rd[N+r-c]) fail
        add   r10, {n}
        sub   r10, rbx
        mov   r8, rd
        movb  r9, [r8 + r10]
        cmp   r9, 0
        jne   fail

        mov   r8, col               ; col[c] = r
        movb  [r8 + rbx], r12
        mov   r11, rbx              ; row[r] = c + 1
        inc   r11
        mov   r8, row
        movb  [r8 + r12], r11
        mov   r11, 1
        mov   r10, r12              ; ld[r+c] = 1
        add   r10, rbx
        mov   r8, ld
        movb  [r8 + r10], r11
        mov   r10, r12              ; rd[N+r-c] = 1
        add   r10, {n}
        sub   r10, rbx
        mov   r8, rd
        movb  [r8 + r10], r11

        inc   rbx
        jmp   col_loop

    solved:                         ; printboard(N)
        mov   rbx, 0
        mov   r8, col
        mov   r9, buf
    print_loop:
        cmp   rbx, {n}
        jge   print_done
        movb  r10, [r8 + rbx]
        add   r10, '0'
        movb  [r9 + rbx], r10
        inc   rbx
        jmp   print_loop
    print_done:
        mov   r10, 10               ; newline
        movb  [r9 + {n}], r10
        mov   rax, {SYS_WRITE}      ; write(1, buf, N+1)
        mov   rdi, 1
        mov   rsi, buf
        mov   rdx, {n + 1}
        syscall
        {after_print}

    fail:
        mov   rax, {SYS_GUESS_FAIL:#x}  ; sys_guess_fail()
        syscall
    """


def nqueens_randomized_asm(n: int) -> str:
    """N-queens where the guess→row mapping is drawn from host entropy.

    Before each column's guess the guest calls ``sys_getrandom`` for an
    8-byte offset and places the queen at ``(guess + offset) % n``
    instead of at ``guess`` directly.  The *set* of solved boards is
    invariant — every permutation of row labels enumerates the same
    boards — but which decision path prints which board depends on the
    entropy drawn, so two runs only agree path-for-path when the nondet
    events are recorded and replayed (``--replay-mode``).  That makes
    this the canonical differential-test workload for the recorder: the
    analyzer flags the ``sys_getrandom`` site (DT006, recordable), and
    under record/replay the whole run is reproducible and shardable.
    """
    if not (1 <= n <= 10):
        raise ValueError("n must be in 1..10 (single-digit board printing)")
    return f"""
    ; randomized n-queens: row = (guess + entropy) % N, N = {n}
    .data
    col:  .zero {n}
    row:  .zero {n}
    ld:   .zero {2 * n}
    rd:   .zero {2 * n}
    buf:  .zero {n + 1}
    rnd:  .zero 8

    .text
    _start:
        mov   rbx, 0                ; c = 0
    col_loop:
        cmp   rbx, {n}
        jge   solved

        mov   rax, {SYS_GETRANDOM}  ; rnd <- 8 bytes of entropy
        mov   rdi, rnd
        mov   rsi, 8
        syscall
        mov   r8, rnd
        mov   r13, [r8]             ; offset = rnd % N
        mov   r14, {n}
        umod  r13, r14

        mov   rax, {SYS_GUESS:#x}   ; g = sys_guess(N)
        mov   rdi, {n}
        syscall
        add   rax, r13              ; r = (g + offset) % N
        umod  rax, r14
        mov   r12, rax

        mov   r8, row               ; if (row[r]) fail
        movb  r9, [r8 + r12]
        cmp   r9, 0
        jne   fail

        mov   r10, r12              ; if (ld[r+c]) fail
        add   r10, rbx
        mov   r8, ld
        movb  r9, [r8 + r10]
        cmp   r9, 0
        jne   fail

        mov   r10, r12              ; if (rd[N+r-c]) fail
        add   r10, {n}
        sub   r10, rbx
        mov   r8, rd
        movb  r9, [r8 + r10]
        cmp   r9, 0
        jne   fail

        mov   r8, col               ; col[c] = r
        movb  [r8 + rbx], r12
        mov   r11, rbx              ; row[r] = c + 1
        inc   r11
        mov   r8, row
        movb  [r8 + r12], r11
        mov   r11, 1
        mov   r10, r12              ; ld[r+c] = 1
        add   r10, rbx
        mov   r8, ld
        movb  [r8 + r10], r11
        mov   r10, r12              ; rd[N+r-c] = 1
        add   r10, {n}
        sub   r10, rbx
        mov   r8, rd
        movb  [r8 + r10], r11

        inc   rbx
        jmp   col_loop

    solved:                         ; printboard(N)
        mov   rbx, 0
        mov   r8, col
        mov   r9, buf
    print_loop:
        cmp   rbx, {n}
        jge   print_done
        movb  r10, [r8 + rbx]
        add   r10, '0'
        movb  [r9 + rbx], r10
        inc   rbx
        jmp   print_loop
    print_done:
        mov   r10, 10               ; newline
        movb  [r9 + {n}], r10
        mov   rax, {SYS_WRITE}      ; write(1, buf, N+1)
        mov   rdi, 1
        mov   rsi, buf
        mov   rdx, {n + 1}
        syscall
        mov   rax, {SYS_EXIT}
        mov   rdi, 0
        syscall

    fail:
        mov   rax, {SYS_GUESS_FAIL:#x}  ; sys_guess_fail()
        syscall
    """


def boards_from_result(result) -> list[str]:
    """Extract board strings from a machine-engine SearchResult."""
    return [value[1].strip() for value in result.solution_values]


def is_valid_board(board: str) -> bool:
    """Check one printed board: one queen per row/column/diagonal."""
    rows = [int(ch) for ch in board.strip()]
    n = len(rows)
    if len(set(rows)) != n:
        return False
    for c1 in range(n):
        for c2 in range(c1 + 1, n):
            if abs(rows[c1] - rows[c2]) == c2 - c1:
                return False
    return True
