"""Synthetic kernels for the E3 granularity/locality sweep.

§5: "The execution granularity, complexity of hand-coded logic, and
page-level memory locality will each play a role to determine when the
approach provides a performance win."  These kernels expose exactly those
knobs:

* ``depth`` / ``fanout`` -- search-tree shape;
* ``work`` -- instructions of pure compute per extension step
  (granularity);
* ``pages`` -- distinct pages written per extension step (locality);

The same workload exists as an assembly guest (for the machine engines:
COW, eager, replay) and as a hand-coded Python search (the native
baseline).  All variants count complete root-to-leaf paths, so results
are cross-checkable.
"""

from __future__ import annotations

from repro.core.sysno import SYS_BRK, SYS_EXIT, SYS_GUESS


def synthetic_asm(depth: int, fanout: int, work: int, pages: int) -> str:
    """Generate the synthetic kernel as an assembly guest.

    Per extension step the guest (a) spins a ``work``-iteration compute
    loop, (b) writes one word into each of ``pages`` distinct pages
    (offset by the current level so siblings dirty the same addresses —
    worst case for COW sharing), then guesses the next branch.  Leaves
    exit with the accumulated path value.
    """
    if fanout < 1 or depth < 1:
        raise ValueError("depth and fanout must be >= 1")
    return f"""
    ; synthetic granularity/locality kernel:
    ; depth={depth} fanout={fanout} work={work} pages={pages}
    _start:
        mov rax, {SYS_BRK}      ; r13 = heap base (the scratch region)
        mov rdi, 0
        syscall
        mov r13, rax
        mov rdi, r13            ; grow the heap by `pages` pages
        add rdi, {max(pages, 1) * 4096}
        mov rax, {SYS_BRK}
        syscall
        mov r15, 0              ; path accumulator
        mov r14, 0              ; level
    level_loop:
        cmp r14, {depth}
        jge done

        ; -- compute granularity: `work` loop iterations ---------------
        mov r10, {work}
        mov r11, r14
    work_loop:
        cmp r10, 0
        je work_done
        imul r11, 3
        add r11, 7
        and r11, 0xffff
        dec r10
        jmp work_loop
    work_done:

        ; -- locality: dirty `pages` distinct pages --------------------
        mov r9, {pages}
        mov r8, r13
    page_loop:
        cmp r9, 0
        je page_done
        mov [r8], r11           ; one word per page
        add r8, 4096
        dec r9
        jmp page_loop
    page_done:

        ; -- branch ----------------------------------------------------
        mov rax, {SYS_GUESS:#x}
        mov rdi, {fanout}
        syscall
        imul r15, {fanout}
        add r15, rax
        inc r14
        jmp level_loop

    done:
        mov rdi, r15
        mov rax, {SYS_EXIT}
        syscall
    """


def stdin_sum_asm(depth: int) -> str:
    """An interactive guest: some branches consume a byte of stdin.

    At each of ``depth`` levels the guest guesses a bit; on 1 it reads
    one byte from fd 0 and adds its value into an accumulator, and each
    leaf exits with the accumulated sum.  The console stream is shared
    search-wide, so *which* byte a branch receives depends on the order
    branches execute — classic value nondeterminism (analyzer lint
    DT001, recordable).  Under ``--replay-mode`` the byte each decision
    path consumed is recorded at the path's key and replayed verbatim,
    so sequential, sharded and resumed runs agree path-for-path.
    Exhausted input reads return 0 bytes and add nothing.
    """
    if depth < 1:
        raise ValueError("depth must be >= 1")
    return f"""
    ; stdin-sum: guess-gated console reads, depth = {depth}
    .data
    buf: .zero 1

    .text
    _start:
        mov r15, 0              ; accumulated byte sum
        mov r14, 0              ; level
    level_loop:
        cmp r14, {depth}
        jge done
        mov rax, {SYS_GUESS:#x}
        mov rdi, 2
        syscall
        cmp rax, 0
        je skip_read
        mov rax, 0              ; read(0, buf, 1)
        mov rdi, 0
        mov rsi, buf
        mov rdx, 1
        syscall
        cmp rax, 0              ; stream exhausted -> add nothing
        je skip_read
        mov r8, buf
        movb r9, [r8]
        add r15, r9
    skip_read:
        inc r14
        jmp level_loop

    done:
        mov rdi, r15
        mov rax, {SYS_EXIT}
        syscall
    """


def scratch_region_size(pages: int) -> int:
    """Bytes of scratch the guest dirties (mapped by the caller)."""
    return max(pages, 1) * 4096


def synthetic_handcoded(depth: int, fanout: int, work: int,
                        pages: int) -> int:
    """The hand-coded native baseline: same tree, explicit state array,
    undo by overwrite.  Returns the number of complete paths."""
    scratch = [0] * max(pages, 1)
    count = 0
    stack: list[int] = [0]
    while stack:
        level = stack.pop()
        if level == depth:
            count += 1
            continue
        value = level
        for _ in range(work):
            value = ((value * 3) + 7) & 0xFFFF
        for p in range(pages):
            scratch[p] = value
        for _ in range(fanout):
            stack.append(level + 1)
    return count


def synthetic_python_guest(sys, depth: int, fanout: int, work: int,
                           pages: int) -> int:
    """The same kernel as a Python guest for the replay engine."""
    scratch = [0] * max(pages, 1)
    acc = 0
    for level in range(depth):
        value = level
        for _ in range(work):
            value = ((value * 3) + 7) & 0xFFFF
        for p in range(pages):
            scratch[p] = value
        acc = acc * fanout + sys.guess(fanout)
    return acc
