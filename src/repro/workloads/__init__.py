"""Workloads: the guest programs the experiments run.

Each workload module provides the same problem in the forms the
experiment matrix needs — a Python guest for the replay/posix engines,
an assembly guest for the machine engine, and usually a hand-coded
native solver as the baseline the paper compares against (§5).
"""

from repro.workloads.coloring import coloring_asm, coloring_guest
from repro.workloads.crashfs import BUGGY_PLANS, CLEAN_PLANS, CORPUS
from repro.workloads.knapsack import subset_sum_asm, subset_sum_guest
from repro.workloads.nqueens import (
    KNOWN_SOLUTION_COUNTS,
    nqueens_asm,
    nqueens_python,
    nqueens_randomized_asm,
)
from repro.workloads.sudoku import sudoku_asm, sudoku_guest
from repro.workloads.synthetic import stdin_sum_asm

__all__ = [
    "BUGGY_PLANS",
    "CLEAN_PLANS",
    "CORPUS",
    "KNOWN_SOLUTION_COUNTS",
    "coloring_asm",
    "coloring_guest",
    "nqueens_asm",
    "nqueens_python",
    "nqueens_randomized_asm",
    "stdin_sum_asm",
    "subset_sum_asm",
    "subset_sum_guest",
    "sudoku_asm",
    "sudoku_guest",
]
